//! Vendored minimal benchmark harness exposing the subset of the `criterion`
//! API the workspace's benches use.
//!
//! No statistics engine: each benchmark runs a short warm-up, then
//! `sample_size` timed samples, and prints the median, min, and max per
//! iteration. Good enough to compare orders of magnitude offline; swap in
//! real criterion when a registry is reachable.

use std::fmt::Write as _;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value.
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    /// Just a parameter value.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the payload.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Run `f` repeatedly, recording one timed sample per batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and batch sizing: aim for batches of at least ~1ms.
        let mut batch = 1usize;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                std_black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 4;
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                std_black_box(f());
            }
            self.samples.push(t.elapsed() / batch as u32);
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<40} (no samples)");
            return;
        }
        let mut s = self.samples.clone();
        s.sort();
        let fmt = |d: Duration| {
            let ns = d.as_nanos();
            let mut out = String::new();
            if ns >= 1_000_000_000 {
                let _ = write!(out, "{:.3} s", ns as f64 / 1e9);
            } else if ns >= 1_000_000 {
                let _ = write!(out, "{:.3} ms", ns as f64 / 1e6);
            } else if ns >= 1_000 {
                let _ = write!(out, "{:.3} µs", ns as f64 / 1e3);
            } else {
                let _ = write!(out, "{ns} ns");
            }
            out
        };
        println!(
            "{id:<40} median {:>12}   [{} .. {}]",
            fmt(s[s.len() / 2]),
            fmt(s[0]),
            fmt(s[s.len() - 1]),
        );
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Override the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmark `f` with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.id));
        self
    }

    /// Benchmark `f` with no input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.id));
        self
    }

    /// Finish the group (prints a trailing blank line).
    pub fn finish(self) {
        println!();
    }
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("-- group: {name} --");
        BenchmarkGroup {
            name,
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: 10,
        };
        f(&mut b);
        b.report(&id.id);
        self
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = { let _ = $config; $crate::Criterion::default() };
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &x| {
            b.iter(|| x.wrapping_mul(3))
        });
        group.bench_function("plain", |b| b.iter(|| 1u64 + 1));
        group.finish();
    }

    criterion_group!(unit_benches, sample_bench);

    #[test]
    fn harness_runs() {
        unit_benches();
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 9).id, "f/9");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
