//! Collection strategies: `vec` with a fixed or ranged length.

use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::{Strategy, TestRng};

/// A half-open range of permissible collection lengths.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A vector whose elements come from `element` and whose length comes from
/// `size` (a fixed `usize` or a `usize` range).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_size_is_exact() {
        let strat = vec(0u32..5, 7usize);
        let mut rng = crate::test_rng("fixed", 1);
        for _ in 0..20 {
            assert_eq!(strat.generate(&mut rng).len(), 7);
        }
    }

    #[test]
    fn ranged_size_stays_in_range() {
        let strat = vec(0u32..5, 2..6);
        let mut rng = crate::test_rng("ranged", 2);
        for _ in 0..50 {
            let v = strat.generate(&mut rng);
            assert!((2..6).contains(&v.len()), "len = {}", v.len());
        }
    }
}
