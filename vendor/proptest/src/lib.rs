//! Vendored, API-compatible subset of the `proptest` crate.
//!
//! Implements exactly what the workspace's property tests use: range and
//! tuple strategies, [`Strategy::prop_map`] / [`Strategy::prop_flat_map`],
//! [`Just`], [`collection::vec`], the [`proptest!`] runner macro with
//! `#![proptest_config(...)]`, and the `prop_assert*` / `prop_assume!`
//! macros. Cases are generated from a deterministic per-test seed; there is
//! no shrinking — a failing case reports its assertion message directly.

use std::ops::{Range, RangeInclusive};

use rand::{Rng, SeedableRng};

pub mod collection;

/// The RNG driving case generation.
pub type TestRng = rand_chacha::ChaCha8Rng;

/// Why a generated case did not count as a pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; generate a fresh case.
    Reject,
    /// An assertion failed.
    Fail(String),
}

/// Runner configuration (`cases` is the only knob the subset supports).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A deterministic RNG for case `case` of the test named `name`.
pub fn test_rng(name: &str, case: u64) -> TestRng {
    // FNV-1a over the test name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// A recipe for generating values of type `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` derives from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )+};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Everything a test module needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Fail the case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fail the case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Fail the case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Reject the case (generate a fresh one) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Define property tests: each `fn name(x in strategy, ...) { body }` becomes
/// a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)]
     $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $($crate::proptest!(@one ($config); $(#[$meta])* fn $name($($arg in $strat),+) $body);)*
    };
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $($crate::proptest!(@one ($crate::ProptestConfig::default());
            $(#[$meta])* fn $name($($arg in $strat),+) $body);)*
    };
    (@one ($config:expr); $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+) $body:block) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut accepted: u32 = 0;
            let mut attempt: u64 = 0;
            let max_attempts = (config.cases as u64) * 16 + 64;
            while accepted < config.cases {
                attempt += 1;
                assert!(
                    attempt <= max_attempts,
                    "proptest: too many rejected cases ({accepted}/{} accepted after {attempt} attempts)",
                    config.cases
                );
                let mut rng =
                    $crate::test_rng(concat!(module_path!(), "::", stringify!($name)), attempt);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("proptest case {attempt} failed: {msg}")
                    }
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = crate::test_rng("ranges", 1);
        for _ in 0..100 {
            let v = crate::Strategy::generate(&(3usize..17), &mut rng);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let strat = (1usize..5).prop_flat_map(|n| {
            (Just(n), crate::collection::vec(0u32..10, n)).prop_map(|(n, v)| (n, v.len()))
        });
        let mut rng = crate::test_rng("compose", 2);
        for _ in 0..50 {
            let (n, len) = crate::Strategy::generate(&strat, &mut rng);
            assert_eq!(n, len);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn runner_executes_and_assumes(x in 0u32..100, y in 0u32..100) {
            prop_assume!(x != y);
            prop_assert_ne!(x, y);
            prop_assert!(x < 100 && y < 100, "out of range: {} {}", x, y);
            prop_assert_eq!(x + y, y + x);
        }
    }

    proptest! {
        #[test]
        fn default_config_runner(v in crate::collection::vec(1u64..10, 0..8)) {
            prop_assert!(v.len() < 8);
            prop_assert!(v.iter().all(|&x| (1..10).contains(&x)));
        }
    }
}
