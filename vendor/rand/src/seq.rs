//! Sequence helpers: the subset of `rand::seq` the workspace uses.

use crate::Rng;

/// Random selection and shuffling over slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// A uniformly random element, or `None` if the slice is empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SplitMix64;

    #[test]
    fn choose_empty_is_none() {
        let v: Vec<u8> = Vec::new();
        assert!(v.choose(&mut SplitMix64::new(1)).is_none());
    }

    #[test]
    fn choose_hits_every_element() {
        let v = [1u8, 2, 3];
        let mut rng = SplitMix64::new(2);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[(*v.choose(&mut rng).unwrap() - 1) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut SplitMix64::new(3));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "50! leaves this untouched with prob ~0"
        );
    }
}
