//! Vendored, API-compatible subset of the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the workspace
//! ships the small slice of `rand` it actually uses: [`RngCore`],
//! [`SeedableRng`] (with the `seed_from_u64` splitmix64 expansion), the
//! [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`), and
//! [`seq::SliceRandom`] (`choose`, `shuffle`).
//!
//! The numeric streams are *not* bit-identical to upstream `rand`; everything
//! in this workspace treats RNGs as opaque deterministic sources, so only
//! reproducibility within the workspace matters.

use std::ops::{Range, RangeInclusive};

pub mod seq;

/// The core of a random number generator.
pub trait RngCore {
    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;

    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Build the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed via splitmix64 and construct.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunkk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let len = chunkk.len();
            chunkk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be drawn uniformly from a generator (the `Standard`
/// distribution of upstream `rand`, flattened into one trait).
pub trait Uniformable {
    /// Draw a uniform value.
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_uniformable_uint {
    ($($t:ty => $via:ident),+) => {$(
        impl Uniformable for $t {
            fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )+};
}

impl_uniformable_uint!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64, i8 => next_u32, i16 => next_u32,
    i32 => next_u32, i64 => next_u64, isize => next_u64);

impl Uniformable for bool {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Uniformable for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Uniformable for f32 {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges a value can be drawn uniformly from.
pub trait SampleRange<T> {
    /// Draw a value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                // span can exceed u64::MAX only for the full u128-width range,
                // which no caller uses; fold two draws for headroom anyway.
                let raw = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                let v = (raw % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )+};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_uniform(rng) * (self.end - self.start)
    }
}

/// Convenience extension methods over [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value of type `T`.
    fn gen<T: Uniformable>(&mut self) -> T {
        T::sample_uniform(self)
    }

    /// A uniform value from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p = {p} is not a probability");
        f64::sample_uniform(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A tiny splitmix64 generator, used as the workspace's cheap fallback RNG
/// and by the vendored `rand_chacha` tests.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `state`.
    pub fn new(state: u64) -> Self {
        SplitMix64 { state }
    }
}

impl RngCore for SplitMix64 {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for SplitMix64 {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        SplitMix64::new(u64::from_le_bytes(seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let u: usize = rng.gen_range(0..1);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SplitMix64::new(8);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = SplitMix64::new(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn seed_from_u64_is_deterministic() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut rng = SplitMix64::new(10);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
