//! Vendored ChaCha8 random number generator.
//!
//! A genuine ChaCha stream cipher core (8 rounds) driving the workspace's
//! [`rand::RngCore`] interface. Streams are deterministic per seed but not
//! bit-identical to the upstream `rand_chacha` crate; the workspace only
//! relies on within-workspace reproducibility.

use rand::{RngCore, SeedableRng};

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// The ChaCha cipher with 8 rounds, exposed as an RNG.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// The cipher input block: constants, key, 64-bit counter, nonce.
    state: [u32; 16],
    /// The current keystream block.
    buf: [u32; 16],
    /// Next unread word of `buf`; 16 forces a refill.
    idx: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut w = self.state;
        for _ in 0..4 {
            // One double round = a column round and a diagonal round.
            quarter_round(&mut w, 0, 4, 8, 12);
            quarter_round(&mut w, 1, 5, 9, 13);
            quarter_round(&mut w, 2, 6, 10, 14);
            quarter_round(&mut w, 3, 7, 11, 15);
            quarter_round(&mut w, 0, 5, 10, 15);
            quarter_round(&mut w, 1, 6, 11, 12);
            quarter_round(&mut w, 2, 7, 8, 13);
            quarter_round(&mut w, 3, 4, 9, 14);
        }
        for (out, inp) in w.iter_mut().zip(self.state.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.buf = w;
        self.idx = 0;
        // 64-bit block counter in words 12..14.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        // Counter and nonce start at zero.
        ChaCha8Rng {
            state,
            buf: [0; 16],
            idx: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(0xFEED);
        let mut b = ChaCha8Rng::seed_from_u64(0xFEED);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn crosses_block_boundaries() {
        // One block holds 16 u32 words; draw several blocks' worth and check
        // the stream does not repeat with period 16.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let words: Vec<u32> = (0..64).map(|_| rng.next_u32()).collect();
        assert_ne!(&words[0..16], &words[16..32]);
        assert_ne!(&words[16..32], &words[32..48]);
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(4);
        for _ in 0..7 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn uniformity_smoke_test() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[rng.gen_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "counts = {counts:?}");
        }
    }
}
