//! Near-optimal distributed routing with low memory — umbrella crate.
//!
//! A full Rust implementation of Elkin & Neiman's PODC 2018 routing scheme
//! and every substrate it stands on:
//!
//! | Crate | Contents |
//! |---|---|
//! | [`graphs`] | weighted graphs, generators, exact shortest paths, trees |
//! | [`congest`] | the CONGEST-model simulator (rounds, words, memory) |
//! | [`tree_routing`] | exact compact tree routing (§3 + App. A, Theorem 2) |
//! | [`hopset`] | `(β, ε)`-hopsets with bounded arboricity and path recovery |
//! | [`routing`] | the general-graph compact routing scheme (App. B, Theorem 3) |
//!
//! # Quickstart
//!
//! ```
//! use distributed_routing::prelude::*;
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
//! let g = graphs::generators::erdos_renyi_connected(100, 0.05, 1..=20, &mut rng);
//!
//! // Build the paper's distributed low-memory scheme for k = 2.
//! let built = routing::build(&g, &routing::BuildParams::new(2), &mut rng);
//!
//! // Route a message and check the stretch.
//! let trace = routing::router::route(&g, &built.scheme, VertexId(0), VertexId(99)).unwrap();
//! let exact = graphs::shortest_paths::dijkstra(&g, VertexId(0))[99];
//! assert!(trace.weight as f64 <= 5.0 * exact as f64); // ≤ 4k − 3
//! ```

pub use congest;
pub use graphs;
pub use hopset;
pub use routing;
pub use tree_routing;

/// The most common imports in one place.
pub mod prelude {
    pub use congest::{CostLedger, MemoryMeter, Network, WordSized};
    pub use graphs::{Graph, GraphBuilder, RootedTree, VertexId, Weight, INFINITY};
    pub use routing::{BuildParams, Mode, RoutingScheme};
    pub use tree_routing::{TreeLabel, TreeScheme, TreeTable};
}
