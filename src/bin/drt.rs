//! `drt` — the distributed-routing tool.
//!
//! A thin CLI over the library for users who want to try the scheme on
//! their own networks without writing Rust:
//!
//! ```text
//! drt generate <family> <n> [seed]          # emit an edge list to stdout
//! drt info     <graph-file>                 # n, m, D, S, degrees, aspect ratio
//! drt build    <graph-file> <k> [<out>|--out <file>]  # preprocess; save checksummed scheme
//! drt route    <graph-file> [<scheme>|--scheme <f>] <src> <dst> [--load <p>] [--seed <s>]
//! drt query    <graph-file> [<scheme>|--scheme <f>] <src> <dst>  # oracle distance
//! drt trace    <graph-file> [<scheme>|--scheme <f>] <src> <dst>  # flight-recorded send
//! drt stretch  <graph-file> <scheme-file> [sources]     # stretch statistics
//! drt audit    <graph-file> [<scheme>|--scheme <f>] [--sample <pairs>] [--seed <s>]
//!              [--kill-edges <p>] [--kill-vertices <p>] [--report <path>] [--json]
//! drt traffic  <graph-file> <scheme-file> [--workload <w>] [--rate <r,...>] ...
//! drt churn    <graph-file> <scheme-file> [--process <p>] [--rate <f>] [--rounds <n>] ...
//! drt serve    <graph-file> [--scheme <f>] [--queries <q>] [--batch <b>] [--workload <w>]
//!              [--seed <s>] [--check-rate <f>] [--open <qps,...>] [--threads <t>] [--json]
//! drt report   <report-file> [--json]                   # validate a JSONL report
//! drt bench    [--smoke|--quick|--full] [--label <l>] [--out <path>] [--repeats <r>] [--threads <t>]
//! drt compare  <old.json> <new.json> [--sim-tol <f>] [--wall-tol <f>] [--wall-gate]
//! drt profile  [--n <n>] [--packets <p>] [--threads <t>] [--trace-out <path>] [--report <path>]
//! ```
//!
//! Graph files use the [`graphs::io`] edge-list format.
//!
//! `drt route` walks the forwarding rule centrally and reports the pair's
//! engine *delivery status* — delivered vs dropped mid-route vs
//! undeliverable (no common tree) — distinctly; with `--load <p>` it also
//! pushes a seeded batch of `p` packets through the store-and-forward
//! engine and prints the delivered/dropped/undeliverable counts. `drt
//! trace` sends a real packet through the CONGEST engine with the flight
//! recorder on and prints the hop-by-hop journey — round, port,
//! forwarding-decision kind, queueing delay, accumulated weight — plus the
//! ascent/descent decomposition, and cross-checks the accumulated weight
//! against the central router.
//!
//! `drt audit` runs the scheme observatory (`routing::audit`) over a saved
//! scheme: per-vertex memory attribution split into named components
//! (cluster memberships, tree tables, TZ labels, tree labels, pivot sets)
//! reconciled word-for-word against [`routing::RoutingScheme::resident_words`],
//! structural invariant audits (the `verify` checks, cover coverage, the
//! Claim-6 membership bound, DFS-interval nesting, distance-estimate
//! soundness on sampled sources), and a seeded routing-consistency probe
//! against exact distances and the central oracle — a full pair sweep at
//! small `n`, sampled above. `--kill-edges p` / `--kill-vertices p` re-run
//! the probe with the *stale* tables against a seeded perturbation of the
//! graph, reporting reachability, stretch inflation, and misroute counts.
//! The command exits nonzero if the intact audit finds any violation;
//! `--report` writes the `scheme_audit` record plus one `vertex_load`
//! heatmap per memory component, and `--json` prints the record.
//!
//! `drt traffic` runs the steady-state traffic engine (crate `traffic`):
//! seeded workloads (`uniform`, `gravity`, `hotspot`, `worst`) injected
//! every round into finite per-port queues, swept across offered rates
//! (`--rate 0.5,1,2,4`) to locate the saturation knee — the largest rate
//! meeting the SLO (bounded p99 queueing delay, negligible loss). The run
//! is seed-deterministic at any `--threads` count; `--report` writes one
//! `traffic_summary` plus one `edge_load` record per rate.
//!
//! `drt churn` runs the churn observatory (crate `churn`): a seeded failure
//! process (`random`, `random-edges`, `targeted`, `regional`, optionally
//! with `--revive`) kills part of the network every round while the saved
//! scheme keeps forwarding with its stale tables. Each round samples a
//! fixed seeded probe (reachability over the intact-graph denominator —
//! monotone for revival-free processes), delivered-stretch inflation
//! against the perturbed graph's Dijkstra, a traffic burst (misroutes
//! surface as stuck drops), and the blast radius — alive vertices whose
//! tables reference something dead. It prints the timeline plus a knee /
//! half-life degradation summary; `--slo <floor> --slo-round <r>` declares
//! "reachability ≥ floor through round r" and the command exits nonzero on
//! breach. `--report` writes a `churn_timeline` record; `--json` prints it.
//! One-shot `drt audit --kill-edges/--kill-vertices` is the single-event
//! case of the same overlay machinery.
//!
//! `drt serve` runs the query-serving plane (crate `serve`): the persisted
//! scheme is loaded into an immutable shared snapshot and a long-lived
//! worker pool answers a seeded stream of route / distance-estimate / trace
//! queries, each answer sampled (`--check-rate`) for a byte-identical
//! cross-check against the central router and distance oracle. The default
//! closed loop dispatches batches back to back and reports the saturation
//! QPS with nearest-rank p50/p95/p99 per-query latency; `--open
//! <qps,...>` instead walks an offered-rate ladder on a timed schedule and
//! reports the knee — the largest rate still absorbed within the SLO — the
//! serving-side analog of `drt traffic`'s saturation search. Simulated
//! columns (query mix, outcome split, aggregate weight/hops, checks,
//! mismatches, answer checksum) are byte-identical at any `--threads`
//! count and in both loop modes; QPS and latency are wall-clock and
//! advisory. `--report` writes one `serve_summary` record per run (one per
//! rung under `--open`); the command exits nonzero on any cross-check
//! mismatch or internal serving error. Without `--scheme` it builds a
//! `k = 2` scheme on the fly, matching `drt build`'s fixed seed.
//!
//! `drt build` and `drt bench` accept `--threads <t>` (or `DRT_THREADS`;
//! default: all available cores) to run the engine-backed phases on a worker
//! pool. Thread count never changes simulated results — rounds, messages,
//! words, and memory are byte-identical at any thread count — only
//! wall-clock time; `drt bench` stamps the count into the BENCH document and,
//! at `--threads ≥ 2`, additionally measures the per-group serial-vs-parallel
//! wall speedup, which `drt compare` reports as advisory.
//!
//! `drt build` and `drt trace` additionally accept `--report <path>` (or the
//! `DRT_REPORT` environment variable) to write a JSONL run report: phase
//! spans for `build`, a `packet_trace` record for `trace`. `drt report`
//! reads such a file back, validates every record it knows
//! (`packet_trace`, `edge_load`, `vertex_load`, `stretch_histogram`,
//! `metrics`, `scaling_check`, `traffic_summary` — the latter re-checked
//! against the packet-conservation identity), and prints per-type counts
//! plus the run's total wall-clock time.
//!
//! `drt profile` turns on the engine profiler (`obs::profile`) over a
//! self-contained store-and-forward workload: it generates a seeded graph,
//! builds a `k = 2` scheme, and pushes a packet batch through the CONGEST
//! engine three times — once unprofiled (the overhead baseline), once
//! profiled on the serial engine, once profiled on the worker pool. It
//! prints the per-phase wall breakdown (dispatch, compute, scatter, merge,
//! idle), per-worker utilization and imbalance, and a serial-vs-parallel
//! attribution diff that shows where the wall time moved — the tool for
//! explaining a sub-1x parallel speedup. `--trace-out <path>` additionally
//! writes the retained phase intervals as a Chrome trace-event JSON
//! (loadable in Perfetto / `chrome://tracing`, one track per worker);
//! `--report <path>` writes a JSONL report carrying the `engine_profile`
//! record. The engine-driven commands accept `--profile` (or
//! `DRT_PROFILE=1`): `drt traffic --profile` attributes the sweep's rounds
//! and stamps the phase summary into its report. Profiling never changes
//! simulated results — rounds, words, outcomes, and memory are
//! byte-identical with the profiler on or off.
//!
//! `drt bench` runs the standardized benchmark suite (fixed seeds; see
//! [`bench::suite`]) and writes a `BENCH_<label>.json` trajectory point:
//! per-case wall-clock p50/p95 over repeats, byte-stable simulated
//! rounds/words/memory, an environment stamp, and fitted scaling-law
//! verdicts against the paper's predicted exponents (nonzero exit if a fit
//! falls outside its predicted range). `drt compare old.json new.json`
//! diffs two such documents — simulated columns gate exactly by default,
//! wall-clock is advisory within `--wall-tol` — and prints a markdown
//! summary, exiting nonzero on any gated regression.

use std::process::ExitCode;

use graphs::{generators, io, properties, shortest_paths, Graph, VertexId};
use obs::json::Value;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use routing::oracle::DistanceOracle;
use routing::{build_observed, packet, persist, router, BuildParams};

fn main() -> ExitCode {
    let (opts, args) = obs::cli::ReportOptions::from_env();
    let result = match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("build") => cmd_build(&args[1..], &opts),
        Some("route") => cmd_route(&args[1..], false),
        Some("query") => cmd_route(&args[1..], true),
        Some("trace") => cmd_trace(&args[1..], &opts),
        Some("stretch") => cmd_stretch(&args[1..]),
        Some("audit") => cmd_audit(&args[1..], &opts),
        Some("traffic") => cmd_traffic(&args[1..], &opts),
        Some("churn") => cmd_churn(&args[1..], &opts),
        Some("serve") => cmd_serve(&args[1..], &opts),
        Some("report") => cmd_report(&args[1..], &opts),
        Some("bench") => cmd_bench(&args[1..], &opts),
        Some("compare") => cmd_compare(&args[1..]),
        Some("profile") => cmd_profile(&args[1..], &opts),
        _ => {
            eprintln!(
                "usage: drt <generate|info|build|route|query|trace|stretch|audit|traffic|churn|serve|report|bench|compare|profile> ... (see crate docs)"
            );
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn load_graph(path: &str) -> Result<Graph, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    io::parse_edge_list(&text).map_err(|e| format!("parsing {path}: {e}"))
}

fn parse_vertex(g: &Graph, tok: &str) -> Result<VertexId, String> {
    let raw: u32 = tok.parse().map_err(|_| format!("bad vertex id '{tok}'"))?;
    if (raw as usize) < g.num_vertices() {
        Ok(VertexId(raw))
    } else {
        Err(format!(
            "vertex {raw} out of range (n = {})",
            g.num_vertices()
        ))
    }
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let [family, n, rest @ ..] = args else {
        return Err("generate <er|geometric|torus|scale-free|expander> <n> [seed]".into());
    };
    let n: usize = n.parse().map_err(|_| format!("bad n '{n}'"))?;
    let seed: u64 = rest
        .first()
        .map(|s| s.parse().map_err(|_| format!("bad seed '{s}'")))
        .transpose()?
        .unwrap_or(42);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let g = match family.as_str() {
        "er" => generators::erdos_renyi_connected(n, 4.0 / n as f64, 1..=100, &mut rng),
        "geometric" => {
            let r = (3.0 * (n as f64).ln() / n as f64).sqrt();
            generators::random_geometric_connected(n, r, 1..=100, &mut rng)
        }
        "torus" => {
            let side = (n as f64).sqrt().ceil() as usize;
            generators::torus(side.max(3), side.max(3), 1..=100, &mut rng)
        }
        "scale-free" => generators::preferential_attachment(n.max(5), 3, 1..=100, &mut rng),
        "expander" => generators::random_regular_expander(n.max(4), 6, 1..=100, &mut rng),
        other => return Err(format!("unknown family '{other}'")),
    };
    print!("{}", io::to_edge_list(&g));
    Ok(())
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let [path] = args else {
        return Err("info <graph-file>".into());
    };
    let g = load_graph(path)?;
    println!("vertices           : {}", g.num_vertices());
    println!("edges              : {}", g.num_edges());
    println!("connected          : {}", properties::is_connected(&g));
    if let Some((dmin, dmax, dmean)) = properties::degree_stats(&g) {
        println!("degrees            : {dmin}..{dmax} (mean {dmean:.2})");
    }
    if let Some(d) = properties::hop_diameter(&g) {
        println!("hop diameter D     : {d}");
    }
    if let Some(s) = properties::shortest_path_diameter(&g) {
        println!("SP diameter S      : {s}");
    }
    if let Some(l) = g.aspect_ratio() {
        println!("aspect ratio       : {l:.1}");
    }
    Ok(())
}

fn cmd_build(args: &[String], opts: &obs::cli::ReportOptions) -> Result<(), String> {
    let mut positional = Vec::new();
    let mut out_flag: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out_flag = Some(it.next().ok_or("--out needs a file path")?.clone()),
            other => positional.push(other.to_string()),
        }
    }
    let usage =
        "build <graph-file> <k> [<out-file>|--out <file>] [--report <path>] [--threads <t>]";
    let (graph_path, k, out_path) = match positional.as_slice() {
        [g, k, out] if out_flag.is_none() => (g.clone(), k.clone(), out.clone()),
        [g, k] => match out_flag {
            Some(out) => (g.clone(), k.clone(), out),
            None => return Err(usage.into()),
        },
        _ => return Err(usage.into()),
    };
    let (graph_path, k, out_path) = (&graph_path, &k, &out_path);
    let g = load_graph(graph_path)?;
    let k: usize = k.parse().map_err(|_| format!("bad k '{k}'"))?;
    if k < 2 {
        return Err("k must be at least 2".into());
    }
    let mut rec = obs::Recorder::when(opts.reporting());
    if opts.profile {
        // The scheme build charges the cost ledger rather than the engine
        // round loop, so today this records nothing; the hook is here so an
        // engine-backed build phase picks it up automatically.
        rec.enable_profiling();
    }
    let mut rng = ChaCha8Rng::seed_from_u64(0xD27);
    let span = rec.begin("drt/build");
    let params = BuildParams::new(k).with_threads(opts.resolved_threads());
    let built = build_observed(&g, &params, &mut rng, &mut rec);
    rec.end_with_memory(span, built.report.memory.peaks());
    // The checksummed container (magic + version + length + CRC32 over the
    // payload), so downstream subcommands detect truncation and bit rot.
    let bytes = persist::encode_container(&built.scheme).map_err(|e| e.to_string())?;
    std::fs::write(out_path, &bytes).map_err(|e| format!("writing {out_path}: {e}"))?;
    let r = &built.report;
    println!("built k = {k} scheme for n = {}:", g.num_vertices());
    println!("  simulated rounds  : {}", r.rounds);
    println!("  peak memory       : {} words/vertex", r.memory.max_peak());
    println!(
        "  max table / label : {} / {} words",
        r.max_table_words, r.max_label_words
    );
    println!("  saved             : {} bytes -> {out_path}", bytes.len());
    if let Some(path) = &opts.report {
        rec.write_report(
            path,
            "drt-build",
            &[
                ("n", Value::from(g.num_vertices())),
                ("k", Value::from(k)),
                ("graph", Value::from(graph_path.as_str())),
            ],
        )
        .map_err(|e| format!("writing report {}: {e}", path.display()))?;
    }
    Ok(())
}

fn load_scheme(path: &str) -> Result<routing::RoutingScheme, String> {
    // Accepts both the checksummed container and legacy raw scheme files.
    persist::load_scheme_from(path).map_err(|e| format!("loading {path}: {e}"))
}

/// Resolve the scheme a subcommand routes with: an explicit `--scheme <file>`
/// wins, else a positional scheme path, else build a `k = 2` scheme on the
/// fly with the same fixed seed `drt build` uses.
fn resolve_scheme(
    g: &Graph,
    flag: Option<&str>,
    positional: Option<&str>,
) -> Result<routing::RoutingScheme, String> {
    if let Some(path) = flag.or(positional) {
        let scheme = load_scheme(path)?;
        if scheme.tables.len() != g.num_vertices() {
            return Err(format!(
                "scheme covers {} vertices but the graph has {}",
                scheme.tables.len(),
                g.num_vertices()
            ));
        }
        Ok(scheme)
    } else {
        let mut rng = ChaCha8Rng::seed_from_u64(0xD27);
        Ok(routing::scheme::build(g, &BuildParams::new(2), &mut rng).scheme)
    }
}

fn cmd_route(args: &[String], oracle_only: bool) -> Result<(), String> {
    let mut positional = Vec::new();
    let mut load: Option<usize> = None;
    let mut seed: u64 = 42;
    let mut scheme_flag: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--load" => {
                let v = it.next().ok_or("--load needs a packet count")?;
                load = Some(v.parse().map_err(|_| format!("bad packet count '{v}'"))?);
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                seed = v.parse().map_err(|_| format!("bad seed '{v}'"))?;
            }
            "--scheme" => {
                scheme_flag = Some(it.next().ok_or("--scheme needs a file path")?.clone());
            }
            other => positional.push(other.to_string()),
        }
    }
    let (graph_path, scheme_pos, src, dst) = match positional.as_slice() {
        [g, s, a, b] if scheme_flag.is_none() => (g, Some(s.as_str()), a, b),
        [g, a, b] => (g, None, a, b),
        _ => {
            return Err(
                "route|query <graph-file> [<scheme-file>|--scheme <file>] <src> <dst> \
                 [--load <packets>] [--seed <s>]"
                    .into(),
            )
        }
    };
    let g = load_graph(graph_path)?;
    let scheme = resolve_scheme(&g, scheme_flag.as_deref(), scheme_pos)?;
    let s = parse_vertex(&g, src)?;
    let t = parse_vertex(&g, dst)?;
    let exact = shortest_paths::dijkstra(&g, s)[t.index()];
    if oracle_only {
        let est = DistanceOracle::new(&scheme).query(s, t);
        println!("oracle estimate {s} -> {t}: {est} (exact {exact})");
        return Ok(());
    }
    // Walk the rule centrally for the path, then push the same packet
    // through the store-and-forward engine so the user sees its delivery
    // status — delivered, dropped mid-route, and undeliverable are three
    // different failures with three different remedies.
    let central = router::route(&g, &scheme, s, t);
    let net = congest::Network::new(g);
    let report = packet::send_many(&net, &scheme, &[(s, t)]);
    match report.outcomes[0] {
        packet::DeliveryStatus::Delivered { round, .. } => {
            let trace = central.map_err(|e| e.to_string())?;
            println!(
                "routed {s} -> {t}: weight {} over {} hops via tree of {} (exact {}, stretch {:.3})",
                trace.weight,
                trace.hops(),
                trace.tree_root,
                exact,
                trace.weight as f64 / exact.max(1) as f64
            );
            println!(
                "path: {}",
                trace
                    .path
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(" -> ")
            );
            println!("status: delivered at engine round {round}");
        }
        packet::DeliveryStatus::Undeliverable => {
            println!("status: undeliverable — {s} and {t} share no routing tree; never injected");
            return Err(format!("{s} -> {t}: undeliverable"));
        }
        packet::DeliveryStatus::Dropped => {
            println!(
                "status: dropped mid-route — stuck forwarding rule or missing port \
                 (scheme/graph mismatch?)"
            );
            return Err(format!("{s} -> {t}: dropped mid-route"));
        }
    }
    if let Some(p) = load {
        let n = net.graph().num_vertices() as u32;
        if n < 2 {
            return Err("--load needs a graph with at least 2 vertices".into());
        }
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let pairs: Vec<(VertexId, VertexId)> = (0..p)
            .map(|_| {
                let a = rng.gen_range(0..n);
                let mut b = rng.gen_range(0..n);
                while b == a {
                    b = rng.gen_range(0..n);
                }
                (VertexId(a), VertexId(b))
            })
            .collect();
        let batch = packet::send_many(&net, &scheme, &pairs);
        println!(
            "load {p} (seed {seed}): {} delivered, {} dropped mid-route, {} undeliverable \
             over {} rounds",
            batch.delivered_count(),
            batch.dropped,
            batch.undeliverable,
            batch.stats.rounds
        );
    }
    Ok(())
}

fn cmd_trace(args: &[String], opts: &obs::cli::ReportOptions) -> Result<(), String> {
    let mut positional = Vec::new();
    let mut scheme_flag: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scheme" => {
                scheme_flag = Some(it.next().ok_or("--scheme needs a file path")?.clone());
            }
            other => positional.push(other.to_string()),
        }
    }
    let (graph_path, scheme_pos, src, dst) =
        match positional.as_slice() {
            [g, s, a, b] if scheme_flag.is_none() => (g, Some(s.as_str()), a, b),
            [g, a, b] => (g, None, a, b),
            _ => return Err(
                "trace <graph-file> [<scheme-file>|--scheme <file>] <src> <dst> [--report <path>]"
                    .into(),
            ),
        };
    let g = load_graph(graph_path)?;
    let scheme = resolve_scheme(&g, scheme_flag.as_deref(), scheme_pos)?;
    let s = parse_vertex(&g, src)?;
    let t = parse_vertex(&g, dst)?;
    let central = router::route(&g, &scheme, s, t);
    let net = congest::Network::new(g);
    let flight = packet::send_traced(&net, &scheme, s, t);
    match flight.report.outcome {
        packet::PacketOutcome::NoCommonTree => {
            return Err(format!(
                "{s} -> {t}: no common tree (disconnected pair); nothing to trace"
            ));
        }
        packet::PacketOutcome::Stuck(v) => {
            return Err(format!(
                "{s} -> {t}: packet got stuck at {v} — scheme/graph mismatch?"
            ));
        }
        packet::PacketOutcome::Delivered { .. } => {}
    }
    let trace = flight.trace.as_ref().expect("delivered packets are traced");
    println!(
        "trace {s} -> {t} via tree of {} ({} words on the wire):",
        trace.tree_root, flight.report.packet_words
    );
    println!(
        "{:>4} {:>6} {:>7} {:>5} {:>7} {:<14} {:>6} {:>7}",
        "hop", "round", "vertex", "port", "next", "kind", "queue", "weight"
    );
    for (i, h) in trace.hops.iter().enumerate() {
        println!(
            "{:>4} {:>6} {:>7} {:>5} {:>7} {:<14} {:>6} {:>7}",
            i + 1,
            h.round,
            h.vertex,
            h.port,
            h.next,
            h.kind.name(),
            h.queue_delay,
            h.weight
        );
    }
    let d = trace.decomposition();
    let delivered = trace.delivered_round.expect("delivered");
    println!(
        "delivered at round {delivered}: {} hops + {} queueing rounds",
        trace.hop_count(),
        d.queue_rounds
    );
    println!(
        "weight {} = ascent {} ({} hops) + descent {} ({} hops)",
        trace.total_weight(),
        d.ascent_weight,
        d.ascent_hops,
        d.descent_weight,
        d.descent_hops
    );
    // The engine-routed packet and the central walker must agree exactly —
    // they execute the same forwarding rule.
    let central = central.map_err(|e| format!("central router disagrees: {e}"))?;
    if central.weight != trace.total_weight() || central.hops() != trace.hop_count() {
        return Err(format!(
            "flight recorder ({} over {} hops) disagrees with central router ({} over {} hops)",
            trace.total_weight(),
            trace.hop_count(),
            central.weight,
            central.hops()
        ));
    }
    println!(
        "cross-check: central router agrees (weight {})",
        central.weight
    );
    if let Some(path) = &opts.report {
        let mut rec = obs::Recorder::when(true);
        let span = rec.begin("drt/trace");
        rec.charge(&obs::Counters {
            rounds: flight.report.stats.rounds,
            messages: flight.report.stats.messages,
            words: flight.report.stats.words,
            broadcasts: 0,
        });
        rec.end(span);
        rec.add_record(trace.to_value());
        rec.write_report(
            path,
            "drt-trace",
            &[
                ("graph", Value::from(graph_path.as_str())),
                ("src", Value::from(u64::from(s.0))),
                ("dst", Value::from(u64::from(t.0))),
            ],
        )
        .map_err(|e| format!("writing report {}: {e}", path.display()))?;
        println!("report written to {}", path.display());
    }
    Ok(())
}

fn cmd_audit(args: &[String], opts: &obs::cli::ReportOptions) -> Result<(), String> {
    use routing::audit::{self, AuditConfig, Component, PerturbSpec};

    let mut positional = Vec::new();
    let mut cfg = AuditConfig::default();
    let mut kill_edges = 0.0f64;
    let mut kill_vertices = 0.0f64;
    let mut scheme_flag: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut prob = |name: &str| -> Result<f64, String> {
            let v = it.next().ok_or(format!("{name} needs a probability"))?;
            let p: f64 = v.parse().map_err(|_| format!("bad probability '{v}'"))?;
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} must be in [0, 1], got {p}"));
            }
            Ok(p)
        };
        match arg.as_str() {
            "--sample" => {
                let v = it.next().ok_or("--sample needs a pair count")?;
                let pairs: usize = v.parse().map_err(|_| format!("bad pair count '{v}'"))?;
                cfg = cfg.with_sample_pairs(pairs.max(1));
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                cfg.seed = v.parse().map_err(|_| format!("bad seed '{v}'"))?;
            }
            "--kill-edges" => kill_edges = prob("--kill-edges")?,
            "--kill-vertices" => kill_vertices = prob("--kill-vertices")?,
            "--scheme" => {
                scheme_flag = Some(it.next().ok_or("--scheme needs a file path")?.clone());
            }
            other => positional.push(other.to_string()),
        }
    }
    let (graph_path, scheme_pos) = match positional.as_slice() {
        [g, s] if scheme_flag.is_none() => (g, Some(s.as_str())),
        [g] => (g, None),
        _ => {
            return Err(
                "audit <graph-file> [<scheme-file>|--scheme <file>] [--sample <pairs>] \
                 [--seed <s>] [--kill-edges <p>] [--kill-vertices <p>] [--report <path>] [--json]"
                    .into(),
            )
        }
    };
    let scheme_path = scheme_flag.as_deref().or(scheme_pos).unwrap_or("(built)");
    let scheme_path = scheme_path.to_string();
    let g = load_graph(graph_path)?;
    let scheme = resolve_scheme(&g, scheme_flag.as_deref(), scheme_pos)?;

    let out = audit::audit(&g, &scheme, &cfg);
    let perturbed = if kill_edges > 0.0 || kill_vertices > 0.0 {
        let spec = PerturbSpec {
            kill_edges,
            kill_vertices,
            seed: cfg.seed,
        };
        Some(audit::probe_perturbed(
            &g,
            &scheme,
            &cfg,
            &spec,
            out.probe.mean_stretch,
        ))
    } else {
        None
    };
    let record = out.to_record(perturbed.as_ref());

    if let Some(path) = &opts.report {
        // One scheme_audit record plus a vertex_load heatmap per memory
        // component, so the same tooling that maps traffic hot spots maps
        // memory hot spots.
        let mut rec = obs::Recorder::when(true);
        rec.add_record(record.to_value());
        for &c in &Component::ALL {
            let mut heat = obs::flight::VertexLoadMap::new();
            for (v, words) in out.attribution.component_words(c).iter().enumerate() {
                if *words > 0 {
                    heat.record(v as u32, *words);
                }
            }
            rec.add_record(heat.to_value(&[("component", Value::from(c.name()))]));
        }
        rec.write_report(
            path,
            "drt-audit",
            &[
                ("n", Value::from(g.num_vertices())),
                ("k", Value::from(scheme.k)),
                ("graph", Value::from(graph_path.as_str())),
                ("scheme", Value::from(scheme_path.as_str())),
            ],
        )
        .map_err(|e| format!("writing report {}: {e}", path.display()))?;
    }
    if opts.json {
        println!("{}", record.to_value());
    } else {
        print_audit(&record);
    }
    if record.violations > 0 {
        return Err(format!(
            "audit found {} violation(s) on the intact graph",
            record.violations
        ));
    }
    Ok(())
}

fn print_audit(a: &obs::audit::SchemeAudit) {
    println!(
        "audit of k = {} scheme on n = {} graph ({} mode):",
        a.k, a.n, a.mode
    );
    println!(
        "  memory attribution ({}, resident {} words total, max {}/vertex):",
        if a.attribution_exact {
            "reconciled exactly"
        } else {
            "RECONCILIATION FAILED"
        },
        a.resident_total,
        a.resident_max
    );
    for c in &a.components {
        println!(
            "    {:<20} total {:>8}  max {:>5}  p50 {:>4}  p95 {:>4}  p99 {:>4}{}",
            c.name,
            c.total,
            c.max,
            c.p50,
            c.p95,
            c.p99,
            if c.resident { "" } else { "  (non-resident)" }
        );
    }
    println!(
        "  meter cross-check   : {}",
        match (a.meter_checked, a.meter_ok) {
            (false, _) => "skipped (no build-time meter for a loaded scheme)",
            (true, true) => "ok (metered peaks dominate resident words)",
            (true, false) => "FAILED (resident words exceed a metered peak)",
        }
    );
    println!("  invariants:");
    for inv in &a.invariants {
        println!(
            "    {:<20} {:>7} checked, {} violation(s)",
            inv.name, inv.checked, inv.violations
        );
    }
    let p = &a.probe;
    println!(
        "  routing probe ({}): {} pairs, {} connected",
        if p.full_sweep {
            "full sweep"
        } else {
            "sampled"
        },
        p.pairs,
        p.connected
    );
    println!(
        "    delivered {} ({:.1}%), mean stretch {:.3}, max {:.3}",
        p.delivered,
        100.0 * p.reachability(),
        p.mean_stretch,
        p.max_stretch
    );
    println!(
        "    failures: no_common_tree {}, stuck {}, bad_forward {}, loop {}",
        p.no_common_tree, p.stuck, p.bad_forward, p.looped
    );
    println!(
        "    bounds: undershoots {}, over_bound {}, oracle undershoots {}, oracle over {}",
        p.undershoots, p.over_bound, p.oracle_undershoots, p.oracle_over_bound
    );
    if let Some(pp) = &a.perturbed {
        let q = &pp.probe;
        println!(
            "  perturbation probe (kill edges p = {}, vertices p = {}):",
            pp.kill_edges, pp.kill_vertices
        );
        println!(
            "    killed {} edge(s), {} vertex(es); {} of {} still-connected pairs delivered ({:.1}%)",
            pp.killed_edges,
            pp.killed_vertices,
            q.delivered,
            q.connected,
            100.0 * q.reachability()
        );
        println!(
            "    stretch: mean {:.3} (inflation {:.2}x), max {:.3}",
            q.mean_stretch, pp.stretch_inflation, q.max_stretch
        );
        println!(
            "    misroutes: bad_forward {}, stuck {}, loop {}, no_common_tree {}",
            q.bad_forward, q.stuck, q.looped, q.no_common_tree
        );
    }
    println!(
        "  verdict: {}",
        if a.violations == 0 {
            "ok (0 violations)".to_string()
        } else {
            format!("FAILED ({} violation(s))", a.violations)
        }
    );
}

fn cmd_report(args: &[String], opts: &obs::cli::ReportOptions) -> Result<(), String> {
    let [path] = args else {
        return Err("report <report-file> [--json]".into());
    };
    let records = obs::read_report(path).map_err(|e| format!("reading {path}: {e}"))?;
    let mut counts: Vec<(String, usize)> = Vec::new();
    for (i, record) in records.iter().enumerate() {
        let ty = record
            .get("type")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("record {i}: missing 'type'"))?
            .to_string();
        // Validate every record type the flight recorder knows; the
        // others (span, round_series, run_summary) are structural and
        // already survived `read_report`'s JSON parse. The typed parsers
        // return `obs::ParseError`s that already carry the field name; tag
        // on the record index so a bad line is findable.
        let check = |r: Result<(), obs::ParseError>| r.map_err(|e| e.in_record(i).to_string());
        match ty.as_str() {
            "packet_trace" => check(obs::flight::PacketTrace::from_value(record).map(|_| ()))?,
            "edge_load" => check(obs::flight::EdgeLoadMap::from_value(record).map(|_| ()))?,
            "vertex_load" => check(obs::flight::VertexLoadMap::from_value(record).map(|_| ()))?,
            "stretch_histogram" => {
                check(obs::flight::Histogram::from_value(record).map(|_| ()))?;
            }
            "metrics" => check(obs::metrics::MetricSet::from_value(record).map(|_| ()))?,
            "scaling_check" => check(obs::scaling::ScalingCheck::from_value(record).map(|_| ()))?,
            "traffic_summary" => {
                // `from_value` re-checks the packet-conservation identity,
                // so a summary that parses here is conserved.
                check(obs::traffic::TrafficSummary::from_value(record).map(|_| ()))?;
            }
            "engine_profile" => {
                check(obs::profile::ProfileSummary::from_value(record).map(|_| ()))?
            }
            "scheme_audit" => {
                // `from_value` re-checks the probe's outcome-partition
                // identity, so a record that parses here is internally
                // consistent.
                check(obs::audit::SchemeAudit::from_value(record).map(|_| ()))?;
            }
            "serve_summary" => {
                // `from_value` re-checks the query partition identities
                // (kind mix, outcome split, checks vs mismatches).
                check(obs::serve::ServeSummary::from_value(record).map(|_| ()))?;
            }
            "churn_timeline" => {
                // `from_value` re-checks per-round probe partition, traffic
                // conservation, and (for revival-free processes) monotone
                // delivery.
                check(obs::churn::ChurnTimeline::from_value(record).map(|_| ()))?;
            }
            _ => {}
        }
        match counts.iter_mut().find(|(t, _)| *t == ty) {
            Some((_, c)) => *c += 1,
            None => counts.push((ty, 1)),
        }
    }
    // Surface the run's real time alongside the simulated costs: the summary
    // line carries the recorder's total wall clock, each span its own.
    let total_wall = records
        .iter()
        .find(|r| r.get("type").and_then(Value::as_str) == Some("run_summary"))
        .and_then(|r| r.get("wall_ns"))
        .and_then(Value::as_u64);
    let mut spans: Vec<(&str, u64)> = records
        .iter()
        .filter(|r| r.get("type").and_then(Value::as_str) == Some("span"))
        .filter_map(|r| {
            Some((
                r.get("name").and_then(Value::as_str)?,
                r.get("wall_ns").and_then(Value::as_u64)?,
            ))
        })
        .collect();
    spans.sort_by_key(|&(_, wall)| std::cmp::Reverse(wall));
    if opts.json {
        // Machine-readable summary: per-type counts, total and top-3 span
        // walls, and the conservation verdict across traffic summaries.
        let summary = Value::object(vec![
            ("file", Value::from(path.as_str())),
            ("records", Value::from(records.len())),
            ("valid", Value::from(true)),
            (
                "counts",
                Value::Object(
                    counts
                        .iter()
                        .map(|(t, c)| (t.clone(), Value::from(*c)))
                        .collect(),
                ),
            ),
            ("total_wall_ns", total_wall.map_or(Value::Null, Value::from)),
            (
                "top_spans",
                Value::Array(
                    spans
                        .iter()
                        .take(3)
                        .map(|&(name, wall)| {
                            Value::object(vec![
                                ("name", Value::from(name)),
                                ("wall_ns", Value::from(wall)),
                            ])
                        })
                        .collect(),
                ),
            ),
            // Traffic summaries re-check conservation on parse, so reaching
            // this point means every one of them balanced.
            ("conserved", Value::from(true)),
        ]);
        println!("{summary}");
        return Ok(());
    }
    println!("{path}: {} records, all valid", records.len());
    for (ty, c) in counts {
        println!("  {ty:<18} {c}");
    }
    if let Some(total) = total_wall {
        println!("  total wall         {:.2} ms", total as f64 / 1e6);
        for (name, wall) in spans.iter().take(3) {
            println!("    {name:<20} {:.2} ms", *wall as f64 / 1e6);
        }
    }
    Ok(())
}

fn cmd_bench(args: &[String], opts: &obs::cli::ReportOptions) -> Result<(), String> {
    let mut tier = bench::suite::Tier::Quick;
    let mut label = String::from("dev");
    let mut out: Option<String> = None;
    let mut repeats: Option<usize> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => tier = bench::suite::Tier::Smoke,
            "--quick" => tier = bench::suite::Tier::Quick,
            "--full" => tier = bench::suite::Tier::Full,
            "--label" => {
                label = it.next().ok_or("--label needs a value")?.clone();
            }
            "--out" => out = Some(it.next().ok_or("--out needs a value")?.clone()),
            "--repeats" => {
                let r = it.next().ok_or("--repeats needs a value")?;
                repeats = Some(r.parse().map_err(|_| format!("bad repeat count '{r}'"))?);
            }
            other => return Err(format!("unknown bench option '{other}'")),
        }
    }
    let threads = opts.resolved_threads();
    let out = out.unwrap_or_else(|| format!("BENCH_{label}.json"));
    println!(
        "running {} suite (label '{label}', {threads} engine thread{}) — simulated columns are \
         seed-pinned, wall is this machine",
        tier.name(),
        if threads == 1 { "" } else { "s" }
    );
    let doc = bench::suite::run_suite(tier, &label, repeats, threads, |case| {
        println!("  done {case}");
    })?;
    for case in &doc.cases {
        println!(
            "{:<28} rounds {:>9}  words {:>11}  wall p50 {:>9.2} ms",
            case.id,
            case.sim("rounds").unwrap_or(0),
            case.sim("words").unwrap_or(0),
            case.wall.p50_ns as f64 / 1e6
        );
    }
    for s in &doc.speedup {
        println!(
            "speedup {:<28} {:.2}x at {} threads (serial p50 {:>8.2} ms, parallel p50 {:>8.2} ms)",
            s.group,
            s.speedup(),
            s.threads,
            s.serial_p50_ns as f64 / 1e6,
            s.parallel_p50_ns as f64 / 1e6
        );
    }
    for check in &doc.checks {
        println!(
            "scaling {:<28} exponent {:+.3} in [{:+.2}, {:+.2}]  r2 {:.3}  {}  ({})",
            check.metric,
            check.fit.exponent,
            check.predicted.lo,
            check.predicted.hi,
            check.fit.r2,
            if check.ok() { "OK" } else { "FAIL" },
            check.claim
        );
    }
    doc.save(&out).map_err(|e| format!("writing {out}: {e}"))?;
    println!("wrote {out}");
    if doc.scaling_ok() {
        Ok(())
    } else {
        Err("scaling check(s) outside the paper-predicted exponent range".into())
    }
}

fn cmd_compare(args: &[String]) -> Result<(), String> {
    let mut cfg = bench::suite::CompareConfig::default();
    let mut paths = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--sim-tol" => {
                let v = it.next().ok_or("--sim-tol needs a value")?;
                cfg.sim_tol = v.parse().map_err(|_| format!("bad tolerance '{v}'"))?;
            }
            "--wall-tol" => {
                let v = it.next().ok_or("--wall-tol needs a value")?;
                cfg.wall_tol = v.parse().map_err(|_| format!("bad tolerance '{v}'"))?;
            }
            "--wall-gate" => cfg.wall_gate = true,
            other => paths.push(other.to_string()),
        }
    }
    let [old_path, new_path] = paths.as_slice() else {
        return Err(
            "compare <old.json> <new.json> [--sim-tol <f>] [--wall-tol <f>] [--wall-gate]".into(),
        );
    };
    let old = bench::suite::BenchDoc::load(old_path)?;
    let new = bench::suite::BenchDoc::load(new_path)?;
    let cmp = bench::suite::compare(&old, &new, &cfg);
    print!("{}", cmp.markdown(&old.label, &new.label));
    if cmp.passed() {
        Ok(())
    } else {
        Err(format!("{} regression(s) detected", cmp.regressions.len()))
    }
}

/// Print one profile's phase-breakdown table, worker utilization, and
/// coverage. `label` names the run (`serial` / `parallel`).
fn print_profile(label: &str, s: &obs::profile::ProfileSummary) {
    let wall = s.engine_wall_ns.max(1) as f64;
    println!(
        "{label} attribution ({} worker track{}, {} rounds, engine wall {:.2} ms):",
        s.workers,
        if s.workers == 1 { "" } else { "s" },
        s.rounds + 1,
        s.engine_wall_ns as f64 / 1e6
    );
    println!(
        "  {:<10} {:>10} {:>8} {:>9} {:>9} {:>8}",
        "phase", "total ms", "% wall", "p50 us", "p95 us", "samples"
    );
    for p in &s.phases {
        println!(
            "  {:<10} {:>10.3} {:>7.1}% {:>9.1} {:>9.1} {:>8}",
            p.phase.name(),
            p.total_ns as f64 / 1e6,
            p.coord_ns as f64 / wall * 100.0,
            p.p50_ns as f64 / 1e3,
            p.p95_ns as f64 / 1e3,
            p.samples
        );
    }
    println!(
        "  coverage {:.1}% (coordinator phase tiling over engine wall)",
        s.coverage * 100.0
    );
    if s.worker_stats.len() > 1 {
        for w in &s.worker_stats {
            println!(
                "  worker {:<3} busy {:>8.2} ms  utilization {:>5.1}%",
                w.worker,
                w.busy_ns as f64 / 1e6,
                w.utilization * 100.0
            );
        }
        let mean_util =
            s.worker_stats.iter().map(|w| w.utilization).sum::<f64>() / s.worker_stats.len() as f64;
        println!(
            "  utilization mean {:.1}%, imbalance {:.2}x (max/mean busy)",
            mean_util * 100.0,
            s.imbalance
        );
    }
    if s.dropped_samples > 0 {
        println!(
            "  note: {} samples evicted from the quantile window (totals stay exact)",
            s.dropped_samples
        );
    }
}

fn cmd_profile(args: &[String], opts: &obs::cli::ReportOptions) -> Result<(), String> {
    let usage = "profile [--n <vertices>] [--packets <p>] [--seed <s>] [--threads <t>] \
                 [--trace-out <path>] [--report <path>]";
    let mut n: usize = 256;
    let mut packets: usize = 2048;
    let mut seed: u64 = 42;
    let mut trace_out: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--n" => {
                let v = it.next().ok_or("--n needs a vertex count")?;
                n = v.parse().map_err(|_| format!("bad vertex count '{v}'"))?;
            }
            "--packets" => {
                let v = it.next().ok_or("--packets needs a count")?;
                packets = v.parse().map_err(|_| format!("bad packet count '{v}'"))?;
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                seed = v.parse().map_err(|_| format!("bad seed '{v}'"))?;
            }
            "--trace-out" => {
                trace_out = Some(it.next().ok_or("--trace-out needs a path")?.clone());
            }
            _ => return Err(usage.into()),
        }
    }
    if n < 2 {
        return Err("--n needs at least 2 vertices".into());
    }
    if packets == 0 {
        return Err("--packets needs at least 1 packet".into());
    }
    let threads = opts.resolved_threads();

    // A self-contained engine-heavy workload: a seeded batch of packets
    // store-and-forwarded through a k = 2 scheme. The builds never enter
    // the engine round loop (they charge the cost ledger directly), so a
    // batch send is the representative thing to attribute.
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let g = generators::erdos_renyi_connected(n, 4.0 / n as f64, 1..=100, &mut rng);
    let built = routing::build(&g, &BuildParams::new(2), &mut rng);
    let net = congest::Network::new(g);
    let nv = net.graph().num_vertices() as u32;
    let pairs: Vec<(VertexId, VertexId)> = (0..packets)
        .map(|_| {
            let a = rng.gen_range(0..nv);
            let mut b = rng.gen_range(0..nv);
            while b == a {
                b = rng.gen_range(0..nv);
            }
            (VertexId(a), VertexId(b))
        })
        .collect();
    println!(
        "profiling a {packets}-packet batch on er n = {n} (k = 2 scheme, seed {seed}), \
         {threads} engine thread{}",
        if threads == 1 { "" } else { "s" }
    );

    // Overhead baseline: the same parallel run with the profiler off.
    let baseline = packet::send_many_with(&net, &built.scheme, &pairs, threads);
    // The profiled parallel run, plus a profiled serial run to diff against.
    let profiled = packet::send_many_profiled(&net, &built.scheme, &pairs, threads);
    let serial = packet::send_many_profiled(&net, &built.scheme, &pairs, 1);
    let par_profile = profiled
        .stats
        .profile
        .as_deref()
        .ok_or("profiled run returned no profile")?;
    let ser_profile = serial
        .stats
        .profile
        .as_deref()
        .ok_or("profiled serial run returned no profile")?;

    // Profiling must never perturb the simulation itself.
    if !profiled.stats.same_simulation(&baseline.stats)
        || !serial.stats.same_simulation(&baseline.stats)
    {
        return Err("profiler changed simulated results — this is a bug".into());
    }
    let base_ns = baseline.stats.wall_ns.max(1);
    let overhead = (profiled.stats.wall_ns as f64 - base_ns as f64) / base_ns as f64 * 100.0;
    println!(
        "baseline (profiler off): {:.2} ms; profiled: {:.2} ms ({overhead:+.1}% overhead)",
        baseline.stats.wall_ns as f64 / 1e6,
        profiled.stats.wall_ns as f64 / 1e6
    );
    println!();

    let par = par_profile.summary();
    let ser = ser_profile.summary();
    print_profile(if threads > 1 { "parallel" } else { "profiled" }, &par);
    if threads > 1 {
        println!();
        print_profile("serial", &ser);
        println!();
        // Where did the wall go? Diff each phase's share of the engine wall
        // between the two runs: compute shrinking while dispatch/merge/idle
        // grow is the signature of coordination overhead eating the speedup.
        println!("serial -> parallel attribution shift (coordinator % of engine wall):");
        let share = |s: &obs::profile::ProfileSummary, ph: obs::profile::Phase| {
            s.phases
                .iter()
                .find(|p| p.phase == ph)
                .map_or(0.0, |p| p.coord_ns as f64 / s.engine_wall_ns.max(1) as f64)
        };
        for ph in obs::profile::Phase::ALL {
            let (a, b) = (share(&ser, ph), share(&par, ph));
            if a == 0.0 && b == 0.0 {
                continue;
            }
            println!(
                "  {:<10} {:>5.1}% -> {:>5.1}% ({:+.1} pts)",
                ph.name(),
                a * 100.0,
                b * 100.0,
                (b - a) * 100.0
            );
        }
        println!(
            "speedup: serial {:.2} ms / parallel {:.2} ms = {:.2}x",
            serial.stats.wall_ns as f64 / 1e6,
            profiled.stats.wall_ns as f64 / 1e6,
            serial.stats.wall_ns as f64 / profiled.stats.wall_ns.max(1) as f64
        );
    }

    if let Some(path) = &trace_out {
        std::fs::write(path, par_profile.chrome_trace())
            .map_err(|e| format!("writing trace {path}: {e}"))?;
        println!(
            "chrome trace written to {path} ({} events) — load in Perfetto or chrome://tracing",
            par_profile.sample_count()
        );
    }
    if let Some(path) = &opts.report {
        let mut rec = obs::Recorder::when(true);
        rec.enable_profiling();
        let span = rec.begin("drt/profile");
        rec.charge(&obs::Counters {
            rounds: profiled.stats.rounds,
            messages: profiled.stats.messages,
            words: profiled.stats.words,
            broadcasts: 0,
        });
        rec.end(span);
        rec.absorb_profile(par_profile);
        rec.write_report(
            path,
            "drt-profile",
            &[
                ("n", Value::from(n)),
                ("packets", Value::from(packets)),
                ("threads", Value::from(threads)),
            ],
        )
        .map_err(|e| format!("writing report {}: {e}", path.display()))?;
        println!("report written to {}", path.display());
    }
    Ok(())
}

fn cmd_stretch(args: &[String]) -> Result<(), String> {
    let [graph_path, scheme_path, rest @ ..] = args else {
        return Err("stretch <graph-file> <scheme-file> [num-sources]".into());
    };
    let g = load_graph(graph_path)?;
    let scheme = load_scheme(scheme_path)?;
    let sources: usize = rest
        .first()
        .map(|s| s.parse().map_err(|_| format!("bad source count '{s}'")))
        .transpose()?
        .unwrap_or(8);
    let step = (g.num_vertices() / sources.max(1)).max(1);
    let srcs: Vec<VertexId> = g.vertices().step_by(step).collect();
    let stats = router::measure_stretch(&g, &scheme, &srcs, router::Selection::SourceOptimal);
    println!("stretch over {} pairs:", stats.pairs);
    println!(
        "  mean {:.4}  p50 {:.3}  p95 {:.3}  p99 {:.3}  max {:.3}",
        stats.mean, stats.p50, stats.p95, stats.p99, stats.max
    );
    println!("  mean hops {:.1}", stats.mean_hops);
    Ok(())
}

fn cmd_traffic(args: &[String], opts: &obs::cli::ReportOptions) -> Result<(), String> {
    let usage = "traffic <graph-file> <scheme-file> [--workload <uniform|gravity|hotspot|worst>] \
                 [--rate <r[,r...]>] [--rounds <n>] [--queue-cap <c>] \
                 [--policy <tail-drop|oldest-drop>] [--arrival <fixed|bernoulli>] [--seed <s>] \
                 [--report <path>] [--threads <t>]";
    let mut positional = Vec::new();
    let mut workload = traffic::WorkloadKind::Uniform;
    let mut rates: Vec<f64> = vec![0.5, 1.0, 2.0, 4.0];
    let mut config = traffic::ScenarioConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workload" => {
                let v = it.next().ok_or("--workload needs a value")?;
                workload = traffic::WorkloadKind::parse(v).ok_or_else(|| {
                    format!("unknown workload '{v}' (uniform|gravity|hotspot|worst)")
                })?;
            }
            "--rate" => {
                let v = it.next().ok_or("--rate needs a value")?;
                rates = v
                    .split(',')
                    .map(|tok| {
                        tok.trim()
                            .parse::<f64>()
                            .map_err(|_| format!("bad rate '{tok}'"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--rounds" => {
                let v = it.next().ok_or("--rounds needs a value")?;
                config.inject_rounds = v.parse().map_err(|_| format!("bad round count '{v}'"))?;
            }
            "--queue-cap" => {
                let v = it.next().ok_or("--queue-cap needs a value")?;
                config.queue_cap = v.parse().map_err(|_| format!("bad queue capacity '{v}'"))?;
            }
            "--policy" => {
                let v = it.next().ok_or("--policy needs a value")?;
                config.policy = traffic::DropPolicy::parse(v)
                    .ok_or_else(|| format!("unknown drop policy '{v}' (tail-drop|oldest-drop)"))?;
            }
            "--arrival" => {
                let v = it.next().ok_or("--arrival needs a value")?;
                config.arrival = traffic::ArrivalKind::parse(v)
                    .ok_or_else(|| format!("unknown arrival process '{v}' (fixed|bernoulli)"))?;
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                config.seed = v.parse().map_err(|_| format!("bad seed '{v}'"))?;
            }
            other => positional.push(other.to_string()),
        }
    }
    if rates.is_empty() {
        return Err("--rate needs at least one rate".into());
    }
    let [graph_path, scheme_path] = positional.as_slice() else {
        return Err(usage.into());
    };
    let g = load_graph(graph_path)?;
    let scheme = load_scheme(scheme_path)?;
    config.threads = opts.resolved_threads();
    config.profile = opts.profile;
    let net = congest::Network::new(g);
    let scenario = traffic::TrafficScenario {
        network: &net,
        scheme: &scheme,
        workload,
        config,
    };
    let slo = traffic::Slo::default();
    let cfg = &scenario.config;
    println!(
        "steady-state {} traffic on {graph_path} (n = {}): {} arrivals over {} rounds, \
         queue cap {} ({}), seed {}, {} engine thread{}",
        workload.name(),
        net.graph().num_vertices(),
        cfg.arrival.name(),
        cfg.inject_rounds,
        cfg.queue_cap,
        cfg.policy.name(),
        cfg.seed,
        cfg.threads,
        if cfg.threads == 1 { "" } else { "s" }
    );
    println!(
        "SLO: p99 queue delay <= {} rounds, loss <= {:.1}%",
        slo.max_p99_queue_delay,
        slo.max_drop_fraction * 100.0
    );
    let report = scenario.sweep(&rates, &slo);
    println!(
        "{:>8} {:>9} {:>9} {:>8} {:>7} {:>10} {:>11} {:>8} {:>5}",
        "rate",
        "injected",
        "delivered",
        "dropped",
        "undlv",
        "p99 delay",
        "peak queue",
        "drained",
        "SLO"
    );
    for point in &report.points {
        let s = &point.summary;
        println!(
            "{:>8.2} {:>9} {:>9} {:>8} {:>7} {:>10} {:>11} {:>8} {:>5}",
            s.rate,
            s.injected,
            s.delivered,
            s.dropped(),
            s.undeliverable,
            s.queue_delay.p99,
            s.peak_queue_packets,
            if s.drained { "yes" } else { "no" },
            if point.sustainable(&slo) {
                "ok"
            } else {
                "MISS"
            }
        );
    }
    match report.knee {
        Some(knee) => {
            println!("saturation knee: {knee} packets/round (largest swept rate meeting the SLO)");
        }
        None => println!("saturation knee: none — no swept rate met the SLO"),
    }
    // With `--profile`, every rate's engine run carried the profiler; fold
    // the per-point profiles into one sweep-wide attribution.
    let mut sweep_profile: Option<obs::profile::EngineProfile> = None;
    if opts.profile {
        for point in &report.points {
            if let Some(p) = point.stats.profile.as_deref() {
                match &mut sweep_profile {
                    Some(acc) => acc.absorb(p),
                    None => sweep_profile = Some(p.clone()),
                }
            }
        }
        if let Some(p) = &sweep_profile {
            println!();
            print_profile("sweep", &p.summary());
        }
    }
    if let Some(path) = &opts.report {
        let mut rec = obs::Recorder::when(true);
        if let Some(p) = &sweep_profile {
            rec.enable_profiling();
            rec.absorb_profile(p);
        }
        let span = rec.begin("drt/traffic");
        for point in &report.points {
            rec.charge(&obs::Counters {
                rounds: point.stats.rounds,
                messages: point.stats.messages,
                words: point.stats.words,
                broadcasts: 0,
            });
        }
        rec.end(span);
        for (i, point) in report.points.iter().enumerate() {
            rec.add_record(point.summary.to_value(&[("sweep_index", Value::from(i))]));
            rec.add_record(
                point
                    .edge_load
                    .to_value(&[("rate", Value::from(point.summary.rate))]),
            );
        }
        rec.write_report(
            path,
            "drt-traffic",
            &[
                ("graph", Value::from(graph_path.as_str())),
                ("workload", Value::from(workload.name())),
                ("rates", Value::from(rates.len())),
                ("knee", report.knee.map_or(Value::Null, Value::from)),
            ],
        )
        .map_err(|e| format!("writing report {}: {e}", path.display()))?;
        println!("report written to {}", path.display());
    }
    Ok(())
}

fn cmd_churn(args: &[String], opts: &obs::cli::ReportOptions) -> Result<(), String> {
    let usage = "churn <graph-file> <scheme-file> \
                 [--process <random|random-edges|targeted|regional>] [--rate <f>] \
                 [--rounds <n>] [--revive <p>] [--workload <uniform|gravity|hotspot|worst>] \
                 [--traffic-rate <f>] [--burst-rounds <n>] [--queue-cap <c>] [--pairs <n>] \
                 [--seed <s>] [--slo <floor>] [--slo-round <r>] [--report <path>] [--json] \
                 [--threads <t>]";
    let prob = |flag: &str, v: &str| -> Result<f64, String> {
        let p: f64 = v.parse().map_err(|_| format!("bad {flag} '{v}'"))?;
        if (0.0..=1.0).contains(&p) {
            Ok(p)
        } else {
            Err(format!("{flag} must be in [0, 1], got {p}"))
        }
    };
    let mut positional = Vec::new();
    let mut config = churn::ChurnConfig::default();
    let mut slo_floor: Option<f64> = None;
    let mut slo_round: Option<u64> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--process" => {
                let v = it.next().ok_or("--process needs a value")?;
                config.process = churn::ProcessKind::parse(v).ok_or_else(|| {
                    format!("unknown process '{v}' (random|random-edges|targeted|regional)")
                })?;
            }
            "--rate" => {
                let v = it.next().ok_or("--rate needs a value")?;
                config.rate = prob("--rate", v)?;
            }
            "--rounds" => {
                let v = it.next().ok_or("--rounds needs a value")?;
                config.rounds = v.parse().map_err(|_| format!("bad round count '{v}'"))?;
            }
            "--revive" => {
                let v = it.next().ok_or("--revive needs a value")?;
                config.revive = prob("--revive", v)?;
            }
            "--workload" => {
                let v = it.next().ok_or("--workload needs a value")?;
                config.workload = traffic::WorkloadKind::parse(v).ok_or_else(|| {
                    format!("unknown workload '{v}' (uniform|gravity|hotspot|worst)")
                })?;
            }
            "--traffic-rate" => {
                let v = it.next().ok_or("--traffic-rate needs a value")?;
                config.traffic_rate = v.parse().map_err(|_| format!("bad traffic rate '{v}'"))?;
            }
            "--burst-rounds" => {
                let v = it.next().ok_or("--burst-rounds needs a value")?;
                config.burst_rounds = v.parse().map_err(|_| format!("bad burst rounds '{v}'"))?;
            }
            "--queue-cap" => {
                let v = it.next().ok_or("--queue-cap needs a value")?;
                config.queue_cap = v.parse().map_err(|_| format!("bad queue capacity '{v}'"))?;
            }
            "--pairs" => {
                let v = it.next().ok_or("--pairs needs a value")?;
                config.probe_pairs = v.parse().map_err(|_| format!("bad pair count '{v}'"))?;
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                config.seed = v.parse().map_err(|_| format!("bad seed '{v}'"))?;
            }
            "--slo" => {
                let v = it.next().ok_or("--slo needs a value")?;
                slo_floor = Some(prob("--slo", v)?);
            }
            "--slo-round" => {
                let v = it.next().ok_or("--slo-round needs a value")?;
                slo_round = Some(v.parse().map_err(|_| format!("bad SLO round '{v}'"))?);
            }
            other => positional.push(other.to_string()),
        }
    }
    let [graph_path, scheme_path] = positional.as_slice() else {
        return Err(usage.into());
    };
    if config.rounds == 0 {
        return Err("--rounds must be at least 1".into());
    }
    let g = load_graph(graph_path)?;
    let scheme = load_scheme(scheme_path)?;
    config.threads = opts.resolved_threads();
    let slo = slo_floor.map(|floor| churn::ChurnSlo {
        floor,
        through_round: slo_round.unwrap_or(config.rounds),
    });
    let scenario = churn::ChurnScenario {
        graph: &g,
        scheme: &scheme,
        config,
    };
    let run = scenario.run();
    let record = run.to_record(&g, scheme.k, slo.as_ref());

    if opts.json {
        println!("{}", record.to_value());
    } else {
        println!(
            "{} churn on {graph_path} (n = {}, m = {}): rate {:.3}/round for {} rounds, \
             revive {:.3}, {} workload at {:.2}/round, seed {}, {} engine thread{}",
            config.process.name(),
            g.num_vertices(),
            g.num_edges(),
            config.rate,
            config.rounds,
            config.revive,
            config.workload.name(),
            config.traffic_rate,
            config.seed,
            config.threads,
            if config.threads == 1 { "" } else { "s" }
        );
        println!(
            "probe: {} fixed pairs, {} connected intact (reachability denominator)",
            run.probe_pairs, run.baseline_connected
        );
        println!(
            "{:>5} {:>6} {:>6} {:>6} {:>6} {:>7} {:>8} {:>7} {:>8} {:>7} {:>6}",
            "round",
            "events",
            "deadV",
            "deadE",
            "blast",
            "reach%",
            "stretch",
            "burst",
            "delivrd",
            "stuck",
            "undlv"
        );
        for row in &run.rows {
            println!(
                "{:>5} {:>6} {:>6} {:>6} {:>6} {:>6.1}% {:>7.3}x {:>7} {:>8} {:>7} {:>6}",
                row.round,
                row.events,
                row.dead_vertices,
                row.dead_edges,
                row.blast_radius,
                row.reachability(run.baseline_connected) * 100.0,
                row.stretch_inflation,
                row.offered,
                row.flow_delivered,
                row.dropped_stuck,
                row.undeliverable
            );
        }
        let d = &record.degradation;
        println!(
            "degradation: reachability {:.1}% -> {:.1}%; knee {}; half-life {}",
            d.initial_reachability * 100.0,
            d.final_reachability * 100.0,
            match d.knee_round {
                Some(r) => format!("round {r} (-{:.1}%)", d.knee_drop * 100.0),
                None => "none".to_string(),
            },
            match d.half_life_round {
                Some(r) => format!("round {r}"),
                None => "not reached".to_string(),
            }
        );
    }
    if let Some(path) = &opts.report {
        let mut rec = obs::Recorder::when(true);
        let span = rec.begin("drt/churn");
        rec.charge(&obs::Counters {
            rounds: run.engine_rounds,
            messages: run.engine_messages,
            words: run.engine_words,
            broadcasts: 0,
        });
        rec.end(span);
        rec.add_record(record.to_value());
        rec.write_report(
            path,
            "drt-churn",
            &[
                ("graph", Value::from(graph_path.as_str())),
                ("scheme", Value::from(scheme_path.as_str())),
                ("process", Value::from(config.process.name())),
                ("churn_rounds", Value::from(config.rounds)),
            ],
        )
        .map_err(|e| format!("writing report {}: {e}", path.display()))?;
        if !opts.json {
            println!("report written to {}", path.display());
        }
    }
    if let Some(verdict) = &record.slo {
        match verdict.breach_round {
            Some(r) => {
                return Err(format!(
                    "SLO breached: reachability fell below {:.1}% at round {r} \
                     (declared floor through round {})",
                    verdict.floor * 100.0,
                    verdict.through_round
                ));
            }
            None => {
                if !opts.json {
                    println!(
                        "SLO ok: reachability stayed >= {:.1}% through round {}",
                        verdict.floor * 100.0,
                        verdict.through_round
                    );
                }
            }
        }
    }
    Ok(())
}

fn cmd_serve(args: &[String], opts: &obs::cli::ReportOptions) -> Result<(), String> {
    let mut positional = Vec::new();
    let mut scheme_flag: Option<String> = None;
    let mut cfg = serve::ServeConfig::default();
    let mut open_rates: Option<Vec<f64>> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scheme" => {
                scheme_flag = Some(it.next().ok_or("--scheme needs a file path")?.clone());
            }
            "--queries" => {
                let v = it.next().ok_or("--queries needs a count")?;
                cfg.queries = v.parse().map_err(|_| format!("bad query count '{v}'"))?;
            }
            "--batch" => {
                let v = it.next().ok_or("--batch needs a size")?;
                let b: usize = v.parse().map_err(|_| format!("bad batch size '{v}'"))?;
                if b == 0 {
                    return Err("--batch must be at least 1".into());
                }
                cfg.batch = b;
            }
            "--workload" => {
                let v = it.next().ok_or("--workload needs a name")?;
                cfg.workload = serve::ServeWorkload::parse(v).ok_or(format!(
                    "unknown workload '{v}' (uniform|hotspot|adversarial)"
                ))?;
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                cfg.seed = v.parse().map_err(|_| format!("bad seed '{v}'"))?;
            }
            "--check-rate" => {
                let v = it.next().ok_or("--check-rate needs a fraction")?;
                let r: f64 = v.parse().map_err(|_| format!("bad check rate '{v}'"))?;
                if !(0.0..=1.0).contains(&r) {
                    return Err(format!("--check-rate must be in [0, 1], got {r}"));
                }
                cfg.check_rate = r;
            }
            "--open" => {
                let v = it
                    .next()
                    .ok_or("--open needs a qps list (e.g. 1e5,5e5,1e6)")?;
                let rates: Result<Vec<f64>, String> = v
                    .split(',')
                    .map(|r| r.parse::<f64>().map_err(|_| format!("bad qps '{r}'")))
                    .collect();
                open_rates = Some(rates?);
            }
            other => positional.push(other.to_string()),
        }
    }
    let [graph_path] = positional.as_slice() else {
        return Err(
            "serve <graph-file> [--scheme <file>] [--queries <q>] [--batch <b>] \
             [--workload uniform|hotspot|adversarial] [--seed <s>] [--check-rate <f>] \
             [--open <qps,...>] [--threads <t>] [--report <path>] [--json]"
                .into(),
        );
    };
    let g = load_graph(graph_path)?;
    if g.num_vertices() < 2 {
        return Err("serving needs a graph with at least 2 vertices".into());
    }
    let scheme = resolve_scheme(&g, scheme_flag.as_deref(), None)?;
    cfg.threads = opts.resolved_threads();
    let scheme_name = scheme_flag.as_deref().unwrap_or("(built)").to_string();
    let snapshot = serve::Snapshot::share(g, scheme);
    let stream = serve::generate_stream(&snapshot, &cfg);
    let mut pool = serve::ServePool::start(snapshot.clone(), cfg.threads);

    let summaries: Vec<serve::KneePoint> = match &open_rates {
        None => {
            let summary = serve::run_closed(&mut pool, &stream, &cfg);
            vec![serve::KneePoint {
                offered: 0.0,
                summary,
            }]
        }
        Some(rates) => {
            let slo = serve::ServeSlo::default();
            let (points, knee) = serve::sweep_open(&mut pool, &stream, &cfg, rates, &slo);
            if !opts.json {
                print_serve_sweep(&points, knee, &slo);
            }
            points
        }
    };

    if opts.json {
        for (i, p) in summaries.iter().enumerate() {
            println!("{}", p.summary.to_value(&[("sweep", Value::from(i))]));
        }
    } else if open_rates.is_none() {
        print_serve_summary(&summaries[0].summary, graph_path, &scheme_name, &snapshot);
    }

    if let Some(path) = &opts.report {
        let mut rec = obs::Recorder::when(true);
        for (i, p) in summaries.iter().enumerate() {
            rec.add_record(p.summary.to_value(&[("sweep", Value::from(i))]));
        }
        rec.write_report(
            path,
            "drt-serve",
            &[
                ("graph", Value::from(graph_path.as_str())),
                ("scheme", Value::from(scheme_name.as_str())),
                ("n", Value::from(snapshot.graph.num_vertices())),
                ("k", Value::from(snapshot.scheme.k)),
            ],
        )
        .map_err(|e| format!("writing report {}: {e}", path.display()))?;
        if !opts.json {
            println!("report written to {}", path.display());
        }
    }

    let mismatches: u64 = summaries.iter().map(|p| p.summary.mismatches).sum();
    let errors: u64 = summaries.iter().map(|p| p.summary.errors).sum();
    if mismatches > 0 || errors > 0 {
        return Err(format!(
            "serving diverged from the central router: {mismatches} cross-check mismatch(es), \
             {errors} internal error(s)"
        ));
    }
    Ok(())
}

fn print_serve_summary(
    s: &obs::serve::ServeSummary,
    graph_path: &str,
    scheme_name: &str,
    snapshot: &serve::Snapshot,
) {
    println!(
        "served {} queries on {graph_path} (n = {}, k = {}, scheme {scheme_name}): \
         {} workload, {} loop, {} thread{}, batch {}",
        s.queries,
        snapshot.graph.num_vertices(),
        snapshot.scheme.k,
        s.workload,
        s.mode,
        s.threads,
        if s.threads == 1 { "" } else { "s" },
        s.batch
    );
    println!(
        "  mix          : {} route / {} distance / {} trace",
        s.route_queries, s.distance_queries, s.trace_queries
    );
    println!(
        "  outcomes     : {} answered, {} unreachable, {} errors",
        s.answered, s.unreachable, s.errors
    );
    println!(
        "  cross-checks : {} sampled (rate {:.2}), {} mismatches",
        s.checks, s.check_rate, s.mismatches
    );
    println!(
        "  throughput   : {:.3} Mqps ({} queries in {:.2} ms)",
        s.qps / 1e6,
        s.queries,
        s.wall_ns as f64 / 1e6
    );
    println!(
        "  latency ns   : p50 {}  p95 {}  p99 {}",
        s.p50_ns, s.p95_ns, s.p99_ns
    );
    println!(
        "  aggregates   : total weight {}, total hops {}, checksum {:#018x}",
        s.total_weight, s.total_hops, s.answer_checksum
    );
}

fn print_serve_sweep(points: &[serve::KneePoint], knee: Option<usize>, slo: &serve::ServeSlo) {
    println!(
        "open-loop sweep ({} rung{}, SLO: achieved >= {:.0}% of offered, p99 <= {:.2} ms):",
        points.len(),
        if points.len() == 1 { "" } else { "s" },
        slo.min_delivered * 100.0,
        slo.max_p99_ns as f64 / 1e6
    );
    println!(
        "{:>12} {:>12} {:>9} {:>9} {:>9} {:>9}  verdict",
        "offered", "achieved", "del%", "p50 ns", "p99 ns", "misses"
    );
    for p in points {
        let s = &p.summary;
        let delivered = if p.offered > 0.0 {
            s.qps / p.offered
        } else {
            1.0
        };
        let ok = delivered >= slo.min_delivered && s.p99_ns <= slo.max_p99_ns;
        println!(
            "{:>12.0} {:>12.0} {:>8.1}% {:>9} {:>9} {:>9}  {}",
            p.offered,
            s.qps,
            delivered * 100.0,
            s.p50_ns,
            s.p99_ns,
            s.mismatches,
            if ok { "ok" } else { "over the knee" }
        );
    }
    match knee {
        Some(i) => println!(
            "knee: {:.0} offered qps (achieved {:.0})",
            points[i].offered, points[i].summary.qps
        ),
        None => println!("knee: none — every rung violated the SLO"),
    }
}
