//! CDN latency-map scenario: the same compact structure answers *distance
//! queries* (a Thorup–Zwick oracle, stretch ≤ 2k−1) and *routes packets*
//! (stretch ≤ 4k−3, or handshake-improved), on an expander overlay like a
//! CDN's peering mesh.
//!
//! Run with: `cargo run --release --example latency_oracle`

use graphs::{generators, shortest_paths, VertexId};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use routing::oracle::DistanceOracle;
use routing::{build, packet, router, BuildParams};

fn main() {
    let n = 500;
    let k = 3;
    let mut rng = ChaCha8Rng::seed_from_u64(314);
    // Overlay mesh: near-6-regular expander, weights = RTT in ms.
    let g = generators::random_regular_expander(n, 6, 5..=120, &mut rng);
    println!(
        "CDN overlay: n = {n}, m = {}, D = {:?}",
        g.num_edges(),
        graphs::properties::hop_diameter(&g)
    );

    let built = build(&g, &BuildParams::new(k), &mut rng);
    let oracle = DistanceOracle::new(&built.scheme);
    println!(
        "scheme built: tables ≤ {} words, labels ≤ {} words, oracle adds ≤ {} words\n",
        built.report.max_table_words,
        built.report.max_label_words,
        2 * k
    );

    // Compare the three access paths on sampled pairs.
    let pairs: Vec<(VertexId, VertexId)> = (0..12)
        .map(|i| {
            (
                VertexId(i * 41 % n as u32),
                VertexId((i * 97 + 13) % n as u32),
            )
        })
        .filter(|(a, b)| a != b)
        .collect();
    println!(
        "{:>6} {:>6} {:>7} {:>8} {:>8} {:>10}",
        "src", "dst", "exact", "oracle", "routed", "handshake"
    );
    let mut worst_oracle = 1.0f64;
    let mut worst_route = 1.0f64;
    for &(s, t) in &pairs {
        let exact = shortest_paths::dijkstra(&g, s)[t.index()];
        let est = oracle.query(s, t);
        let routed = router::route(&g, &built.scheme, s, t).expect("connected");
        let shake = router::route_with(&g, &built.scheme, s, t, router::Selection::Handshake)
            .expect("connected");
        worst_oracle = worst_oracle.max(est as f64 / exact as f64);
        worst_route = worst_route.max(routed.weight as f64 / exact as f64);
        println!(
            "{:>6} {:>6} {:>7} {:>8} {:>8} {:>10}",
            s.to_string(),
            t.to_string(),
            exact,
            est,
            routed.weight,
            shake.weight
        );
    }
    println!(
        "\nworst sampled stretch: oracle {:.2} (bound 2k-1 = {}), routing {:.2} (bound 4k-3 = {})",
        worst_oracle,
        2 * k - 1,
        worst_route,
        4 * k - 3
    );

    // One packet through the real CONGEST engine: one round per hop, and the
    // packet itself is O(log n) words.
    let net = congest::Network::new(g);
    let report = packet::send(&net, &built.scheme, pairs[0].0, pairs[0].1);
    let (rounds, _) = report.outcome.delivery().expect("expander is connected");
    println!(
        "\npacket simulation {} -> {}: delivered in {} rounds, packet = {} words, zero congestion violations: {}",
        pairs[0].0,
        pairs[0].1,
        rounds,
        report.packet_words,
        report.stats.congestion_violations == 0
    );
}
