//! Datacenter-fabric scenario: many overlapping trees at once.
//!
//! A torus fabric runs one aggregation tree per service (rooted at that
//! service's coordinator), and every switch participates in all of them —
//! exactly the multi-tree setting of Theorem 2's second assertion. With
//! `q = 1/√(sn)` and random start offsets, all trees are built in parallel
//! in `Õ(√(sn) + D)` rounds with `O(s log n)` memory, instead of the naive
//! `Õ(s·√n + D)`.
//!
//! Run with: `cargo run --release --example datacenter_fabric`

use congest::Network;
use graphs::{generators, tree, RootedTree, VertexId};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use tree_routing::{distributed, multi, router, tz};

fn main() {
    let (rows, cols) = (24, 24);
    let n = rows * cols;
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let g = generators::torus(rows, cols, 1..=10, &mut rng);
    let net = Network::new(g.clone());

    // One aggregation tree per service coordinator.
    let coordinators: [u32; 6] = [0, 97, 215, 333, 451, 569];
    let trees: Vec<RootedTree> = coordinators
        .iter()
        .map(|&c| tree::shortest_path_tree(&g, VertexId(c)))
        .collect();
    let s = trees.len();
    println!("torus fabric {rows}x{cols} (n = {n}), {s} services, every switch in all {s} trees");

    // Parallel construction (Theorem 2, second assertion).
    let par = multi::build_many(&net, &trees, s, &mut rng);
    println!("\nparallel construction (q = 1/sqrt(s*n), random offsets):");
    println!("  rounds            : {}", par.ledger.rounds());
    println!(
        "  memory per switch : {} words (O(s log n))",
        par.memory.max_peak()
    );
    println!("  observed overlap  : {}", par.observed_overlap);

    // Naive alternative: build each tree independently, one after another.
    let mut seq_rounds = 0;
    for t in &trees {
        let out = distributed::build_default(&net, t, &mut rng);
        seq_rounds += out.ledger.rounds();
    }
    println!("\nsequential alternative: {seq_rounds} rounds");
    println!(
        "parallel speedup: {:.1}x",
        seq_rounds as f64 / par.ledger.rounds() as f64
    );

    // Every service's scheme is exact; verify against the centralized build
    // and route a flow on each tree.
    for (t, scheme) in trees.iter().zip(&par.schemes) {
        let want = tz::build(t);
        for v in t.vertices() {
            assert_eq!(scheme.table(v), want.table(v));
            assert_eq!(scheme.label(v), want.label(v));
        }
        let leaf = VertexId((n - 1) as u32);
        let trace = router::route(t, scheme, leaf, t.root()).expect("spanning tree");
        assert_eq!(Some(trace.weight), t.tree_distance(leaf, t.root()));
    }
    println!("\nall {s} schemes verified exact (identical to the centralized construction)");
}
