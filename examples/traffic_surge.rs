//! Traffic surge scenario: a hotspot workload on an ISP-like backbone —
//! every flow converges on the best-connected router — swept across offered
//! rates to find the saturation knee, then a look at which links melt first.
//!
//! Run with: `cargo run --release --example traffic_surge`

use congest::Network;
use graphs::{generators, properties};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use routing::{build, BuildParams};
use traffic::{ScenarioConfig, Slo, TrafficScenario, WorkloadKind};

fn main() {
    let n = 400;
    let k = 3;
    let mut rng = ChaCha8Rng::seed_from_u64(2024);
    // Edge weights model link latencies in 1..=100 ms.
    let g = generators::preferential_attachment(n, 3, 1..=100, &mut rng);
    let (dmin, dmax, dmean) = properties::degree_stats(&g).expect("non-empty");
    println!(
        "ISP-like backbone: n = {n}, m = {}, degrees {dmin}..{dmax} (mean {dmean:.1})",
        g.num_edges()
    );
    let built = build(&g, &BuildParams::new(k), &mut rng);
    let net = Network::new(g);

    let scenario = TrafficScenario {
        network: &net,
        scheme: &built.scheme,
        workload: WorkloadKind::Hotspot,
        config: ScenarioConfig {
            inject_rounds: 256,
            queue_cap: 8,
            ..ScenarioConfig::default()
        },
    };
    let rates = [0.5, 1.0, 2.0, 4.0, 8.0, 16.0];
    let slo = Slo::default();
    println!(
        "\nhotspot surge, {} inject rounds, queue cap {} ({}), SLO: p99 queue delay <= {} \
         rounds, loss <= {:.1}%",
        scenario.config.inject_rounds,
        scenario.config.queue_cap,
        scenario.config.policy.name(),
        slo.max_p99_queue_delay,
        slo.max_drop_fraction * 100.0
    );
    println!(
        "\n{:>6} {:>9} {:>9} {:>8} {:>10} {:>11} {:>10}",
        "rate", "injected", "delivered", "dropped", "p99 delay", "peak queue", "meets SLO"
    );
    let report = scenario.sweep(&rates, &slo);
    for (rate, point) in rates.iter().zip(&report.points) {
        let s = &point.summary;
        println!(
            "{:>6.1} {:>9} {:>9} {:>8} {:>10} {:>11} {:>10}",
            rate,
            s.injected,
            s.delivered,
            s.dropped(),
            s.queue_delay.p99,
            s.peak_queue_packets,
            if point.sustainable(&slo) { "yes" } else { "no" }
        );
    }
    match report.knee {
        Some(knee) => println!("\nsaturation knee: {knee:.1} packets/round sustained"),
        None => println!("\nno swept rate met the SLO"),
    }

    // The links that melt first, at the highest swept rate.
    let sink = traffic::Workload::prepare(
        WorkloadKind::Hotspot,
        net.graph(),
        &built.scheme,
        scenario.config.seed,
    )
    .sink();
    let hottest = report.points.last().expect("non-empty sweep");
    println!(
        "\ntop 5 loaded links at rate {:.1} (sink = vertex {}):",
        rates[rates.len() - 1],
        sink.0
    );
    for ((u, v), load) in hottest.edge_load.hottest(5) {
        println!(
            "  {u:>4} -- {v:<4}  {:>8} packets  {:>10} words",
            load.packets, load.words
        );
    }
}
