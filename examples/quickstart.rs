//! Quickstart: build the paper's routing scheme on a random network, route a
//! few messages, and print the headline numbers of Theorem 3.
//!
//! Run with: `cargo run --release --example quickstart`

use graphs::{generators, shortest_paths, VertexId};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use routing::{build, router, BuildParams};

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let n = 400;
    let k = 3;
    let g = generators::erdos_renyi_connected(n, 4.0 / n as f64, 1..=50, &mut rng);
    println!(
        "network: n = {}, m = {}, D = {:?}",
        g.num_vertices(),
        g.num_edges(),
        graphs::properties::hop_diameter(&g)
    );

    // Preprocessing phase: the distributed low-memory construction.
    let built = build(&g, &BuildParams::new(k), &mut rng);
    let r = &built.report;
    println!("\npreprocessing (k = {k}):");
    println!("  simulated CONGEST rounds : {}", r.rounds);
    println!("  peak memory per vertex   : {} words", r.memory.max_peak());
    println!("  max table size           : {} words", r.max_table_words);
    println!("  max label size           : {} words", r.max_label_words);
    println!("  cluster memberships s    : {}", r.max_membership);
    println!(
        "  hopset edges / arboricity: {} / {}",
        r.hopset_edges, r.hopset_arboricity
    );
    println!("  empirical hop bound beta : {}", r.beta_used);

    // Routing phase: send a few messages and report their stretch.
    println!("\nrouting phase:");
    let pairs = [(0u32, 399u32), (10, 200), (7, 311), (123, 45)];
    for (s, t) in pairs {
        let (s, t) = (VertexId(s), VertexId(t));
        let exact = shortest_paths::dijkstra(&g, s)[t.index()];
        let trace = router::route(&g, &built.scheme, s, t).expect("connected");
        println!(
            "  {s} -> {t}: routed {} vs shortest {} (stretch {:.3}, {} hops, via tree of {})",
            trace.weight,
            exact,
            trace.weight as f64 / exact as f64,
            trace.hops(),
            trace.tree_root,
        );
    }

    // Aggregate stretch over a sample of sources.
    let srcs: Vec<VertexId> = (0..n as u32).step_by(40).map(VertexId).collect();
    let stats = router::measure_stretch(&g, &built.scheme, &srcs, router::Selection::SourceOptimal);
    println!(
        "\nstretch over {} pairs: mean {:.3}, max {:.3} (bound 4k-5 = {})",
        stats.pairs,
        stats.mean,
        stats.max,
        4 * k - 5
    );
}
