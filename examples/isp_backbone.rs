//! ISP backbone scenario: compact routing on a preferential-attachment
//! topology (heavy-tailed degrees, small diameter — the shape of
//! router-level internet graphs), comparing the paper's scheme against the
//! prior distributed construction and the centralized reference.
//!
//! This is Table 1 in miniature: same network, three schemes, the columns
//! that matter (table/label size, stretch, memory, rounds).
//!
//! Run with: `cargo run --release --example isp_backbone`

use graphs::{generators, properties, VertexId};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use routing::{build, router, BuildParams, Mode};

fn main() {
    let n = 600;
    let k = 3;
    let mut rng = ChaCha8Rng::seed_from_u64(2024);
    // Edge weights model link latencies in 1..=100 ms.
    let g = generators::preferential_attachment(n, 3, 1..=100, &mut rng);
    let (dmin, dmax, dmean) = properties::degree_stats(&g).expect("non-empty");
    println!(
        "ISP-like backbone: n = {n}, m = {}, degrees {dmin}..{dmax} (mean {dmean:.1}), D = {:?}",
        g.num_edges(),
        properties::hop_diameter(&g)
    );
    println!(
        "\n{:<28} {:>8} {:>8} {:>8} {:>9} {:>10}",
        "scheme", "table", "label", "memory", "rounds", "stretch"
    );

    let srcs: Vec<VertexId> = (0..n as u32).step_by(60).map(VertexId).collect();
    for (name, mode) in [
        ("Thorup-Zwick (centralized)", Mode::Centralized),
        ("prior distributed [EN16b]", Mode::DistributedPrior),
        ("this paper (low memory)", Mode::DistributedLowMemory),
    ] {
        let mut rng = ChaCha8Rng::seed_from_u64(7); // same hierarchy per mode
        let built = build(&g, &BuildParams::new(k).with_mode(mode), &mut rng);
        let stats =
            router::measure_stretch(&g, &built.scheme, &srcs, router::Selection::SourceOptimal);
        println!(
            "{:<28} {:>8} {:>8} {:>8} {:>9} {:>10.3}",
            name,
            built.report.max_table_words,
            built.report.max_label_words,
            built.report.memory.max_peak(),
            built.report.rounds,
            stats.max,
        );
    }
    println!(
        "\n(table/label/memory in words; stretch is the max over {} routed pairs;",
        srcs.len() * (n - 1)
    );
    println!(" the centralized row reports 0 rounds — it is the reference, not a protocol)");
}
