//! Sensor-mesh scenario: exact tree routing on a random geometric network —
//! the regime where the paper's `Õ(√n + D)` tree construction shines,
//! because geometric meshes have large hop diameter and deep spanning trees.
//!
//! Builds a data-collection tree (shortest-path tree of a sink), constructs
//! the Theorem-2 scheme distributively, verifies zero stretch against the
//! prior construction, and contrasts their memory footprints.
//!
//! Run with: `cargo run --release --example sensor_mesh`

use congest::Network;
use graphs::{generators, properties, tree, VertexId};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use tree_routing::{baseline, distributed, router};

fn main() {
    let n = 900;
    let mut rng = ChaCha8Rng::seed_from_u64(77);
    // Unit-square mesh; weights model link energy costs.
    let g = generators::random_geometric_connected(n, 0.06, 1..=30, &mut rng);
    let d = properties::hop_diameter(&g).expect("connected");
    let sink = VertexId(0);
    let t = tree::shortest_path_tree(&g, sink);
    println!(
        "sensor mesh: n = {n}, m = {}, hop diameter D = {d}, tree height = {}",
        g.num_edges(),
        t.height()
    );

    let net = Network::new(g.clone());

    // The paper's low-memory construction (Theorem 2).
    let ours = distributed::build_default(&net, &t, &mut rng);
    distributed::assert_matches_centralized(&t, &ours);
    println!("\nthis paper (Theorem 2):");
    println!("  rounds           : {}", ours.ledger.rounds());
    println!(
        "  memory per vertex: {} words (O(log n))",
        ours.memory.max_peak()
    );
    println!(
        "  table / label    : {} / {} words",
        ours.scheme.max_table_words(),
        ours.scheme.max_label_words()
    );
    println!(
        "  sampled |U(T)|   : {}, local depth b = {}",
        ours.virtual_count, ours.max_local_depth
    );

    // The prior construction ([LP15]/[EN16b]-style).
    let prior = baseline::build(&net, &t, None, &mut rng);
    println!("\nprior approach:");
    println!("  rounds           : {}", prior.ledger.rounds());
    println!(
        "  memory per vertex: {} words (Ω(√n) at virtual vertices)",
        prior.memory.max_peak()
    );
    println!(
        "  table / label    : {} / {} words",
        prior.scheme.max_table_words(),
        prior.scheme.max_label_words()
    );

    // Route sensor readings from a few motes to the sink and back.
    println!("\nrouting checks (exact by construction):");
    for &m in &[n as u32 - 1, 450, 123] {
        let mote = VertexId(m);
        let up = router::route(&t, &ours.scheme, mote, sink).expect("in tree");
        let down = baseline::route(&t, &prior.scheme, sink, mote).expect("in tree");
        let want = t.tree_distance(mote, sink).unwrap();
        assert_eq!(up.weight, want);
        assert_eq!(down.weight, want);
        println!(
            "  {mote} <-> sink: cost {} over {} hops (both schemes exact)",
            up.weight,
            up.hops()
        );
    }
    println!(
        "\nmemory advantage: {}x smaller peak than the prior construction",
        prior.memory.max_peak() / ours.memory.max_peak().max(1)
    );
}
