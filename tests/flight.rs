//! End-to-end flight-recorder invariants, across `obs::flight`,
//! `core::packet`, and the congestion engine:
//!
//! * a traced send is observationally identical to its untraced twin —
//!   same outcome, rounds, words, and memory peaks;
//! * a delivered trace reconstructs the journey exactly: hop count equals
//!   the delivery round (minus queueing), accumulated weight equals the
//!   central router's answer, and the ascent/descent decomposition
//!   partitions both;
//! * the edge/vertex heatmaps account for every word the engine delivered;
//! * the whole record set survives a JSONL write → read → parse round trip.

use graphs::{GraphBuilder, VertexId};
use obs::flight::{EdgeLoadMap, PacketTrace, VertexLoadMap};
use obs::json::Value;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use routing::{build, packet, router, BuildParams};

fn setup(n: usize, seed: u64) -> (congest::Network, routing::RoutingScheme) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let g = graphs::generators::erdos_renyi_connected(n, 3.5 / n as f64, 1..=9, &mut rng);
    let built = build(&g, &BuildParams::new(3), &mut rng);
    (congest::Network::new(g), built.scheme)
}

#[test]
fn traced_send_agrees_with_untraced_and_central() {
    let (net, scheme) = setup(120, 41);
    for (s, t) in [(0u32, 119u32), (17, 64), (99, 3), (5, 5)] {
        let plain = packet::send(&net, &scheme, VertexId(s), VertexId(t));
        let flight = packet::send_traced(&net, &scheme, VertexId(s), VertexId(t));
        assert_eq!(plain.outcome, flight.report.outcome);
        assert_eq!(plain.stats.rounds, flight.report.stats.rounds);
        assert_eq!(plain.stats.words, flight.report.stats.words);
        assert_eq!(
            plain.stats.memory.max_peak(),
            flight.report.stats.memory.max_peak()
        );
        let (rounds, weight) = plain.outcome.delivery().expect("connected");
        let trace = flight.trace.expect("delivered packets are traced");
        assert_eq!(trace.hop_count() as u64, rounds);
        assert_eq!(trace.total_weight(), weight);
        let central = router::route(net.graph(), &scheme, VertexId(s), VertexId(t)).unwrap();
        assert_eq!(trace.total_weight(), central.weight);
        assert_eq!(trace.hop_count(), central.hops());
        // The recorded ports really are the edges of the walked path.
        for (hop, pair) in trace.hops.iter().zip(central.path.windows(2)) {
            assert_eq!(hop.vertex, pair[0].0);
            assert_eq!(hop.next, pair[1].0);
            assert_eq!(net.neighbor_at(pair[0], hop.port), pair[1]);
        }
    }
}

#[test]
fn batch_heatmaps_account_for_every_engine_word() {
    let (net, scheme) = setup(90, 42);
    let pairs: Vec<(VertexId, VertexId)> = (0..70u32)
        .map(|i| (VertexId(i % 90), VertexId((i * 31 + 17) % 90)))
        .filter(|(a, b)| a != b)
        .collect();
    let flight = packet::send_many_traced(&net, &scheme, &pairs);
    assert_eq!(flight.report.dropped, 0);
    assert_eq!(flight.report.undeliverable, 0);
    // Every word the engine's ledger saw is attributed to exactly one edge
    // and one forwarding vertex.
    assert_eq!(flight.edge_load.total_words(), flight.report.stats.words);
    assert_eq!(flight.vertex_load.total_words(), flight.report.stats.words);
    assert_eq!(
        flight.edge_load.total_packets(),
        flight.report.stats.messages
    );
    // And per packet, delivery time = hops + queueing.
    for (id, trace) in flight.traces.iter().enumerate() {
        let trace = trace.as_ref().expect("all pairs routable");
        let (round, weight) = flight.report.delivery(id).expect("delivered");
        assert_eq!(round, trace.hop_count() as u64 + trace.queueing_delay());
        let d = trace.decomposition();
        assert_eq!(d.ascent_weight + d.descent_weight, weight);
    }
}

#[test]
fn flight_records_survive_a_report_round_trip() {
    let (net, scheme) = setup(60, 43);
    let pairs: Vec<(VertexId, VertexId)> = (1..30u32).map(|i| (VertexId(i), VertexId(0))).collect();
    let flight = packet::send_many_traced(&net, &scheme, &pairs);

    let mut rec = obs::Recorder::new();
    let span = rec.begin("flight-test/batch");
    rec.charge(&obs::Counters {
        rounds: flight.report.stats.rounds,
        messages: flight.report.stats.messages,
        words: flight.report.stats.words,
        broadcasts: 0,
    });
    rec.end(span);
    rec.add_record(flight.edge_load.to_value(&[]));
    rec.add_record(flight.vertex_load.to_value(&[]));
    for trace in flight.traces.iter().flatten().take(3) {
        rec.add_record(trace.to_value());
    }

    let path = std::env::temp_dir().join(format!("drt-flight-test-{}.jsonl", std::process::id()));
    rec.write_report(&path, "flight-test", &[])
        .expect("written");
    let records = obs::read_report(&path).expect("parses");
    std::fs::remove_file(&path).ok();

    let of_type = |ty: &str| {
        records
            .iter()
            .filter(|r| r.get("type").and_then(Value::as_str) == Some(ty))
            .collect::<Vec<_>>()
    };
    let edge_records = of_type("edge_load");
    assert_eq!(edge_records.len(), 1);
    let edges = EdgeLoadMap::from_value(edge_records[0]).expect("valid edge_load");
    assert_eq!(edges.total_words(), flight.edge_load.total_words());
    let vertex_records = of_type("vertex_load");
    assert_eq!(vertex_records.len(), 1);
    let verts = VertexLoadMap::from_value(vertex_records[0]).expect("valid vertex_load");
    assert_eq!(verts.total_words(), flight.vertex_load.total_words());
    for (i, r) in of_type("packet_trace").iter().enumerate() {
        let parsed = PacketTrace::from_value(r).expect("valid packet_trace");
        assert_eq!(&parsed, flight.traces[i].as_ref().unwrap());
    }
    // The summary counts the extra records.
    let summary = records.last().unwrap();
    assert_eq!(
        summary.get("records").and_then(Value::as_u64),
        Some(2 + 3),
        "summary counts the flight records"
    );
}

/// A connected random weighted graph, as in `tests/properties.rs`.
fn arb_graph(max_n: usize) -> impl Strategy<Value = graphs::Graph> {
    (4..max_n)
        .prop_flat_map(|n| {
            let tree_parents = proptest::collection::vec(0..u32::MAX, n - 1);
            let tree_weights = proptest::collection::vec(1u64..50, n - 1);
            let extras = proptest::collection::vec((0..u32::MAX, 0..u32::MAX, 1u64..50), 0..n);
            (Just(n), tree_parents, tree_weights, extras)
        })
        .prop_map(|(n, parents, weights, extras)| {
            let mut b = GraphBuilder::new(n);
            for v in 1..n {
                let p = (parents[v - 1] as usize) % v;
                b.add_edge(VertexId(p as u32), VertexId(v as u32), weights[v - 1]);
            }
            for (x, y, w) in extras {
                let u = (x as usize) % n;
                let v = (y as usize) % n;
                if u != v && !b.has_edge(VertexId(u as u32), VertexId(v as u32)) {
                    b.add_edge(VertexId(u as u32), VertexId(v as u32), w);
                }
            }
            b.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn traced_batches_reconstruct_deliveries_on_random_graphs(
        g in arb_graph(36),
        pair_sels in proptest::collection::vec((0..u32::MAX, 0..u32::MAX), 1..24),
        seed in 0..u64::MAX,
    ) {
        let n = g.num_vertices() as u32;
        let pairs: Vec<(VertexId, VertexId)> = pair_sels
            .into_iter()
            .map(|(a, b)| (VertexId(a % n), VertexId(b % n)))
            .collect();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let built = build(&g, &BuildParams::new(2), &mut rng);
        let net = congest::Network::new(g);

        let plain = packet::send_many(&net, &built.scheme, &pairs);
        let flight = packet::send_many_traced(&net, &built.scheme, &pairs);

        // Tracing is invisible to the simulation.
        prop_assert_eq!(&plain.outcomes, &flight.report.outcomes);
        prop_assert_eq!(plain.undeliverable, flight.report.undeliverable);
        prop_assert_eq!(plain.dropped, flight.report.dropped);
        prop_assert_eq!(plain.stats.rounds, flight.report.stats.rounds);
        prop_assert_eq!(plain.stats.words, flight.report.stats.words);
        prop_assert_eq!(
            plain.stats.memory.max_peak(),
            flight.report.stats.memory.max_peak()
        );

        // Heatmaps account for every delivered word, drops included.
        prop_assert_eq!(flight.edge_load.total_words(), flight.report.stats.words);
        prop_assert_eq!(flight.vertex_load.total_words(), flight.report.stats.words);

        // Per packet: a trace exists iff the packet was injected, and a
        // delivered trace explains its delivery round and weight exactly.
        for (id, outcome) in flight.report.outcomes.iter().enumerate() {
            match outcome {
                packet::DeliveryStatus::Undeliverable => {
                    prop_assert!(flight.traces[id].is_none());
                }
                packet::DeliveryStatus::Dropped => {
                    let trace = flight.traces[id].as_ref().expect("partial trace kept");
                    prop_assert!(trace.delivered_round.is_none());
                }
                packet::DeliveryStatus::Delivered { round, weight } => {
                    let trace = flight.traces[id].as_ref().expect("trace kept");
                    prop_assert_eq!(trace.delivered_round, Some(*round));
                    prop_assert_eq!(trace.total_weight(), *weight);
                    prop_assert_eq!(
                        *round,
                        trace.hop_count() as u64 + trace.queueing_delay()
                    );
                    let d = trace.decomposition();
                    prop_assert_eq!(d.ascent_weight + d.descent_weight, *weight);
                    prop_assert_eq!(d.ascent_hops + d.descent_hops, trace.hop_count());
                }
            }
        }
    }
}
