//! Cross-crate integration for the tree-routing results (Theorem 2):
//! distributed ≡ centralized on trees embedded in every topology family,
//! exactness of both our scheme and the baseline, and the Table-2 orderings.

use congest::Network;
use graphs::{generators, tree, Graph, VertexId};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use tree_routing::{baseline, distributed, multi, router, tz};

fn check_tree(g: Graph, root: u32, seed: u64) {
    let t = tree::shortest_path_tree(&g, VertexId(root));
    let net = Network::new(g);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let ours = distributed::build_default(&net, &t, &mut rng);
    distributed::assert_matches_centralized(&t, &ours);
    let prior = baseline::build(&net, &t, None, &mut rng);
    // Exactness of both on sampled pairs.
    let verts: Vec<VertexId> = t.vertices().collect();
    for (i, &u) in verts.iter().enumerate().step_by(5) {
        for &v in verts.iter().skip(i % 3).step_by(7) {
            let want = t.tree_distance(u, v).unwrap();
            let a = router::route(&t, &ours.scheme, u, v).unwrap();
            let b = baseline::route(&t, &prior.scheme, u, v).unwrap();
            assert_eq!(a.weight, want, "ours {u}->{v}");
            assert_eq!(b.weight, want, "prior {u}->{v}");
        }
    }
    // Table-2 orderings.
    assert_eq!(ours.scheme.max_table_words(), 4, "tables are O(1)");
    assert!(ours.scheme.max_label_words() <= prior.scheme.max_label_words().max(4));
    assert!(ours.memory.max_peak() <= prior.memory.max_peak());
}

#[test]
fn tree_on_erdos_renyi() {
    let mut rng = ChaCha8Rng::seed_from_u64(2001);
    let g = generators::erdos_renyi_connected(300, 0.02, 1..=20, &mut rng);
    check_tree(g, 0, 1);
}

#[test]
fn tree_on_geometric() {
    let mut rng = ChaCha8Rng::seed_from_u64(2002);
    let g = generators::random_geometric_connected(250, 0.09, 1..=20, &mut rng);
    check_tree(g, 5, 2);
}

#[test]
fn tree_on_grid() {
    let mut rng = ChaCha8Rng::seed_from_u64(2003);
    let g = generators::grid(15, 16, 1..=5, &mut rng);
    check_tree(g, 7, 3);
}

#[test]
fn tree_on_path_deep() {
    // Depth-n tree: the regime where q-sampling matters most.
    let mut rng = ChaCha8Rng::seed_from_u64(2004);
    let g = generators::path(200, 1..=9, &mut rng);
    check_tree(g, 0, 4);
}

#[test]
fn tree_on_star_shallow() {
    let mut rng = ChaCha8Rng::seed_from_u64(2005);
    let g = generators::star(150, 1..=9, &mut rng);
    check_tree(g, 0, 5);
}

#[test]
fn tree_on_lollipop() {
    let mut rng = ChaCha8Rng::seed_from_u64(2006);
    let g = generators::lollipop(30, 100, 1..=9, &mut rng);
    check_tree(g, 2, 6);
}

#[test]
fn spd_gap_network_tree() {
    // Small hop diameter, large shortest-path diameter: the case where the
    // D-dependence (not S-dependence) of the paper's bound matters.
    let mut rng = ChaCha8Rng::seed_from_u64(2007);
    let g = generators::small_hop_diameter_large_spd(180, 60, &mut rng);
    check_tree(g, 0, 7);
}

#[test]
fn partial_tree_inside_network() {
    // A tree spanning only half the network: non-members have no entries,
    // members route exactly.
    let mut rng = ChaCha8Rng::seed_from_u64(2008);
    let g = generators::erdos_renyi_connected(120, 0.05, 1..=9, &mut rng);
    let full = tree::shortest_path_tree(&g, VertexId(0));
    // Take the subtree induced by vertices within depth 3 of the root.
    let mut parent = vec![None; 120];
    let mut weight = vec![0; 120];
    for v in full.vertices() {
        if v != VertexId(0) && full.depth_of(v).unwrap() <= 3 {
            parent[v.index()] = full.parent(v);
            weight[v.index()] = full.parent_weight(v);
        }
    }
    let t = graphs::RootedTree::from_parents(VertexId(0), parent, weight);
    let net = Network::new(g);
    let mut rng2 = ChaCha8Rng::seed_from_u64(8);
    let ours = distributed::build_default(&net, &t, &mut rng2);
    distributed::assert_matches_centralized(&t, &ours);
    router::verify_exactness(&t, &ours.scheme);
}

#[test]
fn multi_tree_memory_and_rounds_beat_sequential() {
    let mut rng = ChaCha8Rng::seed_from_u64(2009);
    let g = generators::erdos_renyi_connected(220, 0.03, 1..=9, &mut rng);
    let net = Network::new(g);
    let roots = [0u32, 40, 80, 120, 160, 200];
    let trees: Vec<_> = roots
        .iter()
        .map(|&r| tree::shortest_path_tree(net.graph(), VertexId(r)))
        .collect();
    let par = multi::build_many(&net, &trees, roots.len(), &mut rng);
    assert_eq!(par.observed_overlap, roots.len());
    // Every scheme matches the centralized construction.
    for (t, s) in trees.iter().zip(&par.schemes) {
        let want = tz::build(t);
        for v in t.vertices().step_by(3) {
            assert_eq!(s.table(v), want.table(v));
        }
    }
    let mut seq = 0u64;
    for t in &trees {
        seq += distributed::build_default(&net, t, &mut rng)
            .ledger
            .rounds();
    }
    assert!(par.ledger.rounds() < seq);
}

#[test]
fn weighted_trees_route_by_weight_not_hops() {
    // A heavy chord in the network must not confuse tree routing: the tree
    // path is followed exactly even when a shorter graph path exists.
    let mut rng = ChaCha8Rng::seed_from_u64(2010);
    let g = generators::small_hop_diameter_large_spd(100, 25, &mut rng);
    let t = tree::shortest_path_tree(&g, VertexId(0));
    let net = Network::new(g);
    let ours = distributed::build_default(&net, &t, &mut rng);
    for v in [VertexId(50), VertexId(99), VertexId(25)] {
        let trace = router::route(&t, &ours.scheme, v, VertexId(0)).unwrap();
        assert_eq!(Some(trace.weight), t.tree_distance(v, VertexId(0)));
        // Every hop is a tree edge.
        for pair in trace.path.windows(2) {
            assert!(
                t.parent(pair[0]) == Some(pair[1]) || t.parent(pair[1]) == Some(pair[0]),
                "hop {}-{} is not a tree edge",
                pair[0],
                pair[1]
            );
        }
    }
}
