//! End-to-end observability: build a scheme under a live recorder, write the
//! JSONL run report, parse it back, and check the accounting invariants the
//! report format promises — every record well-formed, depth-0 span deltas
//! partitioning the run totals, and the summary matching the build's ledger.

use obs::json::Value;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use routing::{build, build_observed, BuildParams};

fn generated_report() -> (Vec<Value>, routing::Built) {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let g = graphs::generators::erdos_renyi_connected(96, 0.07, 1..=9, &mut rng);
    let mut rec = obs::Recorder::new();
    let span = rec.begin("test/build");
    let built = build_observed(&g, &BuildParams::new(2), &mut rng, &mut rec);
    rec.end_with_memory(span, built.report.memory.peaks());

    let path = std::env::temp_dir().join(format!("drt-obs-test-{}.jsonl", std::process::id()));
    rec.write_report(&path, "observability-test", &[("n", Value::from(96usize))])
        .expect("report written");
    let records = obs::read_report(&path).expect("report parses as JSONL");
    std::fs::remove_file(&path).ok();
    (records, built)
}

fn get_u64(v: &Value, key: &str) -> u64 {
    v.get(key)
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("missing numeric field '{key}' in {v}"))
}

#[test]
fn report_spans_partition_run_totals() {
    let (records, built) = generated_report();
    assert!(records.len() >= 2, "at least one span and a summary");

    let summary = records.last().unwrap();
    assert_eq!(
        summary.get("type").and_then(Value::as_str),
        Some("run_summary")
    );
    assert_eq!(
        summary.get("name").and_then(Value::as_str),
        Some("observability-test")
    );
    assert_eq!(get_u64(summary, "n"), 96, "extra fields pass through");

    // The summary's totals are the ledger's: the observed build mirrors every
    // charge into the recorder exactly once.
    assert_eq!(get_u64(summary, "rounds"), built.report.rounds);
    assert_eq!(
        get_u64(summary, "peak_memory_words") as usize,
        built.report.memory.max_peak()
    );

    let spans: Vec<&Value> = records
        .iter()
        .filter(|r| r.get("type").and_then(Value::as_str) == Some("span"))
        .collect();
    assert_eq!(get_u64(summary, "spans") as usize, spans.len());

    // Every span record carries the full delta set.
    for s in &spans {
        for key in ["seq", "depth", "rounds", "messages", "words", "broadcasts"] {
            let _ = get_u64(s, key);
        }
        assert!(s.get("name").and_then(Value::as_str).is_some());
    }

    // Depth-0 spans partition the run totals (here: the single wrapper span).
    for key in ["rounds", "messages", "words", "broadcasts"] {
        let sum: u64 = spans
            .iter()
            .filter(|s| get_u64(s, "depth") == 0)
            .map(|s| get_u64(s, key))
            .sum();
        assert_eq!(
            sum,
            get_u64(summary, key),
            "depth-0 '{key}' must sum to total"
        );
    }

    // The construction's phase spans arrived nested under the wrapper.
    let names: Vec<&str> = spans
        .iter()
        .filter_map(|s| s.get("name").and_then(Value::as_str))
        .collect();
    assert_eq!(names[0], "test/build");
    assert!(names.iter().filter(|n| n.starts_with("scheme/")).count() >= 3);
    assert!(spans[1..].iter().all(|s| get_u64(s, "depth") >= 1));
}

#[test]
fn report_counts_records_and_samples_carry_queue_occupancy() {
    let (records, _) = generated_report();
    let summary = records.last().unwrap();
    // A plain build appends no flight records, and the summary says so.
    assert_eq!(get_u64(summary, "records"), 0);
    // Every time-series sample carries the queue-occupancy column the
    // flight recorder reads.
    for r in &records {
        if r.get("type").and_then(Value::as_str) == Some("round_series") {
            let samples = r
                .get("samples")
                .and_then(Value::as_array)
                .expect("round_series has samples");
            assert!(!samples.is_empty());
            for s in samples {
                let _ = get_u64(s, "queued_words");
            }
        }
    }
}

#[test]
fn observed_build_matches_plain_build() {
    let mut rng1 = ChaCha8Rng::seed_from_u64(11);
    let mut rng2 = ChaCha8Rng::seed_from_u64(11);
    let g = {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        graphs::generators::erdos_renyi_connected(80, 0.08, 1..=9, &mut rng)
    };
    let plain = build(&g, &BuildParams::new(2), &mut rng1);
    let mut rec = obs::Recorder::new();
    let observed = build_observed(&g, &BuildParams::new(2), &mut rng2, &mut rec);
    assert_eq!(plain.report.rounds, observed.report.rounds);
    assert_eq!(
        plain.report.memory.max_peak(),
        observed.report.memory.max_peak()
    );
    assert_eq!(
        plain.report.max_table_words,
        observed.report.max_table_words
    );
    assert_eq!(
        plain.report.max_label_words,
        observed.report.max_label_words
    );
}
