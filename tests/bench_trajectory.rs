//! End-to-end tests for the benchmark-trajectory layer: the `BENCH_*.json`
//! schema, `drt bench` / `drt compare`, and the scaling-law checker.
//!
//! The simulated columns are seed-pinned, so everything except wall-clock
//! noise is asserted exactly; wall-clock only needs to exist and be positive.

use std::path::PathBuf;
use std::process::Command;

use bench::suite::{compare, run_suite, BenchDoc, CompareConfig, Tier, SCHEMA};
use obs::scaling::fit_power_law;

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("drt-bench-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(name)
}

#[test]
fn smoke_suite_is_deterministic_and_round_trips() {
    let a = run_suite(Tier::Smoke, "a", Some(1), 1, |_| {}).expect("suite runs");
    let b = run_suite(Tier::Smoke, "a", Some(1), 1, |_| {}).expect("suite runs");
    // Simulated columns are byte-stable across whole suite re-runs; only
    // wall-clock may differ.
    assert_eq!(a.cases.len(), b.cases.len());
    for (ca, cb) in a.cases.iter().zip(&b.cases) {
        assert_eq!(ca.id, cb.id);
        assert_eq!(ca.sim, cb.sim, "sim drift in {}", ca.id);
        assert!(ca.wall.p50_ns > 0, "no wall sample in {}", ca.id);
    }

    // Full schema round-trip through the single-document JSON form.
    let path = temp_path("roundtrip.json");
    a.save(&path).expect("save");
    let back = BenchDoc::load(&path).expect("load");
    assert_eq!(back, a);
    assert_eq!(
        back.to_value().get("schema").and_then(|v| v.as_str()),
        Some(SCHEMA)
    );
}

#[test]
fn quick_tier_exponents_match_the_paper() {
    // The executable form of EXPERIMENTS.md's Table-2 "shape verdict": fit
    // each swept metric and assert the exponent lands in the range the
    // theorems predict. Simulated costs are deterministic, so this cannot
    // flake on machine speed.
    let doc = run_suite(Tier::Quick, "test", Some(1), 1, |_| {}).expect("suite runs");
    assert!(!doc.checks.is_empty(), "quick tier must fit scaling laws");
    for check in &doc.checks {
        assert!(
            check.ok(),
            "{}: exponent {:.3} outside [{}, {}] — {}",
            check.metric,
            check.fit.exponent,
            check.predicted.lo,
            check.predicted.hi,
            check.claim
        );
    }
    // The Table-2 rows specifically: rounds ≈ √n-ish, memory/label log-like,
    // tables flat.
    for metric in [
        "tree_build/rounds",
        "tree_build/peak_memory_words",
        "tree_build/table_words",
        "tree_build/label_words",
        "scheme_build/rounds",
        "scheme_build/peak_memory_words",
    ] {
        assert!(
            doc.checks.iter().any(|c| c.metric == metric),
            "missing scaling check for {metric}"
        );
    }
    let exponent = |metric: &str| {
        doc.checks
            .iter()
            .find(|c| c.metric == metric)
            .unwrap()
            .fit
            .exponent
    };
    // Tables are pinned at O(1): exactly flat, not merely "small".
    assert!(exponent("tree_build/table_words").abs() < 1e-9);
    // Memory must stay clearly below the prior construction's √n shape.
    assert!(exponent("tree_build/peak_memory_words") < 0.35);
}

#[test]
fn fitter_recovers_known_exponents() {
    let xs = [256.0, 512.0, 1024.0, 2048.0, 4096.0];
    let series = |f: &dyn Fn(f64) -> f64| xs.iter().map(|&x| (x, f(x))).collect::<Vec<_>>();

    let sqrt = fit_power_law(&series(&|n| 7.0 * n.sqrt())).unwrap();
    assert!((sqrt.exponent - 0.5).abs() < 1e-9, "{sqrt:?}");

    let log = fit_power_law(&series(&|n| n.ln())).unwrap();
    assert!(
        log.exponent > 0.0 && log.exponent < 0.2,
        "log-like series must fit a small positive exponent: {log:?}"
    );

    let constant = fit_power_law(&series(&|_| 4.0)).unwrap();
    assert!(constant.exponent.abs() < 1e-12, "{constant:?}");
    assert_eq!(constant.r2, 1.0);
}

#[test]
fn compare_gates_injected_regression_but_passes_within_threshold() {
    let old = run_suite(Tier::Smoke, "old", Some(1), 1, |_| {}).expect("suite runs");

    // Injected 2x simulated regression: gated under exact comparison and
    // under any sane tolerance.
    let mut bad = old.clone();
    bad.label = "bad".into();
    bad.cases[0].sim[0].1 *= 2;
    let cmp = compare(&old, &bad, &CompareConfig::default());
    assert!(!cmp.passed());
    assert_eq!(cmp.regressions.len(), 1);
    let cmp = compare(
        &old,
        &bad,
        &CompareConfig {
            sim_tol: 0.25,
            ..CompareConfig::default()
        },
    );
    assert!(!cmp.passed(), "a 2x regression must exceed a 25% tolerance");

    // A within-threshold delta passes once a tolerance is configured (and
    // still fails the default exact gate).
    let mut drift = old.clone();
    drift.label = "drift".into();
    let base = drift.cases[0].sim[0].1;
    drift.cases[0].sim[0].1 = base + base / 10; // +10%
    assert!(!compare(&old, &drift, &CompareConfig::default()).passed());
    let cmp = compare(
        &old,
        &drift,
        &CompareConfig {
            sim_tol: 0.25,
            ..CompareConfig::default()
        },
    );
    assert!(cmp.passed(), "{:?}", cmp.regressions);

    // Wall-clock changes alone never gate unless asked to.
    let mut slow = old.clone();
    slow.label = "slow".into();
    for case in &mut slow.cases {
        case.wall.p50_ns *= 10;
    }
    assert!(compare(&old, &slow, &CompareConfig::default()).passed());
    assert!(!compare(
        &old,
        &slow,
        &CompareConfig {
            wall_gate: true,
            ..CompareConfig::default()
        }
    )
    .passed());
}

#[test]
fn drt_bench_binary_emits_schema_valid_doc_and_compare_gates() {
    let drt = env!("CARGO_BIN_EXE_drt");
    let out = temp_path("BENCH_cli.json");

    let run = Command::new(drt)
        .args([
            "bench",
            "--smoke",
            "--label",
            "cli",
            "--repeats",
            "1",
            "--out",
        ])
        .arg(&out)
        .output()
        .expect("drt bench runs");
    assert!(
        run.status.success(),
        "drt bench failed: {}",
        String::from_utf8_lossy(&run.stderr)
    );
    let doc = BenchDoc::load(&out).expect("schema-valid BENCH json");
    assert_eq!(doc.label, "cli");
    assert_eq!(doc.tier, "smoke");
    assert!(!doc.cases.is_empty());

    // Self-compare: exit 0.
    let ok = Command::new(drt)
        .arg("compare")
        .arg(&out)
        .arg(&out)
        .output()
        .expect("drt compare runs");
    assert!(
        ok.status.success(),
        "self-compare must pass: {}",
        String::from_utf8_lossy(&ok.stderr)
    );
    let table = String::from_utf8_lossy(&ok.stdout).to_string();
    assert!(
        table.contains("| case | metric |"),
        "markdown table: {table}"
    );
    assert!(table.contains("0 regression(s)"));

    // Inject a 2x regression into a copy: exit nonzero and the offending
    // case named in the summary.
    let mut bad = doc.clone();
    bad.label = "bad".into();
    bad.cases[0].sim[0].1 *= 2;
    let bad_path = temp_path("BENCH_cli_bad.json");
    bad.save(&bad_path).expect("save bad doc");
    let fail = Command::new(drt)
        .arg("compare")
        .arg(&out)
        .arg(&bad_path)
        .output()
        .expect("drt compare runs");
    assert!(!fail.status.success(), "injected regression must gate");
    let table = String::from_utf8_lossy(&fail.stdout).to_string();
    assert!(table.contains("REGRESSION"), "{table}");
    assert!(table.contains(&doc.cases[0].id), "{table}");
}

#[test]
fn drt_bench_thread_counts_diff_cleanly() {
    // The CI recipe in miniature: run the suite serial and parallel, then
    // `drt compare` the two documents under the default exact sim gate. The
    // parallel engine is deterministic, so the only differences are
    // wall-clock — advisory — and the speedup entries the parallel document
    // carries.
    let drt = env!("CARGO_BIN_EXE_drt");
    let t1 = temp_path("BENCH_t1.json");
    let t2 = temp_path("BENCH_t2.json");
    for (threads, path) in [("1", &t1), ("2", &t2)] {
        let run = Command::new(drt)
            .args([
                "bench",
                "--smoke",
                "--label",
                &format!("threads{threads}"),
                "--repeats",
                "1",
                "--threads",
                threads,
                "--out",
            ])
            .arg(path)
            .output()
            .expect("drt bench runs");
        assert!(
            run.status.success(),
            "drt bench --threads {threads} failed: {}",
            String::from_utf8_lossy(&run.stderr)
        );
    }
    let d1 = BenchDoc::load(&t1).expect("serial doc");
    let d2 = BenchDoc::load(&t2).expect("parallel doc");
    assert_eq!(d1.env.threads, 1);
    assert_eq!(d2.env.threads, 2);
    assert!(d1.speedup.is_empty());
    assert_eq!(d2.speedup.len(), 6, "one speedup entry per suite group");

    let ok = Command::new(drt)
        .arg("compare")
        .arg(&t1)
        .arg(&t2)
        .output()
        .expect("drt compare runs");
    assert!(
        ok.status.success(),
        "thread count must not change simulated columns: {}",
        String::from_utf8_lossy(&ok.stdout)
    );
    let table = String::from_utf8_lossy(&ok.stdout).to_string();
    assert!(table.contains("parallel speedup"), "{table}");
}

#[test]
fn bench_report_carries_wall_clock() {
    // The satellite wiring: spans carry wall_ns alongside simulated deltas,
    // and the engine stamps wall time onto run stats.
    let mut rec = obs::Recorder::new();
    let span = rec.begin("outer");
    std::hint::black_box((0..10_000).sum::<u64>());
    rec.end(span);
    assert_eq!(rec.spans().len(), 1);
    // Wall time is monotone non-negative; the span must have sampled it.
    let report = temp_path("wall.jsonl");
    rec.write_report(&report, "wall-test", &[]).unwrap();
    let records = obs::read_report(&report).unwrap();
    let summary = records
        .iter()
        .find(|r| r.get("type").and_then(|v| v.as_str()) == Some("run_summary"))
        .expect("summary present");
    assert!(summary.get("wall_ns").and_then(|v| v.as_u64()).is_some());
    let span = records
        .iter()
        .find(|r| r.get("type").and_then(|v| v.as_str()) == Some("span"))
        .expect("span present");
    assert!(span.get("wall_ns").and_then(|v| v.as_u64()).is_some());
}
