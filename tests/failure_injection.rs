//! Failure injection: corrupted or missing routing state must surface as
//! typed errors, never as panics or silent misrouting.

use graphs::{generators, tree, VertexId};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use routing::{build, router, BuildParams};
use tree_routing::types::{RouteAction, TreeLabel};
use tree_routing::{router as tree_router, tz, RouteError};

fn tree_fixture() -> (graphs::RootedTree, tree_routing::TreeScheme) {
    let mut rng = ChaCha8Rng::seed_from_u64(3001);
    let g = generators::erdos_renyi_connected(50, 0.08, 1..=9, &mut rng);
    let t = tree::shortest_path_tree(&g, VertexId(0));
    let s = tz::build(&t);
    (t, s)
}

#[test]
fn tree_label_with_bogus_light_edge_errors() {
    let (t, s) = tree_fixture();
    // A label claiming a light edge to a vertex that is not a tree child.
    let victim = VertexId(30);
    let real = s.label(victim).unwrap().clone();
    let forged = TreeLabel {
        enter: real.enter,
        light: vec![(VertexId(0), VertexId(0))], // self-edge nonsense
    };
    let mut s2 = s.clone();
    s2.labels[victim.index()] = Some(forged);
    // Routing toward the forged label either errors or still delivers via
    // heavy edges (if the bogus edge is never consulted) — it must not panic
    // or deliver to the wrong vertex.
    match tree_router::route(&t, &s2, VertexId(7), victim) {
        Ok(trace) => assert_eq!(*trace.path.last().unwrap(), victim),
        Err(RouteError::BadForward { .. } | RouteError::Stuck(_) | RouteError::Loop) => {}
        Err(e) => panic!("unexpected error kind: {e}"),
    }
}

#[test]
fn tree_label_with_foreign_enter_time_errors() {
    let (t, s) = tree_fixture();
    let mut s2 = s.clone();
    // Entry time far outside the DFS range of the tree.
    s2.labels[20] = Some(TreeLabel {
        enter: 10_000,
        light: vec![],
    });
    match tree_router::route(&t, &s2, VertexId(5), VertexId(20)) {
        Err(RouteError::Stuck(_)) => {}
        other => panic!("expected Stuck at the root, got {other:?}"),
    }
}

#[test]
fn tree_table_with_wrong_heavy_child_cannot_misdeliver() {
    let (t, s) = tree_fixture();
    let mut s2 = s.clone();
    // Corrupt an internal vertex's heavy pointer to a non-child.
    let internal = t
        .vertices()
        .find(|&v| !t.children(v).is_empty() && t.parent(v).is_some())
        .unwrap();
    let mut table = s2.tables[internal.index()].clone().unwrap();
    table.heavy = Some(t.root());
    s2.tables[internal.index()] = Some(table);
    for target in t.vertices().take(10) {
        match tree_router::route(&t, &s2, t.root(), target) {
            Ok(trace) => assert_eq!(*trace.path.last().unwrap(), target),
            Err(RouteError::BadForward { .. } | RouteError::Loop | RouteError::Stuck(_)) => {}
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
}

#[test]
fn graph_scheme_with_deleted_table_entry_gets_stuck_not_lost() {
    let mut rng = ChaCha8Rng::seed_from_u64(3002);
    let g = generators::erdos_renyi_connected(60, 0.08, 1..=9, &mut rng);
    let built = build(&g, &BuildParams::new(2), &mut rng);
    let mut scheme = built.scheme.clone();
    // Find a working route, then delete an intermediate vertex's entry for
    // the committed tree.
    let trace = router::route(&g, &scheme, VertexId(0), VertexId(55)).unwrap();
    if trace.hops() >= 2 {
        let mid = trace.path[1];
        scheme.tables[mid.index()]
            .entries
            .retain(|e| e.root != trace.tree_root);
        match router::route_with(
            &g,
            &scheme,
            VertexId(0),
            VertexId(55),
            router::Selection::FirstValid,
        ) {
            // Either the source picked the broken tree and gets stuck at the
            // gap, or first-valid picked another tree and still delivers.
            Ok(t2) => assert_eq!(*t2.path.last().unwrap(), VertexId(55)),
            Err(router::GraphRouteError::Stuck(v)) => assert_eq!(v, mid),
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
}

#[test]
fn graph_scheme_with_empty_label_reports_no_common_tree() {
    let mut rng = ChaCha8Rng::seed_from_u64(3003);
    let g = generators::erdos_renyi_connected(40, 0.1, 1..=9, &mut rng);
    let built = build(&g, &BuildParams::new(2), &mut rng);
    let mut scheme = built.scheme.clone();
    scheme.labels[25].entries.clear();
    match router::route(&g, &scheme, VertexId(0), VertexId(25)) {
        Err(router::GraphRouteError::NoCommonTree) => {}
        other => panic!("expected NoCommonTree, got {other:?}"),
    }
}

#[test]
fn forged_forwarding_to_non_neighbor_is_caught() {
    // A malicious table whose heavy child is not even a graph neighbor: the
    // router validates each hop against the graph.
    let (t, s) = tree_fixture();
    let mut s2 = s.clone();
    let leafy = t.vertices().find(|&v| t.children(v).is_empty()).unwrap();
    let mut table = s2.tables[leafy.index()].clone().unwrap();
    table.parent = Some(leafy); // self-parent: never a valid hop
    s2.tables[leafy.index()] = Some(table);
    // Route from the corrupted leaf to somewhere above it.
    match tree_router::route(&t, &s2, leafy, t.root()) {
        Ok(trace) => assert_eq!(*trace.path.last().unwrap(), t.root()),
        Err(RouteError::BadForward { from, .. }) => assert_eq!(from, leafy),
        Err(e) => panic!("unexpected error: {e}"),
    }
}

#[test]
fn decode_rejects_random_bytes() {
    let mut rng = ChaCha8Rng::seed_from_u64(3004);
    use rand::Rng;
    let mut rejected = 0;
    for _ in 0..100 {
        let len = rng.gen_range(0..20);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
        // Must never panic; often rejects.
        if tree_routing::encode::decode_table(&bytes).is_none() {
            rejected += 1;
        }
        let _ = tree_routing::encode::decode_label(&bytes);
    }
    assert!(rejected > 0);
}

#[test]
fn route_step_never_panics_on_arbitrary_inputs() {
    // Exhaustive small-space sweep of the forwarding rule.
    for enter in 0..6u64 {
        for exit in 0..6u64 {
            for target in 0..6u64 {
                let table = tree_routing::TreeTable {
                    enter,
                    exit,
                    parent: (enter % 2 == 0).then_some(VertexId(1)),
                    heavy: (exit % 2 == 0).then_some(VertexId(2)),
                };
                let label = TreeLabel {
                    enter: target,
                    light: vec![(VertexId(0), VertexId(3))],
                };
                let _ = tree_routing::types::route_step(VertexId(0), &table, &label);
            }
        }
    }
    // And the action type is inspectable.
    let t = tree_routing::TreeTable {
        enter: 1,
        exit: 1,
        parent: None,
        heavy: None,
    };
    let l = TreeLabel {
        enter: 1,
        light: vec![],
    };
    assert_eq!(
        tree_routing::types::route_step(VertexId(0), &t, &l),
        Some(RouteAction::Deliver)
    );
}
