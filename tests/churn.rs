//! Churn-observatory integration tests: the full health series is a pure
//! function of the seed — byte-identical across engine thread counts and
//! across repeated runs — the acceptance scenario (targeted removal on a
//! scale-free graph) emits a validated `churn_timeline` record with
//! monotonically non-increasing reachability, and the `drt churn` SLO gate
//! exits nonzero on breach.

use churn::{ChurnConfig, ChurnScenario, ChurnSlo, ProcessKind};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use routing::{build, BuildParams};

/// Serialize the scenario's full timeline record: the byte-identical unit
/// the determinism properties compare.
fn record_bytes(g: &graphs::Graph, scheme: &routing::RoutingScheme, config: ChurnConfig) -> String {
    let scenario = ChurnScenario {
        graph: g,
        scheme,
        config,
    };
    let run = scenario.run();
    run.to_record(g, scheme.k, None).to_value().to_string()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The full `HealthSeries` — every row, every column, the degradation
    /// fit, the engine totals — is byte-identical at 1, 2, and 8 engine
    /// threads and across repeated same-seed runs, for every process kind.
    #[test]
    fn health_series_is_a_pure_function_of_the_seed(
        seed in 0u64..1_000_000,
        process_ix in 0usize..4,
        rounds in 1u64..6,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xD1CE);
        let g = graphs::generators::preferential_attachment(48, 3, 1..=9, &mut rng);
        let built = build(&g, &BuildParams::new(2), &mut rng);
        let config = ChurnConfig {
            process: ProcessKind::all()[process_ix],
            rate: 0.05,
            rounds,
            seed,
            ..ChurnConfig::default()
        };
        let baseline = record_bytes(&g, &built.scheme, ChurnConfig { threads: 1, ..config });
        for threads in [1, 2, 8] {
            let again = record_bytes(&g, &built.scheme, ChurnConfig { threads, ..config });
            prop_assert!(again == baseline, "series changed at {} threads", threads);
        }
    }
}

/// The ISSUE acceptance scenario: `--process targeted --rate 0.02
/// --rounds 20` on a seeded scale-free graph emits a record that validates
/// through the schema round trip, with monotonically non-increasing
/// reachability.
#[test]
fn targeted_acceptance_scenario_validates_and_decays_monotonically() {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let g = graphs::generators::preferential_attachment(200, 3, 1..=100, &mut rng);
    let built = build(&g, &BuildParams::new(2), &mut rng);
    let scenario = ChurnScenario {
        graph: &g,
        scheme: &built.scheme,
        config: ChurnConfig {
            process: ProcessKind::Targeted,
            rate: 0.02,
            rounds: 20,
            ..ChurnConfig::default()
        },
    };
    let run = scenario.run();
    let record = run.to_record(
        &g,
        built.scheme.k,
        Some(&ChurnSlo {
            floor: 0.99,
            through_round: 20,
        }),
    );

    // The serialized record validates: parse re-checks the probe partition,
    // traffic conservation, round indexing, and no-revival monotonicity.
    let value = obs::json::parse(&record.to_value().to_string()).expect("record is valid JSON");
    let back = obs::churn::ChurnTimeline::from_value(&value).expect("record validates");
    assert_eq!(back.rounds.len(), 21, "intact baseline + 20 churn rounds");

    // Reachability is monotone non-increasing, starts intact, and targeted
    // hub removal at 2%/round collapses a scale-free graph hard.
    let reach = run.reachability_series();
    assert!(reach.windows(2).all(|w| w[1] <= w[0]), "{reach:?}");
    assert_eq!(reach[0], 1.0);
    assert!(
        reach[20] < 0.5,
        "targeted removal should collapse reachability, got {}",
        reach[20]
    );

    // A 99% floor cannot survive that collapse.
    let slo = record.slo.expect("slo verdict attached");
    assert!(!slo.ok());
    assert!(slo.breach_round.is_some());
}

/// `drt churn` end to end: the SLO gate exits nonzero on breach and zero
/// otherwise, and the emitted report validates under `drt report`.
#[test]
fn drt_churn_slo_gate_sets_the_exit_code() {
    use std::process::Command;
    let dir = std::env::temp_dir().join(format!("drt-churn-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let graph = dir.join("graph.txt");
    let scheme = dir.join("scheme.bin");
    let drt = env!("CARGO_BIN_EXE_drt");

    let generated = Command::new(drt)
        .args(["generate", "scale-free", "120", "7"])
        .output()
        .expect("drt generate runs");
    assert!(generated.status.success());
    std::fs::write(&graph, &generated.stdout).unwrap();
    let built = Command::new(drt)
        .args([
            "build",
            graph.to_str().unwrap(),
            "2",
            scheme.to_str().unwrap(),
        ])
        .output()
        .expect("drt build runs");
    assert!(built.status.success());

    let churn = |extra: &[&str]| {
        Command::new(drt)
            .args([
                "churn",
                graph.to_str().unwrap(),
                scheme.to_str().unwrap(),
                "--process",
                "targeted",
                "--rate",
                "0.02",
                "--rounds",
                "10",
            ])
            .args(extra)
            .output()
            .expect("drt churn runs")
    };
    // A 99% floor breaks under targeted removal: nonzero exit, named round.
    let breached = churn(&["--slo", "0.99"]);
    assert!(!breached.status.success());
    assert!(String::from_utf8_lossy(&breached.stderr).contains("SLO breached"));
    // A 0% floor holds: zero exit, and the report it writes validates.
    let report = dir.join("churn.jsonl");
    let ok = churn(&["--slo", "0.0", "--report", report.to_str().unwrap()]);
    assert!(
        ok.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&ok.stderr)
    );
    let validated = Command::new(drt)
        .args(["report", report.to_str().unwrap(), "--json"])
        .output()
        .expect("drt report runs");
    assert!(validated.status.success());
    let summary = String::from_utf8_lossy(&validated.stdout);
    assert!(summary.contains("\"churn_timeline\":1"), "{summary}");
    std::fs::remove_dir_all(&dir).ok();
}
