//! Integration tests for the scheme observatory (`routing::audit`):
//!
//! * the audit is **read-only** — the scheme's serialized bytes are
//!   identical before and after (and across) audits;
//! * it is **deterministic** — the same graph, scheme, and config produce
//!   the same outcome regardless of the thread count the scheme was built
//!   with, and auditing twice changes nothing;
//! * the component attribution **sums exactly** to the per-vertex resident
//!   words the construction charged to its memory meter — property-tested
//!   over random graphs, not just fixed seeds;
//! * attribution survives a [`routing::persist`] save/load round trip
//!   byte-for-byte, so audits of a freshly built scheme and of the scheme
//!   reloaded from disk agree on every number they both compute.

use graphs::{generators, Graph, GraphBuilder, VertexId};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use routing::audit::{self, AuditConfig, Component, PerturbSpec};
use routing::{build, persist, BuildParams, Built};

fn seed_built(n: usize, seed: u64, threads: usize) -> (Graph, Built) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let g = generators::erdos_renyi_connected(n, 3.0 / n as f64, 1..=9, &mut rng);
    let b = build(&g, &BuildParams::new(2).with_threads(threads), &mut rng);
    (g, b)
}

#[test]
fn audit_is_deterministic_across_build_thread_counts() {
    let cfg = AuditConfig::default();
    let baseline = seed_built(140, 411, 1);
    let base_audit = audit::audit_built(&baseline.0, &baseline.1, &cfg);
    assert!(base_audit.ok());
    for threads in [2, 8] {
        let (g, b) = seed_built(140, 411, threads);
        let out = audit::audit_built(&g, &b, &cfg);
        assert_eq!(
            out, base_audit,
            "audit outcome drifted at {threads} build threads"
        );
    }
}

#[test]
fn auditing_twice_is_idempotent_and_mutation_free() {
    let (g, b) = seed_built(110, 412, 2);
    let before = persist::encode_scheme(&b.scheme).unwrap();
    let cfg = AuditConfig::default();
    let first = audit::audit_built(&g, &b, &cfg);
    let second = audit::audit_built(&g, &b, &cfg);
    assert_eq!(first, second);
    // The perturbation probe reads the same scheme; it must not mutate it
    // either.
    let spec = PerturbSpec {
        kill_edges: 0.3,
        kill_vertices: 0.1,
        seed: 17,
    };
    let p1 = audit::probe_perturbed(&g, &b.scheme, &cfg, &spec, first.probe.mean_stretch);
    let p2 = audit::probe_perturbed(&g, &b.scheme, &cfg, &spec, first.probe.mean_stretch);
    assert_eq!(p1, p2);
    let after = persist::encode_scheme(&b.scheme).unwrap();
    assert_eq!(before, after, "auditing changed the scheme's bytes");
}

#[test]
fn attribution_survives_persistence_round_trip() {
    let (g, b) = seed_built(130, 413, 1);
    let cfg = AuditConfig::default();
    let fresh = audit::audit_built(&g, &b, &cfg);
    assert!(fresh.ok());

    let bytes = persist::encode_scheme(&b.scheme).unwrap();
    let loaded = persist::decode_scheme(&bytes).unwrap();
    let reloaded = audit::audit(&g, &loaded, &cfg);

    // Byte-identical attribution: same per-component split, same resident
    // words, exact on both sides.
    assert_eq!(reloaded.attribution, fresh.attribution);
    assert_eq!(reloaded.probe, fresh.probe);
    // Built-only context is gone after a reload, but nothing the two audits
    // both compute may disagree.
    assert!(!reloaded.meter_checked);
    for check in &reloaded.invariants {
        let counterpart = fresh.invariants.iter().find(|c| c.name == check.name);
        assert_eq!(
            counterpart,
            Some(check),
            "{} diverged after reload",
            check.name
        );
    }
    assert!(reloaded.ok());
}

#[test]
fn component_split_matches_scheme_records() {
    let (g, b) = seed_built(150, 414, 4);
    let att = audit::attribution(&b.scheme);
    assert!(att.exact);
    // Spot-check the split against the raw structures at a few vertices.
    for v in [0usize, 50, 149] {
        let table = &b.scheme.tables[v];
        let label = &b.scheme.labels[v];
        let split = att.per_vertex[v];
        assert_eq!(split[0], 3 * table.entries.len());
        assert_eq!(split[2], 3 * label.entries.len());
        assert_eq!(split[4], 2 * b.scheme.pivot_info[v].len());
        assert_eq!(
            split.iter().sum::<usize>(),
            b.scheme.resident_words(VertexId(v as u32))
        );
    }
    let _ = g;
}

#[test]
fn perturbed_probe_counts_are_consistent() {
    let (g, b) = seed_built(120, 415, 1);
    let cfg = AuditConfig::default();
    let intact = audit::audit_built(&g, &b, &cfg);
    for (ke, kv) in [(0.15, 0.0), (0.0, 0.2), (0.25, 0.1)] {
        let spec = PerturbSpec {
            kill_edges: ke,
            kill_vertices: kv,
            seed: 31,
        };
        let p = audit::probe_perturbed(&g, &b.scheme, &cfg, &spec, intact.probe.mean_stretch);
        assert_eq!(p.killed_edges + p.surviving_edges, g.num_edges());
        let q = &p.probe;
        assert!(q.connected <= q.pairs);
        assert_eq!(
            q.delivered + q.no_common_tree + q.stuck + q.bad_forward + q.looped,
            q.connected,
            "probe outcomes must partition connected pairs"
        );
        assert!(q.reachability() >= 0.0 && q.reachability() <= 1.0);
        // The record layer re-checks the same identities on parse.
        let record = intact.to_record(Some(&p));
        let parsed = obs::audit::SchemeAudit::from_value(
            &obs::json::parse(&record.to_value().to_string()).unwrap(),
        )
        .unwrap();
        assert_eq!(parsed, record);
    }
}

/// A connected random weighted graph from a compact proptest description:
/// a random spanning tree plus extra edges (same idiom as
/// `tests/properties.rs`).
fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (8..max_n)
        .prop_flat_map(|n| {
            let tree_parents = proptest::collection::vec(0..u32::MAX, n - 1);
            let tree_weights = proptest::collection::vec(1u64..50, n - 1);
            let extras = proptest::collection::vec((0..u32::MAX, 0..u32::MAX, 1u64..50), 0..n);
            (Just(n), tree_parents, tree_weights, extras)
        })
        .prop_map(|(n, parents, weights, extras)| {
            let mut b = GraphBuilder::new(n);
            for v in 1..n {
                let p = (parents[v - 1] as usize) % v;
                b.add_edge(VertexId(p as u32), VertexId(v as u32), weights[v - 1]);
            }
            for (x, y, w) in extras {
                let u = (x as usize) % n;
                let v = (y as usize) % n;
                if u != v && !b.has_edge(VertexId(u as u32), VertexId(v as u32)) {
                    b.add_edge(VertexId(u as u32), VertexId(v as u32), w);
                }
            }
            b.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// On any connected graph: the component attribution reconciles
    /// exactly, every resident word was charged to the meter, and a
    /// freshly built scheme audits clean.
    #[test]
    fn audit_invariants_hold_on_random_graphs(g in arb_graph(48), seed in 0u64..1000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let b = build(&g, &BuildParams::new(2), &mut rng);
        let att = audit::attribution(&b.scheme);
        prop_assert!(att.exact);
        for v in g.vertices() {
            let total: usize = att.per_vertex[v.index()].iter().sum();
            prop_assert_eq!(total, b.scheme.resident_words(v));
        }
        prop_assert_eq!(b.report.memory.first_undershoot(&att.resident), None);
        let out = audit::audit_built(&g, &b, &AuditConfig::default());
        prop_assert_eq!(out.total_violations(), 0);
        // Small n: the probe must have swept every ordered pair.
        prop_assert!(out.probe.full_sweep);
        let n = g.num_vertices() as u64;
        prop_assert_eq!(out.probe.pairs, n * (n - 1));
    }

    /// Component totals in the serialized record match the in-memory
    /// attribution on any audited scheme.
    #[test]
    fn record_component_totals_match_attribution(g in arb_graph(40), seed in 0u64..1000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let b = build(&g, &BuildParams::new(2), &mut rng);
        let out = audit::audit_built(&g, &b, &AuditConfig::default());
        let record = out.to_record(None);
        for &c in &Component::ALL {
            let stat = record.components.iter().find(|s| s.name == c.name()).unwrap();
            let expected: u64 = out.attribution.component_words(c).iter().sum();
            prop_assert_eq!(stat.total, expected);
            prop_assert!(stat.resident);
        }
        prop_assert_eq!(record.resident_total, out.attribution.resident_total());
    }
}
