//! End-to-end engine-profiler tests: the `engine_profile` record survives a
//! written JSONL report, the Chrome trace export holds to the trace-event
//! schema, the coordinator phase tiling covers the engine wall, and the
//! typed `ParseError`s out of `obs` name the record and field that broke.

use graphs::VertexId;
use obs::json::Value;
use obs::profile::{Phase, ProfileSummary};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use routing::{build, packet, BuildParams};

/// A profiled store-and-forward batch on a seeded graph: the canonical
/// engine-driven workload.
fn profiled_batch(threads: usize) -> (packet::LoadReport, congest::Network) {
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let g = graphs::generators::erdos_renyi_connected(72, 0.08, 1..=9, &mut rng);
    let built = build(&g, &BuildParams::new(2), &mut rng);
    let net = congest::Network::new(g);
    let n = net.graph().num_vertices() as u32;
    let pairs: Vec<(VertexId, VertexId)> = (0..128)
        .map(|_| {
            let a = rng.gen_range(0..n);
            let mut b = rng.gen_range(0..n);
            while b == a {
                b = rng.gen_range(0..n);
            }
            (VertexId(a), VertexId(b))
        })
        .collect();
    let report = packet::send_many_profiled(&net, &built.scheme, &pairs, threads);
    (report, net)
}

#[test]
fn engine_profile_record_round_trips_through_a_written_report() {
    let (report, _net) = profiled_batch(2);
    let profile = report.stats.profile.as_deref().expect("profile kept");

    // Accumulate onto a recorder and write the report the way the CLI does.
    let mut rec = obs::Recorder::new();
    rec.enable_profiling();
    rec.absorb_profile(profile);
    let path = std::env::temp_dir().join(format!("drt-profiler-test-{}.jsonl", std::process::id()));
    rec.write_report(&path, "profiler-test", &[])
        .expect("report written");
    let records = obs::read_report(&path).expect("report parses");
    std::fs::remove_file(&path).ok();

    // Exactly one engine_profile record, parsing back to the same summary.
    let profiles: Vec<ProfileSummary> = records
        .iter()
        .filter(|r| r.get("type").and_then(Value::as_str) == Some("engine_profile"))
        .map(|r| ProfileSummary::from_value(r).expect("engine_profile parses"))
        .collect();
    assert_eq!(profiles.len(), 1);
    let parsed = &profiles[0];
    let direct = profile.summary();
    assert_eq!(parsed.workers, direct.workers);
    assert_eq!(parsed.runs, direct.runs);
    assert_eq!(parsed.rounds, direct.rounds);
    assert_eq!(parsed.engine_wall_ns, direct.engine_wall_ns);
    assert_eq!(parsed.phases.len(), direct.phases.len());
    for (a, b) in parsed.phases.iter().zip(&direct.phases) {
        assert_eq!(a.phase, b.phase);
        assert_eq!(a.total_ns, b.total_ns);
        assert_eq!(a.samples, b.samples);
    }
    assert_eq!(parsed.worker_stats.len(), direct.worker_stats.len());
    assert!((parsed.imbalance - direct.imbalance).abs() < 1e-9);
    assert!((parsed.coverage - direct.coverage).abs() < 1e-9);
}

#[test]
fn phase_tiling_covers_the_engine_wall() {
    // The acceptance bar: the coordinator phase totals must explain the
    // engine wall to within 5% (they tile it by construction; the slack is
    // engine setup before the first lap and worker-pool teardown after the
    // last). Debug builds on a small workload leave those fixed costs
    // unamortized, so the gate loosens to 10% there; `drt profile` on a
    // release build is where the 5% figure is demonstrated.
    let floor = if cfg!(debug_assertions) { 0.90 } else { 0.95 };
    // Below this wall the fixed engine setup/teardown costs dominate the
    // laps outright (an oversubscribed single-core runner can stall the
    // worker pool spin-up for longer than the whole workload), and the
    // coverage ratio measures scheduler luck, not the tiling. The structural
    // assertions below still run; only the ratio gate needs a real wall.
    let min_gated_wall_ns = 2_000_000;
    for threads in [1, 4] {
        let (report, _net) = profiled_batch(threads);
        let s = report.stats.profile.as_deref().unwrap().summary();
        let coord_sum: u64 = s.phases.iter().map(|p| p.coord_ns).sum();
        assert!(coord_sum <= s.engine_wall_ns);
        assert!(
            s.engine_wall_ns < min_gated_wall_ns || s.coverage > floor,
            "phase tiling covers only {:.1}% of the wall at {threads} threads \
             (coord {coord_sum} ns, wall {} ns)",
            s.coverage * 100.0,
            s.engine_wall_ns
        );
        // Busy time never exceeds the wall on any track.
        for w in &s.worker_stats {
            assert!(w.busy_ns <= s.engine_wall_ns, "{w:?}");
        }
        assert!(s.imbalance >= 1.0);
    }
}

#[test]
fn chrome_trace_export_holds_to_the_trace_event_schema() {
    let (report, _net) = profiled_batch(3);
    let profile = report.stats.profile.as_deref().unwrap();
    let trace = profile.chrome_trace();
    let v = obs::json::parse(&trace).expect("trace is valid JSON");
    let events = v.as_array().expect("trace is a JSON array");
    assert!(!events.is_empty());
    let mut tracks = std::collections::BTreeSet::new();
    let mut complete = 0usize;
    for e in events {
        let ph = e.get("ph").and_then(Value::as_str).expect("event has ph");
        assert!(e.get("pid").and_then(Value::as_u64).is_some());
        let tid = e.get("tid").and_then(Value::as_u64).expect("event has tid");
        match ph {
            "M" => {
                // Thread-name metadata names every track.
                assert_eq!(e.get("name").and_then(Value::as_str), Some("thread_name"));
            }
            "X" => {
                complete += 1;
                tracks.insert(tid);
                let name = e.get("name").and_then(Value::as_str).expect("phase name");
                assert!(Phase::from_name(name).is_some(), "unknown phase '{name}'");
                assert!(e.get("ts").and_then(Value::as_f64).is_some());
                assert!(e.get("dur").and_then(Value::as_f64).is_some());
                assert!(e.get("args").and_then(|a| a.get("round")).is_some());
            }
            other => panic!("unexpected event kind '{other}'"),
        }
    }
    assert!(complete > 0);
    // One track per worker plus the coordinator at tid 0.
    assert!(tracks.contains(&0));
    assert_eq!(tracks.len(), profile.workers.max(1));
}

#[test]
fn report_parse_errors_name_the_record_and_field() {
    // A mistyped field inside a known record type must surface with the
    // record index, record type, and field name — not an unwrap panic.
    let path =
        std::env::temp_dir().join(format!("drt-parse-err-test-{}.jsonl", std::process::id()));
    std::fs::write(
        &path,
        "{\"type\":\"run_summary\",\"name\":\"x\",\"wall_ns\":1}\n{\"type\":\"metrics\",\"name\":\"m\",\"counters\":{\"c\":-4},\"gauges\":{}}\n",
    )
    .unwrap();
    let records = obs::read_report(&path).expect("well-formed JSON lines still parse");
    std::fs::remove_file(&path).ok();
    let err = obs::metrics::MetricSet::from_value(&records[1])
        .map(|_| ())
        .unwrap_err()
        .in_record(1);
    let msg = err.to_string();
    assert!(msg.contains("record 1"), "{msg}");
    assert!(msg.contains("metrics"), "{msg}");
    assert!(msg.contains('c'), "{msg}");

    // Malformed JSON fails at read_report with the line tagged.
    std::fs::write(&path, "{\"type\":\"span\"}\nnot json\n").unwrap();
    let err = obs::read_report(&path).unwrap_err();
    std::fs::remove_file(&path).ok();
    assert!(err.to_string().contains("record 1"), "{err}");
    assert!(err.to_string().contains("invalid JSON"), "{err}");
}

#[test]
fn profiling_is_off_by_default_everywhere() {
    // No profile on plain runs, no engine_profile record from a recorder
    // that never enabled profiling.
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let g = graphs::generators::erdos_renyi_connected(40, 0.1, 1..=9, &mut rng);
    let built = build(&g, &BuildParams::new(2), &mut rng);
    let net = congest::Network::new(g);
    let report = packet::send_many_with(&net, &built.scheme, &[(VertexId(0), VertexId(1))], 2);
    assert!(report.stats.profile.is_none());

    let mut rec = obs::Recorder::new();
    assert!(!rec.profiling());
    rec.charge_rounds(1);
    let path = std::env::temp_dir().join(format!("drt-noprof-test-{}.jsonl", std::process::id()));
    rec.write_report(&path, "noprof", &[]).unwrap();
    let records = obs::read_report(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert!(records
        .iter()
        .all(|r| r.get("type").and_then(Value::as_str) != Some("engine_profile")));
}
