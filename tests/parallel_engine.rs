//! Serial-equivalence property tests for the parallel CONGEST engine.
//!
//! The parallel engine's contract is byte-identical simulation at any
//! thread count: same `RunStats` (rounds, messages, words, congestion,
//! per-vertex memory peaks), same flight-recorder hop traces, same ledger
//! word totals. These properties drive random graphs, seeds, and payloads
//! through every engine-backed protocol at thread counts 1, 2, and 8 —
//! including counts far above this container's core count, which is
//! exactly where a nondeterministic merge would show.

use graphs::{tree, GraphBuilder, VertexId};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use routing::{build, packet, BuildParams};
use tree_routing::distributed;

/// Thread counts every property is checked at, against the serial run.
const THREADS: [usize; 2] = [2, 8];

/// A connected random weighted graph from a compact description: `n`,
/// extra-edge pairs, and weights — all driven by proptest (same idiom as
/// `tests/properties.rs`).
fn arb_graph(max_n: usize) -> impl Strategy<Value = graphs::Graph> {
    (3..max_n)
        .prop_flat_map(|n| {
            let tree_parents = proptest::collection::vec(0..u32::MAX, n - 1);
            let tree_weights = proptest::collection::vec(1u64..50, n - 1);
            let extras = proptest::collection::vec((0..u32::MAX, 0..u32::MAX, 1u64..50), 0..n);
            (Just(n), tree_parents, tree_weights, extras)
        })
        .prop_map(|(n, parents, weights, extras)| {
            let mut b = GraphBuilder::new(n);
            for v in 1..n {
                let p = (parents[v - 1] as usize) % v;
                b.add_edge(VertexId(p as u32), VertexId(v as u32), weights[v - 1]);
            }
            for (x, y, w) in extras {
                let u = (x as usize) % n;
                let v = (y as usize) % n;
                if u != v && !b.has_edge(VertexId(u as u32), VertexId(v as u32)) {
                    b.add_edge(VertexId(u as u32), VertexId(v as u32), w);
                }
            }
            b.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn bfs_is_thread_count_invariant(g in arb_graph(48), root_sel in 0..u32::MAX) {
        let n = g.num_vertices();
        let root = VertexId(root_sel % n as u32);
        let net = congest::Network::new(g);
        let serial = congest::bfs::build_bfs_tree_with(&net, root, 1);
        for threads in THREADS {
            let par = congest::bfs::build_bfs_tree_with(&net, root, threads);
            prop_assert!(
                serial.stats.same_simulation(&par.stats),
                "BFS stats diverged at {threads} threads:\n  serial: {:?}\n  parallel: {:?}",
                serial.stats,
                par.stats
            );
            prop_assert_eq!(serial.depth, par.depth);
            for v in 0..n {
                let v = VertexId(v as u32);
                prop_assert_eq!(serial.tree.parent(v), par.tree.parent(v));
            }
        }
    }

    #[test]
    fn broadcast_is_thread_count_invariant(
        g in arb_graph(40),
        payloads in proptest::collection::vec((0..8u32, 0..u64::MAX), 1..12),
    ) {
        let n = g.num_vertices();
        let net = congest::Network::new(g);
        // Scatter the payloads over origin vertices deterministically.
        let mut items: Vec<Vec<(u32, u64)>> = vec![Vec::new(); n];
        for (i, &(seq, body)) in payloads.iter().enumerate() {
            items[(i * 7 + 1) % n].push((seq, body));
        }
        let serial = congest::broadcast::broadcast_all_with(&net, items.clone(), 1);
        for threads in THREADS {
            let par = congest::broadcast::broadcast_all_with(&net, items.clone(), threads);
            prop_assert!(
                serial.stats.same_simulation(&par.stats),
                "broadcast stats diverged at {threads} threads"
            );
            // Arrival order at every vertex must match, not just the set.
            prop_assert_eq!(&serial.received, &par.received);
        }
    }

    #[test]
    fn packet_batches_are_thread_count_invariant(g in arb_graph(36), seed in 0..u64::MAX) {
        let n = g.num_vertices();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let built = build(&g, &BuildParams::new(2), &mut rng);
        let pairs: Vec<(VertexId, VertexId)> = (0..n)
            .map(|i| (VertexId(i as u32), VertexId(((i * 5 + 1) % n) as u32)))
            .collect();
        let net = congest::Network::new(g);
        let serial = packet::send_many_traced_with(&net, &built.scheme, &pairs, 1);
        for threads in THREADS {
            let par = packet::send_many_traced_with(&net, &built.scheme, &pairs, threads);
            prop_assert!(
                serial.report.stats.same_simulation(&par.report.stats),
                "batch stats diverged at {threads} threads"
            );
            prop_assert_eq!(&serial.report.outcomes, &par.report.outcomes);
            prop_assert_eq!(serial.report.undeliverable, par.report.undeliverable);
            prop_assert_eq!(serial.report.dropped, par.report.dropped);
            // Flight-recorder hop traces are identical packet by packet.
            prop_assert_eq!(&serial.traces, &par.traces);
            // Heatmaps aggregate the same words/packets.
            prop_assert_eq!(serial.edge_load.total_words(), par.edge_load.total_words());
            prop_assert_eq!(
                serial.edge_load.total_packets(),
                par.edge_load.total_packets()
            );
            prop_assert_eq!(
                serial.vertex_load.total_words(),
                par.vertex_load.total_words()
            );
        }
    }

    #[test]
    fn profiler_is_simulation_neutral(g in arb_graph(36), seed in 0..u64::MAX) {
        // Profiling must never perturb the simulation: same outcomes, same
        // stats (minus wall/profile), at every thread count — the profiler
        // only reads clocks, and `same_simulation` ignores real time.
        let n = g.num_vertices();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let built = build(&g, &BuildParams::new(2), &mut rng);
        let pairs: Vec<(VertexId, VertexId)> = (0..n)
            .map(|i| (VertexId(i as u32), VertexId(((i * 5 + 1) % n) as u32)))
            .collect();
        let net = congest::Network::new(g);
        let plain = packet::send_many_with(&net, &built.scheme, &pairs, 1);
        prop_assert!(plain.stats.profile.is_none());
        for threads in [1, 2, 8] {
            let prof = packet::send_many_profiled(&net, &built.scheme, &pairs, threads);
            prop_assert!(
                plain.stats.same_simulation(&prof.stats),
                "profiling changed simulated stats at {threads} threads:\n  off: {:?}\n  on: {:?}",
                plain.stats,
                prof.stats
            );
            prop_assert_eq!(&plain.outcomes, &prof.outcomes);
            prop_assert_eq!(plain.undeliverable, prof.undeliverable);
            prop_assert_eq!(plain.dropped, prof.dropped);
            // And the profile itself must be present and self-consistent.
            let p = prof.stats.profile.as_deref().expect("profiled run keeps its profile");
            let s = p.summary();
            prop_assert_eq!(s.runs, 1);
            prop_assert!(s.engine_wall_ns > 0);
            let coord_sum: u64 = s.phases.iter().map(|ph| ph.coord_ns).sum();
            prop_assert!(
                coord_sum <= s.engine_wall_ns,
                "phase tiling ({coord_sum} ns) exceeds the engine wall ({} ns)",
                s.engine_wall_ns
            );
        }
    }

    #[test]
    fn tree_build_ledger_is_thread_count_invariant(g in arb_graph(36), seed in 0..u64::MAX) {
        let t = tree::shortest_path_tree(&g, VertexId(0));
        let net = congest::Network::new(g);
        let run = |threads: usize| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            distributed::build(
                &net,
                &t,
                &distributed::Config {
                    threads,
                    ..distributed::Config::default()
                },
                &mut rng,
            )
        };
        let serial = run(1);
        for threads in THREADS {
            let par = run(threads);
            prop_assert_eq!(serial.ledger.words(), par.ledger.words());
            prop_assert_eq!(serial.ledger.rounds(), par.ledger.rounds());
            prop_assert_eq!(serial.ledger.messages(), par.ledger.messages());
            prop_assert_eq!(serial.memory.max_peak(), par.memory.max_peak());
            prop_assert_eq!(serial.bfs_depth, par.bfs_depth);
        }
    }
}
