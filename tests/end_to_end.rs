//! End-to-end integration: build the full general-graph scheme on every
//! topology family and verify Theorem 3's guarantees hold together —
//! stretch, sizes, memory ordering versus the baselines.

use graphs::{generators, properties, VertexId};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use routing::{build, router, BuildParams, Mode};

fn sample_sources(n: usize, step: usize) -> Vec<VertexId> {
    (0..n as u32).step_by(step).map(VertexId).collect()
}

fn check_stretch(g: &graphs::Graph, k: usize, seed: u64) -> f64 {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let built = build(g, &BuildParams::new(k), &mut rng);
    let srcs = sample_sources(g.num_vertices(), 7);
    let stats = router::measure_stretch(g, &built.scheme, &srcs, router::Selection::SourceOptimal);
    assert!(
        stats.max <= (4 * k - 3) as f64 + 0.5,
        "stretch {} above 4k-3+o(1) for k={k}",
        stats.max
    );
    stats.max
}

#[test]
fn stretch_on_erdos_renyi() {
    let mut rng = ChaCha8Rng::seed_from_u64(1001);
    let g = generators::erdos_renyi_connected(150, 0.04, 1..=30, &mut rng);
    check_stretch(&g, 2, 1);
    check_stretch(&g, 3, 2);
}

#[test]
fn stretch_on_geometric() {
    let mut rng = ChaCha8Rng::seed_from_u64(1002);
    let g = generators::random_geometric_connected(120, 0.14, 1..=30, &mut rng);
    check_stretch(&g, 2, 3);
}

#[test]
fn stretch_on_torus() {
    let mut rng = ChaCha8Rng::seed_from_u64(1003);
    let g = generators::torus(10, 12, 1..=9, &mut rng);
    check_stretch(&g, 2, 4);
}

#[test]
fn stretch_on_preferential_attachment() {
    let mut rng = ChaCha8Rng::seed_from_u64(1004);
    let g = generators::preferential_attachment(130, 2, 1..=20, &mut rng);
    check_stretch(&g, 3, 5);
}

#[test]
fn stretch_on_path_worst_case_diameter() {
    let mut rng = ChaCha8Rng::seed_from_u64(1005);
    let g = generators::path(60, 1..=9, &mut rng);
    check_stretch(&g, 2, 6);
}

#[test]
fn stretch_on_lollipop() {
    let mut rng = ChaCha8Rng::seed_from_u64(1006);
    let g = generators::lollipop(15, 40, 1..=9, &mut rng);
    check_stretch(&g, 2, 7);
}

#[test]
fn stretch_with_heavy_aspect_ratio() {
    // Weights spanning 4 orders of magnitude: the construction time must not
    // depend on log Λ (no rounding machinery needed), and stretch holds.
    let mut rng = ChaCha8Rng::seed_from_u64(1007);
    let g = generators::erdos_renyi_connected(100, 0.05, 1..=10_000, &mut rng);
    assert!(g.aspect_ratio().unwrap() > 100.0);
    check_stretch(&g, 2, 8);
}

#[test]
fn memory_ordering_between_modes() {
    // The paper's Table 1 ordering: ours ≤ prior on memory; tables and
    // labels no larger than prior's.
    let mut rng = ChaCha8Rng::seed_from_u64(1008);
    let g = generators::erdos_renyi_connected(300, 0.02, 1..=9, &mut rng);
    let mut rng1 = ChaCha8Rng::seed_from_u64(5);
    let mut rng2 = ChaCha8Rng::seed_from_u64(5);
    let ours = build(&g, &BuildParams::new(2), &mut rng1);
    let prior = build(
        &g,
        &BuildParams::new(2).with_mode(Mode::DistributedPrior),
        &mut rng2,
    );
    assert!(ours.report.memory.max_peak() < prior.report.memory.max_peak());
    assert!(ours.report.max_table_words <= prior.report.max_table_words);
    assert!(ours.report.max_label_words <= prior.report.max_label_words);
}

#[test]
fn our_sizes_match_centralized_reference() {
    // Theorem 3: our distributed tables/labels match the centralized
    // Thorup–Zwick sizes (same tree-scheme family), given the same clusters.
    let mut rng = ChaCha8Rng::seed_from_u64(1009);
    let g = generators::erdos_renyi_connected(200, 0.03, 1..=9, &mut rng);
    let mut rng1 = ChaCha8Rng::seed_from_u64(13);
    let mut rng2 = ChaCha8Rng::seed_from_u64(13);
    let central = build(
        &g,
        &BuildParams::new(2).with_mode(Mode::Centralized),
        &mut rng1,
    );
    let ours = build(&g, &BuildParams::new(2), &mut rng2);
    // Exact levels coincide, so sizes should be very close; never larger by
    // more than the approximate-cluster slack.
    assert!(
        ours.report.max_label_words <= central.report.max_label_words + 8,
        "our labels {} vs centralized {}",
        ours.report.max_label_words,
        central.report.max_label_words
    );
}

#[test]
fn rounds_are_sublinear_in_n_squared() {
    // Coarse guard: simulated rounds stay within the Õ(n^{1/2+1/k} + D)
    // shape envelope (generous constant for small n).
    let mut rng = ChaCha8Rng::seed_from_u64(1010);
    let g = generators::erdos_renyi_connected(256, 0.025, 1..=9, &mut rng);
    let built = build(&g, &BuildParams::new(2), &mut rng);
    let n = 256f64;
    let d = properties::hop_diameter(&built_graph(&g)).unwrap_or(10) as f64;
    let envelope = 600.0 * (n.powf(1.0) + d) * n.ln(); // ~Õ(n) slack for ln² factors
    assert!(
        (built.report.rounds as f64) < envelope,
        "rounds {} outside envelope {}",
        built.report.rounds,
        envelope
    );
}

fn built_graph(g: &graphs::Graph) -> graphs::Graph {
    g.clone()
}

#[test]
fn labels_stay_o_k_log_n() {
    let mut rng = ChaCha8Rng::seed_from_u64(1011);
    let g = generators::erdos_renyi_connected(250, 0.025, 1..=9, &mut rng);
    for k in [2usize, 3, 4] {
        let built = build(&g, &BuildParams::new(k), &mut rng);
        let log_n = (250f64).log2();
        let bound = (3.0 * k as f64 * log_n).ceil() as usize + 3 * k;
        assert!(
            built.report.max_label_words <= bound,
            "k={k}: label {} exceeds O(k log n) bound {bound}",
            built.report.max_label_words
        );
    }
}

#[test]
fn stretch_on_hypercube() {
    let mut rng = ChaCha8Rng::seed_from_u64(1013);
    let g = generators::hypercube(7, 1..=9, &mut rng);
    check_stretch(&g, 2, 9);
}

#[test]
fn stretch_on_expander() {
    let mut rng = ChaCha8Rng::seed_from_u64(1014);
    let g = generators::random_regular_expander(140, 5, 1..=9, &mut rng);
    check_stretch(&g, 3, 10);
}

#[test]
fn stretch_on_barbell() {
    let mut rng = ChaCha8Rng::seed_from_u64(1015);
    let g = generators::barbell(25, 40, 1..=9, &mut rng);
    check_stretch(&g, 2, 11);
}

#[test]
fn standard_congest_rounding_preserves_stretch() {
    // §2's adaptation: run the whole scheme on the (1+ε)-rounded graph and
    // measure stretch against the ORIGINAL distances — the combined slack is
    // the scheme bound times the rounding inflation.
    let mut rng = ChaCha8Rng::seed_from_u64(1016);
    let g = generators::erdos_renyi_connected(120, 0.05, 1..=5_000, &mut rng);
    let eps = 0.05;
    let rounded = graphs::rounding::round_weights(&g, eps);
    let built = build(&rounded.graph, &BuildParams::new(2), &mut rng);
    let k = 2;
    let mut worst: f64 = 1.0;
    for s in (0..120u32).step_by(17).map(VertexId) {
        let exact = graphs::shortest_paths::dijkstra(&g, s);
        for t in g.vertices() {
            if t == s {
                continue;
            }
            let trace = router::route(&rounded.graph, &built.scheme, s, t).unwrap();
            // Price the routed path with the ORIGINAL weights.
            let mut orig = 0;
            for pair in trace.path.windows(2) {
                orig += g.edge_weight(pair[0], pair[1]).unwrap();
            }
            worst = worst.max(orig as f64 / exact[t.index()] as f64);
        }
    }
    let bound = ((4 * k - 3) as f64 + 0.5) * (1.0 + eps) * (1.0 + eps);
    assert!(
        worst <= bound,
        "rounded-graph stretch {worst} above {bound}"
    );
    // And the rounded instance's weights fit in few bits.
    assert!(rounded.bits_per_weight <= 9);
}

#[test]
fn oracle_and_persist_round_trip_through_full_pipeline() {
    let mut rng = ChaCha8Rng::seed_from_u64(1017);
    let g = generators::erdos_renyi_connected(100, 0.05, 1..=20, &mut rng);
    let built = build(&g, &BuildParams::new(3), &mut rng);
    let bytes = routing::persist::encode_scheme(&built.scheme).unwrap();
    let reloaded = routing::persist::decode_scheme(&bytes).unwrap();
    let oracle = routing::oracle::DistanceOracle::new(&reloaded);
    for s in (0..100u32).step_by(13).map(VertexId) {
        let exact = graphs::shortest_paths::dijkstra(&g, s);
        for t in g.vertices() {
            if t == s {
                continue;
            }
            let est = oracle.query(s, t);
            assert!(est >= exact[t.index()]);
            assert!(est as f64 <= 5.5 * exact[t.index()] as f64); // 2k-1 + slack
        }
    }
}

#[test]
fn full_pipeline_is_deterministic_given_seed() {
    let mut rng_a = ChaCha8Rng::seed_from_u64(1012);
    let g = generators::erdos_renyi_connected(100, 0.05, 1..=9, &mut rng_a);
    let mut rng1 = ChaCha8Rng::seed_from_u64(3);
    let mut rng2 = ChaCha8Rng::seed_from_u64(3);
    let a = build(&g, &BuildParams::new(2), &mut rng1);
    let b = build(&g, &BuildParams::new(2), &mut rng2);
    assert_eq!(a.report.rounds, b.report.rounds);
    assert_eq!(a.report.max_table_words, b.report.max_table_words);
    assert_eq!(a.report.total_membership, b.report.total_membership);
    for v in g.vertices() {
        let ta = &a.scheme.tables[v.index()].entries;
        let tb = &b.scheme.tables[v.index()].entries;
        assert_eq!(ta.len(), tb.len());
    }
}
