//! Property-based tests (proptest) for the core invariants:
//!
//! * distributed tree routing ≡ centralized Thorup–Zwick, on arbitrary
//!   random trees in arbitrary random networks;
//! * the hopset sandwich `d ≤ d_{G∪H}^{(β)} ≤ (1+ε)·d` (here ε = 0 because
//!   edges carry exact distances; the slack enters only through limits);
//! * pruned-exploration clusters ≡ the set definition (Eq. 1);
//! * tree-routing exactness for every pair;
//! * general-scheme stretch ≤ 4k − 3 on random weighted graphs.

use graphs::{shortest_paths, tree, GraphBuilder, VertexId};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A connected random weighted graph from a compact description: `n`,
/// extra-edge pairs, and weights — all driven by proptest.
fn arb_graph(max_n: usize) -> impl Strategy<Value = graphs::Graph> {
    (3..max_n)
        .prop_flat_map(|n| {
            let tree_parents = proptest::collection::vec(0..u32::MAX, n - 1);
            let tree_weights = proptest::collection::vec(1u64..50, n - 1);
            let extras = proptest::collection::vec((0..u32::MAX, 0..u32::MAX, 1u64..50), 0..n);
            (Just(n), tree_parents, tree_weights, extras)
        })
        .prop_map(|(n, parents, weights, extras)| {
            let mut b = GraphBuilder::new(n);
            for v in 1..n {
                let p = (parents[v - 1] as usize) % v;
                b.add_edge(VertexId(p as u32), VertexId(v as u32), weights[v - 1]);
            }
            for (x, y, w) in extras {
                let u = (x as usize) % n;
                let v = (y as usize) % n;
                if u != v && !b.has_edge(VertexId(u as u32), VertexId(v as u32)) {
                    b.add_edge(VertexId(u as u32), VertexId(v as u32), w);
                }
            }
            b.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn distributed_tree_scheme_equals_centralized(
        g in arb_graph(60),
        root_sel in 0..u32::MAX,
        seed in 0..u64::MAX,
    ) {
        let n = g.num_vertices();
        let root = VertexId(root_sel % n as u32);
        let t = tree::shortest_path_tree(&g, root);
        let net = congest::Network::new(g);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let out = tree_routing::distributed::build_default(&net, &t, &mut rng);
        tree_routing::distributed::assert_matches_centralized(&t, &out);
    }

    #[test]
    fn tree_routing_is_exact_on_all_pairs(
        g in arb_graph(40),
        seed in 0..u64::MAX,
    ) {
        let t = tree::shortest_path_tree(&g, VertexId(0));
        let net = congest::Network::new(g);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let out = tree_routing::distributed::build_default(&net, &t, &mut rng);
        tree_routing::router::verify_exactness(&t, &out.scheme);
    }

    #[test]
    fn baseline_tree_routing_is_exact(
        g in arb_graph(36),
        seed in 0..u64::MAX,
    ) {
        let t = tree::shortest_path_tree(&g, VertexId(0));
        let net = congest::Network::new(g);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let out = tree_routing::baseline::build(&net, &t, None, &mut rng);
        let verts: Vec<VertexId> = t.vertices().collect();
        for &u in &verts {
            for &v in &verts {
                let trace = tree_routing::baseline::route(&t, &out.scheme, u, v).unwrap();
                prop_assert_eq!(Some(trace.weight), t.tree_distance(u, v));
            }
        }
    }

    #[test]
    fn hopset_estimates_sandwich_distances(
        g in arb_graph(50),
        seed in 0..u64::MAX,
    ) {
        let n = g.num_vertices();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let virt = hopset::VirtualGraph::sample(&g, 0.4, &mut rng);
        prop_assume!(!virt.virtual_vertices().is_empty());
        let mut led = congest::CostLedger::new();
        let mut mem = congest::MemoryMeter::new(n);
        let hs = hopset::construction::build(
            &g, &virt, hopset::HopsetParams::default(), 4, &mut led, &mut mem, &mut rng,
        );
        let root = virt.virtual_vertices()[0];
        let bf = hopset::bellman_ford::LimitedBf { g: &g, virt: &virt, hopset: &hs.hopset };
        let out = bf.run(&[(root, 0)], &|_, _| true, 2 * n + 4, 4, &mut led, &mut mem);
        let exact = shortest_paths::dijkstra(&g, root);
        for &x in virt.virtual_vertices() {
            // Lower bound always; equality once converged (B covers G here).
            prop_assert!(out.est[x.index()] >= exact[x.index()]);
            prop_assert_eq!(out.est[x.index()], exact[x.index()]);
        }
    }

    #[test]
    fn clusters_match_definition(
        g in arb_graph(40),
        mask in 1u32..15,
    ) {
        let n = g.num_vertices();
        // Deterministic pseudo-level set from the mask.
        let a1: Vec<VertexId> = (0..n as u32)
            .filter(|v| v % (mask + 1) == 0)
            .map(VertexId)
            .collect();
        prop_assume!(!a1.is_empty());
        let (next, _) = shortest_paths::multi_source_dijkstra(&g, &a1);
        let roots: Vec<VertexId> = (0..n as u32)
            .map(VertexId)
            .filter(|v| !a1.contains(v))
            .collect();
        let mut led = congest::CostLedger::new();
        let mut mem = congest::MemoryMeter::new(n);
        let (trees, _) = routing::clusters::exact_clusters(&g, &roots, 0, &next, n, &mut led, &mut mem);
        for t in &trees {
            let dv = shortest_paths::dijkstra(&g, t.root);
            for u in g.vertices() {
                let in_def = u == t.root || dv[u.index()] < next[u.index()];
                prop_assert_eq!(t.contains(u), in_def);
            }
        }
    }

    #[test]
    fn general_scheme_stretch_bound(
        g in arb_graph(40),
        seed in 0..u64::MAX,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let built = routing::build(&g, &routing::BuildParams::new(2), &mut rng);
        let srcs: Vec<VertexId> = g.vertices().step_by(5).collect();
        let stats = routing::router::measure_stretch(
            &g, &built.scheme, &srcs, routing::router::Selection::SourceOptimal,
        );
        prop_assert!(stats.max <= 5.0 + 0.5, "stretch {} > 4k-3+o(1)", stats.max);
    }

    #[test]
    fn exploration_equals_hop_bounded_bellman_ford(
        g in arb_graph(40),
        hops in 1usize..12,
        src_sel in 0..u32::MAX,
    ) {
        let n = g.num_vertices();
        let src = VertexId(src_sel % n as u32);
        let virt = hopset::VirtualGraph::from_set(&g, vec![src], hops);
        let mut led = congest::CostLedger::new();
        let mut mem = congest::MemoryMeter::new(n);
        let out = virt.bounded_exploration(&g, &[(src, 0)], &|_, _| true, &mut led, &mut mem);
        let want = shortest_paths::hop_bounded_distances(&g, src, hops);
        prop_assert_eq!(out.dist, want);
    }

    #[test]
    fn weight_rounding_dominates_and_bounds_inflation(
        g in arb_graph(40),
        eps_pct in 1u32..50,
    ) {
        let eps = eps_pct as f64 / 100.0;
        let r = graphs::rounding::round_weights(&g, eps);
        for ((_, _, w), (_, _, rw)) in g.edges().zip(r.graph.edges()) {
            prop_assert!(rw >= w);
            prop_assert!((rw as f64) <= (w as f64) * (1.0 + eps) * (1.0 + eps));
        }
    }

    #[test]
    fn label_encoding_round_trips(
        g in arb_graph(50),
        root_sel in 0..u32::MAX,
    ) {
        let n = g.num_vertices();
        let root = VertexId(root_sel % n as u32);
        let t = tree::shortest_path_tree(&g, root);
        let s = tree_routing::tz::build(&t);
        for v in t.vertices() {
            let label = s.label(v).unwrap();
            let bytes = tree_routing::encode::encode_label(label);
            let decoded = tree_routing::encode::decode_label(&bytes);
            prop_assert_eq!(decoded.as_ref(), Some(label));
            let table = s.table(v).unwrap();
            let bytes = tree_routing::encode::encode_table(table);
            let decoded = tree_routing::encode::decode_table(&bytes);
            prop_assert_eq!(decoded.as_ref(), Some(table));
        }
    }

    #[test]
    fn oracle_never_undershoots(
        g in arb_graph(36),
        seed in 0..u64::MAX,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let built = routing::build(&g, &routing::BuildParams::new(2), &mut rng);
        let oracle = routing::oracle::DistanceOracle::new(&built.scheme);
        for u in g.vertices().step_by(3) {
            let exact = shortest_paths::dijkstra(&g, u);
            for v in g.vertices().step_by(2) {
                let est = oracle.query(u, v);
                prop_assert!(est >= exact[v.index()]);
                if u != v {
                    // 2k-1 bound with approximation slack.
                    prop_assert!((est as f64) <= 3.6 * exact[v.index()] as f64);
                }
            }
        }
    }

    #[test]
    fn scheme_verify_passes_on_all_builds(
        g in arb_graph(36),
        seed in 0..u64::MAX,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let built = routing::build(&g, &routing::BuildParams::new(2), &mut rng);
        prop_assert!(routing::verify::verify(&g, &built.scheme).is_empty());
    }

    #[test]
    fn sparse_cover_routing_is_complete_and_bounded(
        g in arb_graph(30),
    ) {
        let k = 2;
        let scheme = routing::covers::build_cover_scheme(&g, k);
        let bound = (8 * (k as u64 + 1)) as f64;
        for u in g.vertices().step_by(3) {
            let du = shortest_paths::dijkstra(&g, u);
            for v in g.vertices().step_by(2) {
                let trace = routing::covers::route_cover(&g, &scheme, u, v)
                    .expect("connected graph routes");
                prop_assert!(trace.weight >= du[v.index()].min(trace.weight));
                if u != v {
                    prop_assert!(trace.weight >= du[v.index()]);
                    prop_assert!((trace.weight as f64) <= bound * du[v.index()] as f64);
                }
            }
        }
    }

    #[test]
    fn sc_hopset_edges_are_exact_distances(
        g in arb_graph(40),
        seed in 0..u64::MAX,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let virt = hopset::VirtualGraph::sample(&g, 0.35, &mut rng);
        prop_assume!(virt.virtual_vertices().len() >= 2);
        let mut led = congest::CostLedger::new();
        let mut mem = congest::MemoryMeter::new(g.num_vertices());
        let out = hopset::superclustering::build_sc(
            &g, &virt, hopset::HopsetParams::default(), 0.25, 4, &mut led, &mut mem, &mut rng,
        );
        for u in g.vertices() {
            if out.hopset.out_edges(u).is_empty() {
                continue;
            }
            let du = shortest_paths::dijkstra(&g, u);
            for e in out.hopset.out_edges(u) {
                prop_assert_eq!(e.weight, du[e.to.index()]);
            }
        }
    }

    #[test]
    fn range_partition_protocol_matches_prefix_sums(
        g in arb_graph(40),
        sizes_seed in 0..u64::MAX,
    ) {
        use rand::Rng as _;
        let t = tree::shortest_path_tree(&g, VertexId(0));
        let net = congest::Network::new(g);
        let mut rng = ChaCha8Rng::seed_from_u64(sizes_seed);
        let sizes: Vec<u64> = (0..net.len()).map(|_| rng.gen_range(1..50)).collect();
        let out = tree_routing::engine_validation::validate_range_partition(&net, &t, &sizes);
        for v in t.vertices() {
            let mut prefix = 0;
            for &c in t.children(v) {
                prefix += sizes[c.index()];
                prop_assert_eq!(out.prefix[c.index()], prefix);
            }
        }
    }

    #[test]
    fn memory_meter_never_underflows_peak(
        ops in proptest::collection::vec((0usize..4, 0usize..3, 1usize..20), 1..60),
    ) {
        let mut m = congest::MemoryMeter::new(4);
        for (kind, v, w) in ops {
            let v = VertexId(v as u32);
            match kind {
                0 => m.add(v, w),
                1 => m.sub(v, w),
                2 => m.set(v, w),
                _ => m.touch(v, w),
            }
            prop_assert!(m.peak(v) >= m.current(v));
        }
    }
}
