//! End-to-end contracts of the query-serving plane (`crates/serve`).
//!
//! The serving pool's answers are never trusted on their own: with the
//! cross-check rate pinned to 1.0 every served answer is re-derived through
//! the central `routing::router` / `DistanceOracle` and must match byte for
//! byte, on random graphs, at 1, 2, and 8 worker threads. The simulated
//! summary columns must be invariant across thread counts and loop
//! disciplines; a snapshot loaded back from the checksummed persistence
//! container must serve the exact answer stream of the in-memory build; and
//! `serve_summary` records must survive the JSONL report channel with their
//! partition identities re-validated on parse.

use std::path::PathBuf;

use graphs::{generators, GraphBuilder, VertexId};
use obs::json::Value;
use obs::serve::ServeSummary;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use routing::{build, persist, BuildParams};
use serve::{
    generate_stream, run_closed, run_open, ServeConfig, ServePool, ServeWorkload, Snapshot,
};

/// Thread counts checked against the serial run.
const THREADS: [usize; 2] = [2, 8];

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("drt-serve-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// A connected random weighted graph from a compact description (same
/// idiom as `tests/traffic_steady.rs`).
fn arb_graph(max_n: usize) -> impl Strategy<Value = graphs::Graph> {
    (4..max_n)
        .prop_flat_map(|n| {
            let tree_parents = proptest::collection::vec(0..u32::MAX, n - 1);
            let tree_weights = proptest::collection::vec(1u64..50, n - 1);
            let extras = proptest::collection::vec((0..u32::MAX, 0..u32::MAX, 1u64..50), 0..n);
            (Just(n), tree_parents, tree_weights, extras)
        })
        .prop_map(|(n, parents, weights, extras)| {
            let mut b = GraphBuilder::new(n);
            for v in 1..n {
                let p = (parents[v - 1] as usize) % v;
                b.add_edge(VertexId(p as u32), VertexId(v as u32), weights[v - 1]);
            }
            for (x, y, w) in extras {
                let u = (x as usize) % n;
                let v = (y as usize) % n;
                if u != v && !b.has_edge(VertexId(u as u32), VertexId(v as u32)) {
                    b.add_edge(VertexId(u as u32), VertexId(v as u32), w);
                }
            }
            b.build()
        })
}

fn workload_from(sel: u8) -> ServeWorkload {
    match sel % 3 {
        0 => ServeWorkload::Uniform,
        1 => ServeWorkload::Hotspot,
        _ => ServeWorkload::Adversarial,
    }
}

/// The thread-invariant simulated columns of a summary, as one tuple.
#[allow(clippy::type_complexity)]
fn sim_columns(s: &ServeSummary) -> (u64, u64, u64, u64, u64, u64, u64, u64, u64, u64, u64) {
    (
        s.route_queries,
        s.distance_queries,
        s.trace_queries,
        s.answered,
        s.unreachable,
        s.errors,
        s.checks,
        s.mismatches,
        s.total_weight,
        s.total_hops,
        s.answer_checksum,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// With every answer cross-checked, the pool never disagrees with the
    /// central router/oracle — on random graphs, workloads, seeds, and at
    /// every thread count.
    #[test]
    fn served_answers_match_the_central_plane(
        g in arb_graph(28),
        seed in 0..u64::MAX,
        workload_sel in 0..3u8,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let built = build(&g, &BuildParams::new(2), &mut rng);
        let snap = Snapshot::share(g, built.scheme);
        let config = ServeConfig {
            workload: workload_from(workload_sel),
            queries: 192,
            batch: 17, // deliberately ragged: chunks must not align with batches
            seed,
            check_rate: 1.0,
            ..ServeConfig::default()
        };
        let stream = generate_stream(&snap, &config);
        for threads in [1, 2, 8] {
            let cfg = ServeConfig { threads, ..config };
            let mut pool = ServePool::start(snap.clone(), threads);
            let summary = run_closed(&mut pool, &stream, &cfg);
            prop_assert!(summary.consistent());
            prop_assert_eq!(summary.queries, 192);
            // Rate 1.0 checks every answer; any divergence from the central
            // plane at this thread count lands in `mismatches`.
            prop_assert_eq!(summary.checks, 192);
            prop_assert_eq!(summary.mismatches, 0);
            prop_assert_eq!(summary.errors, 0);
        }
    }

    /// The simulated summary columns are a pure function of
    /// `(snapshot, stream, config)`: identical across worker-thread counts
    /// and across the closed/open loop disciplines.
    #[test]
    fn summaries_are_thread_count_and_mode_invariant(
        g in arb_graph(24),
        seed in 0..u64::MAX,
        workload_sel in 0..3u8,
        check_centi in 0u64..=100,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let built = build(&g, &BuildParams::new(2), &mut rng);
        let snap = Snapshot::share(g, built.scheme);
        let config = ServeConfig {
            workload: workload_from(workload_sel),
            queries: 128,
            batch: 23,
            seed,
            check_rate: check_centi as f64 / 100.0,
            ..ServeConfig::default()
        };
        let stream = generate_stream(&snap, &config);
        let mut pool = ServePool::start(snap.clone(), 1);
        let serial = run_closed(&mut pool, &stream, &config);
        // An open loop offered an absurd rate is a closed loop with pacing
        // arithmetic in the way: same stream, same sim columns.
        let open = run_open(&mut pool, &stream, &config, 1e12);
        prop_assert_eq!(sim_columns(&serial), sim_columns(&open));
        for threads in THREADS {
            let cfg = ServeConfig { threads, ..config };
            let mut pool = ServePool::start(snap.clone(), threads);
            let par = run_closed(&mut pool, &stream, &cfg);
            prop_assert_eq!(sim_columns(&serial), sim_columns(&par));
        }
    }
}

/// A snapshot rehydrated from the checksummed on-disk container serves the
/// byte-identical answer stream of the freshly built scheme.
#[test]
fn persisted_snapshot_serves_identical_answers() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x5E12_ED15);
    let g = generators::erdos_renyi_connected(72, 3.0 / 72.0, 1..=9, &mut rng);
    let built = build(&g, &BuildParams::new(2), &mut rng);

    let path = temp_path("scheme.bin");
    persist::save_scheme_to(&path, &built.scheme).unwrap();
    let loaded = persist::load_scheme_from(&path).unwrap();

    let config = ServeConfig {
        queries: 512,
        batch: 64,
        threads: 2,
        check_rate: 1.0,
        ..ServeConfig::default()
    };
    let run = |scheme: routing::RoutingScheme| {
        let snap = Snapshot::share(g.clone(), scheme);
        let stream = generate_stream(&snap, &config);
        let mut pool = ServePool::start(snap, config.threads);
        run_closed(&mut pool, &stream, &config)
    };
    let fresh = run(built.scheme);
    let rehydrated = run(loaded);
    assert_eq!(sim_columns(&fresh), sim_columns(&rehydrated));
    assert_eq!(rehydrated.mismatches, 0);
    assert_eq!(rehydrated.errors, 0);
}

/// A `serve_summary` record written through a [`obs::Recorder`] report
/// survives the JSONL channel byte-exactly, and parsing re-validates it.
#[test]
fn serve_summary_round_trips_through_a_report() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x5E12_E0B5);
    let g = generators::erdos_renyi_connected(48, 3.0 / 48.0, 1..=9, &mut rng);
    let built = build(&g, &BuildParams::new(2), &mut rng);
    let snap = Snapshot::share(g, built.scheme);
    let config = ServeConfig {
        queries: 256,
        threads: 2,
        check_rate: 0.25,
        ..ServeConfig::default()
    };
    let stream = generate_stream(&snap, &config);
    let mut pool = ServePool::start(snap, config.threads);
    let summary = run_closed(&mut pool, &stream, &config);

    let path = temp_path("serve_report.jsonl");
    let mut rec = obs::Recorder::new();
    rec.add_record(summary.to_value(&[("sweep", Value::from(0u64))]));
    rec.write_report(
        &path,
        "serve",
        &[("queries", Value::from(config.queries as u64))],
    )
    .unwrap();

    let records = obs::read_report(&path).unwrap();
    let found: Vec<ServeSummary> = records
        .iter()
        .filter(|r| r.get("type").and_then(Value::as_str) == Some("serve_summary"))
        .map(|r| ServeSummary::from_value(r).unwrap())
        .collect();
    assert_eq!(found.len(), 1);
    assert_eq!(found[0], summary, "JSONL channel must be lossless");
    // The trailing run_summary still parses and carries the extra field.
    let tail = records.last().unwrap();
    assert_eq!(
        tail.get("type").and_then(Value::as_str),
        Some("run_summary")
    );
    assert_eq!(tail.get("queries").and_then(Value::as_u64), Some(256));
}

/// Parsing re-validates the partition identities: a record whose outcome
/// counters were tampered with fails loudly even though every field is
/// present and well-typed.
#[test]
fn tampered_serve_summary_fails_revalidation() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x5E12_EBAD);
    let g = generators::erdos_renyi_connected(32, 3.0 / 32.0, 1..=9, &mut rng);
    let built = build(&g, &BuildParams::new(2), &mut rng);
    let snap = Snapshot::share(g, built.scheme);
    let config = ServeConfig {
        queries: 64,
        ..ServeConfig::default()
    };
    let stream = generate_stream(&snap, &config);
    let mut pool = ServePool::start(snap, 1);
    let summary = run_closed(&mut pool, &stream, &config);
    assert!(ServeSummary::from_value(&summary.to_value(&[])).is_ok());

    let mut tampered = summary.clone();
    tampered.answered += 1; // outcomes no longer partition the stream
    let err = ServeSummary::from_value(&tampered.to_value(&[])).unwrap_err();
    assert!(err.to_string().contains("partition"), "{err}");

    let mut overflow = summary;
    overflow.checks = overflow.queries + 1; // more checks than queries
    assert!(ServeSummary::from_value(&overflow.to_value(&[])).is_err());
}
