//! Determinism and conservation properties of the steady-state traffic
//! engine, driven end to end through random graphs.
//!
//! The traffic plane's contract extends the engine's serial-equivalence
//! guarantee to the statistics a rate sweep gates on: the `traffic_summary`
//! (delivery/drop/queue counters, latency distributions), the per-round
//! series, the per-flow outcomes, and the edge-load heatmap must be
//! byte-identical at any worker-thread count. Separately, every run —
//! whatever the workload, rate, or queue capacity — must satisfy the
//! packet-conservation identity at *every* round, not just in aggregate.

use graphs::{GraphBuilder, VertexId};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use routing::{build, BuildParams};
use traffic::{ArrivalKind, DropPolicy, ScenarioConfig, TrafficScenario, WorkloadKind};

/// Thread counts checked against the serial run.
const THREADS: [usize; 2] = [2, 8];

/// A connected random weighted graph from a compact description (same
/// idiom as `tests/parallel_engine.rs`).
fn arb_graph(max_n: usize) -> impl Strategy<Value = graphs::Graph> {
    (4..max_n)
        .prop_flat_map(|n| {
            let tree_parents = proptest::collection::vec(0..u32::MAX, n - 1);
            let tree_weights = proptest::collection::vec(1u64..50, n - 1);
            let extras = proptest::collection::vec((0..u32::MAX, 0..u32::MAX, 1u64..50), 0..n);
            (Just(n), tree_parents, tree_weights, extras)
        })
        .prop_map(|(n, parents, weights, extras)| {
            let mut b = GraphBuilder::new(n);
            for v in 1..n {
                let p = (parents[v - 1] as usize) % v;
                b.add_edge(VertexId(p as u32), VertexId(v as u32), weights[v - 1]);
            }
            for (x, y, w) in extras {
                let u = (x as usize) % n;
                let v = (y as usize) % n;
                if u != v && !b.has_edge(VertexId(u as u32), VertexId(v as u32)) {
                    b.add_edge(VertexId(u as u32), VertexId(v as u32), w);
                }
            }
            b.build()
        })
}

fn workload_from(sel: u8) -> WorkloadKind {
    let all = WorkloadKind::all();
    all[(sel as usize) % all.len()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The full scenario — schedule planning, finite queues, drops,
    /// drain — produces byte-identical statistics at 1, 2, and 8 threads.
    #[test]
    fn traffic_statistics_are_thread_count_invariant(
        g in arb_graph(32),
        seed in 0..u64::MAX,
        workload_sel in 0..4u8,
        rate_centi in 25u64..400,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let built = build(&g, &BuildParams::new(2), &mut rng);
        let net = congest::Network::new(g);
        let run_at = |threads: usize| {
            let scenario = TrafficScenario {
                network: &net,
                scheme: &built.scheme,
                workload: workload_from(workload_sel),
                config: ScenarioConfig {
                    inject_rounds: 24,
                    queue_cap: 2,
                    threads,
                    seed,
                    ..ScenarioConfig::default()
                },
            };
            scenario.run(rate_centi as f64 / 100.0)
        };
        let serial = run_at(1);
        for threads in THREADS {
            let par = run_at(threads);
            prop_assert_eq!(&serial.summary, &par.summary);
            prop_assert_eq!(&serial.series, &par.series);
            prop_assert_eq!(&serial.flows, &par.flows);
            prop_assert!(
                serial.stats.same_simulation(&par.stats),
                "engine stats diverged at {} threads:\n  serial: {:?}\n  parallel: {:?}",
                threads, serial.stats, par.stats
            );
            // EdgeLoadMap carries no PartialEq; its canonical JSONL
            // serialization (sorted edges) must match byte for byte.
            prop_assert_eq!(
                serial.edge_load.to_value(&[]).to_string(),
                par.edge_load.to_value(&[]).to_string()
            );
        }
    }

    /// Cumulative injected = delivered + dropped + queued + on-wire at
    /// every round boundary, for every workload/arrival/policy corner.
    #[test]
    fn conservation_holds_at_every_round(
        g in arb_graph(28),
        seed in 0..u64::MAX,
        workload_sel in 0..4u8,
        bernoulli_sel in 0..2u8,
        oldest_sel in 0..2u8,
        rate_centi in 25u64..600,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let built = build(&g, &BuildParams::new(2), &mut rng);
        let net = congest::Network::new(g);
        let scenario = TrafficScenario {
            network: &net,
            scheme: &built.scheme,
            workload: workload_from(workload_sel),
            config: ScenarioConfig {
                arrival: if bernoulli_sel == 1 { ArrivalKind::Bernoulli } else { ArrivalKind::Fixed },
                policy: if oldest_sel == 1 { DropPolicy::OldestDrop } else { DropPolicy::TailDrop },
                inject_rounds: 24,
                queue_cap: 1, // tightest queues: maximize drops
                seed,
                ..ScenarioConfig::default()
            },
        };
        let run = scenario.run(rate_centi as f64 / 100.0);
        prop_assert_eq!(run.verify_conservation(), Ok(()));
        prop_assert!(run.summary.conserved(), "summary violates conservation");
        // A drained run accounts for every injected packet terminally.
        if run.summary.drained {
            prop_assert_eq!(
                run.summary.injected,
                run.summary.delivered + run.summary.dropped()
            );
        }
    }
}
