//! Seeded workload models and arrival processes.
//!
//! A [`Workload`] is a prepared distribution over source–destination pairs;
//! an [`Arrival`] turns a real-valued offered rate (packets per round,
//! network-wide) into a deterministic per-round injection count. Both draw
//! exclusively from a caller-supplied [`ChaCha8Rng`], so a scenario's entire
//! injection schedule is a pure function of `(graph, scheme, seed, rate)` —
//! never of the wall clock or the thread count.

use graphs::shortest_paths::dijkstra;
use graphs::{Graph, VertexId, Weight};
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use routing::oracle::DistanceOracle;
use routing::RoutingScheme;

/// Salt mixed into the scenario seed for the worst-pair mining RNG, so the
/// mining draws never overlap the injection-schedule draws.
const MINE_SALT: u64 = 0x57A7_0F57_E7C4;

/// Sources sampled when mining worst-stretch pairs.
const MINE_SOURCES: usize = 32;
/// Candidate destinations examined per mined source.
const MINE_CANDIDATES: usize = 64;
/// Size of the retained worst-stretch pool.
const MINE_POOL: usize = 64;

/// The built-in traffic matrices.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Uniformly random distinct pairs.
    Uniform,
    /// Gravity model: both endpoints drawn with probability proportional to
    /// degree, so hubs originate and attract proportionally more traffic.
    Gravity,
    /// All traffic converges on a single sink (the highest-degree vertex);
    /// sources are uniform over the rest.
    Hotspot,
    /// Adversarial pairs mined from the distance oracle: the pool of pairs
    /// with the worst estimated stretch, cycled round-robin.
    WorstPairs,
}

impl WorkloadKind {
    /// The schema/CLI name of this workload.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::Uniform => "uniform",
            WorkloadKind::Gravity => "gravity",
            WorkloadKind::Hotspot => "hotspot",
            WorkloadKind::WorstPairs => "worst",
        }
    }

    /// Parse a CLI name back into a kind.
    pub fn parse(name: &str) -> Option<WorkloadKind> {
        match name {
            "uniform" => Some(WorkloadKind::Uniform),
            "gravity" => Some(WorkloadKind::Gravity),
            "hotspot" => Some(WorkloadKind::Hotspot),
            "worst" => Some(WorkloadKind::WorstPairs),
            _ => None,
        }
    }

    /// All built-in kinds, for help text and exhaustive tests.
    pub fn all() -> &'static [WorkloadKind] {
        &[
            WorkloadKind::Uniform,
            WorkloadKind::Gravity,
            WorkloadKind::Hotspot,
            WorkloadKind::WorstPairs,
        ]
    }
}

/// A prepared pair distribution over one graph.
#[derive(Clone, Debug)]
pub struct Workload {
    kind: WorkloadKind,
    n: u32,
    /// Gravity: cumulative degree prefix sums, one slot per vertex.
    cum_degree: Vec<u64>,
    /// Hotspot: the sink every flow targets.
    sink: VertexId,
    /// WorstPairs: the mined pool, worst stretch first.
    pool: Vec<(VertexId, VertexId)>,
    /// WorstPairs: round-robin cursor into `pool`.
    cursor: usize,
}

impl Workload {
    /// Prepare `kind` over `g`. The scheme is only consulted by
    /// [`WorkloadKind::WorstPairs`] (its oracle estimates rank candidate
    /// pairs); `seed` only feeds the mining RNG, which is salted so its
    /// draws are independent of the injection schedule's.
    ///
    /// # Panics
    ///
    /// Panics if the graph has fewer than two vertices — no workload can
    /// offer a distinct pair on a smaller graph.
    pub fn prepare(kind: WorkloadKind, g: &Graph, scheme: &RoutingScheme, seed: u64) -> Workload {
        let n = g.num_vertices();
        assert!(n >= 2, "traffic workloads need at least two vertices");
        let mut w = Workload {
            kind,
            n: n as u32,
            cum_degree: Vec::new(),
            sink: VertexId(0),
            pool: Vec::new(),
            cursor: 0,
        };
        match kind {
            WorkloadKind::Uniform => {}
            WorkloadKind::Gravity => {
                let mut acc = 0u64;
                w.cum_degree = g
                    .vertices()
                    .map(|v| {
                        // A +1 floor keeps isolated vertices drawable, so the
                        // prefix sums stay strictly increasing.
                        acc += g.degree(v) as u64 + 1;
                        acc
                    })
                    .collect();
            }
            WorkloadKind::Hotspot => {
                // Max degree, ties to the smallest id: deterministic.
                w.sink = g
                    .vertices()
                    .max_by_key(|&v| (g.degree(v), std::cmp::Reverse(v.0)))
                    .expect("non-empty graph");
            }
            WorkloadKind::WorstPairs => {
                use rand::SeedableRng;
                let mut mine_rng = ChaCha8Rng::seed_from_u64(seed ^ MINE_SALT);
                w.pool = mine_worst_pairs(g, scheme, &mut mine_rng);
            }
        }
        w
    }

    /// The kind this workload was prepared as.
    pub fn kind(&self) -> WorkloadKind {
        self.kind
    }

    /// The hotspot sink (only meaningful for [`WorkloadKind::Hotspot`]).
    pub fn sink(&self) -> VertexId {
        self.sink
    }

    /// The mined worst-stretch pool (only meaningful for
    /// [`WorkloadKind::WorstPairs`]).
    pub fn pool(&self) -> &[(VertexId, VertexId)] {
        &self.pool
    }

    /// Draw one source–destination pair (always distinct endpoints).
    pub fn draw(&mut self, rng: &mut ChaCha8Rng) -> (VertexId, VertexId) {
        match self.kind {
            WorkloadKind::Uniform => {
                let src = rng.gen_range(0..self.n);
                let mut dst = rng.gen_range(0..self.n);
                while dst == src {
                    dst = rng.gen_range(0..self.n);
                }
                (VertexId(src), VertexId(dst))
            }
            WorkloadKind::Gravity => {
                let src = self.draw_by_degree(rng);
                let mut dst = self.draw_by_degree(rng);
                while dst == src {
                    dst = self.draw_by_degree(rng);
                }
                (src, dst)
            }
            WorkloadKind::Hotspot => {
                let mut src = VertexId(rng.gen_range(0..self.n));
                while src == self.sink {
                    src = VertexId(rng.gen_range(0..self.n));
                }
                (src, self.sink)
            }
            WorkloadKind::WorstPairs => {
                // The pool is never empty (mining falls back to a uniform
                // pair on degenerate graphs), so the cycle is total.
                let pair = self.pool[self.cursor % self.pool.len()];
                self.cursor = (self.cursor + 1) % self.pool.len();
                pair
            }
        }
    }

    fn draw_by_degree(&self, rng: &mut ChaCha8Rng) -> VertexId {
        let total = *self.cum_degree.last().expect("non-empty graph");
        let r = rng.gen_range(0..total);
        let i = self.cum_degree.partition_point(|&c| c <= r);
        VertexId(i as u32)
    }
}

/// Mine the pairs the scheme routes worst: sample sources, compare the
/// distance oracle's estimate against the true (Dijkstra) distance for a
/// batch of candidate destinations, and keep the pairs with the largest
/// estimated stretch. Ties and ordering are broken by vertex ids, so the
/// pool is a pure function of `(graph, scheme, rng stream)`.
fn mine_worst_pairs(
    g: &Graph,
    scheme: &RoutingScheme,
    rng: &mut ChaCha8Rng,
) -> Vec<(VertexId, VertexId)> {
    let n = g.num_vertices() as u32;
    let oracle = DistanceOracle::new(scheme);
    // (scaled stretch, src, dst): stretch quantized to 1/1024ths so the sort
    // key is integral and exactly reproducible.
    let mut ranked: Vec<(u64, u32, u32)> = Vec::new();
    let sources: usize = MINE_SOURCES.min(n as usize);
    let mut seen_src = std::collections::HashSet::new();
    while seen_src.len() < sources {
        seen_src.insert(rng.gen_range(0..n));
    }
    let mut sorted_src: Vec<u32> = seen_src.into_iter().collect();
    sorted_src.sort_unstable();
    for src in sorted_src {
        let exact = dijkstra(g, VertexId(src));
        for _ in 0..MINE_CANDIDATES {
            let dst = rng.gen_range(0..n);
            if dst == src {
                continue;
            }
            let true_dist = exact[dst as usize];
            if true_dist == 0 || true_dist == Weight::MAX {
                continue;
            }
            let est = oracle.query(VertexId(src), VertexId(dst));
            if est == Weight::MAX {
                continue;
            }
            let scaled = est.saturating_mul(1024) / true_dist;
            ranked.push((scaled, src, dst));
        }
    }
    ranked.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
    ranked.dedup_by_key(|&mut (_, s, d)| (s, d));
    ranked.truncate(MINE_POOL);
    let mut pool: Vec<(VertexId, VertexId)> = ranked
        .into_iter()
        .map(|(_, s, d)| (VertexId(s), VertexId(d)))
        .collect();
    if pool.is_empty() {
        // Degenerate graph (e.g. fully disconnected under the oracle): fall
        // back to the first distinct pair so draws stay total.
        pool.push((VertexId(0), VertexId(1 % n.max(2))));
    }
    pool
}

/// The built-in arrival processes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArrivalKind {
    /// Deterministic fluid arrivals: a fractional-rate accumulator injects
    /// `⌊carry⌋` packets per round, carrying the remainder forward.
    Fixed,
    /// Seeded stochastic arrivals: `⌊rate⌋` packets plus one Bernoulli draw
    /// on the fractional part — a coarse Poisson stand-in with bounded
    /// per-round burst.
    Bernoulli,
}

impl ArrivalKind {
    /// The schema/CLI name of this process.
    pub fn name(self) -> &'static str {
        match self {
            ArrivalKind::Fixed => "fixed",
            ArrivalKind::Bernoulli => "bernoulli",
        }
    }

    /// Parse a CLI name back into a kind.
    pub fn parse(name: &str) -> Option<ArrivalKind> {
        match name {
            "fixed" => Some(ArrivalKind::Fixed),
            "bernoulli" => Some(ArrivalKind::Bernoulli),
            _ => None,
        }
    }
}

/// A stateful arrival process at a fixed offered rate.
#[derive(Clone, Debug)]
pub struct Arrival {
    kind: ArrivalKind,
    rate: f64,
    carry: f64,
}

impl Arrival {
    /// An arrival process offering `rate` packets per round. Negative or
    /// non-finite rates are clamped to zero.
    pub fn new(kind: ArrivalKind, rate: f64) -> Arrival {
        let rate = if rate.is_finite() { rate.max(0.0) } else { 0.0 };
        Arrival {
            kind,
            rate,
            carry: 0.0,
        }
    }

    /// The packets to inject this round.
    pub fn count(&mut self, rng: &mut ChaCha8Rng) -> usize {
        match self.kind {
            ArrivalKind::Fixed => {
                self.carry += self.rate;
                let k = self.carry.floor();
                self.carry -= k;
                k as usize
            }
            ArrivalKind::Bernoulli => {
                let base = self.rate.floor();
                let frac = self.rate - base;
                // Always burn exactly one draw per round, so the stream
                // position is independent of the fractional part.
                let extra = rng.gen::<f64>() < frac;
                base as usize + usize::from(extra)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::generators;
    use rand::SeedableRng;
    use routing::BuildParams;

    fn setup(n: usize, seed: u64) -> (Graph, RoutingScheme) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = generators::erdos_renyi_connected(n, 0.05, 1..=20, &mut rng);
        let scheme = routing::build(&g, &BuildParams::new(2), &mut rng).scheme;
        (g, scheme)
    }

    #[test]
    fn draws_are_seed_deterministic_and_distinct() {
        let (g, scheme) = setup(48, 21);
        for &kind in WorkloadKind::all() {
            let mut a = Workload::prepare(kind, &g, &scheme, 7);
            let mut b = Workload::prepare(kind, &g, &scheme, 7);
            let mut rng_a = ChaCha8Rng::seed_from_u64(99);
            let mut rng_b = ChaCha8Rng::seed_from_u64(99);
            for _ in 0..200 {
                let (s, d) = a.draw(&mut rng_a);
                assert_eq!((s, d), b.draw(&mut rng_b), "{}", kind.name());
                assert_ne!(s, d, "{}", kind.name());
                assert!(s.index() < 48 && d.index() < 48);
            }
        }
    }

    #[test]
    fn hotspot_targets_the_max_degree_vertex() {
        let (g, scheme) = setup(48, 22);
        let mut w = Workload::prepare(WorkloadKind::Hotspot, &g, &scheme, 7);
        let sink = w.sink();
        assert_eq!(g.degree(sink), g.max_degree());
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..50 {
            assert_eq!(w.draw(&mut rng).1, sink);
        }
    }

    #[test]
    fn worst_pairs_cycle_a_nonempty_mined_pool() {
        let (g, scheme) = setup(48, 23);
        let mut w = Workload::prepare(WorkloadKind::WorstPairs, &g, &scheme, 7);
        let pool = w.pool().to_vec();
        assert!(!pool.is_empty());
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for i in 0..pool.len() * 2 {
            assert_eq!(w.draw(&mut rng), pool[i % pool.len()]);
        }
    }

    #[test]
    fn gravity_prefers_high_degree_endpoints() {
        let (g, scheme) = setup(64, 24);
        let mut w = Workload::prepare(WorkloadKind::Gravity, &g, &scheme, 7);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut hits = vec![0u32; 64];
        for _ in 0..4000 {
            let (s, d) = w.draw(&mut rng);
            hits[s.index()] += 1;
            hits[d.index()] += 1;
        }
        let hub = g.vertices().max_by_key(|&v| g.degree(v)).unwrap();
        let leaf = g.vertices().min_by_key(|&v| g.degree(v)).unwrap();
        assert!(
            hits[hub.index()] > hits[leaf.index()],
            "hub {} drawn {} times vs leaf {} drawn {}",
            hub.0,
            hits[hub.index()],
            leaf.0,
            hits[leaf.index()]
        );
    }

    #[test]
    fn fixed_arrivals_integrate_the_rate_exactly() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut a = Arrival::new(ArrivalKind::Fixed, 0.75);
        let total: usize = (0..400).map(|_| a.count(&mut rng)).sum();
        assert_eq!(total, 300);
        // A fixed process never consults the RNG: the stream is untouched.
        let mut fresh = ChaCha8Rng::seed_from_u64(0);
        assert_eq!(rng.gen::<u64>(), fresh.gen::<u64>());
    }

    #[test]
    fn bernoulli_arrivals_average_near_the_rate() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut a = Arrival::new(ArrivalKind::Bernoulli, 1.5);
        let total: usize = (0..2000).map(|_| a.count(&mut rng)).sum();
        assert!((2500..=3500).contains(&total), "total {total}");
    }
}
