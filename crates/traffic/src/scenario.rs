//! Scenario runner: graph + scheme + workload + rate, swept to find the
//! saturation knee.
//!
//! A [`TrafficScenario`] fixes everything but the offered rate. [`run`]
//! plans the full injection schedule coordinator-side (seeded, so the run is
//! byte-identical at any thread count), drives [`crate::sim::simulate`], and
//! assembles an [`obs::traffic::TrafficSummary`] plus the dense per-round
//! conservation series. [`sweep`] runs a rate ladder against an [`Slo`] and
//! reports the *knee*: the largest offered rate the network sustains with
//! bounded p99 queueing delay and negligible loss.
//!
//! [`run`]: TrafficScenario::run
//! [`sweep`]: TrafficScenario::sweep

use congest::{Network, RunStats};
use graphs::shortest_paths::dijkstra;
use graphs::{VertexId, Weight};
use obs::flight::{EdgeLoadMap, LoadStats};
use obs::traffic::TrafficSummary;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use routing::{packet, RoutingScheme};

use crate::sim::{simulate, DropPolicy, Injection, RoundTotals, SimConfig, TrafficPacket};
use crate::workload::{Arrival, ArrivalKind, Workload, WorkloadKind};

/// Default seed for scenario schedules.
pub const DEFAULT_SEED: u64 = 0x007A_FF1C;

/// Everything about a scenario except the workload and the rate.
#[derive(Clone, Copy, Debug)]
pub struct ScenarioConfig {
    /// The arrival process.
    pub arrival: ArrivalKind,
    /// Rounds during which sources inject.
    pub inject_rounds: u64,
    /// Engine round cap; `0` picks a drain budget generous enough that a
    /// stable network always finishes (the engine stops early on drain).
    pub max_rounds: u64,
    /// Per-port queue capacity in packets.
    pub queue_cap: usize,
    /// Drop policy at a full queue.
    pub policy: DropPolicy,
    /// Engine worker threads (`1` = serial).
    pub threads: usize,
    /// Profile the engine round loop; phase attribution comes back in the
    /// result's `stats.profile`. Never changes simulated results.
    pub profile: bool,
    /// Schedule seed.
    pub seed: u64,
}

impl Default for ScenarioConfig {
    fn default() -> ScenarioConfig {
        ScenarioConfig {
            arrival: ArrivalKind::Fixed,
            inject_rounds: 128,
            max_rounds: 0,
            queue_cap: 8,
            policy: DropPolicy::TailDrop,
            threads: 1,
            profile: false,
            seed: DEFAULT_SEED,
        }
    }
}

impl ScenarioConfig {
    /// The effective engine round cap: the configured cap (floored at the
    /// injection horizon, so every scheduled packet injects) or an automatic
    /// drain budget.
    pub fn effective_max_rounds(&self) -> u64 {
        if self.max_rounds == 0 {
            self.inject_rounds + self.inject_rounds.saturating_mul(16).max(4096)
        } else {
            self.max_rounds.max(self.inject_rounds)
        }
    }
}

/// What ultimately happened to one offered flow.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlowOutcome {
    /// Arrived: delivery round, routed weight, hop count.
    Delivered {
        /// Engine round of arrival.
        round: u64,
        /// Routed path weight.
        weight: Weight,
        /// Edges traversed.
        hops: u32,
    },
    /// Lost to a full queue.
    DroppedCapacity,
    /// Lost to a stuck forwarding rule or missing port.
    DroppedStuck,
    /// Never injected: the pair has no common tree.
    Undeliverable,
    /// Still queued or on the wire when the round cap cut the run off.
    InFlight,
}

/// One offered flow and its fate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowRecord {
    /// Source vertex.
    pub src: VertexId,
    /// Destination vertex.
    pub dst: VertexId,
    /// Round the flow was offered (and injected, if deliverable).
    pub inject_round: u64,
    /// Its fate.
    pub outcome: FlowOutcome,
}

/// Everything one scenario run produced.
#[derive(Clone, Debug)]
pub struct TrafficRun {
    /// The `traffic_summary` record.
    pub summary: TrafficSummary,
    /// Dense per-round totals (index = round).
    pub series: Vec<RoundTotals>,
    /// Words actually transmitted per edge.
    pub edge_load: EdgeLoadMap,
    /// Engine statistics.
    pub stats: RunStats,
    /// Every offered flow, in offer order.
    pub flows: Vec<FlowRecord>,
}

impl TrafficRun {
    /// Re-check the per-round conservation identity over the dense series:
    /// cumulative injections equal cumulative deliveries plus cumulative
    /// drops plus current queue occupancy plus packets on the wire.
    ///
    /// # Errors
    ///
    /// Returns the first round at which the identity fails.
    pub fn verify_conservation(&self) -> Result<(), String> {
        let (mut inj, mut del, mut drop) = (0u64, 0u64, 0u64);
        for t in &self.series {
            inj += t.injected;
            del += t.delivered;
            drop += t.dropped_capacity + t.dropped_stuck;
            let accounted = del + drop + t.queued_packets + t.sent;
            if inj != accounted {
                return Err(format!(
                    "round {}: injected {} != delivered {} + dropped {} + queued {} + on-wire {}",
                    t.round, inj, del, drop, t.queued_packets, t.sent
                ));
            }
        }
        Ok(())
    }

    /// Whether this run meets `slo`: it drained, its p99 queueing delay is
    /// bounded, and its loss fraction is negligible.
    pub fn sustainable(&self, slo: &Slo) -> bool {
        self.summary.drained
            && self.summary.queue_delay.p99 <= slo.max_p99_queue_delay
            && self.summary.dropped() as f64 <= slo.max_drop_fraction * self.summary.injected as f64
    }
}

/// The service-level objective a sustainable rate must meet.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Slo {
    /// Largest tolerated p99 per-packet queueing delay, in rounds.
    pub max_p99_queue_delay: u64,
    /// Largest tolerated `dropped / injected` fraction.
    pub max_drop_fraction: f64,
}

impl Default for Slo {
    fn default() -> Slo {
        Slo {
            max_p99_queue_delay: 8,
            max_drop_fraction: 0.01,
        }
    }
}

/// A rate sweep's outcome: one run per rate plus the saturation knee.
#[derive(Clone, Debug)]
pub struct KneeReport {
    /// The swept rates, in the order given.
    pub rates: Vec<f64>,
    /// One run per rate.
    pub points: Vec<TrafficRun>,
    /// The largest swept rate that met the SLO (`None` if none did).
    pub knee: Option<f64>,
}

/// A fixed network, scheme, and workload, ready to run at any offered rate.
#[derive(Clone, Copy, Debug)]
pub struct TrafficScenario<'a> {
    /// The network to route over.
    pub network: &'a Network,
    /// The compact-routing scheme driving the forwarding rule.
    pub scheme: &'a RoutingScheme,
    /// The traffic matrix.
    pub workload: WorkloadKind,
    /// Everything else.
    pub config: ScenarioConfig,
}

impl TrafficScenario<'_> {
    /// Run the scenario at one offered rate (packets per round,
    /// network-wide).
    pub fn run(&self, rate: f64) -> TrafficRun {
        let cfg = &self.config;
        let g = self.network.graph();
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let mut workload = Workload::prepare(self.workload, g, self.scheme, cfg.seed);
        let mut arrival = Arrival::new(cfg.arrival, rate);

        // Plan the entire schedule coordinator-side: which flows are offered
        // each round, which of them can route at all, and the packet each
        // deliverable flow injects.
        let mut flows: Vec<FlowRecord> = Vec::new();
        let mut injections: Vec<Injection> = Vec::new();
        let mut flow_of_packet: Vec<usize> = Vec::new();
        for round in 0..cfg.inject_rounds {
            for _ in 0..arrival.count(&mut rng) {
                let (src, dst) = workload.draw(&mut rng);
                let outcome = match packet::plan(self.scheme, src, dst) {
                    Some(plan) => {
                        let id = injections.len() as u32;
                        injections.push((round, src, TrafficPacket::from_plan(id, plan)));
                        flow_of_packet.push(flows.len());
                        FlowOutcome::InFlight
                    }
                    None => FlowOutcome::Undeliverable,
                };
                flows.push(FlowRecord {
                    src,
                    dst,
                    inject_round: round,
                    outcome,
                });
            }
        }

        let sim = simulate(
            self.network,
            self.scheme,
            &injections,
            &SimConfig {
                queue_cap: cfg.queue_cap,
                policy: cfg.policy,
                max_rounds: cfg.effective_max_rounds(),
                threads: cfg.threads,
                profile: cfg.profile,
            },
        );

        // Resolve each injected packet's fate back onto its flow.
        for d in &sim.deliveries {
            flows[flow_of_packet[d.id as usize]].outcome = FlowOutcome::Delivered {
                round: d.round,
                weight: d.weight,
                hops: d.hops,
            };
        }
        for &id in &sim.dropped_capacity {
            flows[flow_of_packet[id as usize]].outcome = FlowOutcome::DroppedCapacity;
        }
        for &id in &sim.dropped_stuck {
            flows[flow_of_packet[id as usize]].outcome = FlowOutcome::DroppedStuck;
        }

        let injected = injections.len() as u64;
        let delivered = sim.deliveries.len() as u64;
        let dropped_capacity = sim.dropped_capacity.len() as u64;
        let dropped_stuck = sim.dropped_stuck.len() as u64;
        let in_flight = injected - delivered - dropped_capacity - dropped_stuck;

        // Latency = delivery round − injection round; queueing delay is what
        // remains after the pure hop time.
        let mut latencies = Vec::with_capacity(sim.deliveries.len());
        let mut queue_delays = Vec::with_capacity(sim.deliveries.len());
        for d in &sim.deliveries {
            let injected_at = flows[flow_of_packet[d.id as usize]].inject_round;
            let latency = d.round - injected_at;
            latencies.push(latency);
            queue_delays.push(latency - u64::from(d.hops));
        }

        let (stretch_mean, stretch_max) = delivered_stretch(g, &flows);

        let sim_rounds = sim.stats.rounds;
        let summary = TrafficSummary {
            workload: self.workload.name().to_string(),
            arrival: cfg.arrival.name().to_string(),
            rate,
            inject_rounds: cfg.inject_rounds,
            sim_rounds,
            queue_cap: cfg.queue_cap as u64,
            drop_policy: cfg.policy.name().to_string(),
            offered: flows.len() as u64,
            injected,
            undeliverable: flows.len() as u64 - injected,
            delivered,
            dropped_capacity,
            dropped_stuck,
            in_flight,
            drained: in_flight == 0,
            throughput: delivered as f64 / sim_rounds.max(1) as f64,
            latency: LoadStats::from_loads(&latencies),
            queue_delay: LoadStats::from_loads(&queue_delays),
            peak_queue_packets: sim.peak_queue_packets(),
            peak_queue_words: sim.peak_queue_words(),
            stretch_mean,
            stretch_max,
        };
        debug_assert!(summary.conserved(), "summary violates conservation");

        let run = TrafficRun {
            summary,
            series: sim.series,
            edge_load: sim.edge_load,
            stats: sim.stats,
            flows,
        };
        debug_assert_eq!(run.verify_conservation(), Ok(()));
        run
    }

    /// Run every rate in `rates` and locate the saturation knee under `slo`.
    pub fn sweep(&self, rates: &[f64], slo: &Slo) -> KneeReport {
        let points: Vec<TrafficRun> = rates.iter().map(|&r| self.run(r)).collect();
        let knee = rates
            .iter()
            .zip(&points)
            .filter(|(_, p)| p.sustainable(slo))
            .map(|(&r, _)| r)
            .fold(None, |best: Option<f64>, r| {
                Some(best.map_or(r, |b| b.max(r)))
            });
        KneeReport {
            rates: rates.to_vec(),
            points,
            knee,
        }
    }
}

/// Mean and max routed-weight / true-distance over delivered flows. Exact
/// distances come from one Dijkstra per distinct endpoint on the smaller
/// side (sources vs destinations — a hotspot needs exactly one).
fn delivered_stretch(g: &graphs::Graph, flows: &[FlowRecord]) -> (f64, f64) {
    let mut srcs: Vec<u32> = Vec::new();
    let mut dsts: Vec<u32> = Vec::new();
    for f in flows {
        if matches!(f.outcome, FlowOutcome::Delivered { .. }) {
            srcs.push(f.src.0);
            dsts.push(f.dst.0);
        }
    }
    if srcs.is_empty() {
        return (0.0, 0.0);
    }
    srcs.sort_unstable();
    srcs.dedup();
    dsts.sort_unstable();
    dsts.dedup();
    // The graph is undirected, so rooting at whichever side has fewer
    // distinct endpoints gives the same distances for less work.
    let (roots, root_is_src) = if srcs.len() <= dsts.len() {
        (srcs, true)
    } else {
        (dsts, false)
    };
    let dist: std::collections::HashMap<u32, Vec<Weight>> = roots
        .iter()
        .map(|&r| (r, dijkstra(g, VertexId(r))))
        .collect();
    let (mut sum, mut max, mut count) = (0.0f64, 0.0f64, 0u64);
    for f in flows {
        let FlowOutcome::Delivered { weight, .. } = f.outcome else {
            continue;
        };
        let (root, leaf) = if root_is_src {
            (f.src.0, f.dst.0)
        } else {
            (f.dst.0, f.src.0)
        };
        let exact = dist[&root][leaf as usize];
        if exact == 0 || exact == Weight::MAX {
            continue;
        }
        let stretch = weight as f64 / exact as f64;
        sum += stretch;
        max = max.max(stretch);
        count += 1;
    }
    if count == 0 {
        (0.0, 0.0)
    } else {
        (sum / count as f64, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::generators;
    use routing::BuildParams;

    fn scenario_parts(n: usize, seed: u64) -> (Network, RoutingScheme) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = generators::erdos_renyi_connected(n, 0.06, 1..=20, &mut rng);
        let scheme = routing::build(&g, &BuildParams::new(2), &mut rng).scheme;
        (Network::new(g), scheme)
    }

    #[test]
    fn runs_are_thread_count_invariant() {
        let (net, scheme) = scenario_parts(48, 31);
        let mut base = TrafficScenario {
            network: &net,
            scheme: &scheme,
            workload: WorkloadKind::Hotspot,
            config: ScenarioConfig {
                inject_rounds: 32,
                queue_cap: 2,
                ..ScenarioConfig::default()
            },
        };
        let serial = base.run(2.5);
        base.config.threads = 4;
        let parallel = base.run(2.5);
        assert_eq!(serial.summary, parallel.summary);
        assert_eq!(serial.series, parallel.series);
        assert_eq!(serial.flows, parallel.flows);
        assert!(serial.stats.same_simulation(&parallel.stats));
        assert_eq!(
            serial.edge_load.to_value(&[]).to_string(),
            parallel.edge_load.to_value(&[]).to_string()
        );
    }

    #[test]
    fn conservation_holds_every_round() {
        let (net, scheme) = scenario_parts(40, 32);
        for &kind in WorkloadKind::all() {
            let scenario = TrafficScenario {
                network: &net,
                scheme: &scheme,
                workload: kind,
                config: ScenarioConfig {
                    inject_rounds: 24,
                    queue_cap: 1,
                    ..ScenarioConfig::default()
                },
            };
            let run = scenario.run(3.0);
            assert_eq!(run.verify_conservation(), Ok(()), "{}", kind.name());
            assert!(run.summary.conserved(), "{}", kind.name());
            assert!(run.summary.injected > 0, "{}", kind.name());
        }
    }

    #[test]
    fn delivered_latency_decomposes_into_hops_plus_queueing() {
        let (net, scheme) = scenario_parts(40, 33);
        let scenario = TrafficScenario {
            network: &net,
            scheme: &scheme,
            workload: WorkloadKind::Uniform,
            config: ScenarioConfig {
                inject_rounds: 16,
                ..ScenarioConfig::default()
            },
        };
        let run = scenario.run(1.0);
        assert!(run.summary.delivered > 0);
        // At a light load with deep queues nothing queues for long: the p99
        // queueing delay is far below the p99 latency.
        assert!(run.summary.queue_delay.max <= run.summary.latency.max);
        assert!(run.summary.stretch_mean >= 1.0 - 1e-9);
        assert!(run.summary.stretch_max >= run.summary.stretch_mean - 1e-9);
    }

    #[test]
    fn sweep_finds_a_knee_between_light_and_crushing_load() {
        let (net, scheme) = scenario_parts(40, 34);
        let scenario = TrafficScenario {
            network: &net,
            scheme: &scheme,
            workload: WorkloadKind::Hotspot,
            config: ScenarioConfig {
                inject_rounds: 64,
                queue_cap: 2,
                ..ScenarioConfig::default()
            },
        };
        // A hotspot sink with per-port queues of 2 cannot absorb 32
        // packets per round; 0.25 per round it absorbs trivially.
        let report = scenario.sweep(&[0.25, 32.0], &Slo::default());
        assert_eq!(report.points.len(), 2);
        assert!(report.points[0].sustainable(&Slo::default()));
        assert!(!report.points[1].sustainable(&Slo::default()));
        assert_eq!(report.knee, Some(0.25));
    }

    #[test]
    fn zero_rate_runs_produce_an_empty_conserved_summary() {
        let (net, scheme) = scenario_parts(24, 35);
        let scenario = TrafficScenario {
            network: &net,
            scheme: &scheme,
            workload: WorkloadKind::Uniform,
            config: ScenarioConfig {
                inject_rounds: 8,
                ..ScenarioConfig::default()
            },
        };
        let run = scenario.run(0.0);
        assert_eq!(run.summary.offered, 0);
        assert_eq!(run.summary.sim_rounds, 0);
        assert!(run.summary.drained);
        assert!(run.summary.conserved());
    }

    #[test]
    fn oldest_drop_prefers_fresh_packets() {
        let (net, scheme) = scenario_parts(40, 36);
        let mut config = ScenarioConfig {
            inject_rounds: 48,
            queue_cap: 1,
            ..ScenarioConfig::default()
        };
        let tail = TrafficScenario {
            network: &net,
            scheme: &scheme,
            workload: WorkloadKind::Hotspot,
            config,
        }
        .run(8.0);
        config.policy = DropPolicy::OldestDrop;
        let oldest = TrafficScenario {
            network: &net,
            scheme: &scheme,
            workload: WorkloadKind::Hotspot,
            config,
        }
        .run(8.0);
        // Both overload runs drop and still conserve; the split differs.
        assert!(tail.summary.dropped_capacity > 0);
        assert!(oldest.summary.dropped_capacity > 0);
        assert!(tail.summary.conserved() && oldest.summary.conserved());
        assert_eq!(tail.summary.drop_policy, "tail-drop");
        assert_eq!(oldest.summary.drop_policy, "oldest-drop");
    }
}
