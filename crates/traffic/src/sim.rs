//! The steady-state forwarding plane: per-port finite FIFO queues driven by
//! the CONGEST engine, with open-loop injection from a precomputed schedule.
//!
//! Unlike the one-shot batches in `routing::packet` (everything injected at
//! round 0, unbounded queues), this plane injects packets *every round* from
//! a per-vertex schedule and bounds each outgoing queue at a configurable
//! capacity with an explicit drop policy. The whole schedule is computed by
//! the coordinator before the engine starts, so the simulation is
//! byte-identical at any worker-thread count, and each vertex keeps a sparse
//! per-round log whose coordinator-side merge yields the dense conservation
//! series `injected = delivered + dropped + queued + on-wire` that
//! [`crate::scenario`] re-checks every round.

use std::collections::VecDeque;

use congest::engine::{Ctx, Engine, EngineConfig, Inbox, VertexProtocol};
use congest::{Network, RunStats, WordSized};
use graphs::{VertexId, Weight};
use obs::flight::EdgeLoadMap;
use routing::packet::PacketPlan;
use routing::scheme::TreeTableKind;
use routing::{RoutingScheme, RoutingTable};
use tree_routing::types::{route_decision, ForwardingDecision, TreeLabel};

/// What a vertex does with an arrival destined for a full queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropPolicy {
    /// Drop the incoming packet; the queue is untouched.
    TailDrop,
    /// Drop the queue's oldest packet and admit the newcomer.
    OldestDrop,
}

impl DropPolicy {
    /// The schema/CLI name of this policy.
    pub fn name(self) -> &'static str {
        match self {
            DropPolicy::TailDrop => "tail-drop",
            DropPolicy::OldestDrop => "oldest-drop",
        }
    }

    /// Parse a CLI name back into a policy.
    pub fn parse(name: &str) -> Option<DropPolicy> {
        match name {
            "tail-drop" => Some(DropPolicy::TailDrop),
            "oldest-drop" => Some(DropPolicy::OldestDrop),
            _ => None,
        }
    }
}

/// A steady-state packet: id, committed tree, accumulated weight and hop
/// count, and the target's tree label. Four header words plus the label.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TrafficPacket {
    /// Index into the scenario's injection order.
    pub id: u32,
    /// The committed tree.
    pub tree_root: VertexId,
    /// Accumulated routed weight.
    pub weight: Weight,
    /// Edges traversed so far.
    pub hops: u32,
    /// Target tree label.
    pub label: TreeLabel,
}

impl TrafficPacket {
    /// Build the packet a scenario injects for plan `plan`.
    pub fn from_plan(id: u32, plan: PacketPlan) -> TrafficPacket {
        TrafficPacket {
            id,
            tree_root: plan.tree_root,
            weight: 0,
            hops: 0,
            label: plan.label,
        }
    }
}

impl WordSized for TrafficPacket {
    fn words(&self) -> usize {
        4 + self.label.words()
    }
}

/// One scheduled injection: engine round, source vertex, packet.
pub type Injection = (u64, VertexId, TrafficPacket);

/// One delivered packet, as recorded by its destination.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Delivery {
    /// The packet's injection-order id.
    pub id: u32,
    /// Engine round of arrival.
    pub round: u64,
    /// Routed path weight.
    pub weight: Weight,
    /// Edges traversed.
    pub hops: u32,
}

/// One vertex's activity in one round; sparse (only logged when nonzero).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct RoundLog {
    round: u64,
    injected: u32,
    delivered: u32,
    dropped_capacity: u32,
    dropped_stuck: u32,
    sent: u32,
    queued_packets: u32,
    queued_words: u64,
}

/// Network-wide totals for one round, merged from the per-vertex logs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoundTotals {
    /// The engine round (0 is the injection-only init round).
    pub round: u64,
    /// Packets injected this round.
    pub injected: u64,
    /// Packets delivered this round.
    pub delivered: u64,
    /// Packets dropped by a full queue this round.
    pub dropped_capacity: u64,
    /// Packets dropped by a stuck rule or missing port this round.
    pub dropped_stuck: u64,
    /// Packets put on the wire this round (arrive next round).
    pub sent: u64,
    /// Packets queued network-wide at the end of this round.
    pub queued_packets: u64,
    /// Words those queued packets occupy.
    pub queued_words: u64,
}

/// Simulation knobs.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Per-port queue capacity in packets.
    pub queue_cap: usize,
    /// What to do with arrivals at a full queue.
    pub policy: DropPolicy,
    /// Engine round cap (must be at least the last injection round).
    pub max_rounds: u64,
    /// Engine worker threads (`1` = serial).
    pub threads: usize,
    /// Profile the engine round loop; the phase attribution comes back in
    /// [`SimResult`]'s `stats.profile`. Never changes simulated results.
    pub profile: bool,
}

/// Everything one engine run produced.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Delivered packets, ordered by destination vertex then arrival.
    pub deliveries: Vec<Delivery>,
    /// Ids of packets dropped by a full queue.
    pub dropped_capacity: Vec<u32>,
    /// Ids of packets dropped by a stuck rule or missing port.
    pub dropped_stuck: Vec<u32>,
    /// Dense per-round totals (index = round).
    pub series: Vec<RoundTotals>,
    /// Words actually transmitted per edge (capacity drops never transmit).
    pub edge_load: EdgeLoadMap,
    /// Engine statistics.
    pub stats: RunStats,
}

impl SimResult {
    /// Largest number of packets queued network-wide at any round end.
    pub fn peak_queue_packets(&self) -> u64 {
        self.series
            .iter()
            .map(|t| t.queued_packets)
            .max()
            .unwrap_or(0)
    }

    /// Largest number of queued words network-wide at any round end.
    pub fn peak_queue_words(&self) -> u64 {
        self.series
            .iter()
            .map(|t| t.queued_words)
            .max()
            .unwrap_or(0)
    }
}

/// Run the steady-state plane: inject `injections` (sorted by round) into
/// finite per-port queues and forward by the Thorup–Zwick rule until the
/// network drains or `cfg.max_rounds` cuts the run off.
///
/// # Panics
///
/// Panics if `injections` is not sorted by round, or if a scheduled round
/// exceeds `cfg.max_rounds` (the packet could never inject, which would
/// silently break conservation).
pub fn simulate(
    network: &Network,
    scheme: &RoutingScheme,
    injections: &[Injection],
    cfg: &SimConfig,
) -> SimResult {
    assert!(
        injections.windows(2).all(|w| w[0].0 <= w[1].0),
        "injection schedule must be sorted by round"
    );
    if let Some(&(last, _, _)) = injections.last() {
        assert!(
            last <= cfg.max_rounds,
            "injection at round {last} lies beyond the {} round cap",
            cfg.max_rounds
        );
    }
    let max_words = injections.iter().map(|(_, _, p)| p.words()).max();
    let Some(edge_words_per_round) = max_words else {
        // Nothing to inject: skip the engine entirely.
        return SimResult {
            deliveries: Vec::new(),
            dropped_capacity: Vec::new(),
            dropped_stuck: Vec::new(),
            series: Vec::new(),
            edge_load: EdgeLoadMap::new(),
            stats: RunStats::default(),
        };
    };

    let n = network.graph().num_vertices();
    let mut schedules: Vec<Vec<(u64, TrafficPacket)>> = vec![Vec::new(); n];
    for (round, src, packet) in injections {
        schedules[src.index()].push((*round, packet.clone()));
    }
    let protos: Vec<TrafficVertex> = network
        .graph()
        .vertices()
        .map(|v| TrafficVertex {
            table: scheme.tables[v.index()].clone(),
            queues: vec![VecDeque::new(); network.graph().degree(v)],
            queue_cap: cfg.queue_cap.max(1),
            policy: cfg.policy,
            schedule: std::mem::take(&mut schedules[v.index()]),
            cursor: 0,
            deliveries: Vec::new(),
            dropped_capacity: Vec::new(),
            dropped_stuck: Vec::new(),
            edge_load: EdgeLoadMap::new(),
            logs: Vec::new(),
            scratch: RoundLog::default(),
        })
        .collect();
    let engine = Engine::with_config(EngineConfig {
        edge_words_per_round,
        max_rounds: cfg.max_rounds,
        threads: cfg.threads,
        profile: cfg.profile,
        ..EngineConfig::default()
    });
    let (protos, stats) = engine.run(network, protos);

    // Merge the sparse per-vertex logs into a dense series, in vertex order
    // — identical at any thread count.
    let mut series = vec![RoundTotals::default(); stats.rounds as usize + 1];
    for (r, t) in series.iter_mut().enumerate() {
        t.round = r as u64;
    }
    let mut deliveries = Vec::new();
    let mut dropped_capacity = Vec::new();
    let mut dropped_stuck = Vec::new();
    let mut edge_load = EdgeLoadMap::new();
    for p in protos {
        for log in &p.logs {
            let t = &mut series[log.round as usize];
            t.injected += u64::from(log.injected);
            t.delivered += u64::from(log.delivered);
            t.dropped_capacity += u64::from(log.dropped_capacity);
            t.dropped_stuck += u64::from(log.dropped_stuck);
            t.sent += u64::from(log.sent);
            t.queued_packets += u64::from(log.queued_packets);
            t.queued_words += log.queued_words;
        }
        deliveries.extend(p.deliveries);
        dropped_capacity.extend(p.dropped_capacity);
        dropped_stuck.extend(p.dropped_stuck);
        edge_load.merge(&p.edge_load);
    }
    // No occupancy carry-over is needed: a vertex with a non-empty queue
    // always sends (flush pops every non-empty port), so every occupied
    // round is logged by that vertex.
    SimResult {
        deliveries,
        dropped_capacity,
        dropped_stuck,
        series,
        edge_load,
        stats,
    }
}

/// Per-vertex protocol: finite FIFO queues per port, one packet per port per
/// round, open-loop injection from a precomputed schedule.
#[derive(Clone, Debug)]
struct TrafficVertex {
    table: RoutingTable,
    /// One FIFO per outgoing port (index into the neighbor list).
    queues: Vec<VecDeque<TrafficPacket>>,
    queue_cap: usize,
    policy: DropPolicy,
    /// This vertex's injections, sorted by round.
    schedule: Vec<(u64, TrafficPacket)>,
    cursor: usize,
    deliveries: Vec<Delivery>,
    dropped_capacity: Vec<u32>,
    dropped_stuck: Vec<u32>,
    edge_load: EdgeLoadMap,
    logs: Vec<RoundLog>,
    scratch: RoundLog,
}

impl TrafficVertex {
    /// Classify one packet: deliver here, enqueue toward its next hop
    /// (applying the drop policy at a full queue), or drop it as stuck.
    fn classify(&mut self, ctx: &Ctx<'_, TrafficPacket>, mut packet: TrafficPacket, round: u64) {
        let me = ctx.me();
        let decision = self
            .table
            .entry(packet.tree_root)
            .and_then(|entry| match &entry.table {
                TreeTableKind::Ours(t) => route_decision(me, t, &packet.label),
                TreeTableKind::Prior(_) => None,
            });
        match decision {
            Some(ForwardingDecision::Deliver) => {
                self.scratch.delivered += 1;
                self.deliveries.push(Delivery {
                    id: packet.id,
                    round,
                    weight: packet.weight,
                    hops: packet.hops,
                });
            }
            Some(decision) => {
                let next = decision.next_hop().expect("forwarding decision");
                let Some(port) = ctx.neighbors().iter().position(|a| a.to == next) else {
                    self.scratch.dropped_stuck += 1;
                    self.dropped_stuck.push(packet.id);
                    return;
                };
                packet.weight += ctx.neighbors()[port].weight;
                packet.hops += 1;
                let q = &mut self.queues[port];
                if q.len() >= self.queue_cap {
                    let dropped = match self.policy {
                        DropPolicy::TailDrop => packet.id,
                        DropPolicy::OldestDrop => {
                            let oldest = q.pop_front().expect("full queue is non-empty");
                            q.push_back(packet);
                            oldest.id
                        }
                    };
                    self.scratch.dropped_capacity += 1;
                    self.dropped_capacity.push(dropped);
                } else {
                    q.push_back(packet);
                }
            }
            None => {
                self.scratch.dropped_stuck += 1;
                self.dropped_stuck.push(packet.id);
            }
        }
    }

    /// Inject every packet scheduled for `round`.
    fn inject(&mut self, ctx: &Ctx<'_, TrafficPacket>, round: u64) {
        while self.cursor < self.schedule.len() && self.schedule[self.cursor].0 == round {
            let packet = self.schedule[self.cursor].1.clone();
            self.cursor += 1;
            self.scratch.injected += 1;
            self.classify(ctx, packet, round);
        }
    }

    /// Send the head of every non-empty queue: one packet per port per round.
    fn flush(&mut self, ctx: &mut Ctx<'_, TrafficPacket>) {
        let me = ctx.me().0;
        for port in 0..self.queues.len() {
            if let Some(p) = self.queues[port].pop_front() {
                let next = ctx.neighbors()[port].to;
                self.edge_load.record(me, next.0, p.words() as u64);
                self.scratch.sent += 1;
                ctx.send(next, p);
            }
        }
    }

    /// Close the round: snapshot queue occupancy and flush the scratch log
    /// if this round did anything.
    fn close_round(&mut self, round: u64) {
        self.scratch.round = round;
        self.scratch.queued_packets = self.queues.iter().map(|q| q.len() as u32).sum();
        self.scratch.queued_words = self
            .queues
            .iter()
            .flat_map(|q| q.iter().map(|p| p.words() as u64))
            .sum();
        let idle = RoundLog {
            round,
            ..RoundLog::default()
        };
        if self.scratch != idle {
            self.logs.push(self.scratch);
        }
        self.scratch = RoundLog::default();
    }

    fn queue_words(&self) -> usize {
        self.queues
            .iter()
            .flat_map(|q| q.iter().map(WordSized::words))
            .sum()
    }
}

impl VertexProtocol for TrafficVertex {
    type Msg = TrafficPacket;

    fn init(&mut self, ctx: &mut Ctx<'_, TrafficPacket>) {
        self.inject(ctx, 0);
        self.flush(ctx);
        self.close_round(0);
    }

    fn round(&mut self, ctx: &mut Ctx<'_, TrafficPacket>, inbox: &mut Inbox<'_, TrafficPacket>) {
        let round = ctx.round();
        self.inject(ctx, round);
        for (_, p) in inbox.drain() {
            self.classify(ctx, p, round);
        }
        self.flush(ctx);
        self.close_round(round);
    }

    fn is_done(&self) -> bool {
        self.cursor == self.schedule.len() && self.queues.iter().all(VecDeque::is_empty)
    }

    fn keep_alive(&self) -> bool {
        // Scheduled future injections must keep the clock ticking even when
        // no messages are in flight.
        self.cursor < self.schedule.len()
    }

    fn memory_words(&self) -> usize {
        self.table.words() + self.queue_words()
    }

    fn queued_words(&self) -> usize {
        self.queue_words()
    }
}
