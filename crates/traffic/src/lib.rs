//! Steady-state traffic engine over the compact-routing scheme.
//!
//! The routing crate's packet plane answers "does a batch get where it is
//! going, and at what stretch?" — everything injected at round 0, queues
//! unbounded. This crate asks the *sustained* question instead: at what
//! offered load does a network running the Thorup–Zwick forwarding rule
//! keep up, and how does it fail when it no longer does?
//!
//! Three layers:
//!
//! * [`workload`] — seeded traffic matrices (uniform, degree-weighted
//!   gravity, single-sink hotspot, and adversarial worst-stretch pairs mined
//!   from the distance oracle) plus deterministic arrival processes. A
//!   schedule is a pure function of `(graph, scheme, seed, rate)`.
//! * [`sim`] — the forwarding plane: per-port finite FIFO queues with
//!   tail-drop or oldest-drop, one packet per edge per round, driven by the
//!   CONGEST engine's open-loop (`keep_alive`) mode. Per-round logs support
//!   the packet-conservation identity `injected = delivered + dropped +
//!   queued + on-wire` at every round.
//! * [`scenario`] — the runner: plan a schedule, simulate, summarize into an
//!   `obs` [`traffic_summary`](obs::traffic::TrafficSummary) record, and
//!   sweep rates to find the saturation knee (the largest rate meeting an
//!   [`Slo`](scenario::Slo)).
//!
//! Everything is deterministic: repeated runs and different engine
//! worker-thread counts produce byte-identical summaries, series, and edge
//! loads.

pub mod scenario;
pub mod sim;
pub mod workload;

pub use scenario::{
    FlowOutcome, FlowRecord, KneeReport, ScenarioConfig, Slo, TrafficRun, TrafficScenario,
};
pub use sim::{DropPolicy, RoundTotals, TrafficPacket};
pub use workload::{Arrival, ArrivalKind, Workload, WorkloadKind};
