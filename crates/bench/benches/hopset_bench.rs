//! Criterion micro-benchmarks for hopset construction and hopset-powered
//! Bellman–Ford.

use bench::Family;
use congest::{CostLedger, MemoryMeter};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hopset::bellman_ford::LimitedBf;
use hopset::construction::{build as build_hopset, HopsetParams};
use hopset::{Hopset, VirtualGraph};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("hopset_construction");
    for n in [256usize, 1024] {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let g = Family::ErdosRenyi.generate(n, &mut rng);
        let virt = VirtualGraph::sample(&g, 1.5 / (n as f64).sqrt(), &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut rng = ChaCha8Rng::seed_from_u64(9);
            b.iter(|| {
                let mut led = CostLedger::new();
                let mut mem = MemoryMeter::new(n);
                build_hopset(
                    &g,
                    &virt,
                    HopsetParams::default(),
                    8,
                    &mut led,
                    &mut mem,
                    &mut rng,
                )
            });
        });
    }
    group.finish();
}

fn bench_bellman_ford(c: &mut Criterion) {
    let n = 1024;
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let g = Family::Geometric.generate(n, &mut rng);
    let virt = VirtualGraph::sample(&g, 1.5 / (n as f64).sqrt(), &mut rng);
    let mut led = CostLedger::new();
    let mut mem = MemoryMeter::new(n);
    let hs = build_hopset(
        &g,
        &virt,
        HopsetParams::default(),
        8,
        &mut led,
        &mut mem,
        &mut rng,
    );
    let empty = Hopset::new(n);
    let root = virt.virtual_vertices()[0];
    let mut group = c.benchmark_group("bellman_ford_1024");
    group.bench_function("with_hopset", |b| {
        b.iter(|| {
            let mut led = CostLedger::new();
            let mut mem = MemoryMeter::new(n);
            LimitedBf {
                g: &g,
                virt: &virt,
                hopset: &hs.hopset,
            }
            .run(&[(root, 0)], &|_, _| true, 4 * n, 8, &mut led, &mut mem)
        });
    });
    group.bench_function("plain_explorations", |b| {
        b.iter(|| {
            let mut led = CostLedger::new();
            let mut mem = MemoryMeter::new(n);
            LimitedBf {
                g: &g,
                virt: &virt,
                hopset: &empty,
            }
            .run(&[(root, 0)], &|_, _| true, 4 * n, 8, &mut led, &mut mem)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_construction, bench_bellman_ford);
criterion_main!(benches);
