//! Criterion micro-benchmarks for the full general-graph scheme: the three
//! construction modes and the routing-phase throughput.

use bench::Family;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphs::VertexId;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use routing::{build, router, BuildParams, Mode};

fn bench_build_modes(c: &mut Criterion) {
    let n = 256;
    let mut rng = ChaCha8Rng::seed_from_u64(21);
    let g = Family::ErdosRenyi.generate(n, &mut rng);
    let mut group = c.benchmark_group("scheme_build_256_k2");
    group.sample_size(10);
    for (name, mode) in [
        ("centralized", Mode::Centralized),
        ("ours", Mode::DistributedLowMemory),
        ("prior", Mode::DistributedPrior),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &mode, |b, &mode| {
            let mut rng = ChaCha8Rng::seed_from_u64(5);
            b.iter(|| build(&g, &BuildParams::new(2).with_mode(mode), &mut rng));
        });
    }
    group.finish();
}

fn bench_route_throughput(c: &mut Criterion) {
    let n = 512;
    let mut rng = ChaCha8Rng::seed_from_u64(23);
    let g = Family::ErdosRenyi.generate(n, &mut rng);
    let built = build(&g, &BuildParams::new(3), &mut rng);
    c.bench_function("graph_route_512_k3", |b| {
        let mut i = 0u32;
        b.iter(|| {
            let src = VertexId(i % n as u32);
            let dst = VertexId((i * 31 + 7) % n as u32);
            i = i.wrapping_add(1);
            router::route(&g, &built.scheme, src, dst).unwrap()
        });
    });
}

fn bench_oracle_queries(c: &mut Criterion) {
    let n = 512;
    let mut rng = ChaCha8Rng::seed_from_u64(29);
    let g = Family::ErdosRenyi.generate(n, &mut rng);
    let built = build(&g, &BuildParams::new(3), &mut rng);
    let oracle = routing::oracle::DistanceOracle::new(&built.scheme);
    c.bench_function("oracle_query_512_k3", |b| {
        let mut i = 0u32;
        b.iter(|| {
            let src = VertexId(i % n as u32);
            let dst = VertexId((i * 31 + 7) % n as u32);
            i = i.wrapping_add(1);
            oracle.query(src, dst)
        });
    });
}

criterion_group!(
    benches,
    bench_build_modes,
    bench_route_throughput,
    bench_oracle_queries
);
criterion_main!(benches);
