//! Criterion micro-benchmarks for the tree-routing constructions
//! (wall-clock of the simulator, complementing the simulated-round tables).

use bench::Family;
use congest::Network;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphs::{tree, VertexId};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use tree_routing::{baseline, distributed, router, tz};

fn setup(n: usize) -> (Network, graphs::RootedTree) {
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let g = Family::ErdosRenyi.generate(n, &mut rng);
    let t = tree::shortest_path_tree(&g, VertexId(0));
    (Network::new(g), t)
}

fn bench_constructions(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_construction");
    for n in [256usize, 1024] {
        let (net, t) = setup(n);
        group.bench_with_input(BenchmarkId::new("centralized_tz", n), &n, |b, _| {
            b.iter(|| tz::build(&t));
        });
        group.bench_with_input(BenchmarkId::new("distributed_ours", n), &n, |b, _| {
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            b.iter(|| distributed::build_default(&net, &t, &mut rng));
        });
        group.bench_with_input(BenchmarkId::new("distributed_prior", n), &n, |b, _| {
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            b.iter(|| baseline::build(&net, &t, None, &mut rng));
        });
    }
    group.finish();
}

fn bench_routing_phase(c: &mut Criterion) {
    let (net, t) = setup(1024);
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let scheme = distributed::build_default(&net, &t, &mut rng).scheme;
    c.bench_function("tree_route_1024", |b| {
        let mut i = 0u32;
        b.iter(|| {
            let src = VertexId(i % 1024);
            let dst = VertexId((i * 7 + 13) % 1024);
            i = i.wrapping_add(1);
            router::route(&t, &scheme, src, dst).unwrap()
        });
    });
}

criterion_group!(benches, bench_constructions, bench_routing_phase);
criterion_main!(benches);
