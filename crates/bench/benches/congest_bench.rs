//! Criterion micro-benchmarks for the CONGEST simulator primitives: engine
//! throughput via the BFS protocol (serial and at several worker-thread
//! counts, to expose the round loop's sharding overhead and speedup), and
//! the Lemma-1 gossip broadcast.

use bench::Family;
use congest::{bfs, broadcast, Network};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphs::VertexId;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_bfs(c: &mut Criterion) {
    let mut group = c.benchmark_group("bfs_protocol");
    for n in [512usize, 2048] {
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let net = Network::new(Family::ErdosRenyi.generate(n, &mut rng));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| bfs::build_bfs_tree(&net, VertexId(0)));
        });
    }
    group.finish();
}

/// The round loop at fixed `n` across worker-thread counts: the serial
/// baseline, a two-way shard, and a shard count above this machine's core
/// count. The simulation is identical at every count (the engine's
/// contract), so any wall-clock delta is pure engine overhead or speedup.
fn bench_round_loop_threads(c: &mut Criterion) {
    let n = 2048;
    let mut rng = ChaCha8Rng::seed_from_u64(31);
    let net = Network::new(Family::ErdosRenyi.generate(n, &mut rng));
    let mut group = c.benchmark_group("round_loop_threads");
    for threads in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| bfs::build_bfs_tree_with(&net, VertexId(0), t));
        });
    }
    group.finish();
}

fn bench_broadcast(c: &mut Criterion) {
    let n = 512;
    let mut rng = ChaCha8Rng::seed_from_u64(33);
    let net = Network::new(Family::ErdosRenyi.generate(n, &mut rng));
    let mut items = vec![Vec::new(); n];
    for s in 0..32u32 {
        items[(s as usize * 13) % n].push((s, s as u64));
    }
    c.bench_function("gossip_broadcast_512x32", |b| {
        b.iter(|| broadcast::broadcast_all(&net, items.clone()));
    });
}

criterion_group!(
    benches,
    bench_bfs,
    bench_round_loop_threads,
    bench_broadcast
);
criterion_main!(benches);
