//! The standardized benchmark suite behind `drt bench` / `drt compare`:
//! fixed-seed sweeps, a schema'd `BENCH_*.json` trajectory document, an
//! automated scaling-law checker, and threshold-based regression diffing.
//!
//! The suite sweeps six groups:
//!
//! * `tree_build` — the Theorem-2 distributed tree-routing construction on
//!   Erdős–Rényi shortest-path trees, across `n`;
//! * `scheme_build` — the Theorem-3 general-graph scheme at `k = 2`, across
//!   `n`;
//! * `route_batch` — store-and-forward routing batches through the CONGEST
//!   engine on a fixed prebuilt scheme, across the number of packets;
//! * `traffic_steady` — open-loop steady-state traffic (finite queues,
//!   per-round injection) on a fixed prebuilt scheme, across the offered
//!   rate — the delivered-throughput determinism gate for `drt traffic`;
//! * `churn_degrade` — the churn observatory's targeted-removal timeline on
//!   a fixed scale-free scheme, across the number of churn rounds — the
//!   determinism gate for `drt churn`'s health telemetry;
//! * `serve_qps` — the query-serving plane's closed-loop batches against a
//!   fixed immutable snapshot, across the stream length — the determinism
//!   gate for `drt serve`'s answer checksum, with achieved QPS carried in
//!   the advisory wall column.
//!
//! Every case records two kinds of numbers with different trust levels. The
//! **simulated** columns (rounds, messages, words, peak memory, table/label
//! words) are model costs: at a fixed seed they are byte-stable across
//! repeats, machines, and build profiles, so regression gates compare them
//! *exactly* by default. The **wall-clock** column is real time: noisy and
//! machine-bound, so it is summarized as p50/p95 over repeats and gated only
//! by loose thresholds (or kept advisory).
//!
//! A run serializes as a single-document `BENCH_<label>.json` (schema
//! [`SCHEMA`]) carrying an environment stamp, the per-case results, and the
//! [`obs::scaling::ScalingCheck`] verdicts fitted over each group's sweep —
//! the executable form of EXPERIMENTS.md's "shape verdict".

use churn::{ChurnConfig, ChurnScenario, ProcessKind};
use congest::Network;
use graphs::{tree, VertexId};
use obs::json::Value;
use obs::metrics::{quantile_ns, Stopwatch};
use obs::scaling::{fit_power_law, ExponentRange, ScalingCheck};
use routing::{build_observed, packet, BuildParams};
use serve::{generate_stream, run_closed, ServeConfig, ServePool, ServeWorkload, Snapshot};
use traffic::{ScenarioConfig, TrafficScenario, WorkloadKind};
use tree_routing::distributed;

use crate::sweep::Sweep;
use crate::Family;

/// The BENCH document schema identifier.
pub const SCHEMA: &str = "drt-bench/v1";

/// Seed base for `tree_build` cases (salted with `n`).
const TREE_SEED: u64 = 0xB3A5;
/// Seed base for `scheme_build` cases (salted with `n`).
const SCHEME_SEED: u64 = 0x5C4E;
/// Seed for the `route_batch` group's fixed graph and scheme.
const BATCH_SEED: u64 = 0x0BA7;
/// Graph size and stretch parameter for the `route_batch` group.
const BATCH_N: usize = 256;
const BATCH_K: usize = 2;
/// Seed for the `traffic_steady` group's fixed graph, scheme, and schedules.
const TRAFFIC_SEED: u64 = 0x7AF1;
/// Graph size for the `traffic_steady` group.
const TRAFFIC_N: usize = 160;
/// Injection horizon for every `traffic_steady` case.
const TRAFFIC_INJECT_ROUNDS: u64 = 96;
/// Per-port queue capacity for every `traffic_steady` case.
const TRAFFIC_QUEUE_CAP: usize = 4;
/// Seed for the `churn_degrade` group's fixed graph, scheme, and schedules.
const CHURN_SEED: u64 = 0xC4AB;
/// Graph size for the `churn_degrade` group. Scale-free, because targeted
/// hub removal collapsing a heavy-tailed graph is the shape the sweep
/// prices.
const CHURN_N: usize = 128;
/// Per-round targeted failure rate for every `churn_degrade` case.
const CHURN_RATE: f64 = 0.02;
/// Seed for the `serve_qps` group's fixed graph, scheme, and query streams.
const SERVE_SEED: u64 = 0x5EBE;
/// Graph size for the `serve_qps` group.
const SERVE_N: usize = 192;
/// Queries per dispatched batch for every `serve_qps` case.
const SERVE_BATCH: usize = 64;
/// Fraction of served answers re-derived through the central router/oracle
/// in every `serve_qps` case; the mismatch count is an exactly-gated column.
const SERVE_CHECK_RATE: f64 = 0.05;

/// Suite size tiers. `Quick` cases are a strict subset of `Full` cases with
/// identical ids, seeds, and therefore identical simulated columns, so a
/// quick run diffs cleanly against a full baseline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tier {
    /// Tiny sizes for tests: runs in well under a second, too few points
    /// for scaling fits.
    Smoke,
    /// CI-sized: a few seconds in release builds.
    Quick,
    /// The committed-baseline tier: adds the larger sizes the exponent fits
    /// are most stable on.
    Full,
}

impl Tier {
    /// Schema name of the tier.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Smoke => "smoke",
            Tier::Quick => "quick",
            Tier::Full => "full",
        }
    }

    /// Parse a schema name back into a tier.
    pub fn from_name(name: &str) -> Option<Tier> {
        match name {
            "smoke" => Some(Tier::Smoke),
            "quick" => Some(Tier::Quick),
            "full" => Some(Tier::Full),
            _ => None,
        }
    }

    /// Wall-clock repeats per case.
    fn repeats(self) -> usize {
        match self {
            Tier::Smoke => 2,
            Tier::Quick => 3,
            Tier::Full => 5,
        }
    }

    fn tree_sizes(self) -> &'static [usize] {
        match self {
            Tier::Smoke => &[64, 128],
            Tier::Quick => &[256, 512, 1024, 2048],
            Tier::Full => &[256, 512, 1024, 2048, 4096, 8192],
        }
    }

    fn scheme_sizes(self) -> &'static [usize] {
        match self {
            Tier::Smoke => &[48, 96],
            Tier::Quick => &[128, 256, 512],
            Tier::Full => &[128, 256, 512, 1024],
        }
    }

    fn batch_loads(self) -> &'static [usize] {
        match self {
            Tier::Smoke => &[8, 16],
            Tier::Quick => &[16, 64, 256],
            Tier::Full => &[16, 64, 256, 1024, 4096],
        }
    }

    /// Offered rates (packets per round, network-wide) for the
    /// `traffic_steady` sweep.
    fn traffic_rates(self) -> &'static [f64] {
        match self {
            Tier::Smoke => &[0.5, 2.0],
            Tier::Quick => &[0.5, 1.0, 2.0],
            Tier::Full => &[0.5, 1.0, 2.0, 4.0, 8.0],
        }
    }

    /// Churn-round horizons for the `churn_degrade` sweep.
    fn churn_rounds(self) -> &'static [u64] {
        match self {
            Tier::Smoke => &[2, 4],
            Tier::Quick => &[4, 8, 16],
            Tier::Full => &[4, 8, 16, 32],
        }
    }

    /// Query-stream lengths for the `serve_qps` sweep.
    fn serve_queries(self) -> &'static [usize] {
        match self {
            Tier::Smoke => &[64, 128],
            Tier::Quick => &[256, 1024, 4096],
            Tier::Full => &[256, 1024, 4096, 16384],
        }
    }
}

/// Wall-clock summary over a case's repeats, in nanoseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WallStats {
    /// Median repeat.
    pub p50_ns: u64,
    /// 95th-percentile repeat.
    pub p95_ns: u64,
    /// Fastest repeat.
    pub min_ns: u64,
    /// Slowest repeat.
    pub max_ns: u64,
    /// Number of repeats summarized.
    pub repeats: u64,
}

impl WallStats {
    /// Summarize raw per-repeat samples.
    pub fn from_samples(samples: &[u64]) -> WallStats {
        WallStats {
            p50_ns: quantile_ns(samples, 0.5),
            p95_ns: quantile_ns(samples, 0.95),
            min_ns: samples.iter().min().copied().unwrap_or(0),
            max_ns: samples.iter().max().copied().unwrap_or(0),
            repeats: samples.len() as u64,
        }
    }

    fn to_value(self) -> Value {
        Value::object(vec![
            ("p50", Value::from(self.p50_ns)),
            ("p95", Value::from(self.p95_ns)),
            ("min", Value::from(self.min_ns)),
            ("max", Value::from(self.max_ns)),
            ("repeats", Value::from(self.repeats)),
        ])
    }

    fn from_value(v: &Value) -> Result<WallStats, String> {
        let field = |key: &str| {
            v.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("wall_ns missing numeric field '{key}'"))
        };
        Ok(WallStats {
            p50_ns: field("p50")?,
            p95_ns: field("p95")?,
            min_ns: field("min")?,
            max_ns: field("max")?,
            repeats: field("repeats")?,
        })
    }
}

/// One benchmark case: a sweep point with its simulated columns and
/// wall-clock summary.
#[derive(Clone, Debug, PartialEq)]
pub struct CaseResult {
    /// Stable case identifier, e.g. `tree_build/er/n1024`.
    pub id: String,
    /// The sweep group (`tree_build`, `scheme_build`, `route_batch`).
    pub group: String,
    /// The sweep coordinate: `n` for builds, packets for batches.
    pub x: u64,
    /// Simulated-cost columns in schema order; deterministic at fixed seed.
    pub sim: Vec<(String, u64)>,
    /// Wall-clock summary over the repeats.
    pub wall: WallStats,
}

impl CaseResult {
    /// Look up a simulated column by name.
    pub fn sim(&self, key: &str) -> Option<u64> {
        self.sim.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }

    /// Serialize the case.
    pub fn to_value(&self) -> Value {
        Value::object(vec![
            ("id", Value::from(self.id.as_str())),
            ("group", Value::from(self.group.as_str())),
            ("x", Value::from(self.x)),
            (
                "sim",
                Value::Object(
                    self.sim
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::from(*v)))
                        .collect(),
                ),
            ),
            ("wall_ns", self.wall.to_value()),
        ])
    }

    /// Parse a case back.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or ill-typed field.
    pub fn from_value(v: &Value) -> Result<CaseResult, String> {
        let text = |key: &str| {
            v.get(key)
                .and_then(Value::as_str)
                .ok_or_else(|| format!("case missing string field '{key}'"))
                .map(str::to_string)
        };
        let id = text("id")?;
        let sim = v
            .get("sim")
            .and_then(Value::as_object)
            .ok_or_else(|| format!("case '{id}' missing 'sim' object"))?
            .iter()
            .map(|(k, val)| {
                val.as_u64()
                    .map(|n| (k.clone(), n))
                    .ok_or_else(|| format!("case '{id}' sim column '{k}' is not an integer"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(CaseResult {
            group: text("group")?,
            x: v.get("x")
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("case '{id}' missing numeric 'x'"))?,
            sim,
            wall: WallStats::from_value(
                v.get("wall_ns")
                    .ok_or_else(|| format!("case '{id}' missing 'wall_ns'"))?,
            )?,
            id,
        })
    }
}

/// Where a BENCH document was produced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EnvStamp {
    /// `std::env::consts::OS`.
    pub os: String,
    /// `std::env::consts::ARCH`.
    pub arch: String,
    /// `debug` or `release` — wall-clock numbers are incomparable across
    /// profiles; simulated columns are identical.
    pub profile: String,
    /// The workspace version the suite was built from.
    pub version: String,
    /// Engine worker threads the suite ran with. Simulated columns are
    /// thread-count independent (the parallel engine is deterministic), so
    /// documents produced at different thread counts still diff exactly.
    pub threads: u64,
}

impl EnvStamp {
    /// Stamp for the running binary (serial engine).
    pub fn current() -> EnvStamp {
        EnvStamp {
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            profile: if cfg!(debug_assertions) {
                "debug".to_string()
            } else {
                "release".to_string()
            },
            version: env!("CARGO_PKG_VERSION").to_string(),
            threads: 1,
        }
    }

    fn to_value(&self) -> Value {
        Value::object(vec![
            ("os", Value::from(self.os.as_str())),
            ("arch", Value::from(self.arch.as_str())),
            ("profile", Value::from(self.profile.as_str())),
            ("version", Value::from(self.version.as_str())),
            ("threads", Value::from(self.threads)),
        ])
    }

    fn from_value(v: &Value) -> Result<EnvStamp, String> {
        let text = |key: &str| {
            v.get(key)
                .and_then(Value::as_str)
                .ok_or_else(|| format!("env stamp missing '{key}'"))
                .map(str::to_string)
        };
        Ok(EnvStamp {
            os: text("os")?,
            arch: text("arch")?,
            profile: text("profile")?,
            version: text("version")?,
            // Absent in documents written before the parallel engine: those
            // suites were serial.
            threads: v.get("threads").and_then(Value::as_u64).unwrap_or(1),
        })
    }
}

/// Serial-vs-parallel wall-clock comparison for one suite group, measured by
/// running every case twice per repeat — once on the serial engine, once with
/// `threads` workers — and cross-checking that the simulated columns agree
/// exactly. The metric is real time only; it is always advisory in
/// [`compare`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroupSpeedup {
    /// The suite group (`tree_build`, `scheme_build`, `route_batch`).
    pub group: String,
    /// Worker threads the parallel twin ran with.
    pub threads: u64,
    /// p50 over the group's serial wall samples (all cases, all repeats).
    pub serial_p50_ns: u64,
    /// p50 over the group's parallel wall samples.
    pub parallel_p50_ns: u64,
}

impl GroupSpeedup {
    /// `wall_serial_p50 / wall_parallel_p50`; values above 1 mean the
    /// parallel engine was faster.
    pub fn speedup(&self) -> f64 {
        self.serial_p50_ns as f64 / self.parallel_p50_ns.max(1) as f64
    }

    fn to_value(&self) -> Value {
        Value::object(vec![
            ("group", Value::from(self.group.as_str())),
            ("threads", Value::from(self.threads)),
            ("serial_p50_ns", Value::from(self.serial_p50_ns)),
            ("parallel_p50_ns", Value::from(self.parallel_p50_ns)),
        ])
    }

    fn from_value(v: &Value) -> Result<GroupSpeedup, String> {
        let field = |key: &str| {
            v.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("speedup entry missing numeric field '{key}'"))
        };
        Ok(GroupSpeedup {
            group: v
                .get("group")
                .and_then(Value::as_str)
                .ok_or("speedup entry missing 'group'")?
                .to_string(),
            threads: field("threads")?,
            serial_p50_ns: field("serial_p50_ns")?,
            parallel_p50_ns: field("parallel_p50_ns")?,
        })
    }
}

/// Parallel-efficiency figures for one suite group, measured by one extra
/// profiled parallel run of the group's largest case (the profiler is never
/// on during the timed repeats, so the wall columns stay comparable).
/// Real-time derived, so always advisory in [`compare`].
#[derive(Clone, Debug, PartialEq)]
pub struct GroupEfficiency {
    /// The suite group.
    pub group: String,
    /// Worker threads the profiled run used.
    pub threads: u64,
    /// Mean worker busy-fraction over the engine wall (1.0 = every worker
    /// busy the whole run).
    pub utilization: f64,
    /// Max/mean worker busy time (1.0 = perfectly balanced).
    pub imbalance: f64,
}

impl GroupEfficiency {
    fn to_value(&self) -> Value {
        Value::object(vec![
            ("group", Value::from(self.group.as_str())),
            ("threads", Value::from(self.threads)),
            ("utilization", Value::from(self.utilization)),
            ("imbalance", Value::from(self.imbalance)),
        ])
    }

    fn from_value(v: &Value) -> Result<GroupEfficiency, String> {
        let float = |key: &str| {
            v.get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("efficiency entry missing numeric field '{key}'"))
        };
        Ok(GroupEfficiency {
            group: v
                .get("group")
                .and_then(Value::as_str)
                .ok_or("efficiency entry missing 'group'")?
                .to_string(),
            threads: v
                .get("threads")
                .and_then(Value::as_u64)
                .ok_or("efficiency entry missing 'threads'")?,
            utilization: float("utilization")?,
            imbalance: float("imbalance")?,
        })
    }

    /// Extract the group figures from an engine profile.
    fn from_profile(
        group: &str,
        threads: u64,
        profile: &obs::profile::EngineProfile,
    ) -> GroupEfficiency {
        let s = profile.summary();
        let utilization = if s.worker_stats.is_empty() {
            0.0
        } else {
            s.worker_stats.iter().map(|w| w.utilization).sum::<f64>() / s.worker_stats.len() as f64
        };
        GroupEfficiency {
            group: group.to_string(),
            threads,
            utilization,
            imbalance: s.imbalance,
        }
    }
}

/// A complete benchmark trajectory point: one suite run.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchDoc {
    /// Human-chosen label (`baseline`, a branch name, ...).
    pub label: String,
    /// Tier the suite ran at.
    pub tier: String,
    /// Environment stamp.
    pub env: EnvStamp,
    /// All case results, in suite order.
    pub cases: Vec<CaseResult>,
    /// Scaling-law verdicts fitted over the sweeps (empty below 3 points
    /// per group).
    pub checks: Vec<ScalingCheck>,
    /// Per-group serial-vs-parallel wall speedups (empty when the suite ran
    /// with a single worker thread).
    pub speedup: Vec<GroupSpeedup>,
    /// Worker utilization and imbalance for the engine-driven groups, from
    /// one profiled parallel run each (empty when the suite ran with a
    /// single worker thread).
    pub efficiency: Vec<GroupEfficiency>,
}

impl BenchDoc {
    /// Look up a case by id.
    pub fn case(&self, id: &str) -> Option<&CaseResult> {
        self.cases.iter().find(|c| c.id == id)
    }

    /// Whether every scaling check passed.
    pub fn scaling_ok(&self) -> bool {
        self.checks.iter().all(ScalingCheck::ok)
    }

    /// Serialize as the single-document BENCH JSON.
    pub fn to_value(&self) -> Value {
        Value::object(vec![
            ("schema", Value::from(SCHEMA)),
            ("label", Value::from(self.label.as_str())),
            ("tier", Value::from(self.tier.as_str())),
            ("env", self.env.to_value()),
            (
                "cases",
                Value::Array(self.cases.iter().map(CaseResult::to_value).collect()),
            ),
            (
                "scaling",
                Value::Array(self.checks.iter().map(ScalingCheck::to_value).collect()),
            ),
            (
                "speedup",
                Value::Array(self.speedup.iter().map(GroupSpeedup::to_value).collect()),
            ),
            (
                "efficiency",
                Value::Array(
                    self.efficiency
                        .iter()
                        .map(GroupEfficiency::to_value)
                        .collect(),
                ),
            ),
        ])
    }

    /// Parse a BENCH document, rejecting unknown schemas.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or ill-typed field.
    pub fn from_value(v: &Value) -> Result<BenchDoc, String> {
        match v.get("schema").and_then(Value::as_str) {
            Some(s) if s == SCHEMA => {}
            Some(s) => return Err(format!("unsupported schema '{s}' (expected '{SCHEMA}')")),
            None => return Err("missing 'schema' field".to_string()),
        }
        let text = |key: &str| {
            v.get(key)
                .and_then(Value::as_str)
                .ok_or_else(|| format!("document missing string field '{key}'"))
                .map(str::to_string)
        };
        let cases = v
            .get("cases")
            .and_then(Value::as_array)
            .ok_or("document missing 'cases' array")?
            .iter()
            .map(CaseResult::from_value)
            .collect::<Result<Vec<_>, _>>()?;
        let checks = v
            .get("scaling")
            .and_then(Value::as_array)
            .ok_or("document missing 'scaling' array")?
            .iter()
            .map(ScalingCheck::from_value)
            .collect::<Result<Vec<_>, _>>()?;
        // Absent in documents written before the parallel engine.
        let speedup = v
            .get("speedup")
            .and_then(Value::as_array)
            .map(|entries| entries.iter().map(GroupSpeedup::from_value).collect())
            .transpose()?
            .unwrap_or_default();
        // Absent in documents written before the engine profiler.
        let efficiency = v
            .get("efficiency")
            .and_then(Value::as_array)
            .map(|entries| entries.iter().map(GroupEfficiency::from_value).collect())
            .transpose()?
            .unwrap_or_default();
        Ok(BenchDoc {
            label: text("label")?,
            tier: text("tier")?,
            env: EnvStamp::from_value(v.get("env").ok_or("document missing 'env'")?)?,
            cases,
            checks,
            speedup,
            efficiency,
        })
    }

    /// Write the document to `path` (compact JSON plus a trailing newline).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, format!("{}\n", self.to_value()))
    }

    /// Read a document back from `path`.
    ///
    /// # Errors
    ///
    /// Returns a description of the I/O, JSON, or schema failure.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<BenchDoc, String> {
        let path = path.as_ref();
        let textual = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let value = obs::json::parse(textual.trim())
            .map_err(|e| format!("parsing {}: {e}", path.display()))?;
        BenchDoc::from_value(&value).map_err(|e| format!("{}: {e}", path.display()))
    }
}

/// Run the standardized suite at `tier`, labeling the document `label`.
/// `repeats` overrides the tier's wall-clock repeat count; `threads` is the
/// engine worker-thread count (`0` = all available cores); `progress` is
/// called with each finished case id.
///
/// With `threads > 1` every case runs twice per repeat — once serial, once
/// parallel — so the document carries a per-group [`GroupSpeedup`]
/// (`wall_serial_p50 / wall_parallel_p50`). The recorded per-case wall
/// summary is always the serial engine's, keeping it comparable across
/// documents regardless of thread count; the simulated columns are
/// cross-checked to be identical between the twins.
///
/// # Errors
///
/// Returns a message if a case's simulated columns differ across repeats —
/// that would mean the fixed-seed pipeline went nondeterministic — or differ
/// between the serial and parallel twin, which would invalidate the
/// engine's determinism guarantee.
pub fn run_suite(
    tier: Tier,
    label: &str,
    repeats: Option<usize>,
    threads: usize,
    mut progress: impl FnMut(&str),
) -> Result<BenchDoc, String> {
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        threads
    };
    let repeats = repeats.unwrap_or_else(|| tier.repeats()).max(1);
    let mut cases = Vec::new();
    let mut tree_walls = WallPair::default();
    let mut scheme_walls = WallPair::default();
    let mut batch_walls = WallPair::default();
    let mut traffic_walls = WallPair::default();
    let mut churn_walls = WallPair::default();
    let mut serve_walls = WallPair::default();
    for &n in tier.tree_sizes() {
        cases.push(tree_case(n, repeats, threads, &mut tree_walls)?);
        progress(&cases.last().unwrap().id);
    }
    for &n in tier.scheme_sizes() {
        cases.push(scheme_case(n, repeats, threads, &mut scheme_walls)?);
        progress(&cases.last().unwrap().id);
    }
    cases.extend(batch_cases(
        tier.batch_loads(),
        repeats,
        threads,
        &mut batch_walls,
        &mut progress,
    )?);
    cases.extend(traffic_cases(
        tier.traffic_rates(),
        repeats,
        threads,
        &mut traffic_walls,
        &mut progress,
    )?);
    cases.extend(churn_cases(
        tier.churn_rounds(),
        repeats,
        threads,
        &mut churn_walls,
        &mut progress,
    )?);
    cases.extend(serve_cases(
        tier.serve_queries(),
        repeats,
        threads,
        &mut serve_walls,
        &mut progress,
    )?);
    let checks = scaling_checks(&cases);
    let mut speedup = Vec::new();
    for (group, walls) in [
        ("tree_build", &tree_walls),
        ("scheme_build", &scheme_walls),
        ("route_batch", &batch_walls),
        ("traffic_steady", &traffic_walls),
        ("churn_degrade", &churn_walls),
        ("serve_qps", &serve_walls),
    ] {
        if !walls.parallel.is_empty() {
            speedup.push(GroupSpeedup {
                group: group.to_string(),
                threads: threads as u64,
                serial_p50_ns: quantile_ns(&walls.serial, 0.5),
                parallel_p50_ns: quantile_ns(&walls.parallel, 0.5),
            });
        }
    }
    let efficiency = if threads > 1 {
        efficiency_probes(tier, threads)
    } else {
        Vec::new()
    };
    let mut env = EnvStamp::current();
    env.threads = threads as u64;
    Ok(BenchDoc {
        label: label.to_string(),
        tier: tier.name().to_string(),
        env,
        cases,
        checks,
        speedup,
        efficiency,
    })
}

/// One profiled parallel run per engine-driven group (`route_batch` and
/// `traffic_steady`), at the group's largest sweep point, to stamp worker
/// utilization and imbalance into the document. The build groups simulate
/// their rounds through the cost ledger rather than the engine round loop,
/// so they have no worker phases to attribute. Runs after the timed repeats,
/// so the profiler never touches a gated wall sample.
fn efficiency_probes(tier: Tier, threads: usize) -> Vec<GroupEfficiency> {
    let t = threads as u64;
    let mut out = Vec::new();

    let load = *tier.batch_loads().last().unwrap();
    let mut rng = Sweep::rng(BATCH_SEED, 0);
    let g = Family::ErdosRenyi.generate(BATCH_N, &mut rng);
    let built = routing::build(&g, &BuildParams::new(BATCH_K), &mut rng);
    let net = Network::new(g);
    let pairs = batch_pairs(load);
    let report = packet::send_many_profiled(&net, &built.scheme, &pairs, threads);
    if let Some(p) = report.stats.profile.as_deref() {
        out.push(GroupEfficiency::from_profile("route_batch", t, p));
    }

    let rate = *tier.traffic_rates().last().unwrap();
    let mut rng = Sweep::rng(TRAFFIC_SEED, 0);
    let g = Family::ErdosRenyi.generate(TRAFFIC_N, &mut rng);
    let built = routing::build(&g, &BuildParams::new(BATCH_K), &mut rng);
    let net = Network::new(g);
    let scenario = TrafficScenario {
        network: &net,
        scheme: &built.scheme,
        workload: WorkloadKind::Uniform,
        config: ScenarioConfig {
            inject_rounds: TRAFFIC_INJECT_ROUNDS,
            queue_cap: TRAFFIC_QUEUE_CAP,
            threads,
            profile: true,
            seed: TRAFFIC_SEED,
            ..ScenarioConfig::default()
        },
    };
    let run = scenario.run(rate);
    if let Some(p) = run.stats.profile.as_deref() {
        out.push(GroupEfficiency::from_profile("traffic_steady", t, p));
    }

    out
}

/// Raw wall-clock samples for one suite group, split by engine.
#[derive(Debug, Default)]
struct WallPair {
    serial: Vec<u64>,
    parallel: Vec<u64>,
}

/// Run repeated measurements of `f` (which takes the engine thread count),
/// checking the simulated columns agree across repeats and across thread
/// counts. The returned [`WallStats`] summarizes the serial samples; raw
/// samples from both engines land in `walls`.
fn repeated(
    id: &str,
    repeats: usize,
    threads: usize,
    walls: &mut WallPair,
    mut f: impl FnMut(usize) -> (Vec<(String, u64)>, u64),
) -> Result<(Vec<(String, u64)>, WallStats), String> {
    let mut sim: Option<Vec<(String, u64)>> = None;
    let mut serial = Vec::with_capacity(repeats);
    for _ in 0..repeats {
        let (s, wall_ns) = f(1);
        serial.push(wall_ns);
        match &sim {
            None => sim = Some(s),
            Some(prev) if *prev == s => {}
            Some(prev) => {
                return Err(format!(
                    "case {id}: simulated columns changed across repeats at a fixed seed \
                     ({prev:?} vs {s:?}) — the pipeline is nondeterministic"
                ));
            }
        }
        if threads > 1 {
            let (s, wall_ns) = f(threads);
            if sim.as_ref() != Some(&s) {
                return Err(format!(
                    "case {id}: simulated columns changed with {threads} worker threads \
                     ({sim:?} vs {s:?}) — the parallel engine must match the serial engine"
                ));
            }
            walls.parallel.push(wall_ns);
        }
    }
    let stats = WallStats::from_samples(&serial);
    walls.serial.append(&mut serial);
    Ok((sim.unwrap_or_default(), stats))
}

fn tree_case(
    n: usize,
    repeats: usize,
    threads: usize,
    walls: &mut WallPair,
) -> Result<CaseResult, String> {
    let id = format!("tree_build/er/n{n}");
    let (sim, wall) = repeated(&id, repeats, threads, walls, |threads| {
        let mut rng = Sweep::rng(TREE_SEED, n as u64);
        let g = Family::ErdosRenyi.generate(n, &mut rng);
        let t = tree::shortest_path_tree(&g, VertexId(0));
        let net = Network::new(g);
        let sw = Stopwatch::start();
        let out = distributed::build_observed(
            &net,
            &t,
            &distributed::Config {
                threads,
                ..distributed::Config::default()
            },
            &mut rng,
            &mut obs::Recorder::disabled(),
        );
        let wall_ns = sw.elapsed_ns();
        let sim = vec![
            ("rounds".to_string(), out.ledger.rounds()),
            ("messages".to_string(), out.ledger.messages()),
            ("words".to_string(), out.ledger.words()),
            (
                "peak_memory_words".to_string(),
                out.memory.max_peak() as u64,
            ),
            (
                "table_words".to_string(),
                out.scheme.max_table_words() as u64,
            ),
            (
                "label_words".to_string(),
                out.scheme.max_label_words() as u64,
            ),
        ];
        (sim, wall_ns)
    })?;
    Ok(CaseResult {
        id,
        group: "tree_build".to_string(),
        x: n as u64,
        sim,
        wall,
    })
}

fn scheme_case(
    n: usize,
    repeats: usize,
    threads: usize,
    walls: &mut WallPair,
) -> Result<CaseResult, String> {
    let id = format!("scheme_build/er/k{BATCH_K}/n{n}");
    let (sim, wall) = repeated(&id, repeats, threads, walls, |threads| {
        let mut rng = Sweep::rng(SCHEME_SEED, n as u64);
        let g = Family::ErdosRenyi.generate(n, &mut rng);
        // An enabled recorder because `BuildReport` has no words column; the
        // recorder totals mirror the construction's ledger exactly.
        let mut rec = obs::Recorder::new();
        let sw = Stopwatch::start();
        let built = build_observed(
            &g,
            &BuildParams::new(BATCH_K).with_threads(threads),
            &mut rng,
            &mut rec,
        );
        let wall_ns = sw.elapsed_ns();
        let sim = vec![
            ("rounds".to_string(), built.report.rounds),
            ("messages".to_string(), built.report.messages),
            ("words".to_string(), rec.totals().words),
            (
                "peak_memory_words".to_string(),
                built.report.memory.max_peak() as u64,
            ),
            (
                "table_words".to_string(),
                built.report.max_table_words as u64,
            ),
            (
                "label_words".to_string(),
                built.report.max_label_words as u64,
            ),
            // Per-component attribution maxima from the scheme observatory
            // (`routing::audit`): pure post-build reads that consume no RNG,
            // so every pre-existing column stays byte-identical.
            (
                "aud_membership_words".to_string(),
                att_max(&built.scheme, routing::audit::Component::ClusterMembership),
            ),
            (
                "aud_tree_table_words".to_string(),
                att_max(&built.scheme, routing::audit::Component::TreeTables),
            ),
            (
                "aud_tree_label_words".to_string(),
                att_max(&built.scheme, routing::audit::Component::TreeLabels),
            ),
            (
                "aud_pivot_words".to_string(),
                att_max(&built.scheme, routing::audit::Component::PivotSets),
            ),
        ];
        (sim, wall_ns)
    })?;
    Ok(CaseResult {
        id,
        group: "scheme_build".to_string(),
        x: n as u64,
        sim,
        wall,
    })
}

/// Largest per-vertex word count of one attribution component, with the
/// attribution-reconciliation identity asserted along the way (the audit's
/// exact-sum guarantee holds on every benchmarked scheme, not just in its
/// own tests).
fn att_max(scheme: &routing::RoutingScheme, c: routing::audit::Component) -> u64 {
    let att = routing::audit::attribution(scheme);
    assert!(att.exact, "component attribution must reconcile exactly");
    att.component_max(c) as u64
}

/// The `route_batch` group's deterministic source/destination pairs for a
/// given offered load.
fn batch_pairs(load: usize) -> Vec<(VertexId, VertexId)> {
    use rand::Rng as _;
    let mut rng = Sweep::rng(BATCH_SEED, load as u64);
    (0..load)
        .map(|_| {
            let a = rng.gen_range(0..BATCH_N as u32);
            let mut b = rng.gen_range(0..BATCH_N as u32);
            while b == a {
                b = rng.gen_range(0..BATCH_N as u32);
            }
            (VertexId(a), VertexId(b))
        })
        .collect()
}

fn batch_cases(
    loads: &[usize],
    repeats: usize,
    threads: usize,
    walls: &mut WallPair,
    progress: &mut impl FnMut(&str),
) -> Result<Vec<CaseResult>, String> {
    // One fixed graph and scheme for the whole group: the sweep varies the
    // offered load, not the network.
    let mut rng = Sweep::rng(BATCH_SEED, 0);
    let g = Family::ErdosRenyi.generate(BATCH_N, &mut rng);
    let built = routing::build(&g, &BuildParams::new(BATCH_K), &mut rng);
    let net = Network::new(g);
    let mut cases = Vec::new();
    for &load in loads {
        let id = format!("route_batch/er/p{load}");
        let (sim, wall) = repeated(&id, repeats, threads, walls, |threads| {
            let pairs = batch_pairs(load);
            let report = packet::send_many_with(&net, &built.scheme, &pairs, threads);
            let delivered = report.deliveries().flatten().count();
            let sim = vec![
                ("rounds".to_string(), report.stats.rounds),
                ("messages".to_string(), report.stats.messages),
                ("words".to_string(), report.stats.words),
                (
                    "peak_memory_words".to_string(),
                    report.stats.memory.max_peak() as u64,
                ),
                ("delivered".to_string(), delivered as u64),
                ("dropped".to_string(), u64::from(report.dropped)),
            ];
            // The engine samples its own wall clock; use it so the number
            // prices the routing rounds, not the pair generation.
            (sim, report.stats.wall_ns)
        })?;
        cases.push(CaseResult {
            id,
            group: "route_batch".to_string(),
            x: load as u64,
            sim,
            wall,
        });
        progress(&cases.last().unwrap().id);
    }
    Ok(cases)
}

fn traffic_cases(
    rates: &[f64],
    repeats: usize,
    threads: usize,
    walls: &mut WallPair,
    progress: &mut impl FnMut(&str),
) -> Result<Vec<CaseResult>, String> {
    // One fixed graph and scheme for the whole group: the sweep varies the
    // offered rate, not the network.
    let mut rng = Sweep::rng(TRAFFIC_SEED, 0);
    let g = Family::ErdosRenyi.generate(TRAFFIC_N, &mut rng);
    let built = routing::build(&g, &BuildParams::new(BATCH_K), &mut rng);
    let net = Network::new(g);
    let mut cases = Vec::new();
    for &rate in rates {
        // Rates are swept in hundredths so the x coordinate stays integral
        // (a power-law fit is scale-invariant in x).
        let centi = (rate * 100.0).round() as u64;
        let id = format!("traffic_steady/er/uniform/r{centi}");
        let (sim, wall) = repeated(&id, repeats, threads, walls, |threads| {
            let scenario = TrafficScenario {
                network: &net,
                scheme: &built.scheme,
                workload: WorkloadKind::Uniform,
                config: ScenarioConfig {
                    inject_rounds: TRAFFIC_INJECT_ROUNDS,
                    queue_cap: TRAFFIC_QUEUE_CAP,
                    threads,
                    seed: TRAFFIC_SEED,
                    ..ScenarioConfig::default()
                },
            };
            let run = scenario.run(rate);
            let s = &run.summary;
            let sim = vec![
                ("rounds".to_string(), run.stats.rounds),
                ("messages".to_string(), run.stats.messages),
                ("words".to_string(), run.stats.words),
                (
                    "peak_memory_words".to_string(),
                    run.stats.memory.max_peak() as u64,
                ),
                ("injected".to_string(), s.injected),
                ("delivered".to_string(), s.delivered),
                ("dropped".to_string(), s.dropped()),
                ("peak_queue_packets".to_string(), s.peak_queue_packets),
            ];
            // The engine samples its own wall clock; use it so the number
            // prices the forwarding rounds, not the schedule planning.
            (sim, run.stats.wall_ns)
        })?;
        cases.push(CaseResult {
            id,
            group: "traffic_steady".to_string(),
            x: centi,
            sim,
            wall,
        });
        progress(&cases.last().unwrap().id);
    }
    Ok(cases)
}

fn churn_cases(
    rounds_sweep: &[u64],
    repeats: usize,
    threads: usize,
    walls: &mut WallPair,
    progress: &mut impl FnMut(&str),
) -> Result<Vec<CaseResult>, String> {
    // One fixed scale-free graph and scheme for the whole group: the sweep
    // varies how long the targeted-removal process runs, not the network.
    let mut rng = Sweep::rng(CHURN_SEED, 0);
    let g = Family::ScaleFree.generate(CHURN_N, &mut rng);
    let built = routing::build(&g, &BuildParams::new(BATCH_K), &mut rng);
    let mut cases = Vec::new();
    for &rounds in rounds_sweep {
        let id = format!("churn_degrade/sf/targeted/r{rounds}");
        let (sim, wall) = repeated(&id, repeats, threads, walls, |threads| {
            let scenario = ChurnScenario {
                graph: &g,
                scheme: &built.scheme,
                config: ChurnConfig {
                    process: ProcessKind::Targeted,
                    rate: CHURN_RATE,
                    rounds,
                    seed: CHURN_SEED,
                    threads,
                    ..ChurnConfig::default()
                },
            };
            let sw = Stopwatch::start();
            let run = scenario.run();
            let wall_ns = sw.elapsed_ns();
            let last = run.rows.last().expect("timeline has a baseline row");
            // Reachability is a ratio; sweep it in parts-per-million so the
            // column stays an exactly-gateable integer.
            let reach_ppm = (last.reachability(run.baseline_connected) * 1e6).round() as u64;
            let sim = vec![
                ("rounds".to_string(), run.engine_rounds),
                ("messages".to_string(), run.engine_messages),
                ("words".to_string(), run.engine_words),
                ("dead_vertices".to_string(), last.dead_vertices),
                ("dead_edges".to_string(), last.dead_edges),
                ("blast_radius".to_string(), last.blast_radius),
                ("final_reach_ppm".to_string(), reach_ppm),
                (
                    "delivered".to_string(),
                    run.rows.iter().map(|r| r.flow_delivered).sum(),
                ),
                (
                    "dropped_stuck".to_string(),
                    run.rows.iter().map(|r| r.dropped_stuck).sum(),
                ),
                (
                    "undeliverable".to_string(),
                    run.rows.iter().map(|r| r.undeliverable).sum(),
                ),
                ("peak_queue_packets".to_string(), run.peak_queue_packets),
            ];
            (sim, wall_ns)
        })?;
        cases.push(CaseResult {
            id,
            group: "churn_degrade".to_string(),
            x: rounds,
            sim,
            wall,
        });
        progress(&cases.last().unwrap().id);
    }
    Ok(cases)
}

fn serve_cases(
    query_counts: &[usize],
    repeats: usize,
    threads: usize,
    walls: &mut WallPair,
    progress: &mut impl FnMut(&str),
) -> Result<Vec<CaseResult>, String> {
    // One fixed graph, scheme, and shared snapshot for the whole group: the
    // sweep varies the stream length, not the network.
    let mut rng = Sweep::rng(SERVE_SEED, 0);
    let g = Family::ErdosRenyi.generate(SERVE_N, &mut rng);
    let built = routing::build(&g, &BuildParams::new(BATCH_K), &mut rng);
    let snap = Snapshot::share(g, built.scheme);
    let mut cases = Vec::new();
    for &queries in query_counts {
        let id = format!("serve_qps/er/uniform/q{queries}");
        let (sim, wall) = repeated(&id, repeats, threads, walls, |threads| {
            let config = ServeConfig {
                workload: ServeWorkload::Uniform,
                queries,
                batch: SERVE_BATCH,
                threads,
                seed: SERVE_SEED,
                check_rate: SERVE_CHECK_RATE,
            };
            let stream = generate_stream(&snap, &config);
            let mut pool = ServePool::start(snap.clone(), threads);
            let summary = run_closed(&mut pool, &stream, &config);
            let sim = vec![
                ("answered".to_string(), summary.answered),
                ("unreachable".to_string(), summary.unreachable),
                ("errors".to_string(), summary.errors),
                ("checks".to_string(), summary.checks),
                ("mismatches".to_string(), summary.mismatches),
                ("total_weight".to_string(), summary.total_weight),
                ("total_hops".to_string(), summary.total_hops),
                ("answer_checksum".to_string(), summary.answer_checksum),
            ];
            // The run times its own serving loop; use it so the number
            // prices the answered batches, not the stream generation or
            // pool spin-up, and QPS can be read straight off the case.
            (sim, summary.wall_ns)
        })?;
        cases.push(CaseResult {
            id,
            group: "serve_qps".to_string(),
            x: queries as u64,
            sim,
            wall,
        });
        progress(&cases.last().unwrap().id);
    }
    Ok(cases)
}

/// The paper-predicted exponent ranges the checker asserts: metric, range,
/// and the claim it operationalizes. Log-like growth is asserted as a small
/// positive exponent band (see [`obs::scaling`]); polylog slack widens every
/// band beyond the bare exponent.
const PREDICTIONS: &[(&str, &str, f64, f64, &str)] = &[
    (
        "tree_build",
        "rounds",
        0.35,
        0.95,
        "Õ(√n + D) construction rounds (Theorem 2)",
    ),
    (
        "tree_build",
        "peak_memory_words",
        -0.05,
        0.30,
        "O(log n) memory per vertex (Theorem 2); prior work's √n would fit ≈ 0.4+",
    ),
    (
        "tree_build",
        "table_words",
        -0.05,
        0.05,
        "O(1) routing tables (Theorem 2)",
    ),
    (
        "tree_build",
        "label_words",
        0.0,
        0.30,
        "O(log n) labels (Theorem 2)",
    ),
    (
        "scheme_build",
        "rounds",
        0.80,
        1.80,
        "(n^{1/2+1/k} + D)·polylog construction rounds at k = 2 (Theorem 3)",
    ),
    (
        "scheme_build",
        "peak_memory_words",
        0.25,
        0.80,
        "Õ(n^{1/k}) memory per vertex at k = 2 (Theorem 3)",
    ),
    (
        "scheme_build",
        "aud_membership_words",
        0.20,
        0.85,
        "Õ(n^{1/k}) cluster memberships per vertex at k = 2 (Claim 6)",
    ),
    (
        "scheme_build",
        "aud_tree_table_words",
        0.20,
        0.85,
        "O(1)-word tree tables × Õ(n^{1/k}) memberships at k = 2 (Theorems 2–3)",
    ),
    (
        "scheme_build",
        "aud_tree_label_words",
        0.0,
        0.40,
        "O(log n) tree-label words per vertex (Theorem 2)",
    ),
    (
        "scheme_build",
        "aud_pivot_words",
        -0.05,
        0.20,
        "O(k) pivot words per vertex — constant at fixed k = 2",
    ),
    (
        "route_batch",
        "words",
        0.70,
        1.30,
        "Θ(P) total words for a P-packet batch (loop-free per-tree forwarding)",
    ),
    (
        "traffic_steady",
        "delivered",
        0.70,
        1.30,
        "delivered throughput tracks the offered rate below saturation",
    ),
    (
        "serve_qps",
        "answered",
        0.85,
        1.15,
        "answered queries scale linearly with the stream — O(1) table/label reads per query at a fixed scheme",
    ),
];

/// Fit each predicted metric over its group's sweep. Groups with fewer than
/// three points are skipped (a two-point "fit" is just a ratio).
pub fn scaling_checks(cases: &[CaseResult]) -> Vec<ScalingCheck> {
    let mut checks = Vec::new();
    for &(group, metric, lo, hi, claim) in PREDICTIONS {
        let points: Vec<(f64, f64)> = cases
            .iter()
            .filter(|c| c.group == group)
            .filter_map(|c| c.sim(metric).map(|y| (c.x as f64, y.max(1) as f64)))
            .collect();
        if points.len() < 3 {
            continue;
        }
        if let Some(fit) = fit_power_law(&points) {
            checks.push(ScalingCheck {
                metric: format!("{group}/{metric}"),
                fit,
                predicted: ExponentRange::new(lo, hi),
                claim: claim.to_string(),
            });
        }
    }
    checks
}

/// Thresholds for [`compare`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CompareConfig {
    /// Fractional tolerance on simulated columns. `0.0` (the default) gates
    /// on *exact equality* — simulated costs are deterministic, so any drift
    /// is a real behavior change. A positive value gates only increases
    /// beyond `old · (1 + sim_tol)`.
    pub sim_tol: f64,
    /// Fractional tolerance on wall-clock p50 before a case counts as a
    /// wall regression.
    pub wall_tol: f64,
    /// Whether wall regressions fail the comparison (default: advisory
    /// only — wall clocks are machine- and load-dependent).
    pub wall_gate: bool,
}

impl Default for CompareConfig {
    fn default() -> CompareConfig {
        CompareConfig {
            sim_tol: 0.0,
            wall_tol: 0.5,
            wall_gate: false,
        }
    }
}

/// One compared metric.
#[derive(Clone, Debug, PartialEq)]
pub struct DiffRow {
    /// Case id.
    pub case: String,
    /// Metric name (`sim/<column>` or `wall_ns/p50`).
    pub metric: String,
    /// Old value.
    pub old: u64,
    /// New value.
    pub new: u64,
    /// Signed relative change in percent (`new` vs `old`; 0 when both 0).
    pub delta_pct: f64,
    /// `ok`, `changed`, `regressed`, `improved`, `wall-regressed`, or
    /// `wall-improved`.
    pub status: &'static str,
}

/// The outcome of diffing two BENCH documents.
#[derive(Clone, Debug, Default)]
pub struct Comparison {
    /// Every compared metric, in document order.
    pub rows: Vec<DiffRow>,
    /// Gated failures (nonzero exit).
    pub regressions: Vec<String>,
    /// Non-gated findings: wall advisories and unmatched cases.
    pub advisories: Vec<String>,
    /// Number of case ids present in both documents.
    pub matched: usize,
}

impl Comparison {
    /// Whether the new document passes the gates.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }

    /// A markdown summary: a table of every non-`ok` metric plus each
    /// case's wall p50, then the verdict lines.
    pub fn markdown(&self, old_label: &str, new_label: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "## drt compare: {old_label} → {new_label}\n");
        let _ = writeln!(out, "| case | metric | old | new | Δ% | status |");
        let _ = writeln!(out, "|---|---|---:|---:|---:|---|");
        for row in &self.rows {
            if row.status == "ok" && !row.metric.starts_with("wall_ns/") {
                continue;
            }
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {:+.1} | {} |",
                row.case, row.metric, row.old, row.new, row.delta_pct, row.status
            );
        }
        let _ = writeln!(
            out,
            "\n{} cases matched, {} regression(s), {} advisory note(s).",
            self.matched,
            self.regressions.len(),
            self.advisories.len()
        );
        for r in &self.regressions {
            let _ = writeln!(out, "- REGRESSION: {r}");
        }
        for a in &self.advisories {
            let _ = writeln!(out, "- advisory: {a}");
        }
        out
    }
}

fn pct(old: u64, new: u64) -> f64 {
    if old == 0 && new == 0 {
        0.0
    } else if old == 0 {
        f64::INFINITY
    } else {
        (new as f64 - old as f64) / old as f64 * 100.0
    }
}

/// Diff `new` against `old` under `cfg`'s thresholds.
pub fn compare(old: &BenchDoc, new: &BenchDoc, cfg: &CompareConfig) -> Comparison {
    let mut cmp = Comparison::default();
    for old_case in &old.cases {
        let Some(new_case) = new.case(&old_case.id) else {
            cmp.advisories
                .push(format!("case {} missing from new run", old_case.id));
            continue;
        };
        cmp.matched += 1;
        for (key, old_v) in &old_case.sim {
            let Some(new_v) = new_case.sim(key) else {
                cmp.advisories
                    .push(format!("case {}: sim column '{key}' missing", old_case.id));
                continue;
            };
            let delta_pct = pct(*old_v, new_v);
            let status = if new_v == *old_v {
                "ok"
            } else if cfg.sim_tol == 0.0 {
                // Exact gate: simulated costs are deterministic, so any
                // difference — in either direction — is a behavior change.
                cmp.regressions.push(format!(
                    "{}/{key}: {old_v} → {new_v} ({delta_pct:+.1}%) with exact gating",
                    old_case.id
                ));
                "changed"
            } else if (new_v as f64) > *old_v as f64 * (1.0 + cfg.sim_tol) {
                cmp.regressions.push(format!(
                    "{}/{key}: {old_v} → {new_v} ({delta_pct:+.1}%) exceeds +{:.0}%",
                    old_case.id,
                    cfg.sim_tol * 100.0
                ));
                "regressed"
            } else if (new_v as f64) < *old_v as f64 * (1.0 - cfg.sim_tol) {
                "improved"
            } else {
                "ok"
            };
            cmp.rows.push(DiffRow {
                case: old_case.id.clone(),
                metric: format!("sim/{key}"),
                old: *old_v,
                new: new_v,
                delta_pct,
                status,
            });
        }
        let (old_w, new_w) = (old_case.wall.p50_ns, new_case.wall.p50_ns);
        let delta_pct = pct(old_w, new_w);
        let status = if (new_w as f64) > old_w as f64 * (1.0 + cfg.wall_tol) {
            let msg = format!(
                "{}: wall p50 {:.2}ms → {:.2}ms ({delta_pct:+.1}%) exceeds +{:.0}%",
                old_case.id,
                old_w as f64 / 1e6,
                new_w as f64 / 1e6,
                cfg.wall_tol * 100.0
            );
            if cfg.wall_gate {
                cmp.regressions.push(msg);
            } else {
                cmp.advisories.push(msg);
            }
            "wall-regressed"
        } else if (new_w as f64) < old_w as f64 * (1.0 - cfg.wall_tol) {
            "wall-improved"
        } else {
            "ok"
        };
        cmp.rows.push(DiffRow {
            case: old_case.id.clone(),
            metric: "wall_ns/p50".to_string(),
            old: old_w,
            new: new_w,
            delta_pct,
            status,
        });
    }
    for new_case in &new.cases {
        if old.case(&new_case.id).is_none() {
            cmp.advisories
                .push(format!("case {} is new (no old value)", new_case.id));
        }
    }
    // Scaling-law verdicts: a check that held in the old document and fails
    // in the new one is a gated regression — the asymptotic claim itself
    // broke, which exact per-case gating can miss when both documents were
    // run at different tiers. New checks and newly-passing checks are
    // advisory.
    for check in &new.checks {
        let old_check = old.checks.iter().find(|o| o.metric == check.metric);
        match old_check {
            Some(o) if o.ok() && !check.ok() => {
                cmp.regressions.push(format!(
                    "scaling {}: exponent {:.3} left predicted [{:.2}, {:.2}] (was {:.3}) — {}",
                    check.metric,
                    check.fit.exponent,
                    check.predicted.lo,
                    check.predicted.hi,
                    o.fit.exponent,
                    check.claim
                ));
            }
            Some(o) if !o.ok() && check.ok() => {
                cmp.advisories.push(format!(
                    "scaling {}: now fits predicted [{:.2}, {:.2}] (exponent {:.3}, was {:.3})",
                    check.metric,
                    check.predicted.lo,
                    check.predicted.hi,
                    check.fit.exponent,
                    o.fit.exponent
                ));
            }
            None => {
                cmp.advisories.push(format!(
                    "scaling {} is new: exponent {:.3}, predicted [{:.2}, {:.2}], {}",
                    check.metric,
                    check.fit.exponent,
                    check.predicted.lo,
                    check.predicted.hi,
                    if check.ok() { "fits" } else { "DOES NOT fit" }
                ));
            }
            _ => {}
        }
    }
    // Parallel speedup is real time on one specific machine, so it is never
    // gated — like the wall columns, it only ever produces advisories.
    for s in &new.speedup {
        let prior = old
            .speedup
            .iter()
            .find(|o| o.group == s.group)
            .map(|o| format!(" (was {:.2}x at {} threads)", o.speedup(), o.threads))
            .unwrap_or_default();
        cmp.advisories.push(format!(
            "{}: parallel speedup {:.2}x at {} threads — serial p50 {:.2}ms, \
             parallel p50 {:.2}ms{prior}",
            s.group,
            s.speedup(),
            s.threads,
            s.serial_p50_ns as f64 / 1e6,
            s.parallel_p50_ns as f64 / 1e6,
        ));
    }
    // Likewise the profiled efficiency figures: real-time derived, so they
    // only ever surface as advisories.
    for e in &new.efficiency {
        let prior = old
            .efficiency
            .iter()
            .find(|o| o.group == e.group)
            .map(|o| format!(" (was {:.0}% / {:.2}x)", o.utilization * 100.0, o.imbalance))
            .unwrap_or_default();
        cmp.advisories.push(format!(
            "{}: worker utilization {:.0}% at {} threads, imbalance {:.2}x{prior}",
            e.group,
            e.utilization * 100.0,
            e.threads,
            e.imbalance,
        ));
    }
    cmp
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_doc(scale: u64) -> BenchDoc {
        let case = |id: &str, group: &str, x: u64, rounds: u64| CaseResult {
            id: id.to_string(),
            group: group.to_string(),
            x,
            sim: vec![
                ("rounds".to_string(), rounds),
                ("words".to_string(), rounds * 3),
            ],
            wall: WallStats {
                p50_ns: 1000 * scale,
                p95_ns: 1500 * scale,
                min_ns: 900 * scale,
                max_ns: 1600 * scale,
                repeats: 3,
            },
        };
        BenchDoc {
            label: format!("doc{scale}"),
            tier: "smoke".to_string(),
            env: EnvStamp::current(),
            cases: vec![
                case("tree_build/er/n64", "tree_build", 64, 100 * scale),
                case("tree_build/er/n128", "tree_build", 128, 160 * scale),
            ],
            checks: Vec::new(),
            speedup: Vec::new(),
            efficiency: Vec::new(),
        }
    }

    #[test]
    fn doc_round_trips_through_json() {
        let doc = tiny_doc(1);
        let text = doc.to_value().to_string();
        let back = BenchDoc::from_value(&obs::json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn from_value_rejects_wrong_schema() {
        let mut v = tiny_doc(1).to_value();
        if let Value::Object(fields) = &mut v {
            fields[0].1 = Value::from("drt-bench/v0");
        }
        assert!(BenchDoc::from_value(&v).unwrap_err().contains("schema"));
    }

    #[test]
    fn identical_docs_compare_clean() {
        let doc = tiny_doc(1);
        let cmp = compare(&doc, &doc, &CompareConfig::default());
        assert!(cmp.passed());
        assert_eq!(cmp.matched, 2);
        assert!(cmp.advisories.is_empty());
        assert!(cmp.rows.iter().all(|r| r.status == "ok"));
    }

    #[test]
    fn exact_gate_flags_any_sim_drift() {
        let old = tiny_doc(1);
        let mut new = tiny_doc(1);
        new.cases[0].sim[0].1 += 1;
        let cmp = compare(&old, &new, &CompareConfig::default());
        assert!(!cmp.passed());
        assert_eq!(cmp.regressions.len(), 1);
        // A loose tolerance lets the same drift through.
        let loose = CompareConfig {
            sim_tol: 0.10,
            ..CompareConfig::default()
        };
        assert!(compare(&old, &new, &loose).passed());
    }

    #[test]
    fn wall_regressions_stay_advisory_unless_gated() {
        let old = tiny_doc(1);
        let new = tiny_doc(3); // 3x slower wall, same sims? no — sims scale too
        let mut new = new;
        for (c_old, c_new) in old.cases.iter().zip(new.cases.iter_mut()) {
            c_new.sim = c_old.sim.clone();
        }
        let cmp = compare(&old, &new, &CompareConfig::default());
        assert!(cmp.passed(), "wall is advisory by default");
        assert_eq!(cmp.advisories.len(), 2);
        let gated = CompareConfig {
            wall_gate: true,
            ..CompareConfig::default()
        };
        assert!(!compare(&old, &new, &gated).passed());
    }

    #[test]
    fn unmatched_cases_are_advisory() {
        let old = tiny_doc(1);
        let mut new = tiny_doc(1);
        new.cases.pop();
        let cmp = compare(&old, &new, &CompareConfig::default());
        assert!(cmp.passed());
        assert_eq!(cmp.matched, 1);
        assert_eq!(cmp.advisories.len(), 1);
    }

    #[test]
    fn markdown_lists_regressions() {
        let old = tiny_doc(1);
        let mut new = tiny_doc(1);
        new.cases[1].sim[1].1 *= 2;
        let cmp = compare(&old, &new, &CompareConfig::default());
        let md = cmp.markdown("old", "new");
        assert!(md.contains("| tree_build/er/n128 | sim/words |"));
        assert!(md.contains("REGRESSION"));
        assert!(md.contains("2 cases matched, 1 regression(s)"));
    }

    #[test]
    fn speedup_entries_round_trip_and_stay_advisory() {
        let mut doc = tiny_doc(1);
        doc.env.threads = 4;
        doc.speedup.push(GroupSpeedup {
            group: "route_batch".to_string(),
            threads: 4,
            serial_p50_ns: 2_000_000,
            parallel_p50_ns: 1_000_000,
        });
        let text = doc.to_value().to_string();
        let back = BenchDoc::from_value(&obs::json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, doc);
        assert!((back.speedup[0].speedup() - 2.0).abs() < 1e-9);
        // Speedup never gates: it only adds an advisory line.
        let cmp = compare(&tiny_doc(1), &doc, &CompareConfig::default());
        assert!(cmp.passed());
        assert!(cmp
            .advisories
            .iter()
            .any(|a| a.contains("parallel speedup 2.00x at 4 threads")));
    }

    #[test]
    fn efficiency_entries_round_trip_and_stay_advisory() {
        let mut doc = tiny_doc(1);
        doc.env.threads = 4;
        doc.efficiency.push(GroupEfficiency {
            group: "route_batch".to_string(),
            threads: 4,
            utilization: 0.62,
            imbalance: 1.31,
        });
        let text = doc.to_value().to_string();
        let back = BenchDoc::from_value(&obs::json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, doc);
        // Efficiency never gates: it only adds an advisory line.
        let cmp = compare(&tiny_doc(1), &doc, &CompareConfig::default());
        assert!(cmp.passed());
        assert!(cmp
            .advisories
            .iter()
            .any(|a| a.contains("worker utilization 62% at 4 threads, imbalance 1.31x")));
    }

    #[test]
    fn docs_without_speedup_or_threads_still_parse() {
        // Simulate a document written before the parallel engine existed:
        // no env.threads, no speedup array.
        let mut v = tiny_doc(1).to_value();
        if let Value::Object(fields) = &mut v {
            fields.retain(|(k, _)| k != "speedup");
            for (k, val) in fields.iter_mut() {
                if k == "env" {
                    if let Value::Object(env_fields) = val {
                        env_fields.retain(|(k, _)| k != "threads");
                    }
                }
            }
        }
        let doc = BenchDoc::from_value(&v).unwrap();
        assert_eq!(doc.env.threads, 1);
        assert!(doc.speedup.is_empty());
    }

    #[test]
    fn threaded_smoke_suite_matches_serial_sims_and_records_speedup() {
        let serial = run_suite(Tier::Smoke, "t1", Some(1), 1, |_| {}).unwrap();
        let parallel = run_suite(Tier::Smoke, "t2", Some(1), 2, |_| {}).unwrap();
        assert_eq!(serial.env.threads, 1);
        assert_eq!(parallel.env.threads, 2);
        assert!(serial.speedup.is_empty());
        // One speedup entry per group, all measured at 2 threads.
        let groups: Vec<&str> = parallel.speedup.iter().map(|s| s.group.as_str()).collect();
        assert_eq!(
            groups,
            [
                "tree_build",
                "scheme_build",
                "route_batch",
                "traffic_steady",
                "churn_degrade",
                "serve_qps"
            ]
        );
        assert!(parallel.speedup.iter().all(|s| s.threads == 2));
        // One profiled efficiency entry per engine-driven group, with sane
        // figures (the build groups never enter the engine round loop).
        assert!(serial.efficiency.is_empty());
        let eff_groups: Vec<&str> = parallel
            .efficiency
            .iter()
            .map(|e| e.group.as_str())
            .collect();
        assert_eq!(eff_groups, ["route_batch", "traffic_steady"]);
        for e in &parallel.efficiency {
            assert_eq!(e.threads, 2);
            assert!(e.utilization > 0.0 && e.utilization <= 1.0, "{e:?}");
            assert!(e.imbalance >= 1.0, "{e:?}");
        }
        // The simulated columns are thread-count independent, so the two
        // documents diff cleanly under the exact gate.
        let cmp = compare(&serial, &parallel, &CompareConfig::default());
        assert!(cmp.passed(), "regressions: {:?}", cmp.regressions);
    }

    #[test]
    fn smoke_suite_runs_and_round_trips() {
        let doc = run_suite(Tier::Smoke, "unit", Some(1), 1, |_| {}).unwrap();
        assert_eq!(doc.tier, "smoke");
        assert_eq!(
            doc.cases.len(),
            Tier::Smoke.tree_sizes().len()
                + Tier::Smoke.scheme_sizes().len()
                + Tier::Smoke.batch_loads().len()
                + Tier::Smoke.traffic_rates().len()
                + Tier::Smoke.churn_rounds().len()
                + Tier::Smoke.serve_queries().len()
        );
        // Two points per group: no scaling fits at smoke size.
        assert!(doc.checks.is_empty());
        for case in &doc.cases {
            // Serving cases have no engine rounds; their activity witness is
            // the answered count (and an always-clean mismatch column).
            if case.group == "serve_qps" {
                assert!(case.sim("answered").unwrap() > 0, "{}", case.id);
                assert_eq!(case.sim("mismatches"), Some(0), "{}", case.id);
            } else {
                assert!(case.sim("rounds").unwrap() > 0, "{}", case.id);
            }
            assert!(case.wall.repeats == 1);
        }
        let text = doc.to_value().to_string();
        let back = BenchDoc::from_value(&obs::json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, doc);
    }
}
