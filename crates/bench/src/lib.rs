//! Shared harness for the table/figure regeneration binaries.
//!
//! Each binary in `src/bin/` regenerates one artifact of the paper's
//! evaluation (see `DESIGN.md` §3 and `EXPERIMENTS.md`): it sweeps the
//! relevant parameters, prints an aligned table to stdout, and — where a
//! scaling exponent is the claim — a log-log slope estimate. The shared
//! skeleton (option parsing, recorder setup, per-case seeding, span
//! bookkeeping) lives in [`sweep`]; the standardized benchmark suite behind
//! `drt bench` / `drt compare` lives in [`suite`].

pub mod suite;
pub mod sweep;

use graphs::{generators, Graph};
use rand_chacha::ChaCha8Rng;

/// The topology families experiments run on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Family {
    /// Erdős–Rényi with mean degree ≈ 4 (small diameter).
    ErdosRenyi,
    /// Random geometric with radius tuned for connectivity (large diameter).
    Geometric,
    /// Preferential attachment, 3 links per newcomer (heavy-tailed).
    ScaleFree,
}

impl Family {
    /// All families, in display order.
    pub const ALL: [Family; 3] = [Family::ErdosRenyi, Family::Geometric, Family::ScaleFree];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Family::ErdosRenyi => "erdos-renyi",
            Family::Geometric => "geometric",
            Family::ScaleFree => "scale-free",
        }
    }

    /// Generate an `n`-vertex connected instance with weights `1..=20`.
    pub fn generate(self, n: usize, rng: &mut ChaCha8Rng) -> Graph {
        match self {
            Family::ErdosRenyi => generators::erdos_renyi_connected(n, 4.0 / n as f64, 1..=20, rng),
            Family::Geometric => {
                let r = (3.0 * (n as f64).ln() / n as f64).sqrt();
                generators::random_geometric_connected(n, r, 1..=20, rng)
            }
            Family::ScaleFree => generators::preferential_attachment(n, 3, 1..=20, rng),
        }
    }
}

/// Least-squares slope of `log(y)` against `log(x)` — the empirical growth
/// exponent for scaling figures. Delegates to [`obs::scaling::fit_power_law`].
///
/// # Panics
///
/// Panics if fewer than two points or any non-positive value is given, or if
/// all `x` coincide.
pub fn log_log_slope(points: &[(f64, f64)]) -> f64 {
    assert!(points.len() >= 2, "need at least two points");
    assert!(
        points.iter().all(|&(x, y)| x > 0.0 && y > 0.0),
        "log-log needs positive data"
    );
    obs::scaling::fit_power_law(points)
        .expect("log-log slope needs at least two distinct x")
        .exponent
}

/// Print a row of right-aligned cells under the given widths.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let mut line = String::new();
    for (cell, w) in cells.iter().zip(widths) {
        line.push_str(&format!("{cell:>w$} ", w = w));
    }
    println!("{}", line.trim_end());
}

/// Print a header row plus a dashed rule.
pub fn print_header(cells: &[&str], widths: &[usize]) {
    print_row(
        &cells.iter().map(|c| c.to_string()).collect::<Vec<_>>(),
        widths,
    );
    let total: usize = widths.iter().map(|w| w + 1).sum();
    println!("{}", "-".repeat(total.saturating_sub(1)));
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn families_generate_connected_graphs() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for f in Family::ALL {
            let g = f.generate(120, &mut rng);
            assert_eq!(g.num_vertices(), 120);
            assert!(graphs::properties::is_connected(&g), "{}", f.name());
        }
    }

    #[test]
    fn slope_of_square_law_is_two() {
        let pts: Vec<(f64, f64)> = (1..=10).map(|i| (i as f64, (i * i) as f64)).collect();
        let s = log_log_slope(&pts);
        assert!((s - 2.0).abs() < 1e-9, "slope {s}");
    }

    #[test]
    fn slope_of_sqrt_law_is_half() {
        let pts: Vec<(f64, f64)> = (1..=10)
            .map(|i| (i as f64 * 100.0, (i as f64 * 100.0).sqrt()))
            .collect();
        let s = log_log_slope(&pts);
        assert!((s - 0.5).abs() < 1e-9, "slope {s}");
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn slope_needs_points() {
        log_log_slope(&[(1.0, 1.0)]);
    }
}
