//! Shared sweep harness for the table/figure binaries.
//!
//! Every regeneration binary follows the same skeleton: parse the report
//! options, spin up a recorder, seed a `ChaCha8Rng` per case from a
//! binary-specific base, wrap each observed build in a span closed with a
//! peak-memory snapshot, and finally write the JSONL report if one was
//! requested. [`Sweep`] owns that skeleton so the binaries keep only their
//! measurement logic; the recorder stays public for binaries that also
//! attach flight records or charge engine costs directly.

use obs::json::Value;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The per-binary sweep context: parsed report options plus the recorder.
#[derive(Debug)]
pub struct Sweep {
    /// Options extracted from the command line / `DRT_REPORT`.
    pub opts: obs::cli::ReportOptions,
    /// The run recorder (enabled iff a report was requested).
    pub rec: obs::Recorder,
    /// Positional arguments left after stripping the report options.
    pub rest: Vec<String>,
    name: &'static str,
}

impl Sweep {
    /// Parse [`std::env::args`] and set up the recorder. `name` is the run
    /// name the report is written under.
    pub fn from_env(name: &'static str) -> Sweep {
        let (opts, rest) = obs::cli::ReportOptions::from_env();
        let mut rec = obs::Recorder::when(opts.reporting());
        if opts.profile {
            rec.enable_profiling();
        }
        Sweep {
            opts,
            rec,
            rest,
            name,
        }
    }

    /// Whether a report will be written at [`Sweep::finish`].
    pub fn reporting(&self) -> bool {
        self.opts.reporting()
    }

    /// The deterministic per-case RNG every sweep uses: seeded from a
    /// binary-specific `base` plus a case-specific `salt` (usually `n`).
    pub fn rng(base: u64, salt: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(base.wrapping_add(salt))
    }

    /// Run `f` under a named span, closing it with the peak-memory snapshot
    /// `f` returns alongside its result.
    pub fn observed<T>(
        &mut self,
        span: &str,
        f: impl FnOnce(&mut obs::Recorder) -> (T, Vec<usize>),
    ) -> T {
        let id = self.rec.begin(span);
        let (out, peaks) = f(&mut self.rec);
        self.rec.end_with_memory(id, &peaks);
        out
    }

    /// Append a free-form record (flight heatmap, histogram, metrics) to the
    /// report.
    pub fn add_record(&mut self, record: Value) {
        self.rec.add_record(record);
    }

    /// Write the report if one was requested (with `extra` summary fields),
    /// reporting failures to stderr without aborting the sweep output.
    pub fn finish_with(self, extra: &[(&str, Value)]) {
        if let Some(path) = &self.opts.report {
            self.rec
                .write_report(path, self.name, extra)
                .unwrap_or_else(|e| eprintln!("failed to write report {}: {e}", path.display()));
        }
    }

    /// [`Sweep::finish_with`] without extra summary fields.
    pub fn finish(self) {
        self.finish_with(&[]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_case() {
        use rand::Rng;
        let a: u64 = Sweep::rng(0x51, 256).gen();
        let b: u64 = Sweep::rng(0x51, 256).gen();
        let c: u64 = Sweep::rng(0x51, 512).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn observed_wraps_a_span_with_memory() {
        let mut sweep = Sweep {
            opts: obs::cli::ReportOptions::default(),
            rec: obs::Recorder::new(),
            rest: Vec::new(),
            name: "test",
        };
        let out = sweep.observed("case/n8", |rec| {
            rec.charge_rounds(5);
            (42u32, vec![1, 2, 9])
        });
        assert_eq!(out, 42);
        let spans = sweep.rec.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "case/n8");
        assert_eq!(spans[0].delta.rounds, 5);
        assert_eq!(spans[0].peak_memory_words, 9);
    }
}
