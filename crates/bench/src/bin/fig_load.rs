//! Figure S5 (derived): routing-phase behavior under load.
//!
//! The tables measure the *preprocessing* phase; this figure exercises the
//! *routing* phase as real store-and-forward traffic: `P` packets injected
//! simultaneously, one packet per edge per round. Delivery time = hop count +
//! queueing delay; as the offered load grows, the delay distribution
//! spreads while every packet still arrives (the scheme's trees are loop
//! free, so traffic always drains).
//!
//! Run with: `cargo run --release -p bench --bin fig_load`
//!
//! `--report <path>` (or `DRT_REPORT`) writes a JSONL run report: a
//! `fig_load/build` span for the preprocessing phase and one
//! `fig_load/p<packets>` span per load level, charged with the routing
//! phase's engine-measured rounds/messages/words.

use bench::sweep::Sweep;
use bench::{print_header, print_row, Family};
use congest::Network;
use graphs::VertexId;
use rand::Rng;
use routing::{build_observed, packet, BuildParams};

fn main() {
    let mut sweep = Sweep::from_env("fig_load");
    let reporting = sweep.reporting();
    // Engine worker threads (`--threads`/`DRT_THREADS`; 0 = all cores).
    // Output is identical at any thread count — the engine is deterministic.
    let threads = sweep.opts.threads;
    let n = 400;
    let mut rng = Sweep::rng(0xC1, 0);
    let g = Family::ErdosRenyi.generate(n, &mut rng);
    let built = sweep.observed("fig_load/build", |rec| {
        let built = build_observed(
            &g,
            &BuildParams::new(3).with_threads(threads),
            &mut rng,
            rec,
        );
        let peaks = built.report.memory.peaks().to_vec();
        (built, peaks)
    });
    let net = Network::new(g);
    println!("== Fig S5: batched routing under load (n = {n}, k = 3) ==\n");
    let widths = [10, 10, 10, 12, 12, 10];
    print_header(
        &[
            "packets",
            "delivered",
            "dropped",
            "mean delay",
            "max delay",
            "rounds",
        ],
        &widths,
    );
    for load in [16usize, 64, 256, 1024, 4096] {
        let pairs: Vec<(VertexId, VertexId)> = (0..load)
            .map(|_| {
                let a = rng.gen_range(0..n as u32);
                let mut b = rng.gen_range(0..n as u32);
                while b == a {
                    b = rng.gen_range(0..n as u32);
                }
                (VertexId(a), VertexId(b))
            })
            .collect();
        let report = sweep.observed(&format!("fig_load/p{load}"), |rec| {
            // When reporting, run the flight-recorded twin: the report is
            // identical to the untraced run's (pinned by core's tests), so
            // stdout stays byte-for-byte the same, and the heatmaps become
            // `edge_load`/`vertex_load` records in the JSONL report.
            let report = if reporting {
                let flight = packet::send_many_traced_with(&net, &built.scheme, &pairs, threads);
                let extra = [
                    ("figure", obs::json::Value::from("fig_load")),
                    ("packets", obs::json::Value::from(load)),
                ];
                rec.add_record(flight.edge_load.to_value(&extra));
                rec.add_record(flight.vertex_load.to_value(&extra));
                flight.report
            } else {
                packet::send_many_with(&net, &built.scheme, &pairs, threads)
            };
            rec.charge(&obs::Counters {
                rounds: report.stats.rounds,
                messages: report.stats.messages,
                words: report.stats.words,
                broadcasts: 0,
            });
            let peaks = report.stats.memory.peaks().to_vec();
            (report, peaks)
        });
        let delays: Vec<u64> = report.deliveries().flatten().map(|(r, _)| r).collect();
        let delivered = delays.len();
        let mean = delays.iter().sum::<u64>() as f64 / delivered.max(1) as f64;
        let max = delays.iter().max().copied().unwrap_or(0);
        print_row(
            &[
                load.to_string(),
                delivered.to_string(),
                report.dropped.to_string(),
                format!("{mean:.1}"),
                max.to_string(),
                report.stats.rounds.to_string(),
            ],
            &widths,
        );
    }
    println!("\n(delays are rounds from injection to delivery; all packets drain because");
    println!(" per-tree forwarding is loop-free — growth in max delay is pure queueing)");
    sweep.finish();
}
