//! Figure S5 (derived): routing-phase behavior under load.
//!
//! The tables measure the *preprocessing* phase; this figure exercises the
//! *routing* phase as real store-and-forward traffic: `P` packets injected
//! simultaneously, one packet per edge per round. Delivery time = hop count
//! + queueing delay; as the offered load grows, the delay distribution
//! spreads while every packet still arrives (the scheme's trees are loop
//! free, so traffic always drains).
//!
//! Run with: `cargo run --release -p bench --bin fig_load`

use bench::{print_header, print_row, Family};
use congest::Network;
use graphs::VertexId;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use routing::{build, packet, BuildParams};

fn main() {
    let n = 400;
    let mut rng = ChaCha8Rng::seed_from_u64(0xC1);
    let g = Family::ErdosRenyi.generate(n, &mut rng);
    let built = build(&g, &BuildParams::new(3), &mut rng);
    let net = Network::new(g);
    println!("== Fig S5: batched routing under load (n = {n}, k = 3) ==\n");
    let widths = [10, 10, 10, 12, 12, 10];
    print_header(
        &["packets", "delivered", "dropped", "mean delay", "max delay", "rounds"],
        &widths,
    );
    for load in [16usize, 64, 256, 1024, 4096] {
        let pairs: Vec<(VertexId, VertexId)> = (0..load)
            .map(|_| {
                let a = rng.gen_range(0..n as u32);
                let mut b = rng.gen_range(0..n as u32);
                while b == a {
                    b = rng.gen_range(0..n as u32);
                }
                (VertexId(a), VertexId(b))
            })
            .collect();
        let report = packet::send_many(&net, &built.scheme, &pairs);
        let delays: Vec<u64> = report.deliveries.iter().flatten().map(|&(r, _)| r).collect();
        let delivered = delays.len();
        let mean = delays.iter().sum::<u64>() as f64 / delivered.max(1) as f64;
        let max = delays.iter().max().copied().unwrap_or(0);
        print_row(
            &[
                load.to_string(),
                delivered.to_string(),
                report.dropped.to_string(),
                format!("{mean:.1}"),
                max.to_string(),
                report.stats.rounds.to_string(),
            ],
            &widths,
        );
    }
    println!("\n(delays are rounds from injection to delivery; all packets drain because");
    println!(" per-tree forwarding is loop-free — growth in max delay is pure queueing)");
}
