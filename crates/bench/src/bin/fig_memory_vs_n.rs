//! Figure S2 (derived): peak per-vertex memory versus `n` — the paper's
//! headline. Our tree construction stays `O(log n)` while the prior one
//! grows like `√n`; our graph scheme stays `Õ(n^{1/k})` while the prior
//! stays `Ω̃(√n)`.
//!
//! Run with: `cargo run --release -p bench --bin fig_memory_vs_n`
//!
//! `--report <path>` (or `DRT_REPORT`) writes a JSONL run report with one
//! span per our-scheme build (`fig_memory_vs_n/tree/n<n>`,
//! `fig_memory_vs_n/scheme/n<n>`); each span's `memory` field carries the
//! per-vertex peak distribution the figure summarizes.

use bench::sweep::Sweep;
use bench::{log_log_slope, print_header, print_row, Family};
use congest::Network;
use graphs::{tree, VertexId};
use routing::{build, build_observed, BuildParams, Mode};
use tree_routing::{baseline, distributed};

fn main() {
    let mut sweep = Sweep::from_env("fig_memory_vs_n");
    let threads = sweep.opts.threads;
    let widths = [8, 12, 12, 8];

    println!("== Fig S2a: tree-routing memory vs n (Theorem 2) ==");
    print_header(&["n", "ours", "prior", "ratio"], &widths);
    let mut ours_pts = Vec::new();
    let mut prior_pts = Vec::new();
    for n in [256usize, 512, 1024, 2048, 4096, 8192] {
        let mut rng = Sweep::rng(0x61, n as u64);
        let g = Family::ErdosRenyi.generate(n, &mut rng);
        let t = tree::shortest_path_tree(&g, VertexId(0));
        let net = Network::new(g);
        let ours = sweep.observed(&format!("fig_memory_vs_n/tree/n{n}"), |rec| {
            let ours = distributed::build_observed(
                &net,
                &t,
                &distributed::Config {
                    threads,
                    ..distributed::Config::default()
                },
                &mut rng,
                rec,
            );
            let peaks = ours.memory.peaks().to_vec();
            (ours, peaks)
        });
        let prior = baseline::build(&net, &t, None, &mut rng);
        let (a, b) = (ours.memory.max_peak(), prior.memory.max_peak());
        print_row(
            &[
                n.to_string(),
                a.to_string(),
                b.to_string(),
                format!("{:.1}", b as f64 / a as f64),
            ],
            &widths,
        );
        ours_pts.push((n as f64, a as f64));
        prior_pts.push((n as f64, b as f64));
    }
    println!(
        "empirical exponents: ours {:.3} (O(log n) ⇒ ≈ 0), prior {:.3} (Õ(√n) ⇒ ≈ 0.5)\n",
        log_log_slope(&ours_pts),
        log_log_slope(&prior_pts)
    );

    println!("== Fig S2b: general-scheme memory vs n (Theorem 3, k = 2) ==");
    print_header(&["n", "ours", "prior", "ratio"], &widths);
    let mut ours_pts = Vec::new();
    let mut prior_pts = Vec::new();
    for n in [128usize, 256, 512, 1024] {
        let mut rng = Sweep::rng(0x62, n as u64);
        let g = Family::ErdosRenyi.generate(n, &mut rng);
        let mut rng1 = Sweep::rng(1, 0);
        let mut rng2 = Sweep::rng(1, 0);
        let ours = sweep.observed(&format!("fig_memory_vs_n/scheme/n{n}"), |rec| {
            let ours = build_observed(
                &g,
                &BuildParams::new(2).with_threads(threads),
                &mut rng1,
                rec,
            );
            let peaks = ours.report.memory.peaks().to_vec();
            (ours, peaks)
        });
        let prior = build(
            &g,
            &BuildParams::new(2)
                .with_mode(Mode::DistributedPrior)
                .with_threads(threads),
            &mut rng2,
        );
        let (a, b) = (
            ours.report.memory.max_peak(),
            prior.report.memory.max_peak(),
        );
        print_row(
            &[
                n.to_string(),
                a.to_string(),
                b.to_string(),
                format!("{:.1}", b as f64 / a as f64),
            ],
            &widths,
        );
        ours_pts.push((n as f64, a as f64));
        prior_pts.push((n as f64, b as f64));
    }
    println!(
        "empirical exponents: ours {:.3} (Õ(n^(1/k)) ⇒ ≈ 0.5 for k=2), prior {:.3} (⪆ ours; extra √n terms)",
        log_log_slope(&ours_pts),
        log_log_slope(&prior_pts)
    );
    println!("note: at k=2 both exponents are ≈ 0.5 — the separation at fixed k=2 is the");
    println!("constant-factor E'/T' materialization; the asymptotic gap opens with k (see fig_memory_vs_k).");
    sweep.finish();
}
