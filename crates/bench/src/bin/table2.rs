//! Regenerates the paper's **Table 2**: distributed compact exact
//! tree-routing schemes, compared on rounds, table size, label size, and
//! memory per vertex.
//!
//! | row | paper's bound | what we measure |
//! |---|---|---|
//! | [LP15, EN16b] | Õ(D+√n) rounds, O(log n) tables, O(log² n) labels, Õ(√n) memory | the `baseline` construction |
//! | \[TZ01b\] | NA rounds, O(1) tables, O(log n) labels | centralized `tz` |
//! | This paper | Õ(D+√n) rounds, O(1) tables, O(log n) labels, O(log n) memory | the `distributed` construction |
//!
//! Run with: `cargo run --release -p bench --bin table2`
//!
//! Flags: `--json` prints the rows as a JSON array instead of aligned text;
//! `--report <path>` (or `DRT_REPORT`) writes a JSONL run report with one
//! `table2/<family>/n<n>` span per our-scheme build, the construction's
//! stage spans nested beneath it.

use bench::{print_header, print_row, Family};
use congest::Network;
use graphs::{properties, tree, VertexId};
use obs::json::Value;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use tree_routing::{baseline, distributed, tz};

fn main() {
    let (opts, _rest) = obs::cli::ReportOptions::from_env();
    let mut rec = obs::Recorder::when(opts.reporting());
    let mut json_rows: Vec<Value> = Vec::new();

    let sizes = [256usize, 512, 1024, 2048, 4096];
    let widths = [12, 6, 5, 9, 7, 7, 8];
    if !opts.json {
        println!("== Table 2: distributed exact tree routing (SPT of each network) ==\n");
    }
    for family in [Family::ErdosRenyi, Family::Geometric] {
        if !opts.json {
            println!("--- family: {} ---", family.name());
            print_header(
                &["scheme", "n", "D", "rounds", "table", "label", "memory"],
                &widths,
            );
        }
        for &n in &sizes {
            let mut rng = ChaCha8Rng::seed_from_u64(0xBEEF + n as u64);
            let g = family.generate(n, &mut rng);
            let d = properties::hop_diameter(&g).expect("connected");
            let t = tree::shortest_path_tree(&g, VertexId(0));
            let net = Network::new(g);
            let mut emit = |scheme: &str,
                            rounds: Option<u64>,
                            table: usize,
                            label: usize,
                            memory: Option<usize>| {
                if opts.json {
                    json_rows.push(Value::object(vec![
                        ("family", Value::from(family.name())),
                        ("scheme", Value::from(scheme)),
                        ("n", Value::from(n)),
                        ("hop_diameter", Value::from(d)),
                        ("rounds", rounds.map_or(Value::Null, Value::from)),
                        ("table_words", Value::from(table)),
                        ("label_words", Value::from(label)),
                        ("memory_words", memory.map_or(Value::Null, Value::from)),
                    ]));
                } else {
                    print_row(
                        &[
                            scheme.into(),
                            n.to_string(),
                            d.to_string(),
                            rounds.map_or("NA".into(), |r| r.to_string()),
                            table.to_string(),
                            label.to_string(),
                            memory.map_or("NA".into(), |m| m.to_string()),
                        ],
                        &widths,
                    );
                }
            };

            // [TZ01b] centralized reference.
            let central = tz::build(&t);
            emit(
                "TZ01b",
                None,
                central.max_table_words(),
                central.max_label_words(),
                None,
            );

            // Prior distributed ([LP15]/[EN16b]-style).
            let prior = baseline::build(&net, &t, None, &mut rng);
            emit(
                "LP15/EN16b",
                Some(prior.ledger.rounds()),
                prior.scheme.max_table_words(),
                prior.scheme.max_label_words(),
                Some(prior.memory.max_peak()),
            );

            // This paper.
            let span = rec.begin(&format!("table2/{}/n{n}", family.name()));
            let ours = distributed::build_observed(
                &net,
                &t,
                &distributed::Config {
                    threads: opts.threads,
                    ..distributed::Config::default()
                },
                &mut rng,
                &mut rec,
            );
            rec.end_with_memory(span, ours.memory.peaks());
            distributed::assert_matches_centralized(&t, &ours);
            emit(
                "this paper",
                Some(ours.ledger.rounds()),
                ours.scheme.max_table_words(),
                ours.scheme.max_label_words(),
                Some(ours.memory.max_peak()),
            );
            if !opts.json {
                println!();
            }
        }
    }
    if opts.json {
        println!("{}", Value::Array(json_rows));
    } else {
        println!("expected shape: our tables stay at 4 words (O(1)) and labels/memory");
        println!("grow ~log n, while the prior row's labels carry an extra log factor and");
        println!("its memory grows ~sqrt(n); rounds are ~sqrt(n)+D for both distributed rows.");
    }
    if let Some(path) = &opts.report {
        rec.write_report(path, "table2", &[])
            .unwrap_or_else(|e| eprintln!("failed to write report {}: {e}", path.display()));
    }
}
