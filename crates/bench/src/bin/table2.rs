//! Regenerates the paper's **Table 2**: distributed compact exact
//! tree-routing schemes, compared on rounds, table size, label size, and
//! memory per vertex.
//!
//! | row | paper's bound | what we measure |
//! |---|---|---|
//! | [LP15, EN16b] | Õ(D+√n) rounds, O(log n) tables, O(log² n) labels, Õ(√n) memory | the `baseline` construction |
//! | \[TZ01b\] | NA rounds, O(1) tables, O(log n) labels | centralized `tz` |
//! | This paper | Õ(D+√n) rounds, O(1) tables, O(log n) labels, O(log n) memory | the `distributed` construction |
//!
//! Run with: `cargo run --release -p bench --bin table2`

use bench::{print_header, print_row, Family};
use congest::Network;
use graphs::{properties, tree, VertexId};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use tree_routing::{baseline, distributed, tz};

fn main() {
    let sizes = [256usize, 512, 1024, 2048, 4096];
    let widths = [12, 6, 5, 9, 7, 7, 8];
    println!("== Table 2: distributed exact tree routing (SPT of each network) ==\n");
    for family in [Family::ErdosRenyi, Family::Geometric] {
        println!("--- family: {} ---", family.name());
        print_header(
            &["scheme", "n", "D", "rounds", "table", "label", "memory"],
            &widths,
        );
        for &n in &sizes {
            let mut rng = ChaCha8Rng::seed_from_u64(0xBEEF + n as u64);
            let g = family.generate(n, &mut rng);
            let d = properties::hop_diameter(&g).expect("connected");
            let t = tree::shortest_path_tree(&g, VertexId(0));
            let net = Network::new(g);

            // [TZ01b] centralized reference.
            let central = tz::build(&t);
            print_row(
                &[
                    "TZ01b".into(),
                    n.to_string(),
                    d.to_string(),
                    "NA".into(),
                    central.max_table_words().to_string(),
                    central.max_label_words().to_string(),
                    "NA".into(),
                ],
                &widths,
            );

            // Prior distributed ([LP15]/[EN16b]-style).
            let prior = baseline::build(&net, &t, None, &mut rng);
            print_row(
                &[
                    "LP15/EN16b".into(),
                    n.to_string(),
                    d.to_string(),
                    prior.ledger.rounds().to_string(),
                    prior.scheme.max_table_words().to_string(),
                    prior.scheme.max_label_words().to_string(),
                    prior.memory.max_peak().to_string(),
                ],
                &widths,
            );

            // This paper.
            let ours = distributed::build_default(&net, &t, &mut rng);
            distributed::assert_matches_centralized(&t, &ours);
            print_row(
                &[
                    "this paper".into(),
                    n.to_string(),
                    d.to_string(),
                    ours.ledger.rounds().to_string(),
                    ours.scheme.max_table_words().to_string(),
                    ours.scheme.max_label_words().to_string(),
                    ours.memory.max_peak().to_string(),
                ],
                &widths,
            );
            println!();
        }
    }
    println!("expected shape: our tables stay at 4 words (O(1)) and labels/memory");
    println!("grow ~log n, while the prior row's labels carry an extra log factor and");
    println!("its memory grows ~sqrt(n); rounds are ~sqrt(n)+D for both distributed rows.");
}
