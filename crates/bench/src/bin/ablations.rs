//! Ablations for the design choices `DESIGN.md` §4 calls out.
//!
//! 1. **Pointer jumping vs naive virtual-tree walk** — Algorithm 1 does
//!    `log n` broadcast phases (`Õ(qn + D)` rounds); the naive alternative
//!    walks the virtual tree edge by edge, `O(depth(T') · D)` rounds.
//! 2. **On-the-fly `E'` vs materialized `G'`** — the words a virtual vertex
//!    would store if `E'` were materialized, versus what our pipeline's
//!    virtual vertices actually peak at.
//! 3. **Range partition (Alg. 5) vs degree-proportional memory** — the O(1)
//!    extra words of the log-round sibling prefix-sum versus storing all
//!    children's sizes at the parent (max-degree words).
//! 4. **Hopset-accelerated vs plain bounded Bellman–Ford** — iterations to
//!    convergence with and without the hopset.
//!
//! Run with: `cargo run --release -p bench --bin ablations`
//!
//! `--report <path>` (or `DRT_REPORT`) writes a JSONL run report with one
//! `ablations/<name>/n<n>` span per observed build (ablation 3 is pure
//! arithmetic and records nothing).

use bench::{print_header, print_row, Family};
use congest::{CostLedger, MemoryMeter, Network};
use graphs::{tree, VertexId};
use hopset::bellman_ford::LimitedBf;
use hopset::construction::{build_observed as build_hopset_observed, HopsetParams};
use hopset::{Hopset, VirtualGraph};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use tree_routing::distributed;

fn main() {
    let (opts, _rest) = obs::cli::ReportOptions::from_env();
    let mut rec = obs::Recorder::when(opts.reporting());
    ablation_pointer_jumping(&mut rec, opts.threads);
    ablation_materialization(&mut rec);
    ablation_range_partition();
    ablation_hopset_bf(&mut rec);
    ablation_hopset_families(&mut rec);
    if let Some(path) = &opts.report {
        rec.write_report(path, "ablations", &[])
            .unwrap_or_else(|e| eprintln!("failed to write report {}: {e}", path.display()));
    }
}

fn ablation_pointer_jumping(rec: &mut obs::Recorder, threads: usize) {
    println!("== Ablation 1: pointer jumping vs naive virtual-tree walk ==");
    println!("(path networks: the deep-tree, large-D worst case the paper targets)");
    let widths = [8, 8, 8, 8, 14, 16];
    print_header(
        &["n", "D", "|U(T)|", "dep(T')", "jump rounds", "naive rounds"],
        &widths,
    );
    for n in [1024usize, 4096, 16384] {
        let mut rng = ChaCha8Rng::seed_from_u64(0x91 + n as u64);
        let g = graphs::generators::path(n, 1..=9, &mut rng);
        let t = tree::shortest_path_tree(&g, VertexId(0));
        let net = Network::new(g);
        let span = rec.begin(&format!("ablations/pointer-jumping/n{n}"));
        let config = distributed::Config {
            threads,
            ..distributed::Config::default()
        };
        let out = distributed::build_observed(&net, &t, &config, &mut rng, rec);
        rec.end_with_memory(span, out.memory.peaks());
        let d = out.bfs_depth as u64;
        let iters = (n as f64).log2().ceil() as u64;
        // The three global stages under pointer jumping: log n broadcast
        // phases of |U(T)| messages each (Lemma 1: |U| + D rounds).
        let jump = 3 * iters * (out.virtual_count as u64 + d);
        // Naive alternative: walk T' edge by edge; each virtual edge message
        // travels through G, up to D rounds, depth(T') times per stage.
        let naive = 3 * (out.virtual_depth as u64) * d.max(1);
        print_row(
            &[
                n.to_string(),
                d.to_string(),
                out.virtual_count.to_string(),
                out.virtual_depth.to_string(),
                jump.to_string(),
                naive.to_string(),
            ],
            &widths,
        );
    }
    println!("(both columns price only the global stages; with depth(T') ≈ √n and");
    println!(" D ≈ n the naive walk costs ~n^1.5 versus pointer jumping's ~n log n)\n");
}

fn ablation_materialization(rec: &mut obs::Recorder) {
    println!("== Ablation 2: on-the-fly E' vs materialized G' (per-vertex words) ==");
    let widths = [8, 8, 18, 18];
    print_header(&["n", "|V'|", "ours (peak)", "materialized E'"], &widths);
    for n in [256usize, 1024, 4096] {
        let mut rng = ChaCha8Rng::seed_from_u64(0x92 + n as u64);
        let g = Family::ErdosRenyi.generate(n, &mut rng);
        let virt = VirtualGraph::sample(&g, 1.0 / (n as f64).sqrt(), &mut rng);
        let m = virt.virtual_vertices().len();
        if m == 0 {
            continue;
        }
        // What the paper avoids: every virtual vertex stores its E' edges.
        let edges = virt.materialize(&g);
        let mut deg = vec![0usize; n];
        for &(u, v, _) in &edges {
            deg[u.index()] += 2;
            deg[v.index()] += 2;
        }
        let materialized = deg.iter().copied().max().unwrap_or(0);
        // What our pipeline's virtual vertices actually hold: hopset
        // out-edges plus O(levels) scratch.
        let mut led = CostLedger::new();
        let mut mem = MemoryMeter::new(n);
        let span = rec.begin(&format!("ablations/materialization/n{n}"));
        let _ = build_hopset_observed(
            &g,
            &virt,
            HopsetParams::default(),
            8,
            &mut led,
            &mut mem,
            &mut rng,
            rec,
        );
        rec.end_with_memory(span, mem.peaks());
        print_row(
            &[
                n.to_string(),
                m.to_string(),
                mem.max_peak().to_string(),
                materialized.to_string(),
            ],
            &widths,
        );
    }
    println!("(the materialized column grows like |V'| ≈ √n; ours like the hopset arboricity)\n");
}

fn ablation_range_partition() {
    println!("== Ablation 3: Algorithm 5 vs degree-proportional range splitting ==");
    let widths = [8, 12, 18, 20];
    print_header(
        &["n", "max degree", "Alg.5 extra words", "naive extra words"],
        &widths,
    );
    for n in [512usize, 2048, 8192] {
        let mut rng = ChaCha8Rng::seed_from_u64(0x93 + n as u64);
        let g = Family::ScaleFree.generate(n, &mut rng);
        let t = tree::shortest_path_tree(&g, VertexId(0));
        // Naive: each internal vertex stores all children's subtree sizes to
        // split its DFS range — max tree-degree words at the worst vertex.
        let naive = t.vertices().map(|v| t.children(v).len()).max().unwrap_or(0);
        print_row(
            &[
                n.to_string(),
                g.max_degree().to_string(),
                "2".into(), // own size + running prefix
                naive.to_string(),
            ],
            &widths,
        );
    }
    println!("(Alg. 5 lets every child learn its sibling prefix sum with O(1) words in");
    println!(" 2·log n rounds; the naive scheme pins tree-degree words at hub vertices)\n");
}

fn ablation_hopset_bf(rec: &mut obs::Recorder) {
    println!("== Ablation 4: Bellman-Ford iterations with vs without the hopset ==");
    println!("(path networks with B = 2√n: long virtual chains, the case hopsets exist for)");
    let widths = [8, 8, 12, 14];
    print_header(&["n", "|V'|", "with hopset", "plain E' only"], &widths);
    for n in [1024usize, 4096, 16384] {
        let mut rng = ChaCha8Rng::seed_from_u64(0x94 + n as u64);
        let g = graphs::generators::path(n, 1..=9, &mut rng);
        // Evenly spaced virtual vertices (spacing √n/2) keep E' connected
        // under the deliberately small B below; B is set under the paper's
        // 4√n·ln n default so E' only links nearby virtual vertices and
        // plain E'-steps need ~n/B iterations.
        let spacing = ((n as f64).sqrt() as usize / 2).max(1);
        let verts: Vec<VertexId> = (0..n)
            .step_by(spacing)
            .map(|i| VertexId(i as u32))
            .collect();
        let b = 2 * (n as f64).sqrt() as usize;
        let virt = VirtualGraph::from_set(&g, verts, b);
        let mut led = CostLedger::new();
        let mut mem = MemoryMeter::new(n);
        let span = rec.begin(&format!("ablations/hopset-bf/n{n}"));
        let hs = build_hopset_observed(
            &g,
            &virt,
            HopsetParams::default(),
            8,
            &mut led,
            &mut mem,
            &mut rng,
            rec,
        );
        rec.end_with_memory(span, mem.peaks());
        let empty = Hopset::new(n);
        let root = virt.virtual_vertices()[0];
        let run = |h: &Hopset| {
            let mut led = CostLedger::new();
            let mut mem = MemoryMeter::new(n);
            LimitedBf {
                g: &g,
                virt: &virt,
                hopset: h,
            }
            .run(&[(root, 0)], &|_, _| true, 4 * n, 8, &mut led, &mut mem)
            .beta_used
        };
        print_row(
            &[
                n.to_string(),
                virt.virtual_vertices().len().to_string(),
                run(&hs.hopset).to_string(),
                run(&empty).to_string(),
            ],
            &widths,
        );
    }
    println!("(each iteration costs a B-bounded exploration — fewer iterations is the");
    println!(" whole point of the hopset)\n");
}

fn ablation_hopset_families(rec: &mut obs::Recorder) {
    println!("== Ablation 5: bunch hopset vs superclustering-and-interconnection ==");
    let widths = [8, 8, 10, 10, 8, 8, 8];
    print_header(
        &[
            "n", "|V'|", "edges-b", "edges-sc", "arb-b", "arb-sc", "beta",
        ],
        &widths,
    );
    for n in [512usize, 2048] {
        let mut rng = ChaCha8Rng::seed_from_u64(0x95 + n as u64);
        let g = Family::ErdosRenyi.generate(n, &mut rng);
        let virt = VirtualGraph::sample(&g, 1.5 / (n as f64).sqrt(), &mut rng);
        if virt.virtual_vertices().len() < 3 {
            continue;
        }
        let mut led = CostLedger::new();
        let mut mem = MemoryMeter::new(n);
        let span = rec.begin(&format!("ablations/hopset-families/n{n}/bunch"));
        let bunch = build_hopset_observed(
            &g,
            &virt,
            HopsetParams::default(),
            8,
            &mut led,
            &mut mem,
            &mut rng,
            rec,
        );
        rec.end_with_memory(span, mem.peaks());
        let span = rec.begin(&format!("ablations/hopset-families/n{n}/sc"));
        let sc_entry = led.counters();
        let sc = hopset::superclustering::build_sc(
            &g,
            &virt,
            HopsetParams::default(),
            0.25,
            8,
            &mut led,
            &mut mem,
            &mut rng,
        );
        rec.charge(&led.counters().delta_since(&sc_entry));
        rec.end_with_memory(span, mem.peaks());
        let root = virt.virtual_vertices()[0];
        let beta = |h: &Hopset| {
            let mut led = CostLedger::new();
            let mut mem = MemoryMeter::new(n);
            LimitedBf {
                g: &g,
                virt: &virt,
                hopset: h,
            }
            .run(&[(root, 0)], &|_, _| true, 4 * n, 8, &mut led, &mut mem)
            .beta_used
        };
        print_row(
            &[
                n.to_string(),
                virt.virtual_vertices().len().to_string(),
                bunch.hopset.num_edges().to_string(),
                sc.hopset.num_edges().to_string(),
                bunch.stats.arboricity.to_string(),
                sc.stats.arboricity.to_string(),
                format!("{}/{}", beta(&bunch.hopset), beta(&sc.hopset)),
            ],
            &widths,
        );
    }
    println!("(the two Theorem-1 hopset families trade size/arboricity against the");
    println!(" per-scale structure; both plug into the same Lemma-2 Bellman-Ford)");
}
