//! Regenerates the paper's **Table 1**: distributed compact routing schemes
//! for general graphs — rounds, table size, label size, stretch, and memory
//! per vertex, for the centralized Thorup–Zwick reference, the prior
//! distributed construction, and this paper's low-memory construction.
//!
//! Run with: `cargo run --release -p bench --bin table1`
//!
//! Flags: `--json` prints the rows as a JSON array instead of aligned text;
//! `--report <path>` (or `DRT_REPORT`) writes a JSONL run report with one
//! `table1/<family>/n<n>/k<k>/<scheme>` span per scheme build, the
//! construction's phase spans nested beneath it.

use bench::{print_header, print_row, Family};
use graphs::{properties, VertexId};
use obs::json::Value;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use routing::{build_observed, router, BuildParams, Mode};

fn main() {
    let (opts, _rest) = obs::cli::ReportOptions::from_env();
    let threads = opts.threads;
    let mut rec = obs::Recorder::when(opts.reporting());
    let mut json_rows: Vec<Value> = Vec::new();

    let configs: &[(usize, usize)] = &[(256, 2), (512, 2), (1024, 2), (256, 3), (512, 3), (512, 4)];
    let widths = [14, 6, 3, 9, 7, 7, 8, 9, 8];
    if !opts.json {
        println!("== Table 1: distributed compact routing for general graphs ==\n");
    }
    for family in [Family::ErdosRenyi, Family::Geometric] {
        if !opts.json {
            println!("--- family: {} ---", family.name());
            print_header(
                &[
                    "scheme", "n", "k", "rounds", "table", "label", "stretch", "memory", "4k-5",
                ],
                &widths,
            );
        }
        for &(n, k) in configs {
            let mut rng = ChaCha8Rng::seed_from_u64(0xFEED + (n * 31 + k) as u64);
            let g = family.generate(n, &mut rng);
            let _d = properties::hop_diameter(&g).expect("connected");
            let srcs: Vec<VertexId> = (0..n as u32)
                .step_by((n / 8).max(1))
                .map(VertexId)
                .collect();
            // The [ABNLP90]-style sparse-cover row: O(k) stretch bought with
            // much larger (log Λ-factor) tables/labels and sequential
            // ball-growing construction (~n^{1+1/k} rounds, modelled).
            {
                let cover = routing::covers::build_cover_scheme(&g, k);
                let mut worst: f64 = 1.0;
                for &s in &srcs {
                    let exact = graphs::shortest_paths::dijkstra(&g, s);
                    for t in g.vertices() {
                        if t == s {
                            continue;
                        }
                        let trace =
                            routing::covers::route_cover(&g, &cover, s, t).expect("connected");
                        worst = worst.max(trace.weight as f64 / exact[t.index()] as f64);
                    }
                }
                let rounds: usize = cover
                    .scales
                    .iter()
                    .map(|sc| sc.clusters.iter().map(|c| c.len()).sum::<usize>())
                    .sum();
                if opts.json {
                    json_rows.push(Value::object(vec![
                        ("family", Value::from(family.name())),
                        ("scheme", Value::from("ABNLP90-style")),
                        ("n", Value::from(n)),
                        ("k", Value::from(k)),
                        ("rounds", Value::from(rounds)),
                        ("table_words", Value::from(cover.max_table_words())),
                        ("label_words", Value::from(cover.max_label_words())),
                        ("stretch", Value::from((worst * 100.0).round() / 100.0)),
                        ("memory_words", Value::Null),
                        ("stretch_bound", Value::from(4 * k - 5)),
                    ]));
                } else {
                    print_row(
                        &[
                            "ABNLP90-style".into(),
                            n.to_string(),
                            k.to_string(),
                            rounds.to_string(),
                            cover.max_table_words().to_string(),
                            cover.max_label_words().to_string(),
                            format!("{worst:.2}"),
                            "~table".into(),
                            (4 * k - 5).to_string(),
                        ],
                        &widths,
                    );
                }
            }
            for (name, mode) in [
                ("TZ01b", Mode::Centralized),
                ("EN16b-style", Mode::DistributedPrior),
                ("this paper", Mode::DistributedLowMemory),
            ] {
                let mut mode_rng = ChaCha8Rng::seed_from_u64(0xABCD + (n + k) as u64);
                let span = rec.begin(&format!("table1/{}/n{n}/k{k}/{name}", family.name()));
                let built = build_observed(
                    &g,
                    &BuildParams::new(k).with_mode(mode).with_threads(threads),
                    &mut mode_rng,
                    &mut rec,
                );
                rec.end_with_memory(span, built.report.memory.peaks());
                let stats = router::measure_stretch(
                    &g,
                    &built.scheme,
                    &srcs,
                    router::Selection::SourceOptimal,
                );
                if opts.json {
                    let central = mode == Mode::Centralized;
                    json_rows.push(Value::object(vec![
                        ("family", Value::from(family.name())),
                        ("scheme", Value::from(name)),
                        ("n", Value::from(n)),
                        ("k", Value::from(k)),
                        (
                            "rounds",
                            if central {
                                Value::Null
                            } else {
                                Value::from(built.report.rounds)
                            },
                        ),
                        ("table_words", Value::from(built.report.max_table_words)),
                        ("label_words", Value::from(built.report.max_label_words)),
                        ("stretch", Value::from((stats.max * 100.0).round() / 100.0)),
                        (
                            "memory_words",
                            if central {
                                Value::Null
                            } else {
                                Value::from(built.report.memory.max_peak())
                            },
                        ),
                        ("stretch_bound", Value::from(4 * k - 5)),
                    ]));
                } else {
                    print_row(
                        &[
                            name.into(),
                            n.to_string(),
                            k.to_string(),
                            if mode == Mode::Centralized {
                                "NA".into()
                            } else {
                                built.report.rounds.to_string()
                            },
                            built.report.max_table_words.to_string(),
                            built.report.max_label_words.to_string(),
                            format!("{:.2}", stats.max),
                            if mode == Mode::Centralized {
                                "NA".into()
                            } else {
                                built.report.memory.max_peak().to_string()
                            },
                            (4 * k - 5).to_string(),
                        ],
                        &widths,
                    );
                }
            }
            if !opts.json {
                println!();
            }
        }
    }
    if opts.json {
        println!("{}", Value::Array(json_rows));
    } else {
        println!("expected shape: this paper's table/label sizes match the centralized");
        println!("reference (tables ~n^(1/k), labels O(k log n)) while the prior row pays");
        println!("a log factor on labels and extra memory; every measured stretch is at");
        println!("most the implemented guarantee 4k-3 (below 4k-5 for k >= 3 in practice;");
        println!("see EXPERIMENTS.md on the 4k-5 refinement); rounds for both distributed");
        println!("rows are ~n^(1/2+1/k)+D up to polylog factors.");
    }
    if let Some(path) = &opts.report {
        rec.write_report(path, "table1", &[])
            .unwrap_or_else(|e| eprintln!("failed to write report {}: {e}", path.display()));
    }
}
