//! Figure S1 (derived): construction rounds versus `n`.
//!
//! The paper's bounds say tree-routing construction takes `Õ(√n + D)` rounds
//! (Theorem 2) and the general scheme `(n^{1/2+1/k} + D)·polylog` (Theorem
//! 3). This sweep measures simulated rounds across `n` and reports the
//! empirical log-log growth exponent, which should sit near `0.5` (tree) and
//! `0.5 + 1/k` (graph) once polylog factors are absorbed.
//!
//! Run with: `cargo run --release -p bench --bin fig_rounds_vs_n`
//!
//! `--report <path>` (or `DRT_REPORT`) writes a JSONL run report with one
//! span per build (`fig_rounds_vs_n/tree/n<n>`, `fig_rounds_vs_n/scheme/n<n>`),
//! the construction's stage spans nested beneath each.

use bench::sweep::Sweep;
use bench::{log_log_slope, print_header, print_row, Family};
use congest::Network;
use graphs::{tree, VertexId};
use routing::{build_observed, BuildParams};
use tree_routing::distributed;

fn main() {
    let mut sweep = Sweep::from_env("fig_rounds_vs_n");
    let threads = sweep.opts.threads;
    let widths = [8, 10, 12];

    println!("== Fig S1a: tree-routing construction rounds vs n (Theorem 2) ==");
    print_header(&["n", "D", "rounds"], &widths);
    let mut pts = Vec::new();
    for n in [256usize, 512, 1024, 2048, 4096, 8192] {
        let mut rng = Sweep::rng(0x51, n as u64);
        let g = Family::ErdosRenyi.generate(n, &mut rng);
        let t = tree::shortest_path_tree(&g, VertexId(0));
        let net = Network::new(g);
        let out = sweep.observed(&format!("fig_rounds_vs_n/tree/n{n}"), |rec| {
            let out = distributed::build_observed(
                &net,
                &t,
                &distributed::Config {
                    threads,
                    ..distributed::Config::default()
                },
                &mut rng,
                rec,
            );
            let peaks = out.memory.peaks().to_vec();
            (out, peaks)
        });
        print_row(
            &[
                n.to_string(),
                out.bfs_depth.to_string(),
                out.ledger.rounds().to_string(),
            ],
            &widths,
        );
        pts.push((n as f64, out.ledger.rounds() as f64));
    }
    println!(
        "empirical exponent: {:.3}  (Õ(√n + D) predicts ≈ 0.5 + o(1) from log factors)\n",
        log_log_slope(&pts)
    );

    println!("== Fig S1b: general-scheme construction rounds vs n (Theorem 3, k = 2) ==");
    print_header(&["n", "D", "rounds"], &widths);
    let mut pts = Vec::new();
    for n in [128usize, 256, 512, 1024] {
        let mut rng = Sweep::rng(0x52, n as u64);
        let g = Family::ErdosRenyi.generate(n, &mut rng);
        let built = sweep.observed(&format!("fig_rounds_vs_n/scheme/n{n}"), |rec| {
            let built = build_observed(
                &g,
                &BuildParams::new(2).with_threads(threads),
                &mut rng,
                rec,
            );
            let peaks = built.report.memory.peaks().to_vec();
            (built, peaks)
        });
        print_row(
            &[
                n.to_string(),
                built.report.bfs_depth.to_string(),
                built.report.rounds.to_string(),
            ],
            &widths,
        );
        pts.push((n as f64, built.report.rounds as f64));
    }
    println!(
        "empirical exponent: {:.3}  ((n^(1/2+1/k)+D)·polylog predicts ≈ 1.0 for k=2 plus log slack)",
        log_log_slope(&pts)
    );
    sweep.finish();
}
