//! Figure S1 (derived): construction rounds versus `n`.
//!
//! The paper's bounds say tree-routing construction takes `Õ(√n + D)` rounds
//! (Theorem 2) and the general scheme `(n^{1/2+1/k} + D)·polylog` (Theorem
//! 3). This sweep measures simulated rounds across `n` and reports the
//! empirical log-log growth exponent, which should sit near `0.5` (tree) and
//! `0.5 + 1/k` (graph) once polylog factors are absorbed.
//!
//! Run with: `cargo run --release -p bench --bin fig_rounds_vs_n`

use bench::{log_log_slope, print_header, print_row, Family};
use congest::Network;
use graphs::{tree, VertexId};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use routing::{build, BuildParams};
use tree_routing::distributed;

fn main() {
    let widths = [8, 10, 12];

    println!("== Fig S1a: tree-routing construction rounds vs n (Theorem 2) ==");
    print_header(&["n", "D", "rounds"], &widths);
    let mut pts = Vec::new();
    for n in [256usize, 512, 1024, 2048, 4096, 8192] {
        let mut rng = ChaCha8Rng::seed_from_u64(0x51 + n as u64);
        let g = Family::ErdosRenyi.generate(n, &mut rng);
        let t = tree::shortest_path_tree(&g, VertexId(0));
        let net = Network::new(g);
        let out = distributed::build_default(&net, &t, &mut rng);
        print_row(
            &[
                n.to_string(),
                out.bfs_depth.to_string(),
                out.ledger.rounds().to_string(),
            ],
            &widths,
        );
        pts.push((n as f64, out.ledger.rounds() as f64));
    }
    println!(
        "empirical exponent: {:.3}  (Õ(√n + D) predicts ≈ 0.5 + o(1) from log factors)\n",
        log_log_slope(&pts)
    );

    println!("== Fig S1b: general-scheme construction rounds vs n (Theorem 3, k = 2) ==");
    print_header(&["n", "D", "rounds"], &widths);
    let mut pts = Vec::new();
    for n in [128usize, 256, 512, 1024] {
        let mut rng = ChaCha8Rng::seed_from_u64(0x52 + n as u64);
        let g = Family::ErdosRenyi.generate(n, &mut rng);
        let built = build(&g, &BuildParams::new(2), &mut rng);
        print_row(
            &[
                n.to_string(),
                built.report.bfs_depth.to_string(),
                built.report.rounds.to_string(),
            ],
            &widths,
        );
        pts.push((n as f64, built.report.rounds as f64));
    }
    println!(
        "empirical exponent: {:.3}  ((n^(1/2+1/k)+D)·polylog predicts ≈ 1.0 for k=2 plus log slack)",
        log_log_slope(&pts)
    );
}
