//! Figure S1 (derived): construction rounds versus `n`.
//!
//! The paper's bounds say tree-routing construction takes `Õ(√n + D)` rounds
//! (Theorem 2) and the general scheme `(n^{1/2+1/k} + D)·polylog` (Theorem
//! 3). This sweep measures simulated rounds across `n` and reports the
//! empirical log-log growth exponent, which should sit near `0.5` (tree) and
//! `0.5 + 1/k` (graph) once polylog factors are absorbed.
//!
//! Run with: `cargo run --release -p bench --bin fig_rounds_vs_n`
//!
//! `--report <path>` (or `DRT_REPORT`) writes a JSONL run report with one
//! span per build (`fig_rounds_vs_n/tree/n<n>`, `fig_rounds_vs_n/scheme/n<n>`),
//! the construction's stage spans nested beneath each.

use bench::{log_log_slope, print_header, print_row, Family};
use congest::Network;
use graphs::{tree, VertexId};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use routing::{build_observed, BuildParams};
use tree_routing::distributed;

fn main() {
    let (opts, _rest) = obs::cli::ReportOptions::from_env();
    let mut rec = obs::Recorder::when(opts.reporting());
    let widths = [8, 10, 12];

    println!("== Fig S1a: tree-routing construction rounds vs n (Theorem 2) ==");
    print_header(&["n", "D", "rounds"], &widths);
    let mut pts = Vec::new();
    for n in [256usize, 512, 1024, 2048, 4096, 8192] {
        let mut rng = ChaCha8Rng::seed_from_u64(0x51 + n as u64);
        let g = Family::ErdosRenyi.generate(n, &mut rng);
        let t = tree::shortest_path_tree(&g, VertexId(0));
        let net = Network::new(g);
        let span = rec.begin(&format!("fig_rounds_vs_n/tree/n{n}"));
        let out = distributed::build_observed(
            &net,
            &t,
            &distributed::Config::default(),
            &mut rng,
            &mut rec,
        );
        rec.end_with_memory(span, out.memory.peaks());
        print_row(
            &[
                n.to_string(),
                out.bfs_depth.to_string(),
                out.ledger.rounds().to_string(),
            ],
            &widths,
        );
        pts.push((n as f64, out.ledger.rounds() as f64));
    }
    println!(
        "empirical exponent: {:.3}  (Õ(√n + D) predicts ≈ 0.5 + o(1) from log factors)\n",
        log_log_slope(&pts)
    );

    println!("== Fig S1b: general-scheme construction rounds vs n (Theorem 3, k = 2) ==");
    print_header(&["n", "D", "rounds"], &widths);
    let mut pts = Vec::new();
    for n in [128usize, 256, 512, 1024] {
        let mut rng = ChaCha8Rng::seed_from_u64(0x52 + n as u64);
        let g = Family::ErdosRenyi.generate(n, &mut rng);
        let span = rec.begin(&format!("fig_rounds_vs_n/scheme/n{n}"));
        let built = build_observed(&g, &BuildParams::new(2), &mut rng, &mut rec);
        rec.end_with_memory(span, built.report.memory.peaks());
        print_row(
            &[
                n.to_string(),
                built.report.bfs_depth.to_string(),
                built.report.rounds.to_string(),
            ],
            &widths,
        );
        pts.push((n as f64, built.report.rounds as f64));
    }
    println!(
        "empirical exponent: {:.3}  ((n^(1/2+1/k)+D)·polylog predicts ≈ 1.0 for k=2 plus log slack)",
        log_log_slope(&pts)
    );
    if let Some(path) = &opts.report {
        rec.write_report(path, "fig_rounds_vs_n", &[])
            .unwrap_or_else(|e| eprintln!("failed to write report {}: {e}", path.display()));
    }
}
