//! Figure S4 (derived): bit-level complexity.
//!
//! Two claims from §2's CONGEST-RAM → standard-CONGEST discussion:
//!
//! 1. **Labels in bits** — a tree label of `O(log n)` words serializes to
//!    few bytes under the canonical varint encoding (the quantity a packet
//!    header actually pays).
//! 2. **Weight rounding** — rounding weights to powers of `1+ε` makes one
//!    weight cost `O(log log Λ + log 1/ε)` bits, so the standard-CONGEST
//!    overhead is doubly logarithmic in the aspect ratio Λ, versus the
//!    `Ω(log Λ)` factors of prior constructions.
//!
//! Run with: `cargo run --release -p bench --bin fig_bits`
//!
//! `--report <path>` (or `DRT_REPORT`) writes a JSONL run report with one
//! `fig_bits/encode/n<n>` span per size; the builds here are centralized
//! (no simulated rounds), so the spans carry the per-vertex encoded-table
//! word distribution in their `memory` field and zero cost deltas.

use bench::sweep::Sweep;
use bench::{print_header, print_row, Family};
use congest::WordSized;
use graphs::rounding::{congest_overhead, prior_overhead, round_weights};
use graphs::{generators, tree, VertexId};
use tree_routing::encode::{encode_label, encode_table};
use tree_routing::tz;

fn main() {
    let mut sweep = Sweep::from_env("fig_bits");
    println!("== Fig S4a: tree label/table sizes — words vs encoded bits ==");
    let widths = [8, 12, 12, 12, 12];
    print_header(
        &[
            "n",
            "label words",
            "label bits",
            "table words",
            "table bits",
        ],
        &widths,
    );
    for n in [256usize, 1024, 4096, 16384] {
        let mut rng = Sweep::rng(0xB1, n as u64);
        let g = Family::ErdosRenyi.generate(n, &mut rng);
        let t = tree::shortest_path_tree(&g, VertexId(0));
        let row = sweep.observed(&format!("fig_bits/encode/n{n}"), |_rec| {
            let scheme = tz::build(&t);
            let mut max_label_words = 0;
            let mut max_label_bits = 0;
            let mut max_table_words = 0;
            let mut max_table_bits = 0;
            let mut per_vertex_words = Vec::with_capacity(n);
            for v in t.vertices() {
                let l = scheme.label(v).unwrap();
                let tb = scheme.table(v).unwrap();
                max_label_words = max_label_words.max(l.words());
                max_label_bits = max_label_bits.max(8 * encode_label(l).len());
                max_table_words = max_table_words.max(tb.words());
                max_table_bits = max_table_bits.max(8 * encode_table(tb).len());
                per_vertex_words.push(l.words() + tb.words());
            }
            (
                [
                    max_label_words,
                    max_label_bits,
                    max_table_words,
                    max_table_bits,
                ],
                per_vertex_words,
            )
        });
        print_row(
            &[
                n.to_string(),
                row[0].to_string(),
                row[1].to_string(),
                row[2].to_string(),
                row[3].to_string(),
            ],
            &widths,
        );
    }
    println!("(bits grow like log² n but with byte-level constants far below 64·words)\n");

    println!("== Fig S4b: standard-CONGEST overhead — rounding vs prior log Λ ==");
    let widths = [12, 10, 12, 14, 12];
    print_header(
        &[
            "max weight",
            "log2(Λ)",
            "weight bits",
            "our overhead",
            "prior",
        ],
        &widths,
    );
    let n = 1024;
    for max_w in [10u64, 1_000, 100_000, 10_000_000] {
        let mut rng = Sweep::rng(0xB2, max_w);
        let g = generators::erdos_renyi_connected(n, 4.0 / n as f64, 1..=max_w, &mut rng);
        let r = round_weights(&g, 0.05);
        print_row(
            &[
                max_w.to_string(),
                format!("{:.1}", g.aspect_ratio().unwrap().log2()),
                r.bits_per_weight.to_string(),
                format!("{:.2}", congest_overhead(n, &r)),
                format!("{:.1}", prior_overhead(&g)),
            ],
            &widths,
        );
    }
    println!("(our overhead column stays at 1.0 — one O(log n)-bit message per rounded");
    println!(" weight — while the prior column grows with log Λ)");
    sweep.finish();
}
