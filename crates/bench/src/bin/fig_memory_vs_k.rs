//! Figure S2c (derived): peak per-vertex memory versus `k` at fixed `n` —
//! the axis along which the paper separates from prior work. Our memory
//! tracks `Õ(n^{1/k})` (falling in `k`); the prior construction's `Ω̃(√n)`
//! floor (materialized `E'`, per-virtual-vertex copies of `T'`) does not
//! fall.
//!
//! Run with: `cargo run --release -p bench --bin fig_memory_vs_k`
//!
//! `--report <path>` (or `DRT_REPORT`) writes a JSONL run report with
//! `fig_memory_vs_k/k<k>/{ours,prior}` spans per build.

use bench::sweep::Sweep;
use bench::{print_header, print_row, Family};
use routing::{build_observed, BuildParams, Mode};

fn main() {
    let mut sweep = Sweep::from_env("fig_memory_vs_k");
    let threads = sweep.opts.threads;
    let n = 1024;
    let widths = [4, 12, 12, 12, 10];
    println!("== Fig S2c: memory vs k (n = {n}) ==\n");
    print_header(&["k", "ours", "prior", "n^(1/k)", "sqrt(n)"], &widths);
    let mut rng0 = Sweep::rng(0x81, 0);
    let g = Family::ErdosRenyi.generate(n, &mut rng0);
    for k in [2usize, 3, 4, 5, 6] {
        let mut rng1 = Sweep::rng(0, k as u64);
        let mut rng2 = Sweep::rng(0, k as u64);
        let ours = sweep.observed(&format!("fig_memory_vs_k/k{k}/ours"), |rec| {
            let ours = build_observed(
                &g,
                &BuildParams::new(k).with_threads(threads),
                &mut rng1,
                rec,
            );
            let peaks = ours.report.memory.peaks().to_vec();
            (ours, peaks)
        });
        let prior = sweep.observed(&format!("fig_memory_vs_k/k{k}/prior"), |rec| {
            let prior = build_observed(
                &g,
                &BuildParams::new(k)
                    .with_mode(Mode::DistributedPrior)
                    .with_threads(threads),
                &mut rng2,
                rec,
            );
            let peaks = prior.report.memory.peaks().to_vec();
            (prior, peaks)
        });
        print_row(
            &[
                k.to_string(),
                ours.report.memory.max_peak().to_string(),
                prior.report.memory.max_peak().to_string(),
                format!("{:.0}", (n as f64).powf(1.0 / k as f64)),
                format!("{:.0}", (n as f64).sqrt()),
            ],
            &widths,
        );
    }
    println!("\nexpected shape: our column falls with k, tracking the n^(1/k)·polylog");
    println!("membership term; the prior column keeps a uniform ~1.8x overhead (its");
    println!("materialized-E'/T' terms). The asymptotic √n floor of the prior scheme");
    println!("binds only once n^(1/k)·polylog < √n, beyond laptop-scale n for small k —");
    println!("a finite-size effect EXPERIMENTS.md discusses.");
    sweep.finish();
}
