//! Figure S3 (derived): measured stretch versus `k`.
//!
//! The guarantee is `4k − 5 + o(1)` (with the source-optimal selection;
//! `4k − 3` for first-valid). Worst-case stretch should stay below the bound
//! and typical stretch far below it; table size shrinks as `k` grows — the
//! tradeoff the whole line of work is about.
//!
//! Run with: `cargo run --release -p bench --bin fig_stretch_vs_k`
//!
//! `--report <path>` (or `DRT_REPORT`) writes a JSONL run report with one
//! `fig_stretch_vs_k/<family>/k<k>` span per build, plus one
//! `stretch_histogram` record per `(family, k, selection)` holding the full
//! sampled stretch distribution (not just the printed percentiles).

use bench::sweep::Sweep;
use bench::{print_header, print_row, Family};
use graphs::VertexId;
use routing::{build_observed, router, BuildParams};

fn main() {
    let mut sweep = Sweep::from_env("fig_stretch_vs_k");
    let threads = sweep.opts.threads;
    let n = 512;
    let widths = [4, 10, 10, 8, 8, 9, 11, 10, 10];
    println!("== Fig S3: stretch vs k (n = {n}, this paper's scheme) ==\n");
    for family in [Family::ErdosRenyi, Family::Geometric] {
        println!("--- family: {} ---", family.name());
        print_header(
            &[
                "k",
                "max",
                "mean",
                "p95",
                "p99",
                "4k-3",
                "handshake",
                "table",
                "label",
            ],
            &widths,
        );
        for k in [2usize, 3, 4, 5] {
            let mut rng = Sweep::rng(0x71, k as u64);
            let g = family.generate(n, &mut rng);
            let built =
                sweep.observed(&format!("fig_stretch_vs_k/{}/k{k}", family.name()), |rec| {
                    let built = build_observed(
                        &g,
                        &BuildParams::new(k).with_threads(threads),
                        &mut rng,
                        rec,
                    );
                    let peaks = built.report.memory.peaks().to_vec();
                    (built, peaks)
                });
            let srcs: Vec<VertexId> = (0..n as u32).step_by(32).map(VertexId).collect();
            let stats =
                router::measure_stretch(&g, &built.scheme, &srcs, router::Selection::SourceOptimal);
            let shake =
                router::measure_stretch(&g, &built.scheme, &srcs, router::Selection::Handshake);
            for (selection, s) in [("source-optimal", &stats), ("handshake", &shake)] {
                let hist = obs::flight::Histogram::of_stretch(&s.values, 32);
                sweep.add_record(hist.to_value(&[
                    ("figure", obs::json::Value::from("fig_stretch_vs_k")),
                    ("family", obs::json::Value::from(family.name())),
                    ("k", obs::json::Value::from(k)),
                    ("selection", obs::json::Value::from(selection)),
                ]));
            }
            print_row(
                &[
                    k.to_string(),
                    format!("{:.3}", stats.max),
                    format!("{:.3}", stats.mean),
                    format!("{:.2}", stats.p95),
                    format!("{:.2}", stats.p99),
                    (4 * k - 3).to_string(),
                    format!("{:.3}", shake.max),
                    built.report.max_table_words.to_string(),
                    built.report.max_label_words.to_string(),
                ],
                &widths,
            );
        }
        println!();
    }
    println!("expected shape: max stretch stays below the implemented guarantee 4k-3");
    println!("everywhere (and below 4k-5 for k >= 3), mean stretch far below; table");
    println!("size falls with k while labels grow mildly (O(k log n)).");
    sweep.finish();
}
