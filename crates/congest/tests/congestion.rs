//! Congestion accounting under the engine's CONGEST RAM cap: exact violation
//! counts, per-edge word accumulation within a round, `max_edge_words`, the
//! strict mode, and per-round attribution in the traced time series.

use congest::engine::Ctx;
use congest::{Engine, EngineConfig, Inbox, Network, VertexProtocol};
use graphs::{GraphBuilder, VertexId};

/// Sends scripted bursts: at round `r` (0 = init), one message of `w` words
/// to the first neighbor for every `w` in `schedule[r]`. An empty schedule is
/// a passive receiver.
struct Burst {
    schedule: Vec<Vec<usize>>,
    next: usize,
}

impl Burst {
    fn sender(schedule: Vec<Vec<usize>>) -> Self {
        Burst { schedule, next: 0 }
    }

    fn receiver() -> Self {
        Burst::sender(Vec::new())
    }

    fn fire(&mut self, ctx: &mut Ctx<'_, Vec<u64>>, r: usize) {
        if let Some(sizes) = self.schedule.get(r) {
            let to = ctx.neighbors()[0].to;
            for &w in sizes {
                ctx.send(to, vec![1; w]);
            }
        }
        self.next = r + 1;
    }
}

impl VertexProtocol for Burst {
    type Msg = Vec<u64>;

    fn init(&mut self, ctx: &mut Ctx<'_, Vec<u64>>) {
        self.fire(ctx, 0);
    }

    fn round(&mut self, ctx: &mut Ctx<'_, Vec<u64>>, _inbox: &mut Inbox<'_, Vec<u64>>) {
        let r = ctx.round() as usize;
        self.fire(ctx, r);
    }

    fn is_done(&self) -> bool {
        self.next >= self.schedule.len()
    }

    fn memory_words(&self) -> usize {
        0
    }
}

fn two_vertex_net() -> Network {
    let mut b = GraphBuilder::new(2);
    b.add_edge(VertexId(0), VertexId(1), 1);
    Network::new(b.build())
}

/// Default cap is 4 words per edge per round. The script exercises one burst
/// over the cap, two messages that only *together* exceed it, one exactly at
/// it, and one far over it.
fn script() -> Vec<Vec<usize>> {
    vec![vec![6], vec![2, 3], vec![4], vec![9]]
}

#[test]
fn violation_counts_and_max_edge_words_are_exact() {
    let net = two_vertex_net();
    let protocols = vec![Burst::sender(script()), Burst::receiver()];
    let (_, stats) = Engine::new().run(&net, protocols);

    // Rounds 0, 1, 3 violate (6 > 4; 2 + 3 = 5 > 4 accumulated on one edge;
    // 9 > 4); round 2 sits exactly at the cap and does not.
    assert_eq!(stats.congestion_violations, 3);
    assert_eq!(stats.max_edge_words, 9);
    assert_eq!(stats.messages, 5);
    assert_eq!(stats.words, 6 + 2 + 3 + 4 + 9);
    assert!(stats.completed);
}

#[test]
fn traced_series_attributes_violations_to_their_rounds() {
    let net = two_vertex_net();
    let protocols = vec![Burst::sender(script()), Burst::receiver()];
    let mut rec = obs::Recorder::new();
    let (_, stats) = Engine::new().run_traced(&net, protocols, &mut rec);

    // Init burst + rounds 1..=4 (the last round only drains in-flight mail).
    let series = rec.series();
    assert_eq!(series.len(), 5);
    let violations: Vec<u64> = series.iter().map(|s| s.congestion_violations).collect();
    assert_eq!(violations, vec![1, 1, 0, 1, 0]);
    let words: Vec<u64> = series.iter().map(|s| s.words).collect();
    assert_eq!(words, vec![6, 5, 4, 9, 0]);
    // `max_edge_words` is the cumulative worst, so it is monotone across the
    // series and ends at the run-level figure.
    assert!(series
        .windows(2)
        .all(|w| w[0].max_edge_words <= w[1].max_edge_words));
    assert_eq!(series.last().unwrap().max_edge_words, stats.max_edge_words);
    assert_eq!(
        series.iter().map(|s| s.congestion_violations).sum::<u64>(),
        stats.congestion_violations
    );
}

#[test]
fn raising_the_cap_clears_all_violations() {
    let net = two_vertex_net();
    let protocols = vec![Burst::sender(script()), Burst::receiver()];
    let engine = Engine::with_config(EngineConfig {
        edge_words_per_round: 9,
        ..EngineConfig::default()
    });
    let (_, stats) = engine.run(&net, protocols);
    assert_eq!(stats.congestion_violations, 0);
    assert_eq!(stats.max_edge_words, 9);
}

#[test]
fn congestion_accounting_is_thread_count_independent() {
    let net = two_vertex_net();
    let (_, serial) = Engine::new().run(&net, vec![Burst::sender(script()), Burst::receiver()]);
    for threads in [2usize, 8] {
        let (_, par) = Engine::with_threads(threads)
            .run(&net, vec![Burst::sender(script()), Burst::receiver()]);
        assert!(par.same_simulation(&serial), "threads={threads}");
    }
}

#[test]
#[should_panic(expected = "congestion violation")]
fn strict_congestion_panics_on_first_violation() {
    let net = two_vertex_net();
    let protocols = vec![Burst::sender(vec![vec![6]]), Burst::receiver()];
    let engine = Engine::with_config(EngineConfig {
        strict_congestion: true,
        ..EngineConfig::default()
    });
    let _ = engine.run(&net, protocols);
}
