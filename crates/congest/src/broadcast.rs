//! Network-wide broadcast of many messages — an executable Lemma 1.
//!
//! Lemma 1 (paper §2): if the vertices collectively hold `M` constant-size
//! messages, all vertices can receive all of them within `O(M + D)` rounds.
//! This module implements the pipelined flooding protocol realizing that
//! bound and tests it; ledger-style algorithms then *charge* broadcasts at
//! `M + D` rounds via [`crate::CostLedger::charge_broadcast`] instead of
//! re-running the flood.

use std::collections::{HashSet, VecDeque};

use graphs::VertexId;

use crate::engine::{Ctx, Engine, EngineConfig, Inbox, RunStats, VertexProtocol};
use crate::network::Network;

/// A broadcast item: `(origin, sequence number at origin, payload word)`.
pub type Item = (VertexId, u32, u64);

/// Pipelined flooding: every vertex forwards each item it learns exactly once
/// to all neighbors, at most one item per edge per round.
#[derive(Clone, Debug)]
pub struct GossipVertex {
    initial: Vec<(u32, u64)>,
    known: HashSet<(VertexId, u32)>,
    received: Vec<Item>,
    queue: VecDeque<Item>,
}

impl GossipVertex {
    /// A vertex initially holding `initial` `(seq, payload)` items.
    pub fn new(initial: Vec<(u32, u64)>) -> Self {
        GossipVertex {
            initial,
            known: HashSet::new(),
            received: Vec::new(),
            queue: VecDeque::new(),
        }
    }

    /// All items this vertex has received (including its own).
    pub fn received(&self) -> &[Item] {
        &self.received
    }

    fn learn(&mut self, item: Item) {
        if self.known.insert((item.0, item.1)) {
            self.received.push(item);
            self.queue.push_back(item);
        }
    }
}

impl VertexProtocol for GossipVertex {
    type Msg = Item;

    fn init(&mut self, ctx: &mut Ctx<'_, Item>) {
        let me = ctx.me();
        // `take` instead of clone: the seed list is consumed exactly once.
        for (seq, payload) in std::mem::take(&mut self.initial) {
            self.learn((me, seq, payload));
        }
        if let Some(item) = self.queue.pop_front() {
            ctx.send_all(item);
        }
    }

    fn round(&mut self, ctx: &mut Ctx<'_, Item>, inbox: &mut Inbox<'_, Item>) {
        for (_, item) in inbox.drain() {
            self.learn(item);
        }
        if let Some(item) = self.queue.pop_front() {
            ctx.send_all(item);
        }
    }

    fn is_done(&self) -> bool {
        self.queue.is_empty()
    }

    fn memory_words(&self) -> usize {
        3 * self.received.len() + 3 * self.queue.len()
    }
}

/// Result of flooding all items through the network.
#[derive(Debug)]
pub struct BroadcastOutput {
    /// Per-vertex received items (order of arrival).
    pub received: Vec<Vec<Item>>,
    /// Engine measurements.
    pub stats: RunStats,
}

/// Flood `items` (a list per vertex of `(seq, payload)` pairs) through the
/// whole network using the real protocol.
///
/// # Panics
///
/// Panics if `items.len()` differs from the network size.
pub fn broadcast_all(network: &Network, items: Vec<Vec<(u32, u64)>>) -> BroadcastOutput {
    broadcast_all_with(network, items, 1)
}

/// [`broadcast_all`] on an engine with `threads` workers (`0` = available
/// parallelism). Received items and stats are identical for every thread
/// count.
///
/// # Panics
///
/// Panics if `items.len()` differs from the network size.
pub fn broadcast_all_with(
    network: &Network,
    items: Vec<Vec<(u32, u64)>>,
    threads: usize,
) -> BroadcastOutput {
    assert_eq!(items.len(), network.len(), "one item list per vertex");
    let protos: Vec<GossipVertex> = items.into_iter().map(GossipVertex::new).collect();
    let engine = Engine::with_config(EngineConfig {
        // Items are 3 words; the gossip protocol sends one item per edge per
        // round, so 3 words is its natural cap.
        edge_words_per_round: 3,
        threads,
        ..EngineConfig::default()
    });
    let (protos, stats) = engine.run(network, protos);
    BroadcastOutput {
        received: protos.into_iter().map(|p| p.received).collect(),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::{generators, properties};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn scatter_items<R: Rng>(n: usize, m: usize, rng: &mut R) -> Vec<Vec<(u32, u64)>> {
        let mut items = vec![Vec::new(); n];
        for s in 0..m {
            let v = rng.gen_range(0..n);
            items[v].push((s as u32, (s * 10) as u64));
        }
        items
    }

    #[test]
    fn everyone_receives_everything() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let g = generators::erdos_renyi_connected(40, 0.08, 1..=3, &mut rng);
        let net = Network::new(g);
        let items = scatter_items(40, 15, &mut rng);
        let out = broadcast_all(&net, items);
        assert!(out.stats.completed);
        for recvd in &out.received {
            assert_eq!(recvd.len(), 15, "every vertex hears all 15 items");
        }
    }

    #[test]
    fn rounds_scale_as_m_plus_d() {
        let mut rng = ChaCha8Rng::seed_from_u64(22);
        // A path maximizes D; scatter few messages.
        let g = generators::path(60, 1..=1, &mut rng);
        let d = properties::hop_diameter(&g).unwrap() as u64;
        let net = Network::new(g);
        let m = 8u64;
        let items = scatter_items(60, m as usize, &mut rng);
        let out = broadcast_all(&net, items);
        assert!(out.stats.completed);
        assert!(
            out.stats.rounds <= 2 * (m + d) + 5,
            "rounds {} should be O(M + D) = O({})",
            out.stats.rounds,
            m + d
        );
    }

    #[test]
    fn single_item_takes_about_d_rounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        let g = generators::path(30, 1..=1, &mut rng);
        let net = Network::new(g);
        let mut items = vec![Vec::new(); 30];
        items[0].push((0, 42));
        let out = broadcast_all(&net, items);
        assert!(out.stats.rounds <= 31);
        for recvd in &out.received {
            assert_eq!(recvd[0], (VertexId(0), 0, 42));
        }
    }

    #[test]
    fn duplicate_suppression() {
        // Dense graph: many redundant deliveries, but each item recorded once.
        let mut rng = ChaCha8Rng::seed_from_u64(24);
        let g = generators::erdos_renyi_connected(20, 0.5, 1..=1, &mut rng);
        let net = Network::new(g);
        let items = scatter_items(20, 10, &mut rng);
        let out = broadcast_all(&net, items);
        for recvd in &out.received {
            let mut ids: Vec<_> = recvd.iter().map(|&(o, s, _)| (o, s)).collect();
            ids.sort();
            ids.dedup();
            assert_eq!(ids.len(), 10);
        }
    }

    #[test]
    fn respects_edge_word_cap() {
        let mut rng = ChaCha8Rng::seed_from_u64(25);
        let g = generators::erdos_renyi_connected(30, 0.15, 1..=1, &mut rng);
        let net = Network::new(g);
        let items = scatter_items(30, 20, &mut rng);
        let out = broadcast_all(&net, items);
        assert_eq!(out.stats.congestion_violations, 0);
        assert!(out.stats.max_edge_words <= 3);
    }

    #[test]
    fn no_items_is_a_noop() {
        let mut rng = ChaCha8Rng::seed_from_u64(26);
        let g = generators::path(5, 1..=1, &mut rng);
        let net = Network::new(g);
        let out = broadcast_all(&net, vec![Vec::new(); 5]);
        assert_eq!(out.stats.rounds, 0);
        assert!(out.received.iter().all(|r| r.is_empty()));
    }
}
