//! The zero-allocation message plane: flat, reusable outbox and inbox arenas.
//!
//! The engine used to materialise one `Vec<(VertexId, Msg)>` inbox per vertex
//! per round and a fresh outbox `Vec` per vertex execution — two allocations
//! per vertex per round on the hottest loop in the repository. This module
//! replaces both with arenas that are allocated once and reused:
//!
//! * **Outbox plane** — each worker (or the single serial "worker") appends
//!   every message its vertices send into one flat [`Outbox`] buffer, in
//!   (source ascending, send order). The buffer is drained — not dropped —
//!   when the round is merged, so its capacity survives across rounds.
//! * **Inbox plane** — a [`ChunkArena`] holds the messages *delivered* to a
//!   contiguous vertex range as one flat slot buffer plus an `starts` offset
//!   table (CSR-style: vertex `v`'s inbox is `slots[starts[v]..starts[v+1]]`).
//!   Refilling is a stable counting sort by destination: count, prefix-sum,
//!   scatter. Stability is what makes the parallel engine deterministic —
//!   walking the worker outboxes in worker order visits sources in ascending
//!   order, so every vertex sees its inbox in exactly the serial engine's
//!   (sender id, send sequence) delivery order, regardless of thread count.
//!
//! Protocols read their messages through an [`Inbox`] view, which supports
//! zero-clone consumption: [`Inbox::drain`] moves messages out of the arena
//! slots, so store-and-forward protocols take ownership without copying.

use graphs::VertexId;

/// A queued message on the outbox plane: destination, source, payload.
#[derive(Clone, Debug)]
pub(crate) struct OutMsg<M> {
    pub(crate) to: VertexId,
    pub(crate) from: VertexId,
    pub(crate) msg: M,
}

/// A per-worker outbox arena. Messages appear in (source ascending, send
/// order) because each worker executes its contiguous vertex chunk in order.
#[derive(Debug)]
pub(crate) struct Outbox<M> {
    pub(crate) msgs: Vec<OutMsg<M>>,
}

impl<M> Default for Outbox<M> {
    fn default() -> Self {
        Outbox { msgs: Vec::new() }
    }
}

impl<M> Outbox<M> {
    pub(crate) fn new() -> Self {
        Outbox::default()
    }
}

/// The delivery-side arena for a contiguous vertex range `[lo, lo + len)`:
/// one flat slot buffer plus CSR-style offsets, rebuilt (not reallocated)
/// every round.
///
/// Slots hold `Option<M>` so an [`Inbox`] can hand messages out by move;
/// whatever a protocol leaves behind is dropped at the next refill.
#[derive(Debug)]
pub(crate) struct ChunkArena<M> {
    lo: usize,
    /// `len + 1` offsets into `slots`; vertex `lo + i`'s inbox is
    /// `slots[starts[i]..starts[i + 1]]`.
    starts: Vec<usize>,
    /// Scatter cursors, one per vertex in the range (scratch, reused).
    cursors: Vec<usize>,
    slots: Vec<(VertexId, Option<M>)>,
}

impl<M> ChunkArena<M> {
    pub(crate) fn new(lo: usize, len: usize) -> Self {
        ChunkArena {
            lo,
            starts: vec![0; len + 1],
            cursors: vec![0; len],
            slots: Vec::new(),
        }
    }

    /// Total messages currently delivered into this range.
    pub(crate) fn total(&self) -> usize {
        *self.starts.last().expect("starts is never empty")
    }

    /// Number of messages delivered to global vertex `v` this round.
    pub(crate) fn inbox_len(&self, v: usize) -> usize {
        let i = v - self.lo;
        self.starts[i + 1] - self.starts[i]
    }

    /// The inbox view for global vertex `v`.
    pub(crate) fn inbox(&mut self, v: usize) -> Inbox<'_, M> {
        let i = v - self.lo;
        Inbox {
            slots: &mut self.slots[self.starts[i]..self.starts[i + 1]],
        }
    }

    fn begin_fill(&mut self) {
        self.starts.fill(0);
    }

    fn count(&mut self, to: VertexId) {
        self.starts[to.index() - self.lo + 1] += 1;
    }

    fn finish_counts(&mut self) {
        for i in 0..self.cursors.len() {
            self.starts[i + 1] += self.starts[i];
        }
        let len = self.cursors.len();
        self.cursors.copy_from_slice(&self.starts[..len]);
        let total = self.total();
        // Drop last round's leftovers and rebuild in place; `resize_with`
        // reuses the buffer's capacity, so steady state allocates nothing.
        self.slots.clear();
        self.slots.resize_with(total, || (VertexId(0), None));
    }

    fn place(&mut self, from: VertexId, to: VertexId, msg: M) {
        let c = &mut self.cursors[to.index() - self.lo];
        self.slots[*c] = (from, Some(msg));
        *c += 1;
    }
}

/// Refill the delivery arenas from the worker outboxes.
///
/// `arenas[w]` covers vertices `[w * chunk, ...)`; `chunk` is the uniform
/// chunk size (the last arena may be shorter). Outboxes are visited in worker
/// order, which is ascending source order, and the counting sort is stable —
/// together these reproduce the serial engine's delivery order exactly.
/// Outboxes are drained (capacity retained) for reuse next round.
pub(crate) fn fill_arenas<M>(
    arenas: &mut [&mut ChunkArena<M>],
    outboxes: &mut [Outbox<M>],
    chunk: usize,
) {
    for arena in arenas.iter_mut() {
        arena.begin_fill();
    }
    for outbox in outboxes.iter() {
        for m in &outbox.msgs {
            arenas[m.to.index() / chunk].count(m.to);
        }
    }
    for arena in arenas.iter_mut() {
        arena.finish_counts();
    }
    for outbox in outboxes.iter_mut() {
        for m in outbox.msgs.drain(..) {
            arenas[m.to.index() / chunk].place(m.from, m.to, m.msg);
        }
    }
}

/// One vertex's messages for the current round, in deterministic delivery
/// order (ascending sender id, then send order).
///
/// Messages live in the engine's inbox arena. A protocol may inspect them by
/// reference ([`Inbox::iter`]) or take ownership without cloning
/// ([`Inbox::drain`]); anything not drained is dropped when the arena is
/// refilled for the next round.
pub struct Inbox<'a, M> {
    slots: &'a mut [(VertexId, Option<M>)],
}

impl<'a, M> Inbox<'a, M> {
    /// Number of messages delivered this round (drained or not).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether nothing was delivered this round.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Iterate the not-yet-drained messages by reference.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, &M)> {
        self.slots
            .iter()
            .filter_map(|(from, m)| m.as_ref().map(|m| (*from, m)))
    }

    /// The first not-yet-drained message, if any.
    pub fn first(&self) -> Option<(VertexId, &M)> {
        self.iter().next()
    }

    /// Move every remaining message out of the arena — zero clones.
    pub fn drain(&mut self) -> impl Iterator<Item = (VertexId, M)> + '_ {
        self.slots
            .iter_mut()
            .filter_map(|(from, m)| m.take().map(|m| (*from, m)))
    }

    #[cfg(test)]
    pub(crate) fn over(slots: &'a mut [(VertexId, Option<M>)]) -> Self {
        Inbox { slots }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(to: u32, from: u32, payload: u64) -> OutMsg<u64> {
        OutMsg {
            to: VertexId(to),
            from: VertexId(from),
            msg: payload,
        }
    }

    #[test]
    fn fill_scatters_in_source_then_seq_order() {
        // Vertices 0..4, two workers with chunk = 2.
        let mut a0 = ChunkArena::new(0, 2);
        let mut a1 = ChunkArena::new(2, 2);
        // Worker 0 hosts sources 0..2, worker 1 hosts sources 2..4.
        let mut outboxes = [
            Outbox {
                msgs: vec![msg(3, 0, 10), msg(3, 1, 11), msg(0, 1, 12)],
            },
            Outbox {
                msgs: vec![msg(3, 2, 13), msg(0, 3, 14)],
            },
        ];
        {
            let mut arenas = [&mut a0, &mut a1];
            fill_arenas(&mut arenas, &mut outboxes, 2);
        }
        assert_eq!(a0.total(), 2);
        assert_eq!(a1.total(), 3);
        assert_eq!(a1.inbox_len(3), 3);
        let got: Vec<(VertexId, u64)> = a1.inbox(3).drain().collect();
        assert_eq!(
            got,
            vec![(VertexId(0), 10), (VertexId(1), 11), (VertexId(2), 13)]
        );
        let got0: Vec<(VertexId, u64)> = a0.inbox(0).drain().collect();
        assert_eq!(got0, vec![(VertexId(1), 12), (VertexId(3), 14)]);
        // Outboxes were drained, not dropped.
        assert!(outboxes.iter().all(|o| o.msgs.is_empty()));
    }

    #[test]
    fn refill_clears_leftovers() {
        let mut arena = ChunkArena::new(0, 1);
        let mut outboxes = [Outbox {
            msgs: vec![msg(0, 0, 7)],
        }];
        {
            let mut arenas = [&mut arena];
            fill_arenas(&mut arenas, &mut outboxes, 1);
        }
        assert_eq!(arena.inbox_len(0), 1);
        // Leave the message undrained; the next (empty) fill drops it.
        {
            let mut arenas = [&mut arena];
            fill_arenas(&mut arenas, &mut outboxes, 1);
        }
        assert_eq!(arena.total(), 0);
        assert_eq!(arena.inbox_len(0), 0);
    }

    #[test]
    fn inbox_iter_skips_drained() {
        let mut slots = vec![(VertexId(1), Some(5u64)), (VertexId(2), Some(6u64))];
        let mut inbox = Inbox::over(&mut slots);
        assert_eq!(inbox.len(), 2);
        assert_eq!(inbox.first(), Some((VertexId(1), &5)));
        let first = inbox.drain().next();
        assert_eq!(first, Some((VertexId(1), 5)));
        // len counts delivered slots; iter only the remaining one.
        assert_eq!(inbox.len(), 2);
        assert_eq!(inbox.iter().count(), 1);
        assert_eq!(inbox.first(), Some((VertexId(2), &6)));
    }
}
