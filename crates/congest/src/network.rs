//! The simulated network: a wrapper around a connected weighted graph with
//! port numbering.
//!
//! In the CONGEST model a vertex does not a priori know its neighbors'
//! identities — it has numbered *ports*. Protocols in this workspace learn
//! identities in round one (a standard assumption), but the port indirection
//! is kept so routing tables can store a port number (one word) instead of a
//! neighbor id where the scheme wants it.

use graphs::graph::Arc;
use graphs::{Graph, VertexId};

/// A simulated CONGEST network over an undirected weighted graph.
///
/// # Examples
///
/// ```
/// use congest::Network;
/// use graphs::{GraphBuilder, VertexId};
///
/// let mut b = GraphBuilder::new(2);
/// b.add_edge(VertexId(0), VertexId(1), 3);
/// let net = Network::new(b.build());
/// assert_eq!(net.len(), 2);
/// assert_eq!(net.port_of(VertexId(0), VertexId(1)), Some(0));
/// ```
#[derive(Clone, Debug)]
pub struct Network {
    graph: Graph,
}

impl Network {
    /// Wrap a graph as a network.
    pub fn new(graph: Graph) -> Self {
        Network { graph }
    }

    /// The underlying graph.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Whether the network has no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The arcs leaving `v`; the position of an arc in this slice is `v`'s
    /// port number for that neighbor.
    #[inline]
    pub fn ports(&self, v: VertexId) -> &[Arc] {
        self.graph.neighbors(v)
    }

    /// The port of `v` that leads to `u`, if `{v, u}` is an edge.
    pub fn port_of(&self, v: VertexId, u: VertexId) -> Option<usize> {
        self.ports(v).iter().position(|a| a.to == u)
    }

    /// The neighbor reached from `v` through `port`.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range for `v`.
    pub fn neighbor_at(&self, v: VertexId, port: usize) -> VertexId {
        self.ports(v)[port].to
    }
}

impl From<Graph> for Network {
    fn from(g: Graph) -> Self {
        Network::new(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::GraphBuilder;

    fn net() -> Network {
        let mut b = GraphBuilder::new(3);
        b.add_edge(VertexId(0), VertexId(1), 1);
        b.add_edge(VertexId(0), VertexId(2), 2);
        Network::new(b.build())
    }

    #[test]
    fn ports_round_trip() {
        let n = net();
        for v in n.graph().vertices() {
            for (p, arc) in n.ports(v).iter().enumerate() {
                assert_eq!(n.neighbor_at(v, p), arc.to);
                assert_eq!(n.port_of(v, arc.to), Some(p));
            }
        }
    }

    #[test]
    fn missing_port_is_none() {
        let n = net();
        assert_eq!(n.port_of(VertexId(1), VertexId(2)), None);
    }

    #[test]
    fn is_empty_on_empty_graph() {
        let n = Network::new(GraphBuilder::new(0).build());
        assert!(n.is_empty());
    }
}
