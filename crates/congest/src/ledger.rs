//! Round accounting for orchestrated (non-engine) protocol implementations.
//!
//! Stage-structured algorithms — the tree-routing stages of §3, the
//! Bellman–Ford explorations of Appendix B — have a round structure the model
//! prices exactly: a wave down a depth-`b` tree costs `b` rounds, a Lemma-1
//! broadcast of `M` words costs `O(M + D)` rounds. Implementations keep
//! genuine per-vertex state (metered by [`crate::MemoryMeter`]) and record
//! their round consumption here, so sweeps over thousands of vertices finish
//! in reasonable wall-clock time while reporting model-faithful costs.

/// An account of simulated CONGEST cost.
///
/// # Examples
///
/// ```
/// use congest::CostLedger;
/// let mut c = CostLedger::new();
/// c.charge_rounds(10);
/// c.charge_broadcast(100, 8); // Lemma 1: M + D rounds
/// assert_eq!(c.rounds(), 118);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CostLedger {
    rounds: u64,
    messages: u64,
    words: u64,
    broadcasts: u64,
}

impl CostLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        CostLedger::default()
    }

    /// Charge `r` synchronous rounds.
    pub fn charge_rounds(&mut self, r: u64) {
        self.rounds += r;
    }

    /// Charge `m` point-to-point messages (does not advance rounds; round
    /// cost is charged separately by the caller based on the schedule). Each
    /// message carries one word unless extra payload is charged via
    /// [`CostLedger::charge_words`].
    pub fn charge_messages(&mut self, m: u64) {
        self.messages += m;
        self.words += m;
    }

    /// Charge `w` additional payload words beyond the one-word-per-message
    /// default (for the rare multi-word messages the model still permits).
    pub fn charge_words(&mut self, w: u64) {
        self.words += w;
    }

    /// Charge a Lemma-1 broadcast/convergecast of `m` messages over a BFS
    /// tree of depth ≤ `d`: `m + d` rounds (the pipelined bound, constants
    /// elided exactly as the paper's Õ does).
    pub fn charge_broadcast(&mut self, m: u64, d: u64) {
        self.rounds += m + d;
        self.messages += m;
        self.words += m;
        self.broadcasts += 1;
    }

    /// [`CostLedger::charge_rounds`], also attributed to `rec`'s open spans.
    pub fn charge_rounds_span(&mut self, r: u64, rec: &mut obs::Recorder) {
        self.charge_rounds(r);
        rec.charge_rounds(r);
    }

    /// [`CostLedger::charge_messages`], also attributed to `rec`'s open spans.
    pub fn charge_messages_span(&mut self, m: u64, rec: &mut obs::Recorder) {
        self.charge_messages(m);
        rec.charge_messages(m, m);
    }

    /// [`CostLedger::charge_broadcast`], also attributed to `rec`'s open
    /// spans.
    pub fn charge_broadcast_span(&mut self, m: u64, d: u64, rec: &mut obs::Recorder) {
        self.charge_broadcast(m, d);
        rec.charge(&obs::Counters {
            rounds: m + d,
            messages: m,
            words: m,
            broadcasts: 1,
        });
    }

    /// Rounds consumed so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Logical messages sent so far.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Words carried by those messages.
    pub fn words(&self) -> u64 {
        self.words
    }

    /// Number of Lemma-1 broadcast phases charged.
    pub fn broadcasts(&self) -> u64 {
        self.broadcasts
    }

    /// The ledger's totals as observability counters, for span attribution
    /// via [`obs::Counters::delta_since`] snapshots around a phase.
    pub fn counters(&self) -> obs::Counters {
        obs::Counters {
            rounds: self.rounds,
            messages: self.messages,
            words: self.words,
            broadcasts: self.broadcasts,
        }
    }

    /// Absorb another ledger that ran *after* this one.
    pub fn merge_sequential(&mut self, other: &CostLedger) {
        self.rounds += other.rounds;
        self.messages += other.messages;
        self.words += other.words;
        self.broadcasts += other.broadcasts;
    }

    /// Absorb another ledger that ran *concurrently* (rounds take the max,
    /// messages add). Used when independent trees are processed in parallel.
    pub fn merge_concurrent(&mut self, other: &CostLedger) {
        self.rounds = self.rounds.max(other.rounds);
        self.messages += other.messages;
        self.words += other.words;
        self.broadcasts += other.broadcasts;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let mut c = CostLedger::new();
        c.charge_rounds(5);
        c.charge_messages(3);
        c.charge_broadcast(10, 2);
        assert_eq!(c.rounds(), 17);
        assert_eq!(c.messages(), 13);
        assert_eq!(c.broadcasts(), 1);
    }

    #[test]
    fn sequential_merge_adds_rounds() {
        let mut a = CostLedger::new();
        a.charge_rounds(5);
        let mut b = CostLedger::new();
        b.charge_rounds(7);
        a.merge_sequential(&b);
        assert_eq!(a.rounds(), 12);
    }

    #[test]
    fn concurrent_merge_takes_max_rounds() {
        let mut a = CostLedger::new();
        a.charge_rounds(5);
        a.charge_messages(2);
        let mut b = CostLedger::new();
        b.charge_rounds(7);
        b.charge_messages(4);
        a.merge_concurrent(&b);
        assert_eq!(a.rounds(), 7);
        assert_eq!(a.messages(), 6);
    }

    #[test]
    fn default_is_zero() {
        let c = CostLedger::new();
        assert_eq!(c.rounds(), 0);
        assert_eq!(c.messages(), 0);
        assert_eq!(c.words(), 0);
        assert_eq!(c.broadcasts(), 0);
    }

    #[test]
    fn words_track_messages_plus_payload() {
        let mut c = CostLedger::new();
        c.charge_messages(4);
        c.charge_words(6);
        c.charge_broadcast(10, 1);
        assert_eq!(c.words(), 20);
        assert_eq!(c.counters().words, 20);
        assert_eq!(c.counters().rounds, c.rounds());
    }

    #[test]
    fn span_variants_mirror_into_recorder() {
        let mut c = CostLedger::new();
        let mut rec = obs::Recorder::new();
        let span = rec.begin("phase");
        c.charge_rounds_span(3, &mut rec);
        c.charge_messages_span(2, &mut rec);
        c.charge_broadcast_span(5, 1, &mut rec);
        rec.end(span);
        assert_eq!(rec.totals(), c.counters());
        assert_eq!(rec.spans()[0].delta, c.counters());
    }
}
