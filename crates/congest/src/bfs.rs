//! Distributed BFS-tree construction — the backbone for Lemma-1 broadcasts.
//!
//! A BFS tree of the (unweighted) network rooted anywhere has depth at most
//! the hop diameter `D`; every broadcast/convergecast primitive in the paper
//! runs over such a tree.

use graphs::{RootedTree, VertexId};

use crate::engine::{Ctx, Engine, Inbox, RunStats, VertexProtocol};
use crate::network::Network;

/// Per-vertex state of the BFS protocol.
///
/// The root announces depth 0; every vertex adopts the first (hence
/// hop-minimal) announcement it hears, records the sender as its parent, and
/// re-announces. In the synchronous model the first announcement heard is
/// always at the true BFS depth.
#[derive(Clone, Debug)]
pub struct BfsVertex {
    is_root: bool,
    depth: Option<u64>,
    parent: Option<VertexId>,
}

impl BfsVertex {
    fn new(is_root: bool) -> Self {
        BfsVertex {
            is_root,
            depth: None,
            parent: None,
        }
    }

    /// The BFS depth this vertex settled on (`None` if unreachable).
    pub fn depth(&self) -> Option<u64> {
        self.depth
    }

    /// The BFS parent (`None` for the root / unreachable vertices).
    pub fn parent(&self) -> Option<VertexId> {
        self.parent
    }
}

impl VertexProtocol for BfsVertex {
    type Msg = u64; // announced depth

    fn init(&mut self, ctx: &mut Ctx<'_, u64>) {
        if self.is_root {
            self.depth = Some(0);
            ctx.send_all(0);
        }
    }

    fn round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &mut Inbox<'_, u64>) {
        if self.depth.is_some() {
            return;
        }
        if let Some((from, &d)) = inbox.iter().min_by_key(|&(_, d)| *d) {
            self.depth = Some(d + 1);
            self.parent = Some(from);
            ctx.send_all(d + 1);
        }
    }

    fn is_done(&self) -> bool {
        self.depth.is_some()
    }

    fn memory_words(&self) -> usize {
        3 // depth, parent, root flag
    }
}

/// Result of a distributed BFS-tree construction.
#[derive(Clone, Debug)]
pub struct BfsOutput {
    /// The BFS tree (spans the root's connected component).
    pub tree: RootedTree,
    /// Depth of the tree = eccentricity of the root ≤ D.
    pub depth: usize,
    /// Engine measurements for the construction.
    pub stats: RunStats,
}

/// Build a BFS tree of `network` rooted at `root` by running the real
/// distributed protocol.
///
/// # Panics
///
/// Panics if `root` is out of range.
///
/// # Examples
///
/// ```
/// use congest::{bfs, Network};
/// use graphs::{GraphBuilder, VertexId};
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(VertexId(0), VertexId(1), 5);
/// b.add_edge(VertexId(1), VertexId(2), 5);
/// let out = bfs::build_bfs_tree(&Network::new(b.build()), VertexId(0));
/// assert_eq!(out.depth, 2);
/// ```
pub fn build_bfs_tree(network: &Network, root: VertexId) -> BfsOutput {
    build_bfs_tree_with(network, root, 1)
}

/// [`build_bfs_tree`] on an engine with `threads` workers (`0` = available
/// parallelism). The tree and stats are identical for every thread count.
///
/// # Panics
///
/// Panics if `root` is out of range.
pub fn build_bfs_tree_with(network: &Network, root: VertexId, threads: usize) -> BfsOutput {
    let n = network.len();
    assert!(root.index() < n, "root out of range");
    let protos: Vec<BfsVertex> = (0..n).map(|v| BfsVertex::new(v == root.index())).collect();
    let (protos, stats) = Engine::with_threads(threads).run(network, protos);
    let mut parent = vec![None; n];
    let mut weight = vec![0; n];
    let mut depth = 0usize;
    for (v, p) in protos.iter().enumerate() {
        parent[v] = p.parent();
        if let Some(par) = p.parent() {
            weight[v] = network
                .graph()
                .edge_weight(par, VertexId(v as u32))
                .expect("BFS parent must be a neighbor");
        }
        if let Some(d) = p.depth() {
            depth = depth.max(d as usize);
        }
    }
    BfsOutput {
        tree: RootedTree::from_parents(root, parent, weight),
        depth,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::{generators, properties, shortest_paths};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn bfs_depths_match_centralized_bfs() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let g = generators::erdos_renyi_connected(60, 0.06, 1..=9, &mut rng);
        let hops = shortest_paths::bfs_hops(&g, VertexId(0));
        let net = Network::new(g);
        let out = build_bfs_tree(&net, VertexId(0));
        for v in net.graph().vertices() {
            assert_eq!(out.tree.depth_of(v), Some(hops[v.index()] as usize));
        }
    }

    #[test]
    fn bfs_runs_in_about_depth_rounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let g = generators::path(50, 1..=1, &mut rng);
        let net = Network::new(g);
        let out = build_bfs_tree(&net, VertexId(0));
        assert_eq!(out.depth, 49);
        assert!(out.stats.rounds <= 49 + 2, "rounds={}", out.stats.rounds);
    }

    #[test]
    fn bfs_depth_bounded_by_hop_diameter() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let g = generators::random_geometric_connected(70, 0.18, 1..=5, &mut rng);
        let d = properties::hop_diameter(&g).unwrap();
        let net = Network::new(g);
        for root in [0u32, 7, 33] {
            let out = build_bfs_tree(&net, VertexId(root));
            assert!(out.depth <= d);
        }
    }

    #[test]
    fn bfs_respects_congestion_cap() {
        let mut rng = ChaCha8Rng::seed_from_u64(14);
        let g = generators::erdos_renyi_connected(40, 0.2, 1..=3, &mut rng);
        let net = Network::new(g);
        let out = build_bfs_tree(&net, VertexId(0));
        assert_eq!(out.stats.congestion_violations, 0);
        assert_eq!(out.stats.max_edge_words, 1);
    }

    #[test]
    fn bfs_memory_is_constant() {
        let mut rng = ChaCha8Rng::seed_from_u64(15);
        let g = generators::erdos_renyi_connected(80, 0.05, 1..=3, &mut rng);
        let net = Network::new(g);
        let out = build_bfs_tree(&net, VertexId(3));
        assert_eq!(out.stats.memory.max_peak(), 3);
    }

    #[test]
    fn bfs_on_disconnected_graph_spans_component() {
        let mut b = graphs::GraphBuilder::new(4);
        b.add_edge(VertexId(0), VertexId(1), 1);
        b.add_edge(VertexId(2), VertexId(3), 1);
        let net = Network::new(b.build());
        let out = build_bfs_tree(&net, VertexId(0));
        assert!(out.tree.contains(VertexId(1)));
        assert!(!out.tree.contains(VertexId(2)));
    }
}
