//! A synchronous CONGEST-model network simulator.
//!
//! The paper's results are stated in the CONGEST RAM model: each vertex hosts
//! a processor, computation proceeds in discrete rounds, and in each round a
//! vertex may send one short message — O(1) *words*, where a word holds a
//! vertex id, an edge weight, or a distance — across each incident edge.
//! The complexity measures are
//!
//! 1. the number of **rounds**,
//! 2. the peak number of **words of memory** any vertex uses, and
//! 3. the sizes of the routing **tables** and **labels** produced.
//!
//! This crate measures all three. It offers two complementary execution
//! styles:
//!
//! * **Engine style** ([`engine`]): algorithms are per-vertex state machines
//!   ([`engine::VertexProtocol`]) driven round-by-round by
//!   [`engine::Engine`]; rounds, messages, per-edge congestion and per-vertex
//!   memory are measured by running them.
//! * **Ledger style** ([`ledger`]): orchestrated implementations of protocols
//!   whose round structure is known (level-by-level tree waves, Lemma-1
//!   broadcasts) keep genuine per-vertex state but charge rounds to a
//!   [`ledger::CostLedger`] using the model's cost rules. Memory is still
//!   metered exactly via [`memory::MemoryMeter`].
//!
//! [`bfs`] builds distributed BFS trees (the backbone used for broadcast) and
//! [`broadcast`] implements and validates Lemma 1 (M messages broadcast in
//! O(M + D) rounds).
//!
//! # Examples
//!
//! Build a BFS tree distributively and inspect the cost:
//!
//! ```
//! use congest::{bfs, Network};
//! use graphs::{generators, VertexId};
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let g = generators::erdos_renyi_connected(64, 0.08, 1..=5, &mut rng);
//! let net = Network::new(g);
//! let out = bfs::build_bfs_tree(&net, VertexId(0));
//! assert!(out.tree.contains(VertexId(63)));
//! assert!(out.stats.rounds as usize >= out.depth);
//! ```

pub mod bfs;
pub mod broadcast;
pub mod convergecast;
pub mod engine;
pub mod ledger;
pub mod memory;
pub mod message;
pub mod network;
mod plane;

pub use engine::{Engine, EngineConfig, Inbox, RunStats, VertexProtocol};
pub use ledger::CostLedger;
pub use memory::{MemoryMeter, MeterChunk};
pub use message::WordSized;
pub use network::Network;
