//! Message size accounting in the CONGEST RAM model.
//!
//! In CONGEST RAM a message may carry O(1) machine words, each word being a
//! vertex identity, an edge weight, a distance, "or anything else of no
//! larger size" (paper §2). Protocols define their own message enums and
//! report the word count through [`WordSized`]; the engine enforces the
//! per-edge-per-round word cap with it.

use graphs::{VertexId, Weight};

/// Types whose CONGEST word footprint is known.
///
/// Implementations must return the number of machine words required to
/// transmit (for messages) or store (for state) the value.
///
/// # Examples
///
/// ```
/// use congest::WordSized;
/// assert_eq!(42u64.words(), 1);
/// assert_eq!((graphs::VertexId(1), 7u64).words(), 2);
/// assert_eq!(vec![1u64, 2, 3].words(), 3);
/// ```
pub trait WordSized {
    /// Number of machine words occupied by `self`.
    fn words(&self) -> usize;
}

impl WordSized for u64 {
    fn words(&self) -> usize {
        1
    }
}

impl WordSized for u32 {
    fn words(&self) -> usize {
        1
    }
}

impl WordSized for usize {
    fn words(&self) -> usize {
        1
    }
}

impl WordSized for VertexId {
    fn words(&self) -> usize {
        1
    }
}

impl WordSized for bool {
    fn words(&self) -> usize {
        1
    }
}

impl<T: WordSized> WordSized for Option<T> {
    fn words(&self) -> usize {
        // The discriminant shares a word with the payload's first word in
        // practice; we charge payload words, minimum one for the flag.
        match self {
            Some(t) => t.words(),
            None => 1,
        }
    }
}

impl<A: WordSized, B: WordSized> WordSized for (A, B) {
    fn words(&self) -> usize {
        self.0.words() + self.1.words()
    }
}

impl<A: WordSized, B: WordSized, C: WordSized> WordSized for (A, B, C) {
    fn words(&self) -> usize {
        self.0.words() + self.1.words() + self.2.words()
    }
}

impl<T: WordSized> WordSized for Vec<T> {
    fn words(&self) -> usize {
        self.iter().map(WordSized::words).sum()
    }
}

impl<T: WordSized> WordSized for [T] {
    fn words(&self) -> usize {
        self.iter().map(WordSized::words).sum()
    }
}

/// A convenience word count for a distance estimate paired with its source.
pub fn distance_message_words(_src: VertexId, _d: Weight) -> usize {
    2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_sizes() {
        assert_eq!(5u64.words(), 1);
        assert_eq!(5u32.words(), 1);
        assert_eq!(5usize.words(), 1);
        assert_eq!(VertexId(9).words(), 1);
        assert_eq!(true.words(), 1);
    }

    #[test]
    fn compound_sizes() {
        assert_eq!((VertexId(0), 3u64).words(), 2);
        assert_eq!((VertexId(0), VertexId(1), 3u64).words(), 3);
        assert_eq!(Some(7u64).words(), 1);
        assert_eq!(Option::<u64>::None.words(), 1);
        let v: Vec<(VertexId, u64)> = vec![(VertexId(0), 1), (VertexId(1), 2)];
        assert_eq!(v.words(), 4);
    }

    #[test]
    fn slice_sizes() {
        let xs = [1u64, 2, 3];
        assert_eq!(xs[..].words(), 3);
        assert_eq!(xs[..0].words(), 0);
    }
}
