//! Per-vertex memory metering.
//!
//! The paper's headline contribution is the *individual memory requirement*:
//! the number of words a vertex uses at any point during preprocessing,
//! including its eventual tables and labels. [`MemoryMeter`] tracks, for each
//! vertex, the current and peak word counts. Ledger-style algorithms call
//! [`MemoryMeter::set`]/[`MemoryMeter::add`] as their per-vertex state grows
//! and shrinks; engine-style protocols are polled automatically each round.

use graphs::VertexId;

/// Tracks current and peak memory words per vertex.
///
/// # Examples
///
/// ```
/// use congest::MemoryMeter;
/// use graphs::VertexId;
///
/// let mut m = MemoryMeter::new(2);
/// m.add(VertexId(0), 10);
/// m.sub(VertexId(0), 4);
/// m.add(VertexId(1), 3);
/// assert_eq!(m.current(VertexId(0)), 6);
/// assert_eq!(m.peak(VertexId(0)), 10);
/// assert_eq!(m.max_peak(), 10);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MemoryMeter {
    current: Vec<usize>,
    peak: Vec<usize>,
}

impl MemoryMeter {
    /// A meter for `n` vertices, all at zero.
    pub fn new(n: usize) -> Self {
        MemoryMeter {
            current: vec![0; n],
            peak: vec![0; n],
        }
    }

    /// Number of vertices tracked.
    pub fn len(&self) -> usize {
        self.current.len()
    }

    /// Whether the meter tracks no vertices.
    pub fn is_empty(&self) -> bool {
        self.current.is_empty()
    }

    /// Charge `words` additional words to `v`.
    pub fn add(&mut self, v: VertexId, words: usize) {
        let c = &mut self.current[v.index()];
        *c += words;
        if *c > self.peak[v.index()] {
            self.peak[v.index()] = *c;
        }
    }

    /// Release `words` words from `v` (saturating at zero).
    pub fn sub(&mut self, v: VertexId, words: usize) {
        let c = &mut self.current[v.index()];
        *c = c.saturating_sub(words);
    }

    /// Set `v`'s current usage to exactly `words`, updating the peak.
    pub fn set(&mut self, v: VertexId, words: usize) {
        self.current[v.index()] = words;
        if words > self.peak[v.index()] {
            self.peak[v.index()] = words;
        }
    }

    /// Record that `v` *transiently* touched `words` words (peak is updated,
    /// current is unchanged). Use for one-round scratch space such as an
    /// incoming message being folded into an accumulator.
    pub fn touch(&mut self, v: VertexId, words: usize) {
        let transient = self.current[v.index()] + words;
        if transient > self.peak[v.index()] {
            self.peak[v.index()] = transient;
        }
    }

    /// Current words used by `v`.
    pub fn current(&self, v: VertexId) -> usize {
        self.current[v.index()]
    }

    /// Peak words ever used by `v`.
    pub fn peak(&self, v: VertexId) -> usize {
        self.peak[v.index()]
    }

    /// The maximum peak over all vertices — the paper's "memory per vertex".
    pub fn max_peak(&self) -> usize {
        self.peak.iter().copied().max().unwrap_or(0)
    }

    /// The per-vertex peak slice (index = vertex id), for distribution
    /// snapshots such as [`obs::MemoryDist::from_peaks`].
    pub fn peaks(&self) -> &[usize] {
        &self.peak
    }

    /// The vertex attaining [`MemoryMeter::max_peak`], if any vertex exists.
    pub fn argmax_peak(&self) -> Option<VertexId> {
        self.peak
            .iter()
            .enumerate()
            .max_by_key(|&(_, p)| *p)
            .map(|(i, _)| VertexId(i as u32))
    }

    /// Sum of peaks — an upper bound on total memory across the network.
    pub fn total_peak(&self) -> usize {
        self.peak.iter().sum()
    }

    /// Cross-check a claimed per-vertex *resident* word count against the
    /// metered peaks: every word a vertex holds at the end of a run must
    /// have been charged, so `resident[v] > peak(v)` means the attribution
    /// and the meter disagree. Returns the first such vertex, or `None`
    /// when the meter dominates the claim everywhere (the healthy case).
    ///
    /// # Panics
    ///
    /// Panics if `resident` is not exactly one entry per metered vertex.
    pub fn first_undershoot(&self, resident: &[usize]) -> Option<VertexId> {
        assert_eq!(
            resident.len(),
            self.peak.len(),
            "resident slice must cover every metered vertex"
        );
        self.peak
            .iter()
            .zip(resident)
            .position(|(&peak, &claimed)| claimed > peak)
            .map(|i| VertexId(i as u32))
    }

    /// Split the meter into disjoint mutable views over contiguous vertex
    /// ranges of `chunk` vertices each (the last may be shorter). The engine
    /// hands one chunk to each worker so per-vertex metering needs no locks —
    /// and the result is exactly what serial metering would have produced.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is zero.
    pub fn chunks_mut(&mut self, chunk: usize) -> Vec<MeterChunk<'_>> {
        assert!(chunk > 0, "chunk size must be positive");
        self.current
            .chunks_mut(chunk)
            .zip(self.peak.chunks_mut(chunk))
            .enumerate()
            .map(|(i, (current, peak))| MeterChunk {
                lo: i * chunk,
                current,
                peak,
            })
            .collect()
    }

    /// Fold another meter's peaks into this one, vertex-wise, as if the two
    /// phases ran one after the other with state released in between.
    ///
    /// # Panics
    ///
    /// Panics if the meters track different vertex counts.
    pub fn merge_sequential(&mut self, other: &MemoryMeter) {
        assert_eq!(self.len(), other.len(), "meter size mismatch");
        for i in 0..self.peak.len() {
            self.peak[i] = self.peak[i].max(other.peak[i]);
            self.current[i] = other.current[i];
        }
    }

    /// Fold another meter's usage into this one as if the two phases ran
    /// *concurrently*: currents and peaks add.
    ///
    /// # Panics
    ///
    /// Panics if the meters track different vertex counts.
    pub fn merge_concurrent(&mut self, other: &MemoryMeter) {
        assert_eq!(self.len(), other.len(), "meter size mismatch");
        for i in 0..self.peak.len() {
            self.peak[i] += other.peak[i];
            self.current[i] += other.current[i];
        }
    }
}

/// A disjoint mutable view over a contiguous vertex range of a
/// [`MemoryMeter`], produced by [`MemoryMeter::chunks_mut`]. Indexed by
/// *global* vertex id.
#[derive(Debug)]
pub struct MeterChunk<'a> {
    lo: usize,
    current: &'a mut [usize],
    peak: &'a mut [usize],
}

impl MeterChunk<'_> {
    /// First global vertex id covered by this chunk.
    pub fn lo(&self) -> usize {
        self.lo
    }

    /// Number of vertices covered by this chunk.
    pub fn len(&self) -> usize {
        self.current.len()
    }

    /// Whether the chunk covers no vertices.
    pub fn is_empty(&self) -> bool {
        self.current.is_empty()
    }

    /// Set `v`'s current usage to exactly `words`, updating the peak.
    /// Mirrors [`MemoryMeter::set`].
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside this chunk's range.
    pub fn set(&mut self, v: VertexId, words: usize) {
        let i = v.index() - self.lo;
        self.current[i] = words;
        if words > self.peak[i] {
            self.peak[i] = words;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut m = MemoryMeter::new(1);
        m.add(VertexId(0), 5);
        m.sub(VertexId(0), 5);
        m.add(VertexId(0), 3);
        assert_eq!(m.current(VertexId(0)), 3);
        assert_eq!(m.peak(VertexId(0)), 5);
    }

    #[test]
    fn sub_saturates() {
        let mut m = MemoryMeter::new(1);
        m.sub(VertexId(0), 10);
        assert_eq!(m.current(VertexId(0)), 0);
    }

    #[test]
    fn set_can_lower_current_but_not_peak() {
        let mut m = MemoryMeter::new(1);
        m.set(VertexId(0), 9);
        m.set(VertexId(0), 2);
        assert_eq!(m.current(VertexId(0)), 2);
        assert_eq!(m.peak(VertexId(0)), 9);
    }

    #[test]
    fn touch_is_transient() {
        let mut m = MemoryMeter::new(1);
        m.add(VertexId(0), 4);
        m.touch(VertexId(0), 3);
        assert_eq!(m.current(VertexId(0)), 4);
        assert_eq!(m.peak(VertexId(0)), 7);
    }

    #[test]
    fn max_peak_over_vertices() {
        let mut m = MemoryMeter::new(3);
        m.add(VertexId(0), 1);
        m.add(VertexId(1), 7);
        m.add(VertexId(2), 3);
        assert_eq!(m.max_peak(), 7);
        assert_eq!(m.argmax_peak(), Some(VertexId(1)));
        assert_eq!(m.total_peak(), 11);
    }

    #[test]
    fn empty_meter() {
        let m = MemoryMeter::new(0);
        assert_eq!(m.max_peak(), 0);
        assert_eq!(m.argmax_peak(), None);
        assert!(m.is_empty());
    }

    #[test]
    fn merge_sequential_takes_max() {
        let mut a = MemoryMeter::new(2);
        a.add(VertexId(0), 5);
        let mut b = MemoryMeter::new(2);
        b.add(VertexId(0), 3);
        b.add(VertexId(1), 8);
        a.merge_sequential(&b);
        assert_eq!(a.peak(VertexId(0)), 5);
        assert_eq!(a.peak(VertexId(1)), 8);
        assert_eq!(a.current(VertexId(0)), 3);
    }

    #[test]
    fn chunks_cover_all_vertices_disjointly() {
        let mut m = MemoryMeter::new(5);
        {
            let mut chunks = m.chunks_mut(2);
            assert_eq!(chunks.len(), 3);
            assert_eq!(
                chunks.iter().map(MeterChunk::len).collect::<Vec<_>>(),
                vec![2, 2, 1]
            );
            assert_eq!(chunks[1].lo(), 2);
            chunks[0].set(VertexId(1), 4);
            chunks[1].set(VertexId(2), 9);
            chunks[2].set(VertexId(4), 1);
            chunks[1].set(VertexId(2), 3); // lower current, peak sticks
            assert!(!chunks[2].is_empty());
        }
        assert_eq!(m.peak(VertexId(1)), 4);
        assert_eq!(m.peak(VertexId(2)), 9);
        assert_eq!(m.current(VertexId(2)), 3);
        assert_eq!(m.peak(VertexId(4)), 1);
        assert_eq!(m.max_peak(), 9);
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_size_rejected() {
        MemoryMeter::new(3).chunks_mut(0);
    }

    #[test]
    fn merge_concurrent_adds() {
        let mut a = MemoryMeter::new(2);
        a.add(VertexId(0), 5);
        let mut b = MemoryMeter::new(2);
        b.add(VertexId(0), 3);
        a.merge_concurrent(&b);
        assert_eq!(a.peak(VertexId(0)), 8);
        assert_eq!(a.current(VertexId(0)), 8);
    }
}
