//! Convergecast: aggregating a value from every vertex of a tree to its
//! root — the upward half of every "local stage" in the paper (subtree
//! sizes, heavy-child maxima). Runs as a real protocol: a vertex waits for
//! all its children's partial aggregates, folds them into its own value with
//! O(1) memory, and sends one word to its parent. Rounds = tree height.

use graphs::{RootedTree, VertexId};

use crate::engine::{Ctx, Engine, Inbox, RunStats, VertexProtocol};
use crate::network::Network;

/// The associative fold applied up the tree (all fit in one-word messages).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Aggregate {
    /// Sum of all values (e.g. subtree sizes with value 1 each).
    Sum,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

impl Aggregate {
    fn fold(self, a: u64, b: u64) -> u64 {
        match self {
            Aggregate::Sum => a + b,
            Aggregate::Min => a.min(b),
            Aggregate::Max => a.max(b),
        }
    }
}

/// Per-vertex convergecast state.
#[derive(Clone, Debug)]
struct CastVertex {
    in_tree: bool,
    parent: Option<VertexId>,
    expected_children: usize,
    heard_children: usize,
    acc: u64,
    op: Aggregate,
    sent: bool,
    is_root: bool,
}

impl VertexProtocol for CastVertex {
    type Msg = u64;

    fn init(&mut self, ctx: &mut Ctx<'_, u64>) {
        if self.in_tree && self.expected_children == 0 && !self.is_root {
            let p = self.parent.expect("non-root leaf has a parent");
            ctx.send(p, self.acc);
            self.sent = true;
        }
    }

    fn round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &mut Inbox<'_, u64>) {
        if !self.in_tree || self.sent {
            return;
        }
        for (_, v) in inbox.drain() {
            self.acc = self.op.fold(self.acc, v);
            self.heard_children += 1;
        }
        if self.heard_children == self.expected_children && !self.is_root {
            let p = self.parent.expect("non-root");
            ctx.send(p, self.acc);
            self.sent = true;
        }
    }

    fn is_done(&self) -> bool {
        !self.in_tree
            || self.sent
            || (self.is_root && self.heard_children == self.expected_children)
    }

    fn memory_words(&self) -> usize {
        if self.in_tree {
            5
        } else {
            0
        }
    }
}

/// Output of a convergecast run.
#[derive(Clone, Debug)]
pub struct ConvergecastOutput {
    /// The aggregate the root computed.
    pub result: u64,
    /// Engine measurements (rounds ≈ tree height).
    pub stats: RunStats,
}

/// Aggregate `values` (indexed by host vertex; non-members ignored) to the
/// root of `tree` with the fold `op`.
///
/// # Panics
///
/// Panics if the tree's host universe differs from the network.
pub fn converge(
    network: &Network,
    tree: &RootedTree,
    values: &[u64],
    op: Aggregate,
) -> ConvergecastOutput {
    converge_with(network, tree, values, op, 1)
}

/// [`converge`] on an engine with `threads` workers (`0` = available
/// parallelism). Result and stats are identical for every thread count.
///
/// # Panics
///
/// Panics if the tree's host universe differs from the network.
pub fn converge_with(
    network: &Network,
    tree: &RootedTree,
    values: &[u64],
    op: Aggregate,
    threads: usize,
) -> ConvergecastOutput {
    let n = network.len();
    assert_eq!(tree.host_len(), n, "tree host must match network");
    assert_eq!(values.len(), n, "one value per vertex");
    let protos: Vec<CastVertex> = (0..n)
        .map(|i| {
            let v = VertexId(i as u32);
            CastVertex {
                in_tree: tree.contains(v),
                parent: tree.parent(v),
                expected_children: tree.children(v).len(),
                heard_children: 0,
                acc: values[i],
                op,
                sent: false,
                is_root: v == tree.root(),
            }
        })
        .collect();
    let (protos, stats) = Engine::with_threads(threads).run(network, protos);
    ConvergecastOutput {
        result: protos[tree.root().index()].acc,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs;
    use graphs::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup(n: usize, seed: u64) -> (Network, RootedTree) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = generators::erdos_renyi_connected(n, 0.06, 1..=5, &mut rng);
        let net = Network::new(g);
        let tree = bfs::build_bfs_tree(&net, VertexId(0)).tree;
        (net, tree)
    }

    #[test]
    fn sum_counts_vertices() {
        let (net, tree) = setup(80, 701);
        let out = converge(&net, &tree, &vec![1; 80], Aggregate::Sum);
        assert!(out.stats.completed);
        assert_eq!(out.result, 80);
    }

    #[test]
    fn min_and_max_find_extremes() {
        let (net, tree) = setup(50, 702);
        let values: Vec<u64> = (0..50).map(|i| (i * 13 + 7) % 101).collect();
        let min = converge(&net, &tree, &values, Aggregate::Min);
        let max = converge(&net, &tree, &values, Aggregate::Max);
        assert_eq!(min.result, *values.iter().min().unwrap());
        assert_eq!(max.result, *values.iter().max().unwrap());
    }

    #[test]
    fn rounds_track_tree_height() {
        let mut rng = ChaCha8Rng::seed_from_u64(703);
        let g = generators::path(40, 1..=1, &mut rng);
        let net = Network::new(g);
        let tree = bfs::build_bfs_tree(&net, VertexId(0)).tree;
        let out = converge(&net, &tree, &vec![1; 40], Aggregate::Sum);
        assert_eq!(out.result, 40);
        assert!(
            out.stats.rounds >= 39 && out.stats.rounds <= 41,
            "{}",
            out.stats.rounds
        );
    }

    #[test]
    fn memory_is_constant_and_messages_one_per_edge() {
        let (net, tree) = setup(60, 704);
        let out = converge(&net, &tree, &vec![2; 60], Aggregate::Sum);
        assert_eq!(out.stats.memory.max_peak(), 5);
        // One upward message per non-root tree vertex.
        assert_eq!(out.stats.messages as usize, tree.num_vertices() - 1);
        assert_eq!(out.stats.congestion_violations, 0);
    }

    #[test]
    fn partial_tree_ignores_outsiders() {
        let mut rng = ChaCha8Rng::seed_from_u64(705);
        let g = generators::path(6, 1..=1, &mut rng);
        // Tree covering only vertices 0..3.
        let tree = graphs::RootedTree::from_parents(
            VertexId(0),
            vec![
                None,
                Some(VertexId(0)),
                Some(VertexId(1)),
                Some(VertexId(2)),
                None,
                None,
            ],
            vec![0, 1, 1, 1, 0, 0],
        );
        let net = Network::new(g);
        let out = converge(&net, &tree, &[1, 1, 1, 1, 100, 100], Aggregate::Sum);
        assert_eq!(out.result, 4);
    }
}
