//! The synchronous round engine: runs per-vertex state machines and measures
//! rounds, messages, congestion, and memory.

use graphs::graph::Arc;
use graphs::VertexId;

use crate::memory::MemoryMeter;
use crate::message::WordSized;
use crate::network::Network;

/// A per-vertex protocol state machine.
///
/// One instance exists per vertex. A protocol may only read its own state,
/// the identity/ports of its neighbors (via [`Ctx`]), and the messages
/// delivered to it this round — this is what makes the simulation faithful to
/// the model.
pub trait VertexProtocol {
    /// The message type exchanged by this protocol.
    type Msg: Clone + WordSized;

    /// Called once before the first round; may send initial messages.
    fn init(&mut self, ctx: &mut Ctx<'_, Self::Msg>);

    /// Called every round with the messages delivered this round (sent by
    /// neighbors in the previous round).
    fn round(&mut self, ctx: &mut Ctx<'_, Self::Msg>, inbox: &[(VertexId, Self::Msg)]);

    /// Vertex-local termination flag. The engine stops when every vertex is
    /// done and no messages are in flight.
    fn is_done(&self) -> bool;

    /// Words of memory this vertex currently holds; polled after every round
    /// to maintain the per-vertex peak.
    fn memory_words(&self) -> usize;

    /// Words currently parked in this vertex's outgoing forwarding queues.
    /// Store-and-forward protocols override this so a traced run can record
    /// queue occupancy per round; stateless protocols keep the default 0.
    fn queued_words(&self) -> usize {
        0
    }
}

/// The view a protocol instance has of its environment during a round.
pub struct Ctx<'a, M> {
    me: VertexId,
    arcs: &'a [Arc],
    round: u64,
    outbox: Vec<(VertexId, M)>,
}

impl<'a, M: Clone> Ctx<'a, M> {
    /// This vertex's identity.
    pub fn me(&self) -> VertexId {
        self.me
    }

    /// Arcs to this vertex's neighbors (index = port number).
    pub fn neighbors(&self) -> &'a [Arc] {
        self.arcs
    }

    /// The current round number (0 during `init`).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Queue a message to neighbor `to` for delivery next round.
    ///
    /// # Panics
    ///
    /// Panics if `to` is not a neighbor — CONGEST only has edge-local
    /// communication.
    pub fn send(&mut self, to: VertexId, msg: M) {
        debug_assert!(
            self.arcs.iter().any(|a| a.to == to),
            "{} attempted to message non-neighbor {}",
            self.me,
            to
        );
        self.outbox.push((to, msg));
    }

    /// Queue the same message to every neighbor. The final recipient takes
    /// ownership of `msg`; only the first `deg - 1` copies are cloned.
    pub fn send_all(&mut self, msg: M) {
        if let Some((last, rest)) = self.arcs.split_last() {
            self.outbox.reserve(self.arcs.len());
            for arc in rest {
                self.outbox.push((arc.to, msg.clone()));
            }
            self.outbox.push((last.to, msg));
        }
    }
}

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Hard stop after this many rounds (protocol bugs shouldn't hang tests).
    pub max_rounds: u64,
    /// Maximum words a vertex may send over one edge in one round (the
    /// CONGEST RAM cap; messages above it are recorded as violations).
    pub edge_words_per_round: usize,
    /// Panic on congestion violations instead of recording them.
    pub strict_congestion: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_rounds: 1_000_000,
            edge_words_per_round: 4,
            strict_congestion: false,
        }
    }
}

/// Measurements from one engine run.
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    /// Rounds executed (init is not a round).
    pub rounds: u64,
    /// Total messages delivered.
    pub messages: u64,
    /// Total words delivered.
    pub words: u64,
    /// The worst words-per-edge-per-round observed.
    pub max_edge_words: usize,
    /// Number of (edge, round) pairs exceeding the configured cap.
    pub congestion_violations: u64,
    /// Whether the run terminated before `max_rounds`.
    pub completed: bool,
    /// Per-vertex peak memory, polled after each round.
    pub memory: MemoryMeter,
    /// Wall-clock nanoseconds the run took (monotonic; real time, not a
    /// simulated cost — the simulated currencies are the fields above).
    pub wall_ns: u64,
}

/// The synchronous engine.
///
/// # Examples
///
/// See [`crate::bfs`] for a complete protocol.
#[derive(Debug, Default)]
pub struct Engine {
    config: EngineConfig,
}

impl Engine {
    /// An engine with default configuration.
    pub fn new() -> Self {
        Engine {
            config: EngineConfig::default(),
        }
    }

    /// An engine with explicit configuration.
    pub fn with_config(config: EngineConfig) -> Self {
        Engine { config }
    }

    /// Run `protocols` (one per vertex, indexed by vertex id) on `network`
    /// until quiescence or the round cap.
    ///
    /// Returns the final protocol states and the run statistics.
    ///
    /// # Panics
    ///
    /// Panics if `protocols.len()` differs from the network size, or on a
    /// congestion violation when `strict_congestion` is set.
    pub fn run<P: VertexProtocol>(
        &self,
        network: &Network,
        protocols: Vec<P>,
    ) -> (Vec<P>, RunStats) {
        self.run_traced(network, protocols, &mut obs::Recorder::disabled())
    }

    /// Like [`Engine::run`], but additionally appends one
    /// [`obs::RoundSample`] per executed round (including the init sends as
    /// round 0) to `recorder`'s time series. Recorder *totals* are untouched:
    /// the engine's costs reach run totals through whatever ledger charges
    /// the caller makes from the returned [`RunStats`], so the time series
    /// never double-counts.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Engine::run`].
    pub fn run_traced<P: VertexProtocol>(
        &self,
        network: &Network,
        mut protocols: Vec<P>,
        recorder: &mut obs::Recorder,
    ) -> (Vec<P>, RunStats) {
        let n = network.len();
        assert_eq!(protocols.len(), n, "one protocol instance per vertex");
        let wall = obs::metrics::Stopwatch::start();
        let mut stats = RunStats {
            memory: MemoryMeter::new(n),
            ..RunStats::default()
        };

        // inboxes[v] = messages to deliver to v at the start of the next round.
        let mut inboxes: Vec<Vec<(VertexId, P::Msg)>> = vec![Vec::new(); n];

        // Init phase (round 0 sends).
        for (v, protocol) in protocols.iter_mut().enumerate() {
            let vid = VertexId(v as u32);
            let mut ctx = Ctx {
                me: vid,
                arcs: network.ports(vid),
                round: 0,
                outbox: Vec::new(),
            };
            protocol.init(&mut ctx);
            self.dispatch(network, vid, ctx.outbox, &mut inboxes, &mut stats);
            stats.memory.set(vid, protocol.memory_words());
        }
        if recorder.is_enabled() && stats.messages > 0 {
            recorder.record_round(obs::RoundSample {
                round: 0,
                messages: stats.messages,
                words: stats.words,
                max_edge_words: stats.max_edge_words,
                congestion_violations: stats.congestion_violations,
                queued_words: protocols.iter().map(VertexProtocol::queued_words).sum(),
            });
        }

        let mut sent_last_round = inboxes.iter().any(|b| !b.is_empty());
        loop {
            let in_flight = inboxes.iter().any(|b| !b.is_empty());
            let all_done = protocols.iter().all(VertexProtocol::is_done);
            if all_done && !in_flight {
                stats.completed = true;
                break;
            }
            // Quiescence: protocols are message-driven, so once a round passes
            // with nothing sent and nothing in flight, no state can change.
            if !in_flight && !sent_last_round {
                stats.completed = all_done;
                break;
            }
            if stats.rounds >= self.config.max_rounds {
                break;
            }
            stats.rounds += 1;

            let delivered = std::mem::replace(&mut inboxes, vec![Vec::new(); n]);
            let messages_before = stats.messages;
            let words_before = stats.words;
            let violations_before = stats.congestion_violations;
            for (v, inbox) in delivered.into_iter().enumerate() {
                let vid = VertexId(v as u32);
                if inbox.is_empty() && protocols[v].is_done() {
                    continue;
                }
                let mut ctx = Ctx {
                    me: vid,
                    arcs: network.ports(vid),
                    round: stats.rounds,
                    outbox: Vec::new(),
                };
                protocols[v].round(&mut ctx, &inbox);
                self.dispatch(network, vid, ctx.outbox, &mut inboxes, &mut stats);
                stats.memory.set(vid, protocols[v].memory_words());
            }
            if recorder.is_enabled() {
                recorder.record_round(obs::RoundSample {
                    round: stats.rounds,
                    messages: stats.messages - messages_before,
                    words: stats.words - words_before,
                    max_edge_words: stats.max_edge_words,
                    congestion_violations: stats.congestion_violations - violations_before,
                    queued_words: protocols.iter().map(VertexProtocol::queued_words).sum(),
                });
            }
            sent_last_round = stats.messages > messages_before;
        }
        stats.wall_ns = wall.elapsed_ns();
        (protocols, stats)
    }

    fn dispatch<M: Clone + WordSized>(
        &self,
        _network: &Network,
        from: VertexId,
        outbox: Vec<(VertexId, M)>,
        inboxes: &mut [Vec<(VertexId, M)>],
        stats: &mut RunStats,
    ) {
        // Congestion accounting: words per destination this round.
        let mut per_edge: Vec<(VertexId, usize)> = Vec::new();
        for (to, msg) in outbox {
            let w = msg.words();
            stats.messages += 1;
            stats.words += w as u64;
            match per_edge.iter_mut().find(|(t, _)| *t == to) {
                Some((_, acc)) => *acc += w,
                None => per_edge.push((to, w)),
            }
            inboxes[to.index()].push((from, msg));
        }
        for (to, w) in per_edge {
            stats.max_edge_words = stats.max_edge_words.max(w);
            if w > self.config.edge_words_per_round {
                stats.congestion_violations += 1;
                assert!(
                    !self.config.strict_congestion,
                    "congestion violation: {from} sent {w} words to {to} in one round"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::{GraphBuilder, Weight};

    /// A toy protocol: the root floods a token; each vertex records the hop
    /// count at which it first heard it.
    struct Flood {
        is_root: bool,
        heard_at: Option<u64>,
    }

    impl VertexProtocol for Flood {
        type Msg = u64;

        fn init(&mut self, ctx: &mut Ctx<'_, u64>) {
            if self.is_root {
                self.heard_at = Some(0);
                ctx.send_all(0);
            }
        }

        fn round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &[(VertexId, u64)]) {
            if self.heard_at.is_none() {
                if let Some(&(_, h)) = inbox.first() {
                    self.heard_at = Some(h + 1);
                    ctx.send_all(h + 1);
                }
            }
        }

        fn is_done(&self) -> bool {
            self.heard_at.is_some()
        }

        fn memory_words(&self) -> usize {
            2
        }
    }

    fn path_network(n: usize) -> Network {
        let mut b = GraphBuilder::new(n);
        for v in 1..n {
            b.add_edge(VertexId((v - 1) as u32), VertexId(v as u32), 1 as Weight);
        }
        Network::new(b.build())
    }

    fn flood(n: usize) -> Vec<Flood> {
        (0..n)
            .map(|v| Flood {
                is_root: v == 0,
                heard_at: None,
            })
            .collect()
    }

    #[test]
    fn flood_reaches_everyone_in_hop_rounds() {
        let net = path_network(6);
        let (protos, stats) = Engine::new().run(&net, flood(6));
        assert!(stats.completed);
        for (v, p) in protos.iter().enumerate() {
            assert_eq!(p.heard_at, Some(v as u64));
        }
        // Last vertex hears at round 5; one more round may drain its echo.
        assert!(
            stats.rounds >= 5 && stats.rounds <= 7,
            "rounds={}",
            stats.rounds
        );
    }

    #[test]
    fn stats_count_messages_and_words() {
        let net = path_network(3);
        let (_, stats) = Engine::new().run(&net, flood(3));
        assert!(stats.messages > 0);
        assert_eq!(stats.words, stats.messages); // 1-word messages
        assert_eq!(stats.max_edge_words, 1);
        assert_eq!(stats.congestion_violations, 0);
    }

    #[test]
    fn memory_meter_polled() {
        let net = path_network(3);
        let (_, stats) = Engine::new().run(&net, flood(3));
        assert_eq!(stats.memory.max_peak(), 2);
    }

    #[test]
    fn round_cap_stops_nonterminating_protocols() {
        /// Never done, ping-pongs forever.
        struct Chatter;
        impl VertexProtocol for Chatter {
            type Msg = u64;
            fn init(&mut self, ctx: &mut Ctx<'_, u64>) {
                ctx.send_all(0);
            }
            fn round(&mut self, ctx: &mut Ctx<'_, u64>, _: &[(VertexId, u64)]) {
                ctx.send_all(0);
            }
            fn is_done(&self) -> bool {
                false
            }
            fn memory_words(&self) -> usize {
                0
            }
        }
        let net = path_network(2);
        let engine = Engine::with_config(EngineConfig {
            max_rounds: 10,
            ..EngineConfig::default()
        });
        let (_, stats) = engine.run(&net, vec![Chatter, Chatter]);
        assert!(!stats.completed);
        assert_eq!(stats.rounds, 10);
    }

    #[test]
    fn quiescence_stops_stalled_protocols() {
        /// Never done, never sends — quiesces immediately.
        struct Stubborn;
        impl VertexProtocol for Stubborn {
            type Msg = u64;
            fn init(&mut self, _: &mut Ctx<'_, u64>) {}
            fn round(&mut self, _: &mut Ctx<'_, u64>, _: &[(VertexId, u64)]) {}
            fn is_done(&self) -> bool {
                false
            }
            fn memory_words(&self) -> usize {
                0
            }
        }
        let net = path_network(2);
        let (_, stats) = Engine::new().run(&net, vec![Stubborn, Stubborn]);
        assert!(!stats.completed);
        assert_eq!(stats.rounds, 0);
    }

    #[test]
    fn congestion_violations_recorded() {
        /// Sends a fat message to its single neighbor once.
        struct Fat {
            sent: bool,
        }
        impl VertexProtocol for Fat {
            type Msg = Vec<u64>;
            fn init(&mut self, ctx: &mut Ctx<'_, Vec<u64>>) {
                if !self.sent && ctx.me() == VertexId(0) {
                    ctx.send(VertexId(1), vec![0; 100]);
                }
                self.sent = true;
            }
            fn round(&mut self, _: &mut Ctx<'_, Vec<u64>>, _: &[(VertexId, Vec<u64>)]) {}
            fn is_done(&self) -> bool {
                self.sent
            }
            fn memory_words(&self) -> usize {
                1
            }
        }
        let net = path_network(2);
        let (_, stats) = Engine::new().run(&net, vec![Fat { sent: false }, Fat { sent: false }]);
        assert_eq!(stats.congestion_violations, 1);
        assert_eq!(stats.max_edge_words, 100);
    }

    #[test]
    #[should_panic(expected = "congestion violation")]
    fn strict_congestion_panics() {
        struct Fat;
        impl VertexProtocol for Fat {
            type Msg = Vec<u64>;
            fn init(&mut self, ctx: &mut Ctx<'_, Vec<u64>>) {
                if ctx.me() == VertexId(0) {
                    ctx.send(VertexId(1), vec![0; 100]);
                }
            }
            fn round(&mut self, _: &mut Ctx<'_, Vec<u64>>, _: &[(VertexId, Vec<u64>)]) {}
            fn is_done(&self) -> bool {
                true
            }
            fn memory_words(&self) -> usize {
                0
            }
        }
        let net = path_network(2);
        let engine = Engine::with_config(EngineConfig {
            strict_congestion: true,
            ..EngineConfig::default()
        });
        engine.run(&net, vec![Fat, Fat]);
    }

    #[test]
    #[should_panic(expected = "one protocol instance per vertex")]
    fn protocol_count_must_match() {
        let net = path_network(3);
        Engine::new().run(&net, flood(2));
    }

    #[test]
    fn traced_run_samples_every_round() {
        let net = path_network(4);
        let mut rec = obs::Recorder::new();
        let (_, stats) = Engine::new().run_traced(&net, flood(4), &mut rec);
        assert!(stats.completed);
        // One sample for the init sends plus one per executed round.
        let series = rec.series();
        assert_eq!(series.len() as u64, stats.rounds + 1);
        assert_eq!(series[0].round, 0);
        assert_eq!(series.last().unwrap().round, stats.rounds);
        let messages: u64 = series.iter().map(|s| s.messages).sum();
        let words: u64 = series.iter().map(|s| s.words).sum();
        assert_eq!(messages, stats.messages);
        assert_eq!(words, stats.words);
        // The hook records the series without touching recorder totals.
        assert_eq!(rec.totals(), obs::Counters::ZERO);
        // Wall sampling: real elapsed time, present even at this tiny size.
        assert!(stats.wall_ns > 0);
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let net = path_network(4);
        let mut rec = obs::Recorder::disabled();
        let (_, stats) = Engine::new().run_traced(&net, flood(4), &mut rec);
        assert!(stats.completed);
        assert!(rec.series().is_empty());
    }
}
