//! The synchronous round engine: runs per-vertex state machines and measures
//! rounds, messages, congestion, and memory.
//!
//! # Execution model
//!
//! The engine owns one protocol instance per vertex and drives them through
//! synchronous rounds over the zero-allocation message plane in
//! [`crate::plane`]: vertices append sends to flat outbox arenas, and a
//! stable counting sort scatters them into flat per-range inbox arenas for
//! the next round. No per-vertex `Vec`s are allocated on the hot path.
//!
//! # Parallelism and determinism
//!
//! With [`EngineConfig::threads`] > 1 the vertex set is partitioned into
//! contiguous chunks, one per worker, executed under [`std::thread::scope`].
//! Workers are persistent across rounds (spawned once per run) and
//! rendezvous with the coordinator through channels; each owns its protocol
//! chunk, its slice of the memory meter, and a reusable outbox arena.
//!
//! The simulated results are **bit-identical to the serial engine** for any
//! thread count:
//!
//! * Chunks are contiguous and outboxes are merged in worker order, so the
//!   global message stream is in (source ascending, send order) — exactly
//!   the order the serial loop produces.
//! * The inbox scatter is a stable counting sort by destination, so every
//!   vertex's inbox preserves that order.
//! * All statistics (messages, words, per-edge congestion, per-vertex
//!   memory) are computed per source vertex and folded in vertex order.
//! * Strict-congestion enforcement is deferred to the end-of-round merge in
//!   *both* paths and reports the first violation in (source, send) order,
//!   so the panic is thread-count independent too.
//!
//! Only [`RunStats::wall_ns`] — real time, not a simulated cost — may differ
//! between runs.

use std::sync::mpsc;

use graphs::graph::Arc;
use graphs::VertexId;
use obs::metrics::Stopwatch;
use obs::profile::{EngineProfile, Phase};

use crate::memory::{MemoryMeter, MeterChunk};
use crate::message::WordSized;
use crate::network::Network;
use crate::plane::{fill_arenas, ChunkArena, OutMsg, Outbox};

pub use crate::plane::Inbox;

/// A per-vertex protocol state machine.
///
/// One instance exists per vertex. A protocol may only read its own state,
/// the identity/ports of its neighbors (via [`Ctx`]), and the messages
/// delivered to it this round — this is what makes the simulation faithful to
/// the model. `Send` bounds let the engine shard vertices across workers.
pub trait VertexProtocol {
    /// The message type exchanged by this protocol.
    type Msg: Clone + WordSized + Send;

    /// Called once before the first round; may send initial messages.
    fn init(&mut self, ctx: &mut Ctx<'_, Self::Msg>);

    /// Called every round with the messages delivered this round (sent by
    /// neighbors in the previous round). Take messages by value with
    /// [`Inbox::drain`] — it moves them out of the engine's arena without
    /// cloning — or inspect them with [`Inbox::iter`].
    fn round(&mut self, ctx: &mut Ctx<'_, Self::Msg>, inbox: &mut Inbox<'_, Self::Msg>);

    /// Vertex-local termination flag. The engine stops when every vertex is
    /// done and no messages are in flight.
    fn is_done(&self) -> bool;

    /// Words of memory this vertex currently holds; polled after every round
    /// to maintain the per-vertex peak.
    fn memory_words(&self) -> usize;

    /// Words currently parked in this vertex's outgoing forwarding queues.
    /// Store-and-forward protocols override this so a traced run can record
    /// queue occupancy per round; stateless protocols keep the default 0.
    fn queued_words(&self) -> usize {
        0
    }

    /// Whether this vertex has scheduled future work that does not depend on
    /// receiving a message (e.g. open-loop traffic sources with arrival
    /// gaps). The engine's quiescence rule normally stops a run after a
    /// silent round — once nothing was sent and nothing is in flight, a
    /// purely message-driven protocol can never act again. A vertex that
    /// returns `true` suspends that rule for the round, so time keeps
    /// advancing through idle gaps. Message-driven protocols keep the
    /// default `false`.
    fn keep_alive(&self) -> bool {
        false
    }
}

/// The view a protocol instance has of its environment during a round.
pub struct Ctx<'a, M> {
    me: VertexId,
    arcs: &'a [Arc],
    round: u64,
    outbox: &'a mut Vec<OutMsg<M>>,
}

impl<'a, M: Clone> Ctx<'a, M> {
    /// This vertex's identity.
    pub fn me(&self) -> VertexId {
        self.me
    }

    /// Arcs to this vertex's neighbors (index = port number).
    pub fn neighbors(&self) -> &'a [Arc] {
        self.arcs
    }

    /// The current round number (0 during `init`).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Queue a message to neighbor `to` for delivery next round.
    ///
    /// # Panics
    ///
    /// Panics if `to` is not a neighbor — CONGEST only has edge-local
    /// communication.
    pub fn send(&mut self, to: VertexId, msg: M) {
        debug_assert!(
            self.arcs.iter().any(|a| a.to == to),
            "{} attempted to message non-neighbor {}",
            self.me,
            to
        );
        self.outbox.push(OutMsg {
            to,
            from: self.me,
            msg,
        });
    }

    /// Queue the same message to every neighbor. The final recipient takes
    /// ownership of `msg`; only the first `deg - 1` copies are cloned.
    pub fn send_all(&mut self, msg: M) {
        if let Some((last, rest)) = self.arcs.split_last() {
            self.outbox.reserve(self.arcs.len());
            for arc in rest {
                self.outbox.push(OutMsg {
                    to: arc.to,
                    from: self.me,
                    msg: msg.clone(),
                });
            }
            self.outbox.push(OutMsg {
                to: last.to,
                from: self.me,
                msg,
            });
        }
    }
}

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Hard stop after this many rounds (protocol bugs shouldn't hang tests).
    pub max_rounds: u64,
    /// Maximum words a vertex may send over one edge in one round (the
    /// CONGEST RAM cap; messages above it are recorded as violations).
    pub edge_words_per_round: usize,
    /// Panic on congestion violations instead of recording them.
    pub strict_congestion: bool,
    /// Worker threads for per-round vertex execution. `1` (the default) runs
    /// the serial path; `0` resolves to the machine's available parallelism.
    /// Simulated results are identical for every value — see the module docs.
    pub threads: usize,
    /// Profile the round loop: per-round, per-worker phase timings
    /// ([`obs::profile::EngineProfile`]) returned in
    /// [`RunStats::profile`]. Profiling also turns on when the recorder
    /// passed to [`Engine::run_traced`] has profiling enabled; either way
    /// it never changes simulated results, only adds clock reads.
    pub profile: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_rounds: 1_000_000,
            edge_words_per_round: 4,
            strict_congestion: false,
            threads: 1,
            profile: false,
        }
    }
}

impl EngineConfig {
    /// The configured thread count with `0` resolved to the machine's
    /// available parallelism.
    pub fn resolved_threads(&self) -> usize {
        match self.threads {
            0 => std::thread::available_parallelism().map_or(1, usize::from),
            t => t,
        }
    }
}

/// Measurements from one engine run.
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    /// Rounds executed (init is not a round).
    pub rounds: u64,
    /// Total messages delivered.
    pub messages: u64,
    /// Total words delivered.
    pub words: u64,
    /// The worst words-per-edge-per-round observed.
    pub max_edge_words: usize,
    /// Number of (edge, round) pairs exceeding the configured cap.
    pub congestion_violations: u64,
    /// Whether the run terminated before `max_rounds`.
    pub completed: bool,
    /// Per-vertex peak memory, polled after each round.
    pub memory: MemoryMeter,
    /// Wall-clock nanoseconds the run took (monotonic; real time, not a
    /// simulated cost — the simulated currencies are the fields above).
    pub wall_ns: u64,
    /// Per-phase, per-worker wall-time attribution, present when
    /// [`EngineConfig::profile`] was set. Like `wall_ns`, real time —
    /// never part of the simulated-equality contract.
    pub profile: Option<Box<EngineProfile>>,
}

impl RunStats {
    /// Whether two runs agree on every *simulated* measurement — everything
    /// except [`RunStats::wall_ns`] and [`RunStats::profile`]. This is the
    /// equality the parallel engine guarantees against the serial one.
    pub fn same_simulation(&self, other: &RunStats) -> bool {
        self.rounds == other.rounds
            && self.messages == other.messages
            && self.words == other.words
            && self.max_edge_words == other.max_edge_words
            && self.congestion_violations == other.congestion_violations
            && self.completed == other.completed
            && self.memory == other.memory
    }
}

/// Per-chunk round measurements, folded into [`RunStats`] in worker order.
#[derive(Clone, Debug, Default)]
struct ChunkStats {
    messages: u64,
    words: u64,
    max_edge_words: usize,
    violations: u64,
    /// First violation in (source, send) order within the chunk.
    first_violation: Option<(VertexId, VertexId, usize)>,
    /// Whether every protocol in the chunk reports done after this phase.
    chunk_done: bool,
    /// Whether any protocol in the chunk has scheduled non-message-driven
    /// work pending (suspends the quiescence rule).
    keep_alive: bool,
    queued_words: usize,
}

/// One worker's round-trip payload: its delivery arena, reusable outbox and
/// scratch, and the phase result. Moved coordinator → worker → coordinator
/// through channels each phase, so ownership is explicit and nothing is
/// locked or copied.
struct Task<M> {
    /// `None` drives the init phase; `Some(r)` drives round `r`.
    round: Option<u64>,
    delivery: ChunkArena<M>,
    outbox: Outbox<M>,
    per_edge: Vec<(VertexId, usize)>,
    stats: ChunkStats,
    sample_queued: bool,
    /// The worker's phase timings for this phase, when profiling.
    prof: Option<TaskProf>,
}

/// A worker's raw clock marks for one phase, recorded on the worker and
/// folded into the coordinator's [`Prof`] at collection time so workers
/// never share the profile itself.
#[derive(Clone, Copy, Debug, Default)]
struct TaskProf {
    /// Start of the channel wait preceding this phase (epoch-relative ns).
    idle_start: u64,
    /// Length of that wait.
    idle_ns: u64,
    /// Start of the chunk execution.
    compute_start: u64,
    /// Length of the chunk execution.
    compute_ns: u64,
}

/// Coordinator-side profiling state: the accumulating [`EngineProfile`],
/// the shared epoch stopwatch, and a running mark so successive
/// [`Prof::lap`] calls tile the coordinator's track without gaps.
struct Prof {
    prof: EngineProfile,
    epoch: Stopwatch,
    mark: u64,
}

impl Prof {
    fn new(epoch: Stopwatch) -> Prof {
        let mark = epoch.elapsed_ns();
        Prof {
            prof: EngineProfile::new(1),
            epoch,
            mark,
        }
    }

    /// Close the interval since the previous lap as `phase` on `worker`'s
    /// track and start the next one.
    fn lap(&mut self, round: u64, worker: u32, phase: Phase) {
        let now = self.epoch.elapsed_ns();
        self.prof.record(
            round,
            worker,
            phase,
            self.mark,
            now.saturating_sub(self.mark),
        );
        self.mark = now;
    }

    /// Fold a worker's raw marks for round `round` into the profile
    /// (independent samples; the coordinator's own mark is untouched).
    fn absorb_task(&mut self, round: u64, worker: u32, tp: &TaskProf) {
        self.prof
            .record(round, worker, Phase::Idle, tp.idle_start, tp.idle_ns);
        self.prof.record(
            round,
            worker,
            Phase::Compute,
            tp.compute_start,
            tp.compute_ns,
        );
    }
}

/// The synchronous engine.
///
/// # Examples
///
/// See [`crate::bfs`] for a complete protocol.
#[derive(Debug, Default)]
pub struct Engine {
    config: EngineConfig,
}

impl Engine {
    /// An engine with default configuration.
    pub fn new() -> Self {
        Engine {
            config: EngineConfig::default(),
        }
    }

    /// An engine with explicit configuration.
    pub fn with_config(config: EngineConfig) -> Self {
        Engine { config }
    }

    /// An engine with default configuration except the worker thread count
    /// (`0` = available parallelism).
    pub fn with_threads(threads: usize) -> Self {
        Engine::with_config(EngineConfig {
            threads,
            ..EngineConfig::default()
        })
    }

    /// This engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Run `protocols` (one per vertex, indexed by vertex id) on `network`
    /// until quiescence or the round cap.
    ///
    /// Returns the final protocol states and the run statistics.
    ///
    /// # Panics
    ///
    /// Panics if `protocols.len()` differs from the network size, or on a
    /// congestion violation when `strict_congestion` is set.
    pub fn run<P: VertexProtocol + Send>(
        &self,
        network: &Network,
        protocols: Vec<P>,
    ) -> (Vec<P>, RunStats) {
        self.run_traced(network, protocols, &mut obs::Recorder::disabled())
    }

    /// Like [`Engine::run`], but additionally appends one
    /// [`obs::RoundSample`] per executed round (including the init sends as
    /// round 0) to `recorder`'s time series. Recorder *totals* are untouched:
    /// the engine's costs reach run totals through whatever ledger charges
    /// the caller makes from the returned [`RunStats`], so the time series
    /// never double-counts.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Engine::run`].
    pub fn run_traced<P: VertexProtocol + Send>(
        &self,
        network: &Network,
        mut protocols: Vec<P>,
        recorder: &mut obs::Recorder,
    ) -> (Vec<P>, RunStats) {
        let n = network.len();
        assert_eq!(protocols.len(), n, "one protocol instance per vertex");
        let wall = Stopwatch::start();
        // Profiling epoch: the recorder's start when it is accumulating a
        // profile (one timeline across runs), else this run's own start.
        // `None` keeps both drivers free of clock reads.
        let profiling = self.config.profile || recorder.profiling();
        let epoch = profiling.then(|| recorder.profile_epoch().unwrap_or(wall));
        let threads = self.config.resolved_threads().clamp(1, n.max(1));
        let mut stats = if threads <= 1 {
            self.drive_serial(network, &mut protocols, recorder, epoch)
        } else {
            self.drive_parallel(network, &mut protocols, recorder, threads, epoch)
        };
        stats.wall_ns = wall.elapsed_ns();
        if let Some(p) = stats.profile.as_deref_mut() {
            p.record_run(stats.wall_ns);
            recorder.absorb_profile(p);
        }
        if !self.config.profile {
            // Profiling was recorder-driven; the recorder keeps the copy.
            stats.profile = None;
        }
        (protocols, stats)
    }

    /// The single-threaded driver: one chunk covering every vertex, executed
    /// inline. Same plane, same merge, no channels.
    fn drive_serial<P: VertexProtocol>(
        &self,
        network: &Network,
        protocols: &mut [P],
        recorder: &mut obs::Recorder,
        epoch: Option<Stopwatch>,
    ) -> RunStats {
        let n = protocols.len();
        let cap = self.config.edge_words_per_round;
        let sample = recorder.is_enabled();
        let mut prof = epoch.map(Prof::new);
        let mut stats = RunStats::default();
        let mut memory = MemoryMeter::new(n);
        let mut arena = ChunkArena::new(0, n);
        let mut outbox = Outbox::new();
        let mut per_edge = Vec::new();
        {
            let mut meter = memory
                .chunks_mut(n.max(1))
                .pop()
                .expect("one chunk covers all vertices");
            if let Some(p) = prof.as_mut() {
                p.lap(0, 0, Phase::Setup);
            }

            // Init phase (round 0 sends).
            let mut cs = execute_chunk(
                protocols,
                0,
                network,
                None,
                &mut arena,
                &mut outbox,
                &mut meter,
                &mut per_edge,
                cap,
                sample,
            );
            if let Some(p) = prof.as_mut() {
                p.lap(0, 0, Phase::Compute);
            }
            fill_arenas(
                &mut [&mut arena],
                std::slice::from_mut(&mut outbox),
                n.max(1),
            );
            if let Some(p) = prof.as_mut() {
                p.lap(0, 0, Phase::Scatter);
            }
            absorb(&mut stats, &cs);
            self.enforce_congestion(cs.first_violation);
            if sample && stats.messages > 0 {
                recorder.record_round(obs::RoundSample {
                    round: 0,
                    messages: stats.messages,
                    words: stats.words,
                    max_edge_words: stats.max_edge_words,
                    congestion_violations: stats.congestion_violations,
                    queued_words: cs.queued_words,
                });
            }
            if let Some(p) = prof.as_mut() {
                p.lap(0, 0, Phase::Merge);
            }

            let mut sent_last_round = stats.messages > 0;
            let mut all_done = cs.chunk_done;
            let mut keep_alive = cs.keep_alive;
            loop {
                let in_flight = arena.total() > 0;
                if all_done && !in_flight {
                    stats.completed = true;
                    break;
                }
                // Quiescence: protocols are message-driven, so once a round
                // passes with nothing sent and nothing in flight, no state
                // can change — unless a vertex holds scheduled future work
                // (`keep_alive`), in which case time must keep advancing.
                if !in_flight && !sent_last_round && !keep_alive {
                    stats.completed = all_done;
                    break;
                }
                if stats.rounds >= self.config.max_rounds {
                    break;
                }
                stats.rounds += 1;

                let messages_before = stats.messages;
                let words_before = stats.words;
                let violations_before = stats.congestion_violations;
                cs = execute_chunk(
                    protocols,
                    0,
                    network,
                    Some(stats.rounds),
                    &mut arena,
                    &mut outbox,
                    &mut meter,
                    &mut per_edge,
                    cap,
                    sample,
                );
                if let Some(p) = prof.as_mut() {
                    p.lap(stats.rounds, 0, Phase::Compute);
                }
                fill_arenas(
                    &mut [&mut arena],
                    std::slice::from_mut(&mut outbox),
                    n.max(1),
                );
                if let Some(p) = prof.as_mut() {
                    p.lap(stats.rounds, 0, Phase::Scatter);
                }
                absorb(&mut stats, &cs);
                self.enforce_congestion(cs.first_violation);
                if sample {
                    recorder.record_round(obs::RoundSample {
                        round: stats.rounds,
                        messages: stats.messages - messages_before,
                        words: stats.words - words_before,
                        max_edge_words: stats.max_edge_words,
                        congestion_violations: stats.congestion_violations - violations_before,
                        queued_words: cs.queued_words,
                    });
                }
                if let Some(p) = prof.as_mut() {
                    p.lap(stats.rounds, 0, Phase::Merge);
                }
                sent_last_round = stats.messages > messages_before;
                all_done = cs.chunk_done;
                keep_alive = cs.keep_alive;
            }
        }
        stats.memory = memory;
        stats.profile = prof.map(|p| Box::new(p.prof));
        stats
    }

    /// The multi-threaded driver: contiguous vertex chunks on persistent
    /// scoped workers, rendezvousing with this (coordinator) thread through
    /// channels each phase. Chunk 0 executes inline on the coordinator.
    fn drive_parallel<P: VertexProtocol + Send>(
        &self,
        network: &Network,
        protocols: &mut [P],
        recorder: &mut obs::Recorder,
        threads: usize,
        epoch: Option<Stopwatch>,
    ) -> RunStats {
        let n = protocols.len();
        let chunk = n.div_ceil(threads);
        let cap = self.config.edge_words_per_round;
        let sample = recorder.is_enabled();
        let mut prof = epoch.map(Prof::new);
        let mut stats = RunStats::default();
        let mut memory = MemoryMeter::new(n);

        let mut tasks: Vec<Option<Task<P::Msg>>> = Vec::new();
        let mut lo = 0;
        while lo < n {
            let len = chunk.min(n - lo);
            tasks.push(Some(Task {
                round: None,
                delivery: ChunkArena::new(lo, len),
                outbox: Outbox::new(),
                per_edge: Vec::new(),
                stats: ChunkStats::default(),
                sample_queued: sample,
                prof: None,
            }));
            lo += len;
        }
        let t = tasks.len();

        let mut proto_chunks: Vec<&mut [P]> = protocols.chunks_mut(chunk).collect();
        let mut meter_chunks = memory.chunks_mut(chunk);
        debug_assert_eq!(proto_chunks.len(), t);
        debug_assert_eq!(meter_chunks.len(), t);

        std::thread::scope(|scope| {
            let (done_tx, done_rx) = mpsc::channel::<(usize, Task<P::Msg>)>();
            let mut to_workers: Vec<mpsc::Sender<Task<P::Msg>>> = Vec::with_capacity(t - 1);
            let mut chunks = proto_chunks.drain(..).zip(meter_chunks.drain(..));
            let (protos0, mut meter0) = chunks.next().expect("at least one chunk");
            for (i, (protos, mut meter)) in chunks.enumerate() {
                let w = i + 1;
                let lo = w * chunk;
                let (task_tx, task_rx) = mpsc::channel::<Task<P::Msg>>();
                to_workers.push(task_tx);
                let done = done_tx.clone();
                scope.spawn(move || {
                    // Persistent worker: one phase per received task; exits
                    // when the coordinator drops its sender. When profiling,
                    // the worker stamps raw clock marks into the task (the
                    // recv wait is the worker's idle time) and the
                    // coordinator folds them into the profile at collection.
                    let mut idle_from = epoch.map_or(0, |e| e.elapsed_ns());
                    while let Ok(mut task) = task_rx.recv() {
                        if let Some(e) = epoch {
                            let now = e.elapsed_ns();
                            task.prof = Some(TaskProf {
                                idle_start: idle_from,
                                idle_ns: now.saturating_sub(idle_from),
                                compute_start: now,
                                compute_ns: 0,
                            });
                        }
                        task.stats = execute_chunk(
                            protos,
                            lo,
                            network,
                            task.round,
                            &mut task.delivery,
                            &mut task.outbox,
                            &mut meter,
                            &mut task.per_edge,
                            cap,
                            task.sample_queued,
                        );
                        if let Some(e) = epoch {
                            if let Some(tp) = task.prof.as_mut() {
                                tp.compute_ns = e.elapsed_ns().saturating_sub(tp.compute_start);
                            }
                        }
                        if done.send((w, task)).is_err() {
                            break;
                        }
                        if let Some(e) = epoch {
                            idle_from = e.elapsed_ns();
                        }
                    }
                });
            }
            drop(done_tx);

            if let Some(p) = prof.as_mut() {
                p.lap(0, 0, Phase::Setup);
            }

            // Fan a phase out to every worker, run chunk 0 inline, then park
            // the returned tasks back in worker-index order for the merge.
            // `prof` is threaded as an argument (not captured) so the
            // coordinator can also lap it between phases.
            let mut exec_phase = |round: Option<u64>,
                                  tasks: &mut [Option<Task<P::Msg>>],
                                  prof: &mut Option<Prof>| {
                let r = round.unwrap_or(0);
                for (i, tx) in to_workers.iter().enumerate() {
                    let mut task = tasks[i + 1].take().expect("task parked");
                    task.round = round;
                    task.sample_queued = sample;
                    tx.send(task).expect("worker alive");
                }
                if let Some(p) = prof.as_mut() {
                    p.lap(r, 0, Phase::Dispatch);
                }
                let mut t0 = tasks[0].take().expect("task parked");
                t0.round = round;
                t0.stats = execute_chunk(
                    protos0,
                    0,
                    network,
                    round,
                    &mut t0.delivery,
                    &mut t0.outbox,
                    &mut meter0,
                    &mut t0.per_edge,
                    cap,
                    sample,
                );
                tasks[0] = Some(t0);
                if let Some(p) = prof.as_mut() {
                    p.lap(r, 0, Phase::Compute);
                }
                for _ in 0..to_workers.len() {
                    let (w, task) = done_rx.recv().expect("worker alive");
                    if let Some(p) = prof.as_mut() {
                        if let Some(tp) = &task.prof {
                            p.absorb_task(r, w as u32, tp);
                        }
                    }
                    tasks[w] = Some(task);
                }
                // Time since chunk 0 finished is the coordinator's barrier
                // wait on the slowest worker.
                if let Some(p) = prof.as_mut() {
                    p.lap(r, 0, Phase::Idle);
                }
            };

            // Init phase (round 0 sends).
            exec_phase(None, &mut tasks, &mut prof);
            let cs = merge_round(&mut tasks, chunk, 0, &mut prof);
            absorb(&mut stats, &cs);
            self.enforce_congestion(cs.first_violation);
            if sample && stats.messages > 0 {
                recorder.record_round(obs::RoundSample {
                    round: 0,
                    messages: stats.messages,
                    words: stats.words,
                    max_edge_words: stats.max_edge_words,
                    congestion_violations: stats.congestion_violations,
                    queued_words: cs.queued_words,
                });
            }
            if let Some(p) = prof.as_mut() {
                p.lap(0, 0, Phase::Merge);
            }

            let mut sent_last_round = stats.messages > 0;
            let mut all_done = cs.chunk_done;
            let mut keep_alive = cs.keep_alive;
            loop {
                let in_flight = tasks
                    .iter()
                    .map(|t| t.as_ref().expect("task parked").delivery.total())
                    .sum::<usize>()
                    > 0;
                if all_done && !in_flight {
                    stats.completed = true;
                    break;
                }
                if !in_flight && !sent_last_round && !keep_alive {
                    stats.completed = all_done;
                    break;
                }
                if stats.rounds >= self.config.max_rounds {
                    break;
                }
                stats.rounds += 1;

                let messages_before = stats.messages;
                let words_before = stats.words;
                let violations_before = stats.congestion_violations;
                exec_phase(Some(stats.rounds), &mut tasks, &mut prof);
                let cs = merge_round(&mut tasks, chunk, stats.rounds, &mut prof);
                absorb(&mut stats, &cs);
                self.enforce_congestion(cs.first_violation);
                if sample {
                    recorder.record_round(obs::RoundSample {
                        round: stats.rounds,
                        messages: stats.messages - messages_before,
                        words: stats.words - words_before,
                        max_edge_words: stats.max_edge_words,
                        congestion_violations: stats.congestion_violations - violations_before,
                        queued_words: cs.queued_words,
                    });
                }
                if let Some(p) = prof.as_mut() {
                    p.lap(stats.rounds, 0, Phase::Merge);
                }
                sent_last_round = stats.messages > messages_before;
                all_done = cs.chunk_done;
                keep_alive = cs.keep_alive;
            }
            // Dropping `to_workers` (scope-local) ends every worker's recv
            // loop; the scope then joins them.
        });
        drop(meter_chunks);
        stats.memory = memory;
        stats.profile = prof.map(|p| Box::new(p.prof));
        stats
    }

    /// Deferred strict-congestion enforcement: both drivers collect the first
    /// violation in (source, send) order during the round and report it here
    /// after the merge, so the panic site is identical for every thread
    /// count (and workers never panic while the coordinator waits on them).
    fn enforce_congestion(&self, first: Option<(VertexId, VertexId, usize)>) {
        if let Some((from, to, w)) = first {
            assert!(
                !self.config.strict_congestion,
                "congestion violation: {from} sent {w} words to {to} in one round"
            );
        }
    }
}

/// Fold a merged chunk's counters into the run totals.
fn absorb(stats: &mut RunStats, cs: &ChunkStats) {
    stats.messages += cs.messages;
    stats.words += cs.words;
    stats.max_edge_words = stats.max_edge_words.max(cs.max_edge_words);
    stats.congestion_violations += cs.violations;
}

/// Drain every outbox into the delivery arenas (stable, worker order) and
/// fold the per-chunk stats in worker order. When profiling, the scatter is
/// lapped on the coordinator's track for round `round`.
fn merge_round<M>(
    tasks: &mut [Option<Task<M>>],
    chunk: usize,
    round: u64,
    prof: &mut Option<Prof>,
) -> ChunkStats {
    let mut outboxes: Vec<Outbox<M>> = tasks
        .iter_mut()
        .map(|t| std::mem::take(&mut t.as_mut().expect("task parked").outbox))
        .collect();
    {
        let mut arenas: Vec<&mut ChunkArena<M>> = tasks
            .iter_mut()
            .map(|t| &mut t.as_mut().expect("task parked").delivery)
            .collect();
        fill_arenas(&mut arenas, &mut outboxes, chunk);
    }
    for (t, outbox) in tasks.iter_mut().zip(outboxes) {
        t.as_mut().expect("task parked").outbox = outbox;
    }
    if let Some(p) = prof.as_mut() {
        p.lap(round, 0, Phase::Scatter);
    }
    let mut merged = ChunkStats {
        chunk_done: true,
        ..ChunkStats::default()
    };
    for t in tasks.iter() {
        let cs = &t.as_ref().expect("task parked").stats;
        merged.messages += cs.messages;
        merged.words += cs.words;
        merged.max_edge_words = merged.max_edge_words.max(cs.max_edge_words);
        merged.violations += cs.violations;
        if merged.first_violation.is_none() {
            merged.first_violation = cs.first_violation;
        }
        merged.chunk_done &= cs.chunk_done;
        merged.keep_alive |= cs.keep_alive;
        merged.queued_words += cs.queued_words;
    }
    merged
}

/// Execute one phase (init or a numbered round) for a contiguous chunk of
/// vertices `[lo, lo + protocols.len())`: run each protocol, meter its
/// memory, and account its sends. Shared verbatim by the serial driver, the
/// coordinator's inline chunk 0, and every worker — there is exactly one
/// execution semantics.
#[allow(clippy::too_many_arguments)]
fn execute_chunk<P: VertexProtocol>(
    protocols: &mut [P],
    lo: usize,
    network: &Network,
    round: Option<u64>,
    delivery: &mut ChunkArena<P::Msg>,
    outbox: &mut Outbox<P::Msg>,
    meter: &mut MeterChunk<'_>,
    per_edge: &mut Vec<(VertexId, usize)>,
    cap: usize,
    sample_queued: bool,
) -> ChunkStats {
    let mut cs = ChunkStats::default();
    for (i, protocol) in protocols.iter_mut().enumerate() {
        let v = lo + i;
        let vid = VertexId(v as u32);
        let start = outbox.msgs.len();
        match round {
            None => {
                let mut ctx = Ctx {
                    me: vid,
                    arcs: network.ports(vid),
                    round: 0,
                    outbox: &mut outbox.msgs,
                };
                protocol.init(&mut ctx);
            }
            Some(r) => {
                if delivery.inbox_len(v) == 0 && protocol.is_done() {
                    continue;
                }
                let mut inbox = delivery.inbox(v);
                let mut ctx = Ctx {
                    me: vid,
                    arcs: network.ports(vid),
                    round: r,
                    outbox: &mut outbox.msgs,
                };
                protocol.round(&mut ctx, &mut inbox);
            }
        }
        meter.set(vid, protocol.memory_words());
        account(&outbox.msgs[start..], vid, cap, per_edge, &mut cs);
    }
    cs.chunk_done = protocols.iter().all(P::is_done);
    cs.keep_alive = protocols.iter().any(P::keep_alive);
    if sample_queued {
        cs.queued_words = protocols.iter().map(P::queued_words).sum::<usize>();
    }
    cs
}

/// Congestion/volume accounting for one vertex's sends this round.
fn account<M: WordSized>(
    sent: &[OutMsg<M>],
    from: VertexId,
    cap: usize,
    per_edge: &mut Vec<(VertexId, usize)>,
    cs: &mut ChunkStats,
) {
    if sent.is_empty() {
        return;
    }
    per_edge.clear();
    for m in sent {
        let w = m.msg.words();
        cs.messages += 1;
        cs.words += w as u64;
        match per_edge.iter_mut().find(|(t, _)| *t == m.to) {
            Some((_, acc)) => *acc += w,
            None => per_edge.push((m.to, w)),
        }
    }
    for &(to, w) in per_edge.iter() {
        cs.max_edge_words = cs.max_edge_words.max(w);
        if w > cap {
            cs.violations += 1;
            if cs.first_violation.is_none() {
                cs.first_violation = Some((from, to, w));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::{GraphBuilder, Weight};

    /// A toy protocol: the root floods a token; each vertex records the hop
    /// count at which it first heard it.
    struct Flood {
        is_root: bool,
        heard_at: Option<u64>,
    }

    impl VertexProtocol for Flood {
        type Msg = u64;

        fn init(&mut self, ctx: &mut Ctx<'_, u64>) {
            if self.is_root {
                self.heard_at = Some(0);
                ctx.send_all(0);
            }
        }

        fn round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &mut Inbox<'_, u64>) {
            if self.heard_at.is_none() {
                if let Some((_, &h)) = inbox.first() {
                    self.heard_at = Some(h + 1);
                    ctx.send_all(h + 1);
                }
            }
        }

        fn is_done(&self) -> bool {
            self.heard_at.is_some()
        }

        fn memory_words(&self) -> usize {
            2
        }
    }

    fn path_network(n: usize) -> Network {
        let mut b = GraphBuilder::new(n);
        for v in 1..n {
            b.add_edge(VertexId((v - 1) as u32), VertexId(v as u32), 1 as Weight);
        }
        Network::new(b.build())
    }

    fn flood(n: usize) -> Vec<Flood> {
        (0..n)
            .map(|v| Flood {
                is_root: v == 0,
                heard_at: None,
            })
            .collect()
    }

    #[test]
    fn flood_reaches_everyone_in_hop_rounds() {
        let net = path_network(6);
        let (protos, stats) = Engine::new().run(&net, flood(6));
        assert!(stats.completed);
        for (v, p) in protos.iter().enumerate() {
            assert_eq!(p.heard_at, Some(v as u64));
        }
        // Last vertex hears at round 5; one more round may drain its echo.
        assert!(
            stats.rounds >= 5 && stats.rounds <= 7,
            "rounds={}",
            stats.rounds
        );
    }

    #[test]
    fn stats_count_messages_and_words() {
        let net = path_network(3);
        let (_, stats) = Engine::new().run(&net, flood(3));
        assert!(stats.messages > 0);
        assert_eq!(stats.words, stats.messages); // 1-word messages
        assert_eq!(stats.max_edge_words, 1);
        assert_eq!(stats.congestion_violations, 0);
    }

    #[test]
    fn memory_meter_polled() {
        let net = path_network(3);
        let (_, stats) = Engine::new().run(&net, flood(3));
        assert_eq!(stats.memory.max_peak(), 2);
    }

    #[test]
    fn round_cap_stops_nonterminating_protocols() {
        /// Never done, ping-pongs forever.
        struct Chatter;
        impl VertexProtocol for Chatter {
            type Msg = u64;
            fn init(&mut self, ctx: &mut Ctx<'_, u64>) {
                ctx.send_all(0);
            }
            fn round(&mut self, ctx: &mut Ctx<'_, u64>, _: &mut Inbox<'_, u64>) {
                ctx.send_all(0);
            }
            fn is_done(&self) -> bool {
                false
            }
            fn memory_words(&self) -> usize {
                0
            }
        }
        let net = path_network(2);
        let engine = Engine::with_config(EngineConfig {
            max_rounds: 10,
            ..EngineConfig::default()
        });
        let (_, stats) = engine.run(&net, vec![Chatter, Chatter]);
        assert!(!stats.completed);
        assert_eq!(stats.rounds, 10);
    }

    #[test]
    fn quiescence_stops_stalled_protocols() {
        /// Never done, never sends — quiesces immediately.
        struct Stubborn;
        impl VertexProtocol for Stubborn {
            type Msg = u64;
            fn init(&mut self, _: &mut Ctx<'_, u64>) {}
            fn round(&mut self, _: &mut Ctx<'_, u64>, _: &mut Inbox<'_, u64>) {}
            fn is_done(&self) -> bool {
                false
            }
            fn memory_words(&self) -> usize {
                0
            }
        }
        let net = path_network(2);
        let (_, stats) = Engine::new().run(&net, vec![Stubborn, Stubborn]);
        assert!(!stats.completed);
        assert_eq!(stats.rounds, 0);
    }

    #[test]
    fn keep_alive_spans_idle_gaps() {
        /// Vertex 0 sends one token at round 5 and nothing before — an
        /// open-loop source with an arrival gap. Without `keep_alive` the
        /// engine would quiesce after the first silent round.
        struct Sleeper {
            fire_at: Option<u64>,
            heard: bool,
        }
        impl VertexProtocol for Sleeper {
            type Msg = u64;
            fn init(&mut self, _: &mut Ctx<'_, u64>) {}
            fn round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &mut Inbox<'_, u64>) {
                if !inbox.is_empty() {
                    self.heard = true;
                }
                if self.fire_at == Some(ctx.round()) {
                    ctx.send_all(7);
                    self.fire_at = None;
                }
            }
            fn is_done(&self) -> bool {
                self.fire_at.is_none()
            }
            fn memory_words(&self) -> usize {
                1
            }
            fn keep_alive(&self) -> bool {
                self.fire_at.is_some()
            }
        }
        let make = || {
            vec![
                Sleeper {
                    fire_at: Some(5),
                    heard: false,
                },
                Sleeper {
                    fire_at: None,
                    heard: false,
                },
            ]
        };
        let net = path_network(2);
        let (protos, stats) = Engine::new().run(&net, make());
        assert!(stats.completed);
        assert!(protos[1].heard, "token must arrive after the idle gap");
        assert_eq!(stats.rounds, 6, "5 idle rounds + 1 delivery round");
        // Identical at higher thread counts.
        let (protos_p, stats_p) = Engine::with_threads(2).run(&net, make());
        assert!(stats_p.same_simulation(&stats));
        assert!(protos_p[1].heard);
    }

    #[test]
    fn congestion_violations_recorded() {
        /// Sends a fat message to its single neighbor once.
        struct Fat {
            sent: bool,
        }
        impl VertexProtocol for Fat {
            type Msg = Vec<u64>;
            fn init(&mut self, ctx: &mut Ctx<'_, Vec<u64>>) {
                if !self.sent && ctx.me() == VertexId(0) {
                    ctx.send(VertexId(1), vec![0; 100]);
                }
                self.sent = true;
            }
            fn round(&mut self, _: &mut Ctx<'_, Vec<u64>>, _: &mut Inbox<'_, Vec<u64>>) {}
            fn is_done(&self) -> bool {
                self.sent
            }
            fn memory_words(&self) -> usize {
                1
            }
        }
        let net = path_network(2);
        let (_, stats) = Engine::new().run(&net, vec![Fat { sent: false }, Fat { sent: false }]);
        assert_eq!(stats.congestion_violations, 1);
        assert_eq!(stats.max_edge_words, 100);
    }

    #[test]
    #[should_panic(expected = "congestion violation")]
    fn strict_congestion_panics() {
        struct Fat;
        impl VertexProtocol for Fat {
            type Msg = Vec<u64>;
            fn init(&mut self, ctx: &mut Ctx<'_, Vec<u64>>) {
                if ctx.me() == VertexId(0) {
                    ctx.send(VertexId(1), vec![0; 100]);
                }
            }
            fn round(&mut self, _: &mut Ctx<'_, Vec<u64>>, _: &mut Inbox<'_, Vec<u64>>) {}
            fn is_done(&self) -> bool {
                true
            }
            fn memory_words(&self) -> usize {
                0
            }
        }
        let net = path_network(2);
        let engine = Engine::with_config(EngineConfig {
            strict_congestion: true,
            ..EngineConfig::default()
        });
        engine.run(&net, vec![Fat, Fat]);
    }

    #[test]
    #[should_panic(expected = "congestion violation")]
    fn strict_congestion_panics_in_parallel_too() {
        struct Fat;
        impl VertexProtocol for Fat {
            type Msg = Vec<u64>;
            fn init(&mut self, ctx: &mut Ctx<'_, Vec<u64>>) {
                if ctx.me() == VertexId(3) {
                    ctx.send(VertexId(2), vec![0; 100]);
                }
            }
            fn round(&mut self, _: &mut Ctx<'_, Vec<u64>>, _: &mut Inbox<'_, Vec<u64>>) {}
            fn is_done(&self) -> bool {
                true
            }
            fn memory_words(&self) -> usize {
                0
            }
        }
        let net = path_network(4);
        let engine = Engine::with_config(EngineConfig {
            strict_congestion: true,
            threads: 4,
            ..EngineConfig::default()
        });
        engine.run(&net, vec![Fat, Fat, Fat, Fat]);
    }

    #[test]
    #[should_panic(expected = "one protocol instance per vertex")]
    fn protocol_count_must_match() {
        let net = path_network(3);
        Engine::new().run(&net, flood(2));
    }

    #[test]
    fn traced_run_samples_every_round() {
        let net = path_network(4);
        let mut rec = obs::Recorder::new();
        let (_, stats) = Engine::new().run_traced(&net, flood(4), &mut rec);
        assert!(stats.completed);
        // One sample for the init sends plus one per executed round.
        let series = rec.series();
        assert_eq!(series.len() as u64, stats.rounds + 1);
        assert_eq!(series[0].round, 0);
        assert_eq!(series.last().unwrap().round, stats.rounds);
        let messages: u64 = series.iter().map(|s| s.messages).sum();
        let words: u64 = series.iter().map(|s| s.words).sum();
        assert_eq!(messages, stats.messages);
        assert_eq!(words, stats.words);
        // The hook records the series without touching recorder totals.
        assert_eq!(rec.totals(), obs::Counters::ZERO);
        // Wall sampling: real elapsed time, present even at this tiny size.
        assert!(stats.wall_ns > 0);
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let net = path_network(4);
        let mut rec = obs::Recorder::disabled();
        let (_, stats) = Engine::new().run_traced(&net, flood(4), &mut rec);
        assert!(stats.completed);
        assert!(rec.series().is_empty());
    }

    #[test]
    fn thread_count_does_not_change_the_simulation() {
        let net = path_network(13);
        let (serial_protos, serial) = Engine::new().run(&net, flood(13));
        for threads in [2usize, 3, 8, 64] {
            let (protos, stats) = Engine::with_threads(threads).run(&net, flood(13));
            assert!(
                stats.same_simulation(&serial),
                "threads={threads}: {stats:?} vs {serial:?}"
            );
            for (a, b) in protos.iter().zip(serial_protos.iter()) {
                assert_eq!(a.heard_at, b.heard_at, "threads={threads}");
            }
        }
    }

    #[test]
    fn parallel_traced_series_matches_serial() {
        let net = path_network(9);
        let mut serial_rec = obs::Recorder::new();
        let (_, serial) = Engine::new().run_traced(&net, flood(9), &mut serial_rec);
        let mut par_rec = obs::Recorder::new();
        let (_, par) = Engine::with_threads(4).run_traced(&net, flood(9), &mut par_rec);
        assert!(par.same_simulation(&serial));
        assert_eq!(par_rec.series().len(), serial_rec.series().len());
        for (a, b) in par_rec.series().iter().zip(serial_rec.series()) {
            assert_eq!(a.round, b.round);
            assert_eq!(a.messages, b.messages);
            assert_eq!(a.words, b.words);
            assert_eq!(a.max_edge_words, b.max_edge_words);
            assert_eq!(a.congestion_violations, b.congestion_violations);
            assert_eq!(a.queued_words, b.queued_words);
        }
    }

    #[test]
    fn profiled_serial_run_tiles_the_wall() {
        let net = path_network(8);
        let engine = Engine::with_config(EngineConfig {
            profile: true,
            ..EngineConfig::default()
        });
        let (_, stats) = engine.run(&net, flood(8));
        let (_, plain) = Engine::new().run(&net, flood(8));
        assert!(
            stats.same_simulation(&plain),
            "profiling must not change the simulation"
        );
        let p = stats.profile.as_deref().expect("profile requested");
        assert_eq!(p.runs, 1);
        assert_eq!(p.workers, 1);
        assert_eq!(p.rounds, stats.rounds);
        let coord: u64 = p.coord_ns.iter().sum();
        assert!(coord > 0);
        // The coordinator's phases tile the run: their sum cannot exceed
        // the measured wall and must cover the bulk of it.
        assert!(
            coord <= p.engine_wall_ns,
            "coord {coord} > wall {}",
            p.engine_wall_ns
        );
        let s = p.summary();
        assert!(s.coverage > 0.5, "coverage {}", s.coverage);
        assert!(plain.profile.is_none(), "no profile unless requested");
    }

    #[test]
    fn profiled_parallel_run_tracks_every_worker() {
        let net = path_network(12);
        let engine = Engine::with_config(EngineConfig {
            profile: true,
            threads: 3,
            ..EngineConfig::default()
        });
        let (_, stats) = engine.run(&net, flood(12));
        let (_, serial) = Engine::new().run(&net, flood(12));
        assert!(stats.same_simulation(&serial));
        let p = stats.profile.as_deref().expect("profile requested");
        assert_eq!(p.workers, 3, "coordinator + 2 pool workers");
        // Every worker track saw compute and idle; the coordinator also
        // dispatched, scattered, and merged.
        for phase in [
            Phase::Setup,
            Phase::Dispatch,
            Phase::Compute,
            Phase::Scatter,
            Phase::Merge,
            Phase::Idle,
        ] {
            assert!(p.counts[phase.index()] > 0, "no {} samples", phase.name());
        }
        let busy_workers = p.busy_ns.len();
        assert_eq!(busy_workers, 3);
        let s = p.summary();
        assert!(s.imbalance >= 1.0);
    }

    #[test]
    fn recorder_driven_profiling_accumulates_on_the_recorder() {
        let net = path_network(6);
        let mut rec = obs::Recorder::new();
        rec.enable_profiling();
        let (_, stats) = Engine::new().run_traced(&net, flood(6), &mut rec);
        // Config didn't ask for the profile, so the stats don't carry it...
        assert!(stats.profile.is_none());
        // ...but the recorder accumulated it.
        let p = rec.profile().expect("recorder accumulates the profile");
        assert_eq!(p.runs, 1);
        assert!(p.engine_wall_ns > 0);
        // A second run folds in.
        let (_, _) = Engine::new().run_traced(&net, flood(6), &mut rec);
        assert_eq!(rec.profile().unwrap().runs, 2);
    }

    #[test]
    fn more_threads_than_vertices_is_fine() {
        let net = path_network(2);
        let (_, stats) = Engine::with_threads(16).run(&net, flood(2));
        let (_, serial) = Engine::new().run(&net, flood(2));
        assert!(stats.same_simulation(&serial));
    }

    #[test]
    fn zero_threads_resolves_to_available_parallelism() {
        assert!(Engine::with_threads(0).config().resolved_threads() >= 1);
        let net = path_network(5);
        let (_, stats) = Engine::with_threads(0).run(&net, flood(5));
        let (_, serial) = Engine::new().run(&net, flood(5));
        assert!(stats.same_simulation(&serial));
    }
}
