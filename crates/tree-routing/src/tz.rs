//! The centralized Thorup–Zwick exact tree-routing construction.
//!
//! This is the "NA rounds" reference row of the paper's Table 2: tables of
//! `O(1)` words and labels of `O(log n)` words. The distributed construction
//! in [`crate::distributed`] reproduces *exactly these* tables and labels
//! (with identical tie-breaking), which is what its tests assert.

use graphs::{RootedTree, VertexId};

use crate::types::{TreeLabel, TreeScheme, TreeTable};

/// Pick the heavy child of `v`: the child with the largest subtree, ties
/// broken toward the smaller vertex id. Deterministic so the distributed
/// construction can match it exactly.
pub(crate) fn heavy_child(tree: &RootedTree, sizes: &[usize], v: VertexId) -> Option<VertexId> {
    tree.children(v).iter().copied().max_by(|a, b| {
        sizes[a.index()].cmp(&sizes[b.index()]).then(b.cmp(a)) // ties: prefer the smaller id
    })
}

/// Build the Thorup–Zwick scheme for `tree` centrally.
///
/// DFS entry times are assigned in child order (ascending vertex id, the
/// order [`RootedTree::children`] stores), each child receiving a contiguous
/// block sized by its subtree.
///
/// # Examples
///
/// ```
/// use graphs::{tree, VertexId};
/// use tree_routing::tz;
///
/// let t = tree::path_tree(3, &[VertexId(0), VertexId(1), VertexId(2)], 1);
/// let scheme = tz::build(&t);
/// assert_eq!(scheme.max_table_words(), 4);
/// ```
pub fn build(tree: &RootedTree) -> TreeScheme {
    let n = tree.host_len();
    let sizes = tree.subtree_sizes();
    let mut scheme = TreeScheme::new(n);

    // DFS ranges: the root owns [1, size]; children take consecutive
    // sub-blocks after their parent's entry.
    let mut enter = vec![0u64; n];
    let mut exit = vec![0u64; n];
    let root = tree.root();
    enter[root.index()] = 1;
    exit[root.index()] = sizes[root.index()] as u64;
    for v in tree.preorder() {
        let mut next = enter[v.index()] + 1;
        for &c in tree.children(v) {
            enter[c.index()] = next;
            exit[c.index()] = next + sizes[c.index()] as u64 - 1;
            next += sizes[c.index()] as u64;
        }
    }

    // Tables and labels, top-down: a child's light list extends its parent's.
    for v in tree.preorder() {
        let hv = heavy_child(tree, &sizes, v);
        scheme.tables[v.index()] = Some(TreeTable {
            enter: enter[v.index()],
            exit: exit[v.index()],
            parent: tree.parent(v),
            heavy: hv,
        });
        let mut light = match tree.parent(v) {
            Some(p) => {
                let parent_label = scheme.labels[p.index()]
                    .as_ref()
                    .expect("preorder guarantees parent labeled first");
                let mut l = parent_label.light.clone();
                let parent_heavy = heavy_child(tree, &sizes, p).expect("parent of v has children");
                if parent_heavy != v {
                    l.push((p, v));
                }
                l
            }
            None => Vec::new(),
        };
        light.shrink_to_fit();
        scheme.labels[v.index()] = Some(TreeLabel {
            enter: enter[v.index()],
            light,
        });
    }
    scheme
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest::WordSized;
    use graphs::tree::{path_tree, random_recursive_tree, star_tree};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn ids(n: u32) -> Vec<VertexId> {
        (0..n).map(VertexId).collect()
    }

    #[test]
    fn path_tree_has_no_light_edges() {
        let t = path_tree(5, &ids(5), 1);
        let s = build(&t);
        for v in t.vertices() {
            assert!(s.label(v).unwrap().light.is_empty());
        }
        assert_eq!(s.table(VertexId(0)).unwrap().enter, 1);
        assert_eq!(s.table(VertexId(0)).unwrap().exit, 5);
        assert_eq!(s.table(VertexId(4)).unwrap().heavy, None);
    }

    #[test]
    fn star_leaves_all_light_but_heavy() {
        let t = star_tree(6, &ids(6), 1);
        let s = build(&t);
        let heavy = s.table(VertexId(0)).unwrap().heavy.unwrap();
        // All leaves have equal size 1; tie-break picks the smallest id.
        assert_eq!(heavy, VertexId(1));
        for v in 1..6u32 {
            let label = s.label(VertexId(v)).unwrap();
            if VertexId(v) == heavy {
                assert!(label.light.is_empty());
            } else {
                assert_eq!(label.light.len(), 1);
                assert_eq!(label.light[0], (VertexId(0), VertexId(v)));
            }
        }
    }

    #[test]
    fn dfs_intervals_nest_properly() {
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let t = random_recursive_tree(60, &ids(60), 5, &mut rng);
        let s = build(&t);
        for v in t.vertices() {
            let tv = s.table(v).unwrap();
            // Interval length equals subtree size.
            assert_eq!(
                (tv.exit - tv.enter + 1) as usize,
                t.subtree_sizes()[v.index()]
            );
            if let Some(p) = t.parent(v) {
                let tp = s.table(p).unwrap();
                assert!(tp.enter < tv.enter && tv.exit <= tp.exit);
            }
            for &c in t.children(v) {
                let tc = s.table(c).unwrap();
                assert!(tv.enter < tc.enter && tc.exit <= tv.exit);
            }
        }
    }

    #[test]
    fn sibling_intervals_are_disjoint() {
        let mut rng = ChaCha8Rng::seed_from_u64(32);
        let t = random_recursive_tree(40, &ids(40), 5, &mut rng);
        let s = build(&t);
        for v in t.vertices() {
            let kids = t.children(v);
            for i in 0..kids.len() {
                for j in (i + 1)..kids.len() {
                    let a = s.table(kids[i]).unwrap();
                    let b = s.table(kids[j]).unwrap();
                    assert!(a.exit < b.enter || b.exit < a.enter);
                }
            }
        }
    }

    #[test]
    fn entry_times_are_unique_and_dense() {
        let mut rng = ChaCha8Rng::seed_from_u64(33);
        let t = random_recursive_tree(50, &ids(50), 5, &mut rng);
        let s = build(&t);
        let mut enters: Vec<u64> = t.vertices().map(|v| s.table(v).unwrap().enter).collect();
        enters.sort_unstable();
        assert_eq!(enters, (1..=50).collect::<Vec<u64>>());
    }

    #[test]
    fn light_edge_count_is_logarithmic() {
        let mut rng = ChaCha8Rng::seed_from_u64(34);
        for n in [10usize, 100, 500] {
            let t = random_recursive_tree(n, &ids(n as u32), 5, &mut rng);
            let s = build(&t);
            let log2n = (n as f64).log2().ceil() as usize;
            for v in t.vertices() {
                assert!(
                    s.label(v).unwrap().light.len() <= log2n,
                    "label light edges exceed log2(n)"
                );
            }
        }
    }

    #[test]
    fn label_words_bounded_by_log() {
        let mut rng = ChaCha8Rng::seed_from_u64(35);
        let t = random_recursive_tree(256, &ids(256), 5, &mut rng);
        let s = build(&t);
        assert!(s.max_label_words() <= 1 + 2 * 8);
        assert_eq!(s.max_table_words(), 4);
    }

    #[test]
    fn heavy_chain_covers_majority() {
        // On a path, the single child is always heavy.
        let t = path_tree(8, &ids(8), 1);
        let sizes = t.subtree_sizes();
        for v in 0..7u32 {
            assert_eq!(heavy_child(&t, &sizes, VertexId(v)), Some(VertexId(v + 1)));
        }
    }

    #[test]
    fn singleton_tree() {
        let t = star_tree(1, &ids(1), 1);
        let s = build(&t);
        let table = s.table(VertexId(0)).unwrap();
        assert_eq!((table.enter, table.exit), (1, 1));
        assert_eq!(table.heavy, None);
        assert_eq!(s.label(VertexId(0)).unwrap().words(), 1);
    }

    #[test]
    fn non_tree_vertices_have_no_entries() {
        // Tree on vertices {0, 2} of a 4-vertex host.
        let t = RootedTree::from_parents(
            VertexId(0),
            vec![None, None, Some(VertexId(0)), None],
            vec![0, 0, 1, 0],
        );
        let s = build(&t);
        assert!(s.table(VertexId(1)).is_none());
        assert!(s.label(VertexId(3)).is_none());
        assert!(s.table(VertexId(2)).is_some());
    }
}
