//! The paper's distributed tree-routing construction (§3 + Appendix A).
//!
//! Given a tree `T` inside a network of hop-diameter `D`, the construction
//! samples `U(T)` (probability `q ≈ 1/√n` plus the root), which cuts `T`
//! into shallow *local trees* `T_w`, and runs three stages:
//!
//! 1. **Subtree sizes** — local convergecasts up each `T_w`, then Algorithm 1
//!    (pointer jumping over the *virtual tree* `T'` via network-wide
//!    broadcasts), then local redistribution; heavy children follow.
//! 2. **Light edges** — Algorithm 2 (local lists), Algorithm 3 (pointer
//!    jumping concatenation), local redistribution.
//! 3. **DFS ranges** — Algorithm 5 (logarithmic-round range partition among
//!    siblings), Algorithm 4 (local DFS waves), Algorithm 6 (pointer-jumped
//!    range shifts), local redistribution.
//!
//! The punchline (Theorem 2): `Õ(√n + D)` rounds, tables of `O(1)` words,
//! labels of `O(log n)` words, and — crucially — **`O(log n)` words of
//! memory per vertex**, because the virtual tree `T'` is never materialized
//! anywhere: each virtual vertex keeps only its `log n` pointer-jumping
//! ancestors and digests broadcast streams one message at a time.
//!
//! Every per-vertex quantity below lives in a struct-of-arrays `VertexState`
//! holding *only* what the model lets that vertex hold; rounds are charged to
//! a [`CostLedger`] per the schedule above, and memory is metered after every
//! stage (plus transient touches) by a [`MemoryMeter`].

use congest::{bfs, CostLedger, MemoryMeter, Network};
use graphs::{RootedTree, VertexId};
use rand::Rng;

use crate::types::{TreeLabel, TreeScheme, TreeTable};
use crate::tz;

/// Ceiling of log₂, with `log2_ceil(0) = log2_ceil(1) = 0`.
pub fn log2_ceil(n: usize) -> usize {
    if n <= 1 {
        0
    } else {
        (usize::BITS - (n - 1).leading_zeros()) as usize
    }
}

/// Tuning knobs for the construction.
#[derive(Clone, Debug)]
pub struct Config {
    /// Sampling probability for `U`; `None` selects the paper's `1/√n`.
    pub q: Option<f64>,
    /// Depth of an already-built BFS broadcast backbone. When set, the
    /// construction neither re-runs the BFS protocol nor re-meters its 3
    /// words per vertex — callers constructing many trees (the general-graph
    /// scheme, [`crate::multi`]) build the backbone once and share it.
    pub backbone_depth: Option<usize>,
    /// Worker threads for the engine-backed backbone BFS (`0` = all
    /// available cores). Thread count never changes the construction — the
    /// engine is deterministic — only wall-clock time.
    pub threads: usize,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            q: None,
            backbone_depth: None,
            threads: 1,
        }
    }
}

/// Per-vertex protocol state. One instance per host vertex; algorithms only
/// ever read/write a vertex's own entry plus messages charged to the ledger.
#[derive(Clone, Debug, Default)]
struct VertexState {
    in_tree: bool,
    sampled: bool,
    /// Root of the local tree containing this vertex.
    local_root: Option<VertexId>,
    /// For sampled vertices: the parent in the virtual tree `T'`.
    virt_parent: Option<VertexId>,
    /// Depth within the local tree.
    local_depth: usize,
    /// Subtree size within the local tree (Stage 1a).
    s_local: u64,
    /// Subtree size within the global tree (Stage 1b/1c).
    s_global: u64,
    /// Heavy child in `T` (Stage 1d).
    heavy: Option<VertexId>,
    /// Pointer-jumping ancestors `a_i` (sampled vertices only) — `O(log n)`.
    ancestors: Vec<Option<VertexId>>,
    /// Accumulated subtree size `s_i` during Algorithm 1.
    s_jump: u64,
    /// Light edges from the local root (non-sampled) or from the virtual
    /// parent (sampled) to this vertex — Algorithm 2's `L(u)`.
    light_local: Vec<(VertexId, VertexId)>,
    /// Global light list (from the root of `T`) after Stages 2b/2c.
    light_global: Vec<(VertexId, VertexId)>,
    /// Local DFS range (Stage 3a), 1-based within the local frame.
    range: (u64, u64),
    /// Range offset `q_x` this vertex's range had inside its parent's frame.
    q_shift: u64,
    /// Total shift after Algorithm 6.
    shift: u64,
}

impl VertexState {
    /// Words of persistent state currently held — the quantity Theorem 2
    /// bounds by `O(log n)`.
    fn words(&self) -> usize {
        // Scalar fields: membership, roots, sizes, heavy child, range, shifts.
        let scalars = 12;
        scalars + self.ancestors.len() + 2 * self.light_local.len() + 2 * self.light_global.len()
    }
}

/// Output of the distributed construction.
#[derive(Clone, Debug)]
pub struct DistributedOutput {
    /// The routing scheme — identical to [`crate::tz::build`] on the same
    /// tree (same tie-breaking), as the tests assert.
    pub scheme: TreeScheme,
    /// Round/message accounting for the whole construction.
    pub ledger: CostLedger,
    /// Per-vertex memory high-water marks.
    pub memory: MemoryMeter,
    /// `|U(T)|` — number of sampled roots (including the tree root).
    pub virtual_count: usize,
    /// Depth of the (never materialized) virtual tree `T'` — the number of
    /// hops a naive per-virtual-edge convergecast would traverse.
    pub virtual_depth: usize,
    /// Largest local-tree depth `b` (the `Õ(1/q)` quantity).
    pub max_local_depth: usize,
    /// Hop depth of the BFS broadcast tree used (≤ D).
    pub bfs_depth: usize,
}

/// Run the paper's construction for `tree` inside `network`.
///
/// # Panics
///
/// Panics if the tree is empty or its root is outside the host universe.
pub fn build<R: Rng>(
    network: &Network,
    tree: &RootedTree,
    config: &Config,
    rng: &mut R,
) -> DistributedOutput {
    build_observed(network, tree, config, rng, &mut obs::Recorder::disabled())
}

/// [`build`], with per-stage span attribution on `rec`: `tree/partition`,
/// `tree/subtree-sizes` (§3 Stage 1), `tree/light-edges` (Stage 2),
/// `tree/dfs-ranges` (Stage 3), and `tree/finalize` (plus `tree/backbone`
/// when no shared BFS backbone is configured). Every ledger charge is
/// mirrored into the recorder, so span deltas partition the ledger totals.
///
/// # Panics
///
/// Panics if the tree is empty or its root is outside the host universe.
pub fn build_observed<R: Rng>(
    network: &Network,
    tree: &RootedTree,
    config: &Config,
    rng: &mut R,
    rec: &mut obs::Recorder,
) -> DistributedOutput {
    let host_n = tree.host_len();
    assert_eq!(host_n, network.len(), "tree host must match network");
    let n = tree.num_vertices();
    assert!(n > 0, "tree must be non-empty");
    let root = tree.root();

    let mut ledger = CostLedger::new();
    let mut memory = MemoryMeter::new(host_n);

    // The BFS broadcast backbone: built once by the real protocol (O(D)
    // rounds); its depth prices every Lemma-1 broadcast below. Callers that
    // already hold a backbone share it via the config.
    let d = match config.backbone_depth {
        Some(depth) => depth as u64,
        None => {
            let span = rec.begin("tree/backbone");
            let bfs_out = bfs::build_bfs_tree_with(network, root, config.threads);
            ledger.charge_rounds_span(bfs_out.stats.rounds, rec);
            ledger.charge_messages_span(bfs_out.stats.messages, rec);
            for v in network.graph().vertices() {
                memory.add(v, 3); // BFS parent/depth/flag, kept for broadcasts
            }
            rec.end_with_memory(span, memory.peaks());
            bfs_out.depth as u64
        }
    };

    // Sample U. Every vertex flips its own coin — zero rounds.
    let q = config.q.unwrap_or(1.0 / (n as f64).sqrt());
    let mut st: Vec<VertexState> = vec![VertexState::default(); host_n];
    for v in tree.vertices() {
        st[v.index()].in_tree = true;
        st[v.index()].sampled = v == root || rng.gen_bool(q.clamp(0.0, 1.0));
    }

    // Deterministic wave order: tree vertices by increasing depth in T.
    // (Scaffolding for the simulation loop only — no vertex stores this.)
    let by_depth: Vec<VertexId> = {
        let mut depth = vec![0usize; host_n];
        let preorder = tree.preorder();
        for &v in &preorder {
            if let Some(p) = tree.parent(v) {
                depth[v.index()] = depth[p.index()] + 1;
            }
        }
        let mut order = preorder;
        order.sort_by_key(|&v| (depth[v.index()], v));
        order
    };

    // ---- Phase 0: partition into local trees -------------------------------
    // Each w ∈ U(T) floods "I am your local root" down, stopping at sampled
    // vertices; runs in max-local-depth rounds, all trees in parallel.
    let partition_span = rec.begin("tree/partition");
    for &v in &by_depth {
        let i = v.index();
        if st[i].sampled {
            st[i].local_root = Some(v);
            st[i].local_depth = 0;
            if v != root {
                let p = tree.parent(v).expect("non-root");
                st[i].virt_parent = st[p.index()].local_root;
            }
        } else {
            let p = tree.parent(v).expect("non-root member");
            st[i].local_root = st[p.index()].local_root;
            st[i].local_depth = st[p.index()].local_depth + 1;
        }
    }
    let b = st.iter().map(|s| s.local_depth).max().unwrap_or(0) as u64;
    ledger.charge_rounds_span(b + 1, rec);
    let virtual_count = st.iter().filter(|s| s.sampled).count();
    // Virtual-tree depth (simulation statistic only — no vertex stores it).
    let virtual_depth = {
        let mut vd = vec![0usize; host_n];
        let mut deepest = 0;
        for &v in &by_depth {
            let i = v.index();
            if st[i].sampled && v != root {
                let vp = st[i].virt_parent.expect("sampled non-root has p'");
                vd[i] = vd[vp.index()] + 1;
                deepest = deepest.max(vd[i]);
            }
        }
        deepest
    };
    let iters = log2_ceil(n.max(2));
    rec.end_with_memory(partition_span, memory.peaks());

    // ---- Stage 1a: local subtree sizes (convergecast, b rounds) ------------
    let sizes_span = rec.begin("tree/subtree-sizes");
    for &v in by_depth.iter().rev() {
        let i = v.index();
        let mut s = 1u64;
        for &c in tree.children(v) {
            if !st[c.index()].sampled {
                s += st[c.index()].s_local;
            }
        }
        st[i].s_local = s;
    }
    ledger.charge_rounds_span(b + 1, rec);

    // ---- Stage 1b: Algorithm 1 (global subtree sizes by pointer jumping) ---
    let sampled: Vec<VertexId> = tree.vertices().filter(|&v| st[v.index()].sampled).collect();
    for &x in &sampled {
        let i = x.index();
        st[i].ancestors = vec![st[i].virt_parent];
        st[i].s_jump = st[i].s_local;
    }
    for it in 0..iters {
        // Broadcast (x, s_i(x), a_i(x)) for every sampled x: Lemma 1.
        ledger.charge_broadcast_span(sampled.len() as u64, d, rec);
        // Each x digests the stream message-by-message: O(1) transient words.
        let snapshot_a: Vec<Option<VertexId>> = sampled
            .iter()
            .map(|&x| st[x.index()].ancestors[it])
            .collect();
        let snapshot_s: Vec<u64> = sampled.iter().map(|&x| st[x.index()].s_jump).collect();
        for (k, &x) in sampled.iter().enumerate() {
            memory.touch(x, 3);
            // a_{i+1}(x) = a_i(a_i(x)).
            let next = match snapshot_a[k] {
                Some(a) => {
                    let pos = sampled.iter().position(|&y| y == a).expect("sampled");
                    snapshot_a[pos]
                }
                None => None,
            };
            st[x.index()].ancestors.push(next);
        }
        for (k, _) in sampled.iter().enumerate() {
            if let Some(a) = snapshot_a[k] {
                st[a.index()].s_jump += snapshot_s[k];
            }
        }
        for &x in &sampled {
            memory.set(x, st[x.index()].words());
        }
    }
    for &x in &sampled {
        st[x.index()].s_global = st[x.index()].s_jump;
    }

    // ---- Stage 1c: redistribute global sizes into local trees --------------
    // Leaves of each T_w re-converge sizes, with sampled children now
    // contributing their exact global size.
    for &v in by_depth.iter().rev() {
        let i = v.index();
        if st[i].sampled {
            continue;
        }
        let mut s = 1u64;
        for &c in tree.children(v) {
            s += st[c.index()].s_global;
        }
        st[i].s_global = s;
    }
    // Sampled vertices already hold their global size; fix their value having
    // been computed bottom-up *after* children (the loop above reads children
    // first, so recompute sampled-rooted sums are already correct).
    ledger.charge_rounds_span(b + 1, rec);

    // ---- Stage 1d: heavy children (children report sizes; streaming max) ---
    for &v in &by_depth {
        let i = v.index();
        let mut best: Option<(u64, VertexId)> = None;
        for &c in tree.children(v) {
            memory.touch(v, 2);
            let s = st[c.index()].s_global;
            best = match best {
                None => Some((s, c)),
                Some((bs, bc)) => {
                    if s > bs || (s == bs && c < bc) {
                        Some((s, c))
                    } else {
                        Some((bs, bc))
                    }
                }
            };
        }
        st[i].heavy = best.map(|(_, c)| c);
    }
    ledger.charge_rounds_span(1, rec);
    for v in tree.vertices() {
        memory.set(v, st[v.index()].words());
    }
    rec.end_with_memory(sizes_span, memory.peaks());

    // ---- Stage 2a: Algorithm 2 (local light edges) --------------------------
    let light_span = rec.begin("tree/light-edges");
    // Top-down within each local tree; every vertex receives its parent's
    // list and appends its own edge if it is not the heavy child. The lists
    // are O(log n) words, so the pipelined wave costs b + O(log n) rounds.
    for &v in &by_depth {
        let i = v.index();
        if st[i].sampled && v == root {
            continue;
        }
        let p = match tree.parent(v) {
            Some(p) => p,
            None => continue,
        };
        let mut list = if st[p.index()].sampled {
            Vec::new()
        } else {
            st[p.index()].light_local.clone()
        };
        if st[p.index()].heavy != Some(v) {
            list.push((p, v));
        }
        st[i].light_local = list;
        memory.set(v, st[i].words());
    }
    ledger.charge_rounds_span(b + iters as u64 + 1, rec);

    // ---- Stage 2b: Algorithm 3 (global light edges by pointer jumping) -----
    // L_0(x) is the just-computed local list (path from p'(x) to x); the root
    // has the empty list. L_{i+1}(x) = L_i(a_i(x)) ++ L_i(x).
    for &x in &sampled {
        st[x.index()].light_global = st[x.index()].light_local.clone();
        memory.set(x, st[x.index()].words());
    }
    for it in 0..iters {
        let words: u64 = sampled
            .iter()
            .map(|&x| 1 + 2 * st[x.index()].light_global.len() as u64)
            .sum();
        ledger.charge_broadcast_span(words, d, rec);
        let snapshot: Vec<Vec<(VertexId, VertexId)>> = sampled
            .iter()
            .map(|&x| st[x.index()].light_global.clone())
            .collect();
        for (k, &x) in sampled.iter().enumerate() {
            if let Some(a) = st[x.index()].ancestors[it] {
                let pos = sampled.iter().position(|&y| y == a).expect("sampled");
                let mut merged = snapshot[pos].clone();
                merged.extend_from_slice(&snapshot[k]);
                memory.touch(x, 2 * merged.len());
                st[x.index()].light_global = merged;
            }
            memory.set(x, st[x.index()].words());
        }
    }

    // ---- Stage 2c: distribute full lists into local trees ------------------
    // y's global list = (local root's global list) ++ (y's local list).
    for &v in &by_depth {
        let i = v.index();
        if st[i].sampled {
            continue;
        }
        let w = st[i].local_root.expect("partitioned");
        let mut list = st[w.index()].light_global.clone();
        list.extend_from_slice(&st[i].light_local);
        st[i].light_global = list;
        memory.set(v, st[i].words());
    }
    ledger.charge_rounds_span(b + iters as u64 + 1, rec);
    rec.end_with_memory(light_span, memory.peaks());

    // ---- Stage 3a: Algorithms 4 + 5 (local DFS with range partition) -------
    // Algorithm 5 runs once, in parallel for every internal vertex: each
    // child y_j learns the prefix sum S(y_j) of its elder siblings' global
    // sizes in 2·log n rounds with O(1) memory per vertex. The DFS wave then
    // needs only the parent's range start (1 word to all children).
    let ranges_span = rec.begin("tree/dfs-ranges");
    ledger.charge_rounds_span(2 * iters as u64, rec);
    // prefix[c] = sum of s_global over elder siblings of c (exclusive).
    let mut prefix = vec![0u64; host_n];
    for &v in &by_depth {
        let mut acc = 0u64;
        for &c in tree.children(v) {
            memory.touch(c, 2);
            prefix[c.index()] = acc;
            acc += st[c.index()].s_global;
        }
    }
    // The DFS wave: local roots own [1, s_global]; children compute their
    // range from the parent's start, their prefix sum, and their own size.
    for &v in &by_depth {
        let i = v.index();
        if st[i].sampled {
            st[i].range = (1, st[i].s_global);
            if v == root {
                st[i].q_shift = 0;
            }
        }
        let start = st[i].range.0;
        for &c in tree.children(v) {
            let ci = c.index();
            let c_start = start + 1 + prefix[ci];
            if st[ci].sampled {
                // Virtual child: records its offset, does not forward.
                st[ci].q_shift = c_start - 1;
            } else {
                st[ci].range = (c_start, c_start + st[ci].s_global - 1);
            }
        }
    }
    ledger.charge_rounds_span(b + 1, rec);

    // ---- Stage 3b: Algorithm 6 (global shifts by pointer jumping) ----------
    for &x in &sampled {
        st[x.index()].shift = st[x.index()].q_shift;
    }
    for it in 0..iters {
        ledger.charge_broadcast_span(sampled.len() as u64, d, rec);
        let snapshot: Vec<u64> = sampled.iter().map(|&x| st[x.index()].shift).collect();
        for (k, &x) in sampled.iter().enumerate() {
            if let Some(a) = st[x.index()].ancestors[it] {
                let pos = sampled.iter().position(|&y| y == a).expect("sampled");
                memory.touch(x, 1);
                st[x.index()].shift = snapshot[k] + snapshot[pos];
            }
        }
    }

    // ---- Stage 3c: distribute shifts; finalize tables and labels -----------
    for &v in &by_depth {
        let i = v.index();
        if !st[i].sampled {
            let w = st[i].local_root.expect("partitioned");
            st[i].shift = st[w.index()].shift;
        }
        memory.set(v, st[i].words());
    }
    ledger.charge_rounds_span(b + 1, rec);
    rec.end_with_memory(ranges_span, memory.peaks());

    let finalize_span = rec.begin("tree/finalize");
    let mut scheme = TreeScheme::new(host_n);
    for v in tree.vertices() {
        let i = v.index();
        let enter = st[i].range.0 + st[i].shift;
        let exit = st[i].range.1 + st[i].shift;
        scheme.tables[i] = Some(TreeTable {
            enter,
            exit,
            parent: tree.parent(v),
            heavy: st[i].heavy,
        });
        scheme.labels[i] = Some(TreeLabel {
            enter,
            light: st[i].light_global.clone(),
        });
    }
    rec.end_with_memory(finalize_span, memory.peaks());

    DistributedOutput {
        scheme,
        ledger,
        memory,
        virtual_count,
        virtual_depth,
        max_local_depth: b as usize,
        bfs_depth: d as usize,
    }
}

/// Convenience: build with the default `q = 1/√n` and compare-ready output.
pub fn build_default<R: Rng>(
    network: &Network,
    tree: &RootedTree,
    rng: &mut R,
) -> DistributedOutput {
    build(network, tree, &Config::default(), rng)
}

/// Sanity helper used by tests and benches: assert the distributed scheme is
/// *identical* to the centralized Thorup–Zwick scheme for the same tree.
///
/// # Panics
///
/// Panics with a description of the first mismatch.
pub fn assert_matches_centralized(tree: &RootedTree, out: &DistributedOutput) {
    let want = tz::build(tree);
    for v in tree.vertices() {
        assert_eq!(out.scheme.table(v), want.table(v), "table mismatch at {v}");
        assert_eq!(out.scheme.label(v), want.label(v), "label mismatch at {v}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router;
    use graphs::{generators, tree::shortest_path_tree};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup(n: usize, seed: u64) -> (Network, RootedTree, ChaCha8Rng) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = generators::erdos_renyi_connected(n, 2.5 / n as f64, 1..=20, &mut rng);
        let t = shortest_path_tree(&g, VertexId(0));
        (Network::new(g), t, rng)
    }

    #[test]
    fn log2_ceil_values() {
        assert_eq!(log2_ceil(0), 0);
        assert_eq!(log2_ceil(1), 0);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(3), 2);
        assert_eq!(log2_ceil(4), 2);
        assert_eq!(log2_ceil(5), 3);
        assert_eq!(log2_ceil(1024), 10);
        assert_eq!(log2_ceil(1025), 11);
    }

    #[test]
    fn matches_centralized_on_random_networks() {
        for seed in 0..5 {
            let (net, t, mut rng) = setup(120, seed);
            let out = build_default(&net, &t, &mut rng);
            assert_matches_centralized(&t, &out);
        }
    }

    #[test]
    fn matches_centralized_on_geometric_networks() {
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let g = generators::random_geometric_connected(150, 0.1, 1..=9, &mut rng);
        let t = shortest_path_tree(&g, VertexId(3));
        let net = Network::new(g);
        let out = build_default(&net, &t, &mut rng);
        assert_matches_centralized(&t, &out);
    }

    #[test]
    fn routes_exactly() {
        let (net, t, mut rng) = setup(60, 9);
        let out = build_default(&net, &t, &mut rng);
        router::verify_exactness(&t, &out.scheme);
    }

    #[test]
    fn q_extremes_still_correct() {
        let (net, t, mut rng) = setup(60, 10);
        // q = 0: only the root is virtual (single local tree).
        let out0 = build(
            &net,
            &t,
            &Config {
                q: Some(0.0),
                ..Config::default()
            },
            &mut rng,
        );
        assert_matches_centralized(&t, &out0);
        assert_eq!(out0.virtual_count, 1);
        // q = 1: every vertex is virtual (local trees are single vertices).
        let out1 = build(
            &net,
            &t,
            &Config {
                q: Some(1.0),
                ..Config::default()
            },
            &mut rng,
        );
        assert_matches_centralized(&t, &out1);
        assert_eq!(out1.virtual_count, t.num_vertices());
        assert_eq!(out1.max_local_depth, 0);
    }

    #[test]
    fn memory_is_logarithmic_not_sqrt() {
        let (net, t, mut rng) = setup(400, 11);
        let out = build_default(&net, &t, &mut rng);
        let n = t.num_vertices();
        let bound = 15 + 7 * log2_ceil(n);
        assert!(
            out.memory.max_peak() <= bound,
            "peak memory {} exceeds O(log n) bound {}",
            out.memory.max_peak(),
            bound
        );
    }

    #[test]
    fn singleton_tree_works() {
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let g = generators::star(1, 1..=1, &mut rng);
        let t = shortest_path_tree(&g, VertexId(0));
        let net = Network::new(g);
        let out = build_default(&net, &t, &mut rng);
        assert_matches_centralized(&t, &out);
        let table = out.scheme.table(VertexId(0)).unwrap();
        assert_eq!((table.enter, table.exit), (1, 1));
    }

    #[test]
    fn path_network_works() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let g = generators::path(80, 1..=7, &mut rng);
        let t = shortest_path_tree(&g, VertexId(0));
        let net = Network::new(g);
        let out = build_default(&net, &t, &mut rng);
        assert_matches_centralized(&t, &out);
    }

    #[test]
    fn star_network_works() {
        let mut rng = ChaCha8Rng::seed_from_u64(14);
        let g = generators::star(50, 1..=7, &mut rng);
        let t = shortest_path_tree(&g, VertexId(0));
        let net = Network::new(g);
        let out = build_default(&net, &t, &mut rng);
        assert_matches_centralized(&t, &out);
    }

    #[test]
    fn rounds_scale_like_sqrt_n_plus_d() {
        // Crude shape check: rounds on n=900 should be far below n, and
        // roughly c·(√n·log n + D).
        let (net, t, mut rng) = setup(900, 15);
        let out = build_default(&net, &t, &mut rng);
        let n = t.num_vertices() as f64;
        let d = out.bfs_depth as f64;
        let budget = 60.0 * (n.sqrt() * n.log2() + d);
        assert!(
            (out.ledger.rounds() as f64) < budget,
            "rounds {} exceed Õ(√n + D) budget {}",
            out.ledger.rounds(),
            budget
        );
    }

    #[test]
    fn virtual_count_tracks_q() {
        let (net, t, mut rng) = setup(500, 16);
        let out = build(
            &net,
            &t,
            &Config {
                q: Some(0.1),
                ..Config::default()
            },
            &mut rng,
        );
        let expected = 0.1 * 500.0;
        assert!(
            (out.virtual_count as f64) > expected / 3.0
                && (out.virtual_count as f64) < expected * 3.0,
            "virtual count {} far from {}",
            out.virtual_count,
            expected
        );
    }

    #[test]
    fn observed_build_spans_partition_ledger() {
        let (net, t, mut rng) = setup(150, 18);
        let mut rec = obs::Recorder::new();
        let out = build_observed(&net, &t, &Config::default(), &mut rng, &mut rec);
        assert_matches_centralized(&t, &out);
        // Every charge happened inside a top-level stage span.
        assert_eq!(rec.totals(), out.ledger.counters());
        let names: Vec<&str> = rec.spans().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "tree/backbone",
                "tree/partition",
                "tree/subtree-sizes",
                "tree/light-edges",
                "tree/dfs-ranges",
                "tree/finalize",
            ]
        );
        let sum: u64 = rec.spans().iter().map(|s| s.delta.rounds).sum();
        assert_eq!(sum, out.ledger.rounds());
        assert_eq!(
            rec.spans().last().unwrap().peak_memory_words,
            out.memory.max_peak()
        );
    }

    #[test]
    fn table_and_label_sizes_match_theorem() {
        let (net, t, mut rng) = setup(300, 17);
        let out = build_default(&net, &t, &mut rng);
        assert_eq!(out.scheme.max_table_words(), 4);
        assert!(out.scheme.max_label_words() <= 1 + 2 * log2_ceil(t.num_vertices()));
    }
}
