//! Engine validation of the construction's cost model.
//!
//! The orchestrated construction in [`crate::distributed`] charges rounds by
//! the model's price list (tree waves = depth rounds, Lemma-1 broadcasts =
//! `M + D` rounds). This module re-runs its first stage — partition into
//! local trees, local subtree sizes, and Algorithm 1's pointer jumping — as
//! *real protocols* on the synchronous engine: partition and convergecast as
//! per-vertex state machines over tree edges, and every pointer-jumping
//! broadcast as the actual gossip flood of [`congest::broadcast`]. The
//! engine-measured round count then validates the charged one, and the
//! computed subtree sizes must equal the centralized ground truth.

use congest::broadcast::broadcast_all;
use congest::engine::{Ctx, Engine, Inbox, VertexProtocol};
use congest::Network;
use graphs::{RootedTree, VertexId};
use rand::Rng;

use crate::distributed::log2_ceil;

/// Per-vertex state for partition + local subtree sizes, as one protocol.
#[derive(Clone, Debug)]
struct Stage1Vertex {
    in_tree: bool,
    sampled: bool,
    parent: Option<VertexId>,
    children: Vec<VertexId>,
    /// Local root learned in the partition wave.
    local_root: Option<VertexId>,
    /// Children that count toward the local subtree (non-sampled ones);
    /// learned from "I am sampled" notices in round 0.
    pending_children: usize,
    acc: u64,
    sent_up: bool,
}

/// Messages: partition notice carrying the local root id, a sampled-child
/// notice, or an upward partial size.
#[derive(Clone, Debug)]
enum Stage1Msg {
    /// "Your local root is …" (flows root-ward to leaf-ward).
    Root(VertexId),
    /// "I am sampled — do not wait for my size" (child to parent).
    Cut,
    /// Partial subtree size (child to parent).
    Size(u64),
}

impl congest::WordSized for Stage1Msg {
    fn words(&self) -> usize {
        1
    }
}

impl VertexProtocol for Stage1Vertex {
    type Msg = Stage1Msg;

    fn init(&mut self, ctx: &mut Ctx<'_, Stage1Msg>) {
        if !self.in_tree {
            return;
        }
        if self.sampled {
            self.local_root = Some(ctx.me());
            for i in 0..self.children.len() {
                let c = self.children[i];
                ctx.send(c, Stage1Msg::Root(ctx.me()));
            }
            if let Some(p) = self.parent {
                ctx.send(p, Stage1Msg::Cut);
            }
        }
        if self.pending_children == self.children.len() {
            // Leaves can't know yet how many children are sampled; they wait
            // for round messages. True leaves start the size wave at once.
            if self.children.is_empty() && !self.sampled {
                // Wait until we know our local root before sending the size.
            }
        }
    }

    fn round(&mut self, ctx: &mut Ctx<'_, Stage1Msg>, inbox: &mut Inbox<'_, Stage1Msg>) {
        if !self.in_tree {
            return;
        }
        let had_root = self.local_root.is_some();
        for (from, msg) in inbox.iter() {
            match msg {
                Stage1Msg::Root(w) => {
                    if !self.sampled && self.local_root.is_none() {
                        self.local_root = Some(*w);
                    }
                    // Sampled vertices hear it too (their virtual parent).
                }
                Stage1Msg::Cut => {
                    self.pending_children -= 1;
                }
                Stage1Msg::Size(s) => {
                    self.acc += s;
                    self.pending_children -= 1;
                }
            }
            let _ = from;
        }
        // Freshly partitioned non-sampled vertices forward the root notice.
        if !self.sampled && !had_root {
            if let Some(w) = self.local_root {
                for i in 0..self.children.len() {
                    let c = self.children[i];
                    ctx.send(c, Stage1Msg::Root(w));
                }
            }
        }
        // Send the size up once everything below has reported and we know
        // our local tree.
        if !self.sent_up && self.local_root.is_some() && self.pending_children == 0 && !self.sampled
        {
            if let Some(p) = self.parent {
                ctx.send(p, Stage1Msg::Size(self.acc));
                self.sent_up = true;
            }
        }
    }

    fn is_done(&self) -> bool {
        !self.in_tree || self.sampled || (self.sent_up || self.parent.is_none())
    }

    fn memory_words(&self) -> usize {
        if self.in_tree {
            6
        } else {
            0
        }
    }
}

/// The outcome of the engine-validated Stage 1.
#[derive(Clone, Debug)]
pub struct Stage1Validation {
    /// Global subtree size per sampled vertex (host-indexed, `None` off-`U`).
    pub s_global: Vec<Option<u64>>,
    /// Engine-measured rounds for the whole stage.
    pub engine_rounds: u64,
    /// What the orchestrated model would charge for the same schedule.
    pub charged_rounds: u64,
    /// Sampled-set size `|U(T)|`.
    pub sampled: usize,
}

/// Run partition + local sizes + Algorithm 1 as real protocols.
///
/// # Panics
///
/// Panics if the tree is empty or hosts disagree.
pub fn validate_stage1<R: Rng>(
    network: &Network,
    tree: &RootedTree,
    q: f64,
    rng: &mut R,
) -> Stage1Validation {
    let n = network.len();
    assert_eq!(tree.host_len(), n, "tree host must match network");
    assert!(tree.num_vertices() > 0, "empty tree");
    let root = tree.root();

    // Sample U(T).
    let mut sampled_flag = vec![false; n];
    for v in tree.vertices() {
        sampled_flag[v.index()] = v == root || rng.gen_bool(q.clamp(0.0, 1.0));
    }

    // --- Partition + local sizes: one engine run -----------------------------
    let protos: Vec<Stage1Vertex> = (0..n)
        .map(|i| {
            let v = VertexId(i as u32);
            Stage1Vertex {
                in_tree: tree.contains(v),
                sampled: sampled_flag[i],
                parent: tree.parent(v),
                children: tree.children(v).to_vec(),
                local_root: None,
                pending_children: tree.children(v).len(),
                acc: 1,
                sent_up: false,
            }
        })
        .collect();
    let (protos, stats_local) = Engine::new().run(network, protos);
    let mut engine_rounds = stats_local.rounds;

    // Local sizes at sampled vertices (their acc after the convergecast).
    let mut s: Vec<Option<u64>> = (0..n)
        .map(|i| sampled_flag[i].then(|| protos[i].acc))
        .collect();

    // --- Algorithm 1: pointer jumping with *real* gossip broadcasts ---------
    let sampled: Vec<VertexId> = tree
        .vertices()
        .filter(|v| sampled_flag[v.index()])
        .collect();
    // Virtual parents from the partition protocol: the Root notice a sampled
    // vertex heard names its virtual parent's tree... it heard its *tree
    // parent's* local root; reconstruct from protos.
    let mut a: Vec<Option<VertexId>> = vec![None; n];
    for &x in &sampled {
        if x != root {
            let p = tree.parent(x).expect("non-root");
            a[x.index()] = protos[p.index()].local_root;
        }
    }
    let iters = log2_ceil(tree.num_vertices().max(2));
    let bfs_depth = congest::bfs::build_bfs_tree(network, root).depth as u64;
    let mut charged = 0u64;
    for _ in 0..iters {
        // Real broadcast: every sampled x floods (a_i(x), s_i(x)), packed
        // into one word each plus the origin id the gossip item carries.
        let mut items: Vec<Vec<(u32, u64)>> = vec![Vec::new(); n];
        for &x in &sampled {
            let packed = (a[x.index()].map_or(u64::MAX >> 32, |p| u64::from(p.0)) << 32)
                | (s[x.index()].expect("sampled") & 0xffff_ffff);
            items[x.index()].push((0, packed));
        }
        let out = broadcast_all(network, items);
        engine_rounds += out.stats.rounds;
        charged += sampled.len() as u64 + bfs_depth;
        // Everyone heard everything; sampled vertices update locally.
        let decode = |v: VertexId| -> (Option<VertexId>, u64) {
            let packed = out.received[0]
                .iter()
                .find(|&&(o, _, _)| o == v)
                .map(|&(_, _, p)| p)
                .expect("gossip delivered everywhere");
            let a_raw = packed >> 32;
            let a = (a_raw != (u64::MAX >> 32)).then_some(VertexId(a_raw as u32));
            (a, packed & 0xffff_ffff)
        };
        let snapshot_a = a.clone();
        let snapshot_s = s.clone();
        for &x in &sampled {
            // a_{i+1}(x) = a_i(a_i(x)).
            a[x.index()] = snapshot_a[x.index()].and_then(|p| decode(p).0);
        }
        for &x in &sampled {
            if let Some(p) = snapshot_a[x.index()] {
                let add = snapshot_s[x.index()].expect("sampled");
                *s[p.index()].as_mut().expect("sampled target") += add;
            }
        }
    }
    // Local stage charges: two waves of (max local depth + 1) each; measure
    // the depth from the partition result.
    let mut b = 0u64;
    for v in tree.vertices() {
        let mut depth = 0;
        let mut cur = v;
        while !sampled_flag[cur.index()] {
            cur = tree.parent(cur).expect("member");
            depth += 1;
        }
        b = b.max(depth);
    }
    charged += 2 * (b + 1);

    Stage1Validation {
        s_global: s,
        engine_rounds,
        charged_rounds: charged,
        sampled: sampled.len(),
    }
}

/// Result of the engine-run Algorithm 3 (global light edges).
#[derive(Clone, Debug)]
pub struct Stage2Validation {
    /// Per sampled vertex: the light edges on its root path (host-indexed).
    pub light: Vec<Option<Vec<(VertexId, VertexId)>>>,
    /// Engine rounds for the gossip phases.
    pub engine_rounds: u64,
}

/// Run Algorithm 3 — the pointer-jumped concatenation of light-edge lists —
/// with *real* gossip broadcasts, starting from centrally-computed local
/// lists (Algorithm 2's output, which the main construction already
/// validates against the centralized scheme).
///
/// # Panics
///
/// Panics if the tree is empty or hosts disagree.
pub fn validate_stage2<R: Rng>(
    network: &Network,
    tree: &RootedTree,
    q: f64,
    rng: &mut R,
) -> Stage2Validation {
    let n = network.len();
    assert_eq!(tree.host_len(), n, "tree host must match network");
    assert!(tree.num_vertices() > 0, "empty tree");
    let root = tree.root();
    let mut sampled_flag = vec![false; n];
    for v in tree.vertices() {
        sampled_flag[v.index()] = v == root || rng.gen_bool(q.clamp(0.0, 1.0));
    }
    // Scaffolding (already engine-validated elsewhere): partition, heavy
    // children, and the local light lists L_0(x) for sampled x.
    let sizes = tree.subtree_sizes();
    let mut order = tree.preorder();
    order.sort_by_key(|&v| {
        let mut d = 0;
        let mut cur = v;
        while let Some(p) = tree.parent(cur) {
            cur = p;
            d += 1;
        }
        (d, v)
    });
    let mut local_root: Vec<Option<VertexId>> = vec![None; n];
    let mut lists: Vec<Option<Vec<(VertexId, VertexId)>>> = vec![None; n];
    let mut path_list: Vec<Vec<(VertexId, VertexId)>> = vec![Vec::new(); n];
    for &v in &order {
        if sampled_flag[v.index()] {
            local_root[v.index()] = Some(v);
        } else {
            let p = tree.parent(v).expect("non-root member");
            local_root[v.index()] = local_root[p.index()];
        }
        if let Some(p) = tree.parent(v) {
            let mut list = if sampled_flag[p.index()] {
                Vec::new()
            } else {
                path_list[p.index()].clone()
            };
            let heavy = crate::tz::heavy_child(tree, &sizes, p);
            if heavy != Some(v) {
                list.push((p, v));
            }
            path_list[v.index()] = list;
        }
        if sampled_flag[v.index()] {
            lists[v.index()] = Some(path_list[v.index()].clone());
        }
    }
    // Virtual parents.
    let sampled: Vec<VertexId> = order
        .iter()
        .copied()
        .filter(|v| sampled_flag[v.index()])
        .collect();
    let mut a: Vec<Option<VertexId>> = vec![None; n];
    for &x in &sampled {
        if x != root {
            let p = tree.parent(x).expect("non-root");
            a[x.index()] = local_root[p.index()];
        }
    }
    // Pointer jumping with real gossip: each iteration, every sampled x
    // broadcasts its ancestor pointer and its list (one gossip item per
    // list element plus one for the pointer).
    let mut engine_rounds = 0;
    let iters = log2_ceil(tree.num_vertices().max(2));
    for _ in 0..iters {
        let mut items: Vec<Vec<(u32, u64)>> = vec![Vec::new(); n];
        for &x in &sampled {
            let ptr = a[x.index()].map_or(u64::MAX, |p| u64::from(p.0));
            items[x.index()].push((0, ptr));
            for (j, &(p, c)) in lists[x.index()]
                .as_ref()
                .expect("sampled")
                .iter()
                .enumerate()
            {
                items[x.index()].push((j as u32 + 1, (u64::from(p.0) << 32) | u64::from(c.0)));
            }
        }
        let out = broadcast_all(network, items);
        engine_rounds += out.stats.rounds;
        // Digest: everyone heard everything; use vertex 0's view.
        let view = &out.received[0];
        let ptr_of = |v: VertexId| -> Option<VertexId> {
            view.iter()
                .find(|&&(o, seq, _)| o == v && seq == 0)
                .and_then(|&(_, _, p)| (p != u64::MAX).then_some(VertexId(p as u32)))
        };
        let list_of = |v: VertexId| -> Vec<(VertexId, VertexId)> {
            let mut es: Vec<(u32, u64)> = view
                .iter()
                .filter(|&&(o, seq, _)| o == v && seq > 0)
                .map(|&(_, seq, p)| (seq, p))
                .collect();
            es.sort_by_key(|&(seq, _)| seq);
            es.iter()
                .map(|&(_, p)| (VertexId((p >> 32) as u32), VertexId(p as u32)))
                .collect()
        };
        let snapshot_a = a.clone();
        for &x in &sampled {
            if let Some(anc) = snapshot_a[x.index()] {
                // L_{i+1}(x) = L_i(a_i(x)) ++ L_i(x); a_{i+1}(x) = a_i(a_i(x)).
                let mut merged = list_of(anc);
                merged.extend(lists[x.index()].as_ref().expect("sampled"));
                lists[x.index()] = Some(merged);
                a[x.index()] = ptr_of(anc);
            }
        }
    }
    Stage2Validation {
        light: lists,
        engine_rounds,
    }
}

// ---------------------------------------------------------------------------
// Algorithm 5 (Appendix A): the sibling range partition as a real protocol.
// ---------------------------------------------------------------------------

/// Messages of the range-partition protocol.
#[derive(Clone, Debug)]
enum RangeMsg {
    /// Child → parent: `(my 1-based index, my current prefix sum)`.
    Up(u32, u64),
    /// Parent → a specific child: the partial sum to fold in.
    Down(u64),
}

impl congest::WordSized for RangeMsg {
    fn words(&self) -> usize {
        2
    }
}

/// Per-vertex state: O(1) algorithmic words. The `children` list mirrors the
/// port numbering (the communication interface, not metered memory — see
/// Appendix A: "there is some order on these children (given by the port
/// numbers, say)").
#[derive(Clone, Debug)]
struct RangeVertex {
    parent: Option<VertexId>,
    children: Vec<VertexId>,
    /// 1-based index among the parent's children (port-derived).
    index: u32,
    /// Sibling count (how many children the parent has).
    siblings: u32,
    /// Running prefix sum, starts at the own subtree size.
    acc: u64,
}

impl RangeVertex {
    /// Whether this child sends its prefix to the parent at iteration `i`,
    /// i.e. it sits at position `(2t−1)·2^i` and has someone to its right.
    fn sends_at(&self, i: u32) -> bool {
        if self.parent.is_none() || self.index >= self.siblings {
            return false;
        }
        let j0 = self.index - 1; // 0-based
        let block = 1u32 << (i + 1);
        j0 % block == (1 << i) - 1
    }
}

impl VertexProtocol for RangeVertex {
    type Msg = RangeMsg;

    fn init(&mut self, ctx: &mut Ctx<'_, RangeMsg>) {
        if self.sends_at(0) {
            let p = self.parent.expect("sender has a parent");
            ctx.send(p, RangeMsg::Up(self.index, self.acc));
        }
    }

    fn round(&mut self, ctx: &mut Ctx<'_, RangeMsg>, inbox: &mut Inbox<'_, RangeMsg>) {
        // As a parent: relay Ups to the right-hand block, O(1) state.
        // As a child: fold any Down into the accumulator.
        let r = ctx.round();
        for (_, msg) in inbox.drain() {
            match msg {
                RangeMsg::Up(j, value) => {
                    let i = (r - 1) / 2; // the iteration this Up belongs to
                    let span = 1u64 << i;
                    let last = (u64::from(j) + span).min(self.children.len() as u64);
                    for tgt in (u64::from(j) + 1)..=last {
                        let c = self.children[(tgt - 1) as usize];
                        ctx.send(c, RangeMsg::Down(value));
                    }
                }
                RangeMsg::Down(value) => {
                    self.acc += value;
                }
            }
        }
        // Timed sends: iteration i fires at round 2i (init is round 0).
        if r % 2 == 0 {
            let i = (r / 2) as u32;
            if i < 32 && self.sends_at(i) {
                let p = self.parent.expect("sender has a parent");
                ctx.send(p, RangeMsg::Up(self.index, self.acc));
            }
        }
    }

    fn is_done(&self) -> bool {
        // Message-driven after the last possible send; quiescence ends it.
        true
    }

    fn memory_words(&self) -> usize {
        4 // index, sibling count, accumulator, parent
    }
}

/// Result of the engine-run Algorithm 5.
#[derive(Clone, Debug)]
pub struct RangePartitionValidation {
    /// Per host vertex, the computed prefix sum `S(y_j) = Σ_{h ≤ j} s_h`.
    pub prefix: Vec<u64>,
    /// Engine rounds (≈ 2·log₂ of the maximum degree).
    pub engine_rounds: u64,
}

/// Run Algorithm 5 on `tree` with the given per-vertex subtree `sizes`,
/// in parallel for every internal vertex, as a real protocol.
///
/// # Panics
///
/// Panics if hosts disagree or a vertex has more than 2³¹ children.
pub fn validate_range_partition(
    network: &Network,
    tree: &RootedTree,
    sizes: &[u64],
) -> RangePartitionValidation {
    let n = network.len();
    assert_eq!(tree.host_len(), n, "tree host must match network");
    assert_eq!(sizes.len(), n, "one size per vertex");
    let protos: Vec<RangeVertex> = (0..n)
        .map(|idx| {
            let v = VertexId(idx as u32);
            let parent = tree.parent(v);
            let (index, siblings) = match parent {
                Some(p) => {
                    let kids = tree.children(p);
                    let pos = kids.iter().position(|&c| c == v).expect("is a child") as u32;
                    (pos + 1, kids.len() as u32)
                }
                None => (0, 0),
            };
            RangeVertex {
                parent,
                children: tree.children(v).to_vec(),
                index,
                siblings,
                acc: sizes[idx],
            }
        })
        .collect();
    let (protos, stats) = Engine::new().run(network, protos);
    RangePartitionValidation {
        prefix: protos.into_iter().map(|p| p.acc).collect(),
        engine_rounds: stats.rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::{generators, tree::shortest_path_tree};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn check(n: usize, seed: u64) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = generators::erdos_renyi_connected(n, 3.0 / n as f64, 1..=9, &mut rng);
        let t = shortest_path_tree(&g, VertexId(0));
        let net = Network::new(g);
        let q = 1.0 / (n as f64).sqrt();
        let out = validate_stage1(&net, &t, q, &mut rng);
        // Ground truth: subtree sizes from the centralized recursion.
        let sizes = t.subtree_sizes();
        for v in t.vertices() {
            if let Some(s) = out.s_global[v.index()] {
                assert_eq!(s, sizes[v.index()] as u64, "subtree size at {v}");
            }
        }
        assert_eq!(out.s_global[0], Some(n as u64));
    }

    #[test]
    fn real_protocols_compute_correct_sizes() {
        for (n, seed) in [(60, 1), (120, 2), (200, 3)] {
            check(n, seed);
        }
    }

    #[test]
    fn engine_rounds_validate_the_charge_model() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let n = 150;
        let g = generators::erdos_renyi_connected(n, 0.04, 1..=9, &mut rng);
        let t = shortest_path_tree(&g, VertexId(0));
        let net = Network::new(g);
        let out = validate_stage1(&net, &t, 1.0 / (n as f64).sqrt(), &mut rng);
        // The measured rounds and the model's charge agree within a small
        // constant factor in both directions.
        let (e, c) = (out.engine_rounds as f64, out.charged_rounds as f64);
        assert!(e <= 4.0 * c, "engine {e} far above charge {c}");
        assert!(c <= 6.0 * e, "charge {c} far above engine {e}");
    }

    #[test]
    fn works_on_deep_paths() {
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let g = generators::path(100, 1..=3, &mut rng);
        let t = shortest_path_tree(&g, VertexId(0));
        let net = Network::new(g);
        let out = validate_stage1(&net, &t, 0.15, &mut rng);
        assert_eq!(out.s_global[0], Some(100));
        let sizes = t.subtree_sizes();
        for v in t.vertices() {
            if let Some(s) = out.s_global[v.index()] {
                assert_eq!(s, sizes[v.index()] as u64);
            }
        }
    }

    #[test]
    fn stage2_light_lists_match_centralized_labels() {
        let mut rng = ChaCha8Rng::seed_from_u64(15);
        let g = generators::erdos_renyi_connected(120, 0.05, 1..=9, &mut rng);
        let t = shortest_path_tree(&g, VertexId(0));
        let net = Network::new(g);
        let out = validate_stage2(&net, &t, 0.12, &mut rng);
        let want = crate::tz::build(&t);
        let mut checked = 0;
        for v in t.vertices() {
            if let Some(list) = &out.light[v.index()] {
                assert_eq!(
                    list,
                    &want.label(v).unwrap().light,
                    "global light list at {v}"
                );
                checked += 1;
            }
        }
        assert!(checked >= 2, "need some sampled vertices to validate");
        assert!(out.engine_rounds > 0);
    }

    #[test]
    fn range_partition_computes_prefix_sums() {
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let g = generators::star(40, 1..=5, &mut rng);
        let t = shortest_path_tree(&g, VertexId(0));
        let net = Network::new(g);
        let sizes: Vec<u64> = (0..40).map(|i| (i as u64 % 7) + 1).collect();
        let out = validate_range_partition(&net, &t, &sizes);
        // Children of the star center are 1..39 in id order.
        let kids = t.children(VertexId(0)).to_vec();
        let mut prefix = 0;
        for &c in &kids {
            prefix += sizes[c.index()];
            assert_eq!(out.prefix[c.index()], prefix, "child {c}");
        }
        // 39 children: 2·⌈log2 39⌉ = 12 rounds, plus delivery slack.
        assert!(
            out.engine_rounds <= 2 * 6 + 3,
            "rounds {} above 2·log2(deg)",
            out.engine_rounds
        );
    }

    #[test]
    fn range_partition_runs_for_all_vertices_in_parallel() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let g = generators::erdos_renyi_connected(120, 0.05, 1..=9, &mut rng);
        let t = shortest_path_tree(&g, VertexId(0));
        let net = Network::new(g);
        let sizes: Vec<u64> = t.subtree_sizes().iter().map(|&s| s as u64).collect();
        let out = validate_range_partition(&net, &t, &sizes);
        for v in t.vertices() {
            let mut prefix = 0;
            for &c in t.children(v) {
                prefix += sizes[c.index()];
                assert_eq!(out.prefix[c.index()], prefix, "child {c} of {v}");
            }
        }
    }

    #[test]
    fn range_partition_on_single_child_is_trivial() {
        let mut rng = ChaCha8Rng::seed_from_u64(14);
        let g = generators::path(10, 1..=3, &mut rng);
        let t = shortest_path_tree(&g, VertexId(0));
        let net = Network::new(g);
        let sizes = vec![2u64; 10];
        let out = validate_range_partition(&net, &t, &sizes);
        // Every vertex has one child: prefix = its own size, no messages.
        for v in t.vertices() {
            assert_eq!(out.prefix[v.index()], 2);
        }
        assert_eq!(out.engine_rounds, 0);
    }

    #[test]
    fn all_sampled_degenerates_to_direct_jumping() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let g = generators::erdos_renyi_connected(50, 0.1, 1..=5, &mut rng);
        let t = shortest_path_tree(&g, VertexId(0));
        let net = Network::new(g);
        let out = validate_stage1(&net, &t, 1.0, &mut rng);
        assert_eq!(out.sampled, 50);
        let sizes = t.subtree_sizes();
        for v in t.vertices() {
            assert_eq!(out.s_global[v.index()], Some(sizes[v.index()] as u64));
        }
    }
}
