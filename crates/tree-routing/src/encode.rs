//! Bit-level encoding of tables and labels.
//!
//! The paper counts sizes in machine words; actual deployments ship labels
//! inside packet headers, where *bits* matter. This module provides a
//! canonical varint (LEB128) wire format for [`TreeTable`] and
//! [`TreeLabel`], used by the bit-complexity figure to show that a label of
//! `O(log n)` words is `O(log² n)` bits — and typically far less, because
//! DFS times and vertex ids are small integers.

use graphs::VertexId;

use crate::types::{TreeLabel, TreeTable};

/// Append `value` as LEB128.
pub fn write_varint(buf: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Read a LEB128 value at `*pos`, advancing it. `None` on truncation or
/// overlong input (> 10 bytes).
pub fn read_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let &byte = buf.get(*pos)?;
        *pos += 1;
        if shift >= 64 {
            return None;
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(value);
        }
        shift += 7;
    }
}

fn write_opt_vertex(buf: &mut Vec<u8>, v: Option<VertexId>) {
    // 0 = None; ids shifted by one.
    write_varint(buf, v.map_or(0, |x| u64::from(x.0) + 1));
}

fn read_opt_vertex(buf: &[u8], pos: &mut usize) -> Option<Option<VertexId>> {
    let raw = read_varint(buf, pos)?;
    Some(if raw == 0 {
        None
    } else {
        Some(VertexId((raw - 1) as u32))
    })
}

/// Serialize a table (4 varints).
pub fn encode_table(t: &TreeTable) -> Vec<u8> {
    let mut buf = Vec::with_capacity(12);
    write_varint(&mut buf, t.enter);
    write_varint(&mut buf, t.exit - t.enter); // delta: subtree size − 1
    write_opt_vertex(&mut buf, t.parent);
    write_opt_vertex(&mut buf, t.heavy);
    buf
}

/// Deserialize a table. `None` on malformed input.
pub fn decode_table(buf: &[u8]) -> Option<TreeTable> {
    let mut pos = 0;
    let enter = read_varint(buf, &mut pos)?;
    let span = read_varint(buf, &mut pos)?;
    let parent = read_opt_vertex(buf, &mut pos)?;
    let heavy = read_opt_vertex(buf, &mut pos)?;
    (pos == buf.len()).then_some(TreeTable {
        enter,
        exit: enter + span,
        parent,
        heavy,
    })
}

/// Serialize a label: entry time, light-edge count, then the edges.
pub fn encode_label(l: &TreeLabel) -> Vec<u8> {
    let mut buf = Vec::with_capacity(4 + 4 * l.light.len());
    write_varint(&mut buf, l.enter);
    write_varint(&mut buf, l.light.len() as u64);
    for &(p, c) in &l.light {
        write_varint(&mut buf, u64::from(p.0));
        write_varint(&mut buf, u64::from(c.0));
    }
    buf
}

/// Deserialize a label. `None` on malformed input.
pub fn decode_label(buf: &[u8]) -> Option<TreeLabel> {
    let mut pos = 0;
    let enter = read_varint(buf, &mut pos)?;
    let count = read_varint(buf, &mut pos)? as usize;
    if count > buf.len() {
        return None; // cheap sanity bound before allocating
    }
    let mut light = Vec::with_capacity(count);
    for _ in 0..count {
        let p = VertexId(read_varint(buf, &mut pos)? as u32);
        let c = VertexId(read_varint(buf, &mut pos)? as u32);
        light.push((p, c));
    }
    (pos == buf.len()).then_some(TreeLabel { enter, light })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tz;
    use graphs::tree::random_recursive_tree;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn varint_round_trips() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_rejects_truncation() {
        let mut buf = Vec::new();
        write_varint(&mut buf, 1_000_000);
        buf.pop();
        let mut pos = 0;
        assert_eq!(read_varint(&buf, &mut pos), None);
    }

    #[test]
    fn tables_and_labels_round_trip() {
        let mut rng = ChaCha8Rng::seed_from_u64(801);
        let ids: Vec<VertexId> = (0..100).map(VertexId).collect();
        let t = random_recursive_tree(100, &ids, 9, &mut rng);
        let scheme = tz::build(&t);
        for v in t.vertices() {
            let table = scheme.table(v).unwrap();
            assert_eq!(decode_table(&encode_table(table)).as_ref(), Some(table));
            let label = scheme.label(v).unwrap();
            assert_eq!(decode_label(&encode_label(label)).as_ref(), Some(label));
        }
    }

    #[test]
    fn decode_rejects_trailing_garbage() {
        let t = TreeTable {
            enter: 3,
            exit: 9,
            parent: Some(VertexId(1)),
            heavy: None,
        };
        let mut buf = encode_table(&t);
        buf.push(0);
        assert_eq!(decode_table(&buf), None);
    }

    #[test]
    fn encoded_label_is_compact() {
        // A label with 8 light edges on small ids fits well under the naive
        // 8-byte-per-word budget.
        let label = TreeLabel {
            enter: 500,
            light: (0..8)
                .map(|i| (VertexId(i * 2), VertexId(i * 2 + 1)))
                .collect(),
        };
        let bytes = encode_label(&label);
        let naive = 8 * (1 + 2 * 8);
        assert!(bytes.len() * 4 < naive, "{} vs naive {naive}", bytes.len());
        assert_eq!(decode_label(&bytes), Some(label));
    }

    #[test]
    fn empty_label_is_two_bytes() {
        let label = TreeLabel {
            enter: 1,
            light: vec![],
        };
        assert_eq!(encode_label(&label).len(), 2);
    }
}
