//! Routing tables, labels, and the Thorup–Zwick forwarding rule.
//!
//! The *sizes in words* of these structures are first-class experimental
//! quantities (they are two columns of the paper's Table 2), so each type
//! reports its footprint via [`congest::WordSized`].

use congest::WordSized;
use graphs::VertexId;

/// The routing table a tree vertex stores — `O(1)` words.
///
/// Per \[TZ01b\]: the vertex's DFS interval, its parent, and its heavy child.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TreeTable {
    /// DFS entry time; doubles as the vertex's identity inside the tree.
    pub enter: u64,
    /// DFS exit time: the subtree of this vertex is exactly the set of
    /// vertices with entry times in `enter..=exit`.
    pub exit: u64,
    /// Tree parent (`None` at the root).
    pub parent: Option<VertexId>,
    /// Heavy child: the child with the largest subtree (`None` at leaves).
    pub heavy: Option<VertexId>,
}

impl TreeTable {
    /// Whether the vertex owning this table has `label`'s target in its
    /// subtree.
    #[inline]
    pub fn subtree_contains(&self, label: &TreeLabel) -> bool {
        self.enter <= label.enter && label.enter <= self.exit
    }

    /// Whether `enter` falls inside this vertex's DFS interval — the raw
    /// form of [`TreeTable::subtree_contains`] for audits that check DFS
    /// nesting (a child's interval must lie inside its parent's) without
    /// materializing a label.
    #[inline]
    pub fn contains_enter(&self, enter: u64) -> bool {
        self.enter <= enter && enter <= self.exit
    }
}

impl WordSized for TreeTable {
    fn words(&self) -> usize {
        4
    }
}

/// The label of a tree vertex — `O(log n)` words.
///
/// Per \[TZ01b\]: the vertex's DFS entry time plus the *light edges* on the
/// path from the root: pairs `(parent, child)` for every path edge whose
/// child is not the parent's heavy child. A root-to-vertex path has at most
/// `⌊log₂ n⌋` light edges, bounding the label size.
///
/// Light edges name vertices by id (not DFS time) because the distributed
/// construction discovers them in Stage 2, before DFS times exist.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TreeLabel {
    /// DFS entry time of the labeled vertex (its in-tree identity).
    pub enter: u64,
    /// Light edges on the root path, ordered root-side first.
    pub light: Vec<(VertexId, VertexId)>,
}

impl WordSized for TreeLabel {
    fn words(&self) -> usize {
        1 + 2 * self.light.len()
    }
}

/// One forwarding decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouteAction {
    /// The message has arrived.
    Deliver,
    /// Forward to this neighbor in the tree.
    Forward(VertexId),
}

/// A forwarding decision with its *reason* exposed — which branch of the
/// Thorup–Zwick rule chose the port. The flight recorder attributes each
/// hop's cost to ascent (toward the committed tree's root) or descent
/// (down a light or heavy edge), which is exactly this distinction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ForwardingDecision {
    /// The message has arrived.
    Deliver,
    /// The target is outside our subtree: ascend to the parent.
    Ascend(VertexId),
    /// The target is below us via a light edge listed in its label.
    DescendLight(VertexId),
    /// The target is below us via the heavy-child edge.
    DescendHeavy(VertexId),
}

impl ForwardingDecision {
    /// Collapse the reason, keeping only deliver-vs-forward.
    pub fn action(self) -> RouteAction {
        match self {
            ForwardingDecision::Deliver => RouteAction::Deliver,
            ForwardingDecision::Ascend(next)
            | ForwardingDecision::DescendLight(next)
            | ForwardingDecision::DescendHeavy(next) => RouteAction::Forward(next),
        }
    }

    /// The chosen next hop (`None` on delivery).
    pub fn next_hop(self) -> Option<VertexId> {
        match self {
            ForwardingDecision::Deliver => None,
            ForwardingDecision::Ascend(next)
            | ForwardingDecision::DescendLight(next)
            | ForwardingDecision::DescendHeavy(next) => Some(next),
        }
    }
}

/// The Thorup–Zwick forwarding rule with the decision kind exposed: decide
/// the next hop toward `label`'s target from vertex `me`, which owns
/// `table`, and say *why* that port was chosen.
///
/// Returns `None` when the rule cannot make progress — the target is outside
/// the tree (the root sees an entry time outside its interval) or the table
/// is inconsistent; the caller reports this as a routing error.
///
/// # Examples
///
/// ```
/// use tree_routing::types::{route_decision, ForwardingDecision, TreeLabel, TreeTable};
/// use graphs::VertexId;
///
/// // Root [0..=1] with a single (heavy) child whose entry time is 1.
/// let root = TreeTable { enter: 0, exit: 1, parent: None, heavy: Some(VertexId(5)) };
/// let target = TreeLabel { enter: 1, light: vec![] };
/// assert_eq!(
///     route_decision(VertexId(0), &root, &target),
///     Some(ForwardingDecision::DescendHeavy(VertexId(5)))
/// );
/// ```
pub fn route_decision(
    me: VertexId,
    table: &TreeTable,
    label: &TreeLabel,
) -> Option<ForwardingDecision> {
    if label.enter == table.enter {
        return Some(ForwardingDecision::Deliver);
    }
    if !table.subtree_contains(label) {
        // Target is above or beside us: go to the parent.
        return table.parent.map(ForwardingDecision::Ascend);
    }
    // Target is strictly below us: take the listed light edge if one leaves
    // here, otherwise the heavy edge.
    if let Some(&(_, child)) = label.light.iter().find(|&&(pe, _)| pe == me) {
        return Some(ForwardingDecision::DescendLight(child));
    }
    table.heavy.map(ForwardingDecision::DescendHeavy)
}

/// The forwarding rule without the reason: [`route_decision`] collapsed to
/// deliver-vs-forward.
///
/// # Examples
///
/// ```
/// use tree_routing::types::{route_step, RouteAction, TreeLabel, TreeTable};
/// use graphs::VertexId;
///
/// // Root [0..=1] with a single (heavy) child whose entry time is 1.
/// let root = TreeTable { enter: 0, exit: 1, parent: None, heavy: Some(VertexId(5)) };
/// let target = TreeLabel { enter: 1, light: vec![] };
/// assert_eq!(
///     route_step(VertexId(0), &root, &target),
///     Some(RouteAction::Forward(VertexId(5)))
/// );
/// ```
pub fn route_step(me: VertexId, table: &TreeTable, label: &TreeLabel) -> Option<RouteAction> {
    route_decision(me, table, label).map(ForwardingDecision::action)
}

/// A complete tree routing scheme: one table and one label per host vertex
/// (entries are `None` for vertices outside the tree).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct TreeScheme {
    /// Per host vertex, the routing table (`None` outside the tree).
    pub tables: Vec<Option<TreeTable>>,
    /// Per host vertex, the label (`None` outside the tree).
    pub labels: Vec<Option<TreeLabel>>,
}

impl TreeScheme {
    /// An empty scheme over `n` host vertices.
    pub fn new(n: usize) -> Self {
        TreeScheme {
            tables: vec![None; n],
            labels: vec![None; n],
        }
    }

    /// The table of `v`, if `v` is in the tree.
    pub fn table(&self, v: VertexId) -> Option<&TreeTable> {
        self.tables[v.index()].as_ref()
    }

    /// The label of `v`, if `v` is in the tree.
    pub fn label(&self, v: VertexId) -> Option<&TreeLabel> {
        self.labels[v.index()].as_ref()
    }

    /// Largest table size in words over tree vertices (0 if none).
    pub fn max_table_words(&self) -> usize {
        self.tables
            .iter()
            .flatten()
            .map(WordSized::words)
            .max()
            .unwrap_or(0)
    }

    /// Largest label size in words over tree vertices (0 if none).
    pub fn max_label_words(&self) -> usize {
        self.labels
            .iter()
            .flatten()
            .map(WordSized::words)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(enter: u64, exit: u64, parent: Option<u32>, heavy: Option<u32>) -> TreeTable {
        TreeTable {
            enter,
            exit,
            parent: parent.map(VertexId),
            heavy: heavy.map(VertexId),
        }
    }

    #[test]
    fn table_is_constant_size() {
        assert_eq!(table(0, 9, None, Some(1)).words(), 4);
    }

    #[test]
    fn label_size_grows_with_light_edges() {
        let l0 = TreeLabel {
            enter: 3,
            light: vec![],
        };
        let l2 = TreeLabel {
            enter: 3,
            light: vec![(VertexId(0), VertexId(1)), (VertexId(5), VertexId(2))],
        };
        assert_eq!(l0.words(), 1);
        assert_eq!(l2.words(), 5);
    }

    #[test]
    fn step_delivers_on_identity() {
        let t = table(4, 8, Some(0), Some(2));
        let l = TreeLabel {
            enter: 4,
            light: vec![],
        };
        assert_eq!(route_step(VertexId(3), &t, &l), Some(RouteAction::Deliver));
    }

    #[test]
    fn step_goes_up_when_target_outside_subtree() {
        let t = table(4, 8, Some(9), Some(2));
        let l = TreeLabel {
            enter: 2,
            light: vec![],
        };
        assert_eq!(
            route_step(VertexId(3), &t, &l),
            Some(RouteAction::Forward(VertexId(9)))
        );
    }

    #[test]
    fn step_prefers_listed_light_edge_over_heavy() {
        let t = table(4, 8, Some(9), Some(2));
        let l = TreeLabel {
            enter: 6,
            light: vec![(VertexId(3), VertexId(7))],
        };
        assert_eq!(
            route_step(VertexId(3), &t, &l),
            Some(RouteAction::Forward(VertexId(7)))
        );
    }

    #[test]
    fn step_defaults_to_heavy_child() {
        let t = table(4, 8, Some(9), Some(2));
        let l = TreeLabel {
            enter: 6,
            // Light edge elsewhere on the path, not at vertex 3.
            light: vec![(VertexId(0), VertexId(7))],
        };
        assert_eq!(
            route_step(VertexId(3), &t, &l),
            Some(RouteAction::Forward(VertexId(2)))
        );
    }

    #[test]
    fn decision_exposes_the_reason_behind_each_port() {
        let t = table(4, 8, Some(9), Some(2));
        // Outside the subtree: ascend.
        let above = TreeLabel {
            enter: 2,
            light: vec![],
        };
        assert_eq!(
            route_decision(VertexId(3), &t, &above),
            Some(ForwardingDecision::Ascend(VertexId(9)))
        );
        // Below via a listed light edge.
        let light = TreeLabel {
            enter: 6,
            light: vec![(VertexId(3), VertexId(7))],
        };
        assert_eq!(
            route_decision(VertexId(3), &t, &light),
            Some(ForwardingDecision::DescendLight(VertexId(7)))
        );
        // Below via the heavy child.
        let heavy = TreeLabel {
            enter: 6,
            light: vec![],
        };
        assert_eq!(
            route_decision(VertexId(3), &t, &heavy),
            Some(ForwardingDecision::DescendHeavy(VertexId(2)))
        );
        // Identity: deliver, no next hop.
        let own = TreeLabel {
            enter: 4,
            light: vec![],
        };
        let d = route_decision(VertexId(3), &t, &own).unwrap();
        assert_eq!(d, ForwardingDecision::Deliver);
        assert_eq!(d.next_hop(), None);
        assert_eq!(d.action(), RouteAction::Deliver);
    }

    #[test]
    fn decision_and_step_always_agree() {
        let t = table(4, 8, Some(9), Some(2));
        for enter in 0..12u64 {
            let l = TreeLabel {
                enter,
                light: vec![(VertexId(3), VertexId(7))],
            };
            assert_eq!(
                route_step(VertexId(3), &t, &l),
                route_decision(VertexId(3), &t, &l).map(ForwardingDecision::action),
                "enter time {enter}"
            );
        }
    }

    #[test]
    fn step_fails_at_root_for_foreign_target() {
        let t = table(0, 8, None, Some(2));
        let l = TreeLabel {
            enter: 100,
            light: vec![],
        };
        assert_eq!(route_step(VertexId(0), &t, &l), None);
    }

    #[test]
    fn scheme_size_reports() {
        let mut s = TreeScheme::new(2);
        s.tables[0] = Some(table(0, 1, None, Some(1)));
        s.labels[0] = Some(TreeLabel {
            enter: 0,
            light: vec![(VertexId(0), VertexId(1))],
        });
        assert_eq!(s.max_table_words(), 4);
        assert_eq!(s.max_label_words(), 3);
        assert!(s.table(VertexId(1)).is_none());
    }
}
