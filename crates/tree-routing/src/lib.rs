//! Exact compact routing on trees (paper §3 + Appendix A).
//!
//! Given a tree `T` embedded in a network `G` with hop-diameter `D`, a *tree
//! routing scheme* assigns each tree vertex a small routing **table** and a
//! short **label** such that a message carrying only the target's label is
//! forwarded along the unique tree path — with **zero stretch**.
//!
//! This crate provides:
//!
//! * [`tz`] — the centralized Thorup–Zwick scheme: tables of `O(1)` words,
//!   labels of `O(log n)` words (heavy-child decomposition + DFS intervals).
//! * [`distributed`] — **the paper's contribution**: a CONGEST construction
//!   of *the same* tables and labels in `Õ(√n + D)` rounds using only
//!   `O(log n)` words of memory per vertex (Theorem 2), built from local-tree
//!   waves and pointer jumping (Algorithms 1–6).
//! * [`baseline`] — the prior approach (\[LP15\]/\[EN16b\]-style): materializes
//!   the virtual tree at the virtual vertices, paying `Ω̃(√n)` memory and
//!   producing `O(log n)` tables / `O(log² n)` labels.
//! * [`router`] — the routing phase: hop-by-hop forwarding driven purely by
//!   `(table, label)`, used to verify exactness.
//! * [`multi`] — Theorem 2's second assertion: constructing schemes for many
//!   trees in parallel with `O(s log n)` memory when every vertex lies in at
//!   most `s` trees.
//!
//! # Examples
//!
//! ```
//! use graphs::{generators, tree, VertexId};
//! use tree_routing::{tz, router};
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
//! let g = generators::erdos_renyi_connected(50, 0.1, 1..=9, &mut rng);
//! let t = tree::shortest_path_tree(&g, VertexId(0));
//! let scheme = tz::build(&t);
//! let trace = router::route(&t, &scheme, VertexId(4), VertexId(37)).unwrap();
//! assert_eq!(Some(trace.weight), t.tree_distance(VertexId(4), VertexId(37)));
//! ```

pub mod baseline;
pub mod distributed;
pub mod encode;
pub mod engine_validation;
pub mod multi;
pub mod router;
pub mod types;
pub mod tz;

pub use router::{route, RouteError, RouteTrace};
pub use types::{ForwardingDecision, RouteAction, TreeLabel, TreeScheme, TreeTable};
