//! The routing phase: hop-by-hop forwarding driven only by tables and labels.
//!
//! This module *is the correctness check* for every tree scheme in the crate:
//! a message starting at `src` carrying `Label(dst)` must traverse exactly
//! the unique `src → dst` tree path.

use std::fmt;

use graphs::{RootedTree, VertexId, Weight};

use crate::types::{route_step, RouteAction, TreeScheme};

/// The path a routed message took.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RouteTrace {
    /// Vertices visited, starting with the source and ending with the target.
    pub path: Vec<VertexId>,
    /// Total weight of traversed tree edges.
    pub weight: Weight,
}

impl RouteTrace {
    /// Number of edges traversed.
    pub fn hops(&self) -> usize {
        self.path.len() - 1
    }
}

/// Why routing failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RouteError {
    /// The source is not in the tree (has no table).
    SourceNotInTree(VertexId),
    /// The destination is not in the tree (has no label).
    TargetNotInTree(VertexId),
    /// The forwarding rule got stuck at this vertex.
    Stuck(VertexId),
    /// A vertex forwarded to a non-neighbor or a vertex with no table.
    BadForward { from: VertexId, to: VertexId },
    /// Exceeded `2n` hops — a forwarding loop.
    Loop,
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::SourceNotInTree(v) => write!(f, "source {v} is not in the tree"),
            RouteError::TargetNotInTree(v) => write!(f, "target {v} is not in the tree"),
            RouteError::Stuck(v) => write!(f, "forwarding rule stuck at {v}"),
            RouteError::BadForward { from, to } => {
                write!(f, "{from} forwarded to invalid next hop {to}")
            }
            RouteError::Loop => write!(f, "forwarding loop detected"),
        }
    }
}

impl std::error::Error for RouteError {}

/// Route a message from `src` to `dst` through `tree` using `scheme`.
///
/// Every forwarding decision uses only the current vertex's table and the
/// target's label, exactly as the model prescribes. The `tree` argument is
/// used solely to verify each hop is a real tree edge and to price it.
///
/// # Errors
///
/// Returns a [`RouteError`] if either endpoint is missing from the scheme,
/// the rule gets stuck, a hop is not a tree edge, or a loop arises.
///
/// # Examples
///
/// ```
/// use graphs::{tree, VertexId};
/// use tree_routing::{router, tz};
///
/// let t = tree::star_tree(4, &[VertexId(0), VertexId(1), VertexId(2), VertexId(3)], 2);
/// let s = tz::build(&t);
/// let trace = router::route(&t, &s, VertexId(1), VertexId(3)).unwrap();
/// assert_eq!(trace.path, vec![VertexId(1), VertexId(0), VertexId(3)]);
/// assert_eq!(trace.weight, 4);
/// ```
pub fn route(
    tree: &RootedTree,
    scheme: &TreeScheme,
    src: VertexId,
    dst: VertexId,
) -> Result<RouteTrace, RouteError> {
    if scheme.table(src).is_none() {
        return Err(RouteError::SourceNotInTree(src));
    }
    let label = scheme.label(dst).ok_or(RouteError::TargetNotInTree(dst))?;
    let mut path = vec![src];
    let mut weight = 0;
    let mut cur = src;
    let cap = 2 * tree.host_len() + 2;
    loop {
        if path.len() > cap {
            return Err(RouteError::Loop);
        }
        let table = scheme
            .table(cur)
            .expect("current vertex always has a table");
        match route_step(cur, table, label) {
            None => return Err(RouteError::Stuck(cur)),
            Some(RouteAction::Deliver) => {
                return Ok(RouteTrace { path, weight });
            }
            Some(RouteAction::Forward(next)) => {
                // Validate the hop is a genuine tree edge.
                let is_edge = tree.parent(cur) == Some(next) || tree.parent(next) == Some(cur);
                if !is_edge || scheme.table(next).is_none() {
                    return Err(RouteError::BadForward {
                        from: cur,
                        to: next,
                    });
                }
                let w = if tree.parent(cur) == Some(next) {
                    tree.parent_weight(cur)
                } else {
                    tree.parent_weight(next)
                };
                weight += w;
                path.push(next);
                cur = next;
            }
        }
    }
}

/// Route between every ordered pair of tree vertices and assert exactness
/// against [`RootedTree::tree_distance`]. Returns the number of pairs
/// checked. Intended for tests; cost is O(n² · depth).
///
/// # Panics
///
/// Panics on the first pair whose routed weight differs from the tree
/// distance, or on any routing error.
pub fn verify_exactness(tree: &RootedTree, scheme: &TreeScheme) -> usize {
    let verts: Vec<VertexId> = tree.vertices().collect();
    let mut pairs = 0;
    for &u in &verts {
        for &v in &verts {
            let trace = route(tree, scheme, u, v)
                .unwrap_or_else(|e| panic!("routing {u} -> {v} failed: {e}"));
            let want = tree.tree_distance(u, v).expect("both are members");
            assert_eq!(
                trace.weight, want,
                "stretch violation routing {u} -> {v}: got {} want {want}",
                trace.weight
            );
            pairs += 1;
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tz;
    use graphs::tree::{path_tree, random_recursive_tree, star_tree};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn ids(n: u32) -> Vec<VertexId> {
        (0..n).map(VertexId).collect()
    }

    #[test]
    fn routes_exactly_on_random_trees() {
        let mut rng = ChaCha8Rng::seed_from_u64(41);
        for n in [1usize, 2, 7, 40] {
            let t = random_recursive_tree(n, &ids(n as u32), 6, &mut rng);
            let s = tz::build(&t);
            let pairs = verify_exactness(&t, &s);
            assert_eq!(pairs, n * n);
        }
    }

    #[test]
    fn route_to_self_is_empty() {
        let t = path_tree(4, &ids(4), 3);
        let s = tz::build(&t);
        let trace = route(&t, &s, VertexId(2), VertexId(2)).unwrap();
        assert_eq!(trace.path, vec![VertexId(2)]);
        assert_eq!(trace.weight, 0);
        assert_eq!(trace.hops(), 0);
    }

    #[test]
    fn path_tree_routes_along_the_path() {
        let t = path_tree(6, &ids(6), 2);
        let s = tz::build(&t);
        let trace = route(&t, &s, VertexId(5), VertexId(1)).unwrap();
        assert_eq!(trace.path.len(), 5);
        assert_eq!(trace.weight, 8);
    }

    #[test]
    fn star_routes_through_center() {
        let t = star_tree(5, &ids(5), 1);
        let s = tz::build(&t);
        let trace = route(&t, &s, VertexId(4), VertexId(2)).unwrap();
        assert_eq!(trace.path, vec![VertexId(4), VertexId(0), VertexId(2)]);
    }

    #[test]
    fn missing_endpoints_error() {
        // Tree on {0, 2} in a host of 3.
        let t = RootedTree::from_parents(
            VertexId(0),
            vec![None, None, Some(VertexId(0))],
            vec![0, 0, 1],
        );
        let s = tz::build(&t);
        assert_eq!(
            route(&t, &s, VertexId(1), VertexId(0)),
            Err(RouteError::SourceNotInTree(VertexId(1)))
        );
        assert_eq!(
            route(&t, &s, VertexId(0), VertexId(1)),
            Err(RouteError::TargetNotInTree(VertexId(1)))
        );
    }

    #[test]
    fn hops_counts_edges() {
        let t = path_tree(3, &ids(3), 5);
        let s = tz::build(&t);
        let trace = route(&t, &s, VertexId(0), VertexId(2)).unwrap();
        assert_eq!(trace.hops(), 2);
    }
}
