//! Parallel construction for many trees (Theorem 2, second assertion).
//!
//! Given a collection of trees in which every vertex appears at most `s`
//! times — exactly the situation the general-graph scheme creates, where
//! cluster trees overlap by `s = Õ(n^{1/k})` — pick `q = 1/√(sn)` and give
//! each tree a random start time from a window of `O(√(sn)·log n)` rounds.
//! All constructions then run concurrently: whp the total time is
//! `Õ(√(sn) + D)` rather than the naive `Õ(s·√n + D)`, and each vertex's
//! memory is the sum over the (at most `s`) trees containing it —
//! `O(s log n)` words.

use congest::{CostLedger, MemoryMeter, Network};
use graphs::RootedTree;
use rand::Rng;

use crate::distributed::{self, Config};
use crate::types::TreeScheme;

/// Output of the multi-tree construction.
#[derive(Clone, Debug)]
pub struct MultiOutput {
    /// One scheme per input tree, in order.
    pub schemes: Vec<TreeScheme>,
    /// Combined accounting: `rounds = max_t (offset_t + rounds_t)`.
    pub ledger: CostLedger,
    /// Per-vertex memory: concurrent (additive) merge across trees.
    pub memory: MemoryMeter,
    /// The random-start window size used.
    pub window: u64,
    /// The observed maximum tree overlap at any vertex.
    pub observed_overlap: usize,
}

/// Build routing schemes for all `trees` in parallel.
///
/// `s` is the promised bound on how many trees any vertex belongs to (the
/// actual overlap is measured and returned). Sampling probability is
/// `q = 1/√(s·n)` with `n` the network size, per Theorem 2.
///
/// # Panics
///
/// Panics if `trees` is empty, `s == 0`, or any tree's host universe differs
/// from the network.
pub fn build_many<R: Rng>(
    network: &Network,
    trees: &[RootedTree],
    s: usize,
    rng: &mut R,
) -> MultiOutput {
    assert!(!trees.is_empty(), "need at least one tree");
    assert!(s > 0, "overlap bound must be positive");
    let n = network.len();
    for t in trees {
        assert_eq!(t.host_len(), n, "tree host must match network");
    }

    // Observed overlap (to validate the caller's promise in tests/benches).
    let mut count = vec![0usize; n];
    for t in trees {
        for v in t.vertices() {
            count[v.index()] += 1;
        }
    }
    let observed_overlap = count.iter().copied().max().unwrap_or(0);

    let q = 1.0 / ((s as f64) * (n as f64)).sqrt();
    let log_n = distributed::log2_ceil(n.max(2)) as u64;
    let window = (((s * n) as f64).sqrt() as u64 + 1) * log_n.max(1);

    // One shared BFS backbone for every tree's broadcasts.
    let bfs_out = congest::bfs::build_bfs_tree(network, trees[0].root());
    let mut memory = MemoryMeter::new(n);
    let mut ledger = CostLedger::new();
    ledger.charge_rounds(bfs_out.stats.rounds);
    for v in network.graph().vertices() {
        memory.add(v, 3);
    }
    let config = Config {
        q: Some(q.clamp(0.0, 1.0)),
        backbone_depth: Some(bfs_out.depth),
        ..Config::default()
    };
    let mut schemes = Vec::with_capacity(trees.len());
    let mut max_finish = 0u64;
    for t in trees {
        let offset = rng.gen_range(0..=window);
        let out = distributed::build(network, t, &config, rng);
        max_finish = max_finish.max(offset + out.ledger.rounds());
        ledger.charge_messages(out.ledger.messages());
        memory.merge_concurrent(&out.memory);
        schemes.push(out.scheme);
    }
    ledger.charge_rounds(max_finish);

    MultiOutput {
        schemes,
        ledger,
        memory,
        window,
        observed_overlap,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{router, tz};
    use graphs::{generators, tree::shortest_path_tree, VertexId};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// SPTs from several roots: every vertex is in every tree (overlap = s).
    fn spts(net: &Network, roots: &[u32]) -> Vec<RootedTree> {
        roots
            .iter()
            .map(|&r| shortest_path_tree(net.graph(), VertexId(r)))
            .collect()
    }

    #[test]
    fn all_schemes_match_centralized() {
        let mut rng = ChaCha8Rng::seed_from_u64(101);
        let g = generators::erdos_renyi_connected(90, 0.05, 1..=9, &mut rng);
        let net = Network::new(g);
        let trees = spts(&net, &[0, 17, 44]);
        let out = build_many(&net, &trees, 3, &mut rng);
        assert_eq!(out.observed_overlap, 3);
        for (t, s) in trees.iter().zip(&out.schemes) {
            let want = tz::build(t);
            for v in t.vertices() {
                assert_eq!(s.table(v), want.table(v));
                assert_eq!(s.label(v), want.label(v));
            }
        }
    }

    #[test]
    fn schemes_route_exactly() {
        let mut rng = ChaCha8Rng::seed_from_u64(102);
        let g = generators::erdos_renyi_connected(50, 0.08, 1..=9, &mut rng);
        let net = Network::new(g);
        let trees = spts(&net, &[0, 25]);
        let out = build_many(&net, &trees, 2, &mut rng);
        for (t, s) in trees.iter().zip(&out.schemes) {
            router::verify_exactness(t, s);
        }
    }

    #[test]
    fn memory_adds_across_trees() {
        let mut rng = ChaCha8Rng::seed_from_u64(103);
        let g = generators::erdos_renyi_connected(200, 0.03, 1..=9, &mut rng);
        let net = Network::new(g);
        let s = 4;
        let trees = spts(&net, &[0, 50, 100, 150]);
        let out = build_many(&net, &trees, s, &mut rng);
        let log_n = distributed::log2_ceil(200);
        let bound = s * (18 + 7 * log_n);
        assert!(
            out.memory.max_peak() <= bound,
            "memory {} exceeds O(s log n) bound {}",
            out.memory.max_peak(),
            bound
        );
    }

    #[test]
    fn parallel_rounds_beat_sequential() {
        let mut rng = ChaCha8Rng::seed_from_u64(104);
        let g = generators::erdos_renyi_connected(300, 0.02, 1..=9, &mut rng);
        let net = Network::new(g);
        let roots: Vec<u32> = (0..8).map(|i| i * 37).collect();
        let trees = spts(&net, &roots);
        let par = build_many(&net, &trees, 8, &mut rng);
        // Sequential: sum of independent single-tree constructions at q=1/√n.
        let mut seq = 0u64;
        for t in &trees {
            let out = distributed::build_default(&net, t, &mut rng);
            seq += out.ledger.rounds();
        }
        assert!(
            par.ledger.rounds() < seq,
            "parallel {} should beat sequential {}",
            par.ledger.rounds(),
            seq
        );
    }

    #[test]
    #[should_panic(expected = "need at least one tree")]
    fn rejects_empty_tree_list() {
        let mut rng = ChaCha8Rng::seed_from_u64(105);
        let g = generators::path(4, 1..=1, &mut rng);
        let net = Network::new(g);
        build_many(&net, &[], 1, &mut rng);
    }
}
