//! The prior distributed tree-routing approach (\[LP15\]/\[EN16b\]-style) — the
//! baseline row of the paper's Table 2.
//!
//! Like the paper's scheme, it cuts `T` into local trees at sampled vertices.
//! Unlike it, the *virtual tree* `T'` is **materialized**: every virtual
//! vertex receives a full copy of `T'` (Ω̃(√n) words of memory — the blowup
//! the paper eliminates) and a separate Thorup–Zwick scheme is built for `T'`
//! on top of per-local-tree schemes. Stitching the two levels inflates the
//! output sizes: tables carry the local gate toward the virtual heavy child
//! (`O(log n)` words) and labels carry a local gate label per virtual light
//! edge (`O(log² n)` words).
//!
//! Routing is memoryless two-level forwarding (exact, zero stretch): at each
//! hop the carrier compares local roots; same tree → local TZ rule; different
//! tree → a TZ step on the virtual tree decides ascend (go to parent) or
//! descend (locally route to the *gate* `p(c)` of the chosen virtual child
//! `c`, then cross).

use congest::{bfs, CostLedger, MemoryMeter, Network, WordSized};
use graphs::{RootedTree, VertexId, Weight};
use rand::Rng;

use crate::distributed::log2_ceil;
use crate::router::RouteError;
use crate::types::{route_step, RouteAction, TreeLabel, TreeTable};
use crate::tz;

/// Virtual-level information replicated to every vertex of a local tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VirtualEntry {
    /// DFS interval of the local root `w` in the virtual tree `T'`.
    pub enter: u64,
    /// End of `w`'s interval in `T'`.
    pub exit: u64,
    /// `w`'s parent in `T'`.
    pub parent: Option<VertexId>,
    /// `w`'s heavy child in `T'`.
    pub heavy: Option<VertexId>,
    /// Local label (within `T_w`) of the gate `p(heavy)` — the vertex whose
    /// tree child is the virtual heavy child.
    pub heavy_gate: Option<TreeLabel>,
}

impl WordSized for VirtualEntry {
    fn words(&self) -> usize {
        4 + self.heavy_gate.as_ref().map_or(1, WordSized::words)
    }
}

/// The baseline routing table: `O(log n)` words.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BaselineTable {
    /// Table within the local tree; `parent` is the *global* tree parent, so
    /// ascending works across local-tree boundaries.
    pub local: TreeTable,
    /// Root of this vertex's local tree.
    pub local_root: VertexId,
    /// Virtual-level entry (replicated from the local root).
    pub virt: VirtualEntry,
}

impl WordSized for BaselineTable {
    fn words(&self) -> usize {
        self.local.words() + 1 + self.virt.words()
    }
}

/// One light virtual edge in a baseline label, with its local gate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VirtualLightEdge {
    /// The virtual parent `x`.
    pub parent: VertexId,
    /// The virtual child `y`.
    pub child: VertexId,
    /// Local label of `p(y)` within `T_x` — `O(log n)` words.
    pub gate: TreeLabel,
}

impl WordSized for VirtualLightEdge {
    fn words(&self) -> usize {
        2 + self.gate.words()
    }
}

/// The baseline label: `O(log² n)` words.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BaselineLabel {
    /// Label within the target's local tree.
    pub local: TreeLabel,
    /// The target's local root `w*`.
    pub local_root: VertexId,
    /// `enter` time of `w*` in the virtual tree.
    pub virt_enter: u64,
    /// Light virtual edges on the `z' → w*` path, each with its local gate.
    pub virt_light: Vec<VirtualLightEdge>,
}

impl WordSized for BaselineLabel {
    fn words(&self) -> usize {
        self.local.words() + 2 + self.virt_light.iter().map(WordSized::words).sum::<usize>()
    }
}

/// A complete baseline scheme.
#[derive(Clone, Debug, Default)]
pub struct BaselineScheme {
    /// Per host vertex, the two-level table.
    pub tables: Vec<Option<BaselineTable>>,
    /// Per host vertex, the two-level label.
    pub labels: Vec<Option<BaselineLabel>>,
}

impl BaselineScheme {
    /// Largest table, in words.
    pub fn max_table_words(&self) -> usize {
        self.tables
            .iter()
            .flatten()
            .map(WordSized::words)
            .max()
            .unwrap_or(0)
    }

    /// Largest label, in words.
    pub fn max_label_words(&self) -> usize {
        self.labels
            .iter()
            .flatten()
            .map(WordSized::words)
            .max()
            .unwrap_or(0)
    }
}

/// Output of the baseline construction.
#[derive(Clone, Debug)]
pub struct BaselineOutput {
    /// The two-level scheme.
    pub scheme: BaselineScheme,
    /// Round accounting.
    pub ledger: CostLedger,
    /// Per-vertex memory peaks — Ω̃(√n) at virtual vertices by design.
    pub memory: MemoryMeter,
    /// `|U(T)|`.
    pub virtual_count: usize,
    /// Largest local-tree depth.
    pub max_local_depth: usize,
}

/// Build the baseline scheme for `tree` inside `network` with sampling
/// probability `q` (`None` → `1/√n`).
///
/// # Panics
///
/// Panics if the tree is empty or host sizes disagree.
pub fn build<R: Rng>(
    network: &Network,
    tree: &RootedTree,
    q: Option<f64>,
    rng: &mut R,
) -> BaselineOutput {
    build_with_backbone(network, tree, q, None, rng)
}

/// [`build`] with an optional pre-built BFS backbone depth (skips the BFS
/// protocol run and its metering, as in
/// [`crate::distributed::Config::backbone_depth`]).
///
/// # Panics
///
/// Panics if the tree is empty or host sizes disagree.
pub fn build_with_backbone<R: Rng>(
    network: &Network,
    tree: &RootedTree,
    q: Option<f64>,
    backbone_depth: Option<usize>,
    rng: &mut R,
) -> BaselineOutput {
    let host_n = tree.host_len();
    assert_eq!(host_n, network.len(), "tree host must match network");
    let n = tree.num_vertices();
    assert!(n > 0, "tree must be non-empty");
    let root = tree.root();
    let q = q.unwrap_or(1.0 / (n as f64).sqrt()).clamp(0.0, 1.0);

    let mut ledger = CostLedger::new();
    let mut memory = MemoryMeter::new(host_n);

    // BFS backbone for broadcasts (shared if the caller already has one).
    let d = match backbone_depth {
        Some(depth) => depth as u64,
        None => {
            let bfs_out = bfs::build_bfs_tree(network, root);
            ledger.charge_rounds(bfs_out.stats.rounds);
            for v in network.graph().vertices() {
                memory.add(v, 3);
            }
            bfs_out.depth as u64
        }
    };

    // Sample U(T) and partition into local trees (as in the main scheme).
    let mut sampled_flag = vec![false; host_n];
    for v in tree.vertices() {
        sampled_flag[v.index()] = v == root || rng.gen_bool(q);
    }
    let mut by_depth: Vec<VertexId> = tree.vertices().collect();
    by_depth.sort_by_key(|&v| (tree.depth_of(v).expect("member"), v));
    let mut local_root: Vec<Option<VertexId>> = vec![None; host_n];
    let mut local_depth = vec![0usize; host_n];
    let mut virt_parent: Vec<Option<VertexId>> = vec![None; host_n];
    for &v in &by_depth {
        let i = v.index();
        if sampled_flag[i] {
            local_root[i] = Some(v);
            if let Some(p) = tree.parent(v) {
                virt_parent[i] = local_root[p.index()];
            }
        } else {
            let p = tree.parent(v).expect("non-root member");
            local_root[i] = local_root[p.index()];
            local_depth[i] = local_depth[p.index()] + 1;
        }
    }
    let b = by_depth
        .iter()
        .map(|&v| local_depth[v.index()])
        .max()
        .unwrap_or(0) as u64;
    ledger.charge_rounds(b + 1);
    let sampled: Vec<VertexId> = by_depth
        .iter()
        .copied()
        .filter(|&v| sampled_flag[v.index()])
        .collect();
    let iters = log2_ceil(n.max(2)) as u64;

    // ---- Local schemes: a TZ scheme per local tree -------------------------
    // (Local waves, as in the main scheme: O(b + log n) rounds per stage.)
    let mut local_parent: Vec<Option<VertexId>> = vec![None; host_n];
    let mut local_weight: Vec<Weight> = vec![0; host_n];
    for &v in &by_depth {
        let i = v.index();
        if !sampled_flag[i] {
            local_parent[i] = tree.parent(v);
            local_weight[i] = tree.parent_weight(v);
        }
    }
    // One forest: all local trees share the host universe, so build each
    // local scheme from its own RootedTree.
    let mut local_scheme = crate::types::TreeScheme::new(host_n);
    for &w in &sampled {
        let mut p = vec![None; host_n];
        let mut pw = vec![0; host_n];
        for &v in &by_depth {
            let i = v.index();
            if local_root[i] == Some(w) && v != w {
                p[i] = local_parent[i];
                pw[i] = local_weight[i];
            }
        }
        let t_w = RootedTree::from_parents(w, p, pw);
        let s_w = tz::build(&t_w);
        for v in t_w.vertices() {
            local_scheme.tables[v.index()] = s_w.tables[v.index()].clone();
            local_scheme.labels[v.index()] = s_w.labels[v.index()].clone();
        }
    }
    ledger.charge_rounds(3 * (b + iters + 1));
    for v in tree.vertices() {
        let i = v.index();
        let mut words = 8;
        if let Some(l) = local_scheme.labels[i].as_ref() {
            words += l.words() + 4;
        }
        memory.add(v, words);
    }

    // ---- Materialize the virtual tree at every virtual vertex --------------
    // Convergecast + broadcast of |U| records of O(1) words; every virtual
    // vertex stores the whole of T' — the Ω̃(√n) memory step.
    ledger.charge_broadcast(sampled.len() as u64, d);
    for &x in &sampled {
        memory.add(x, 3 * sampled.len());
    }

    // The virtual tree T' as a RootedTree over the host universe.
    let virt_tree = {
        let mut p = vec![None; host_n];
        let mut pw = vec![0; host_n];
        for &x in &sampled {
            if let Some(vp) = virt_parent[x.index()] {
                p[x.index()] = Some(vp);
                pw[x.index()] = 1;
            }
        }
        RootedTree::from_parents(root, p, pw)
    };
    // Each virtual vertex computes the T' scheme locally — zero rounds.
    let virt_scheme = tz::build(&virt_tree);

    // ---- Gates: local labels of virtual children's tree-parents ------------
    // Each virtual child y sends its gate (local label of p(y) within
    // T_{p'(y)}) alongside the virtual-label broadcast.
    let gate_of = |y: VertexId| -> TreeLabel {
        match tree.parent(y) {
            Some(p) => local_scheme.labels[p.index()]
                .clone()
                .expect("gate parent has a local label"),
            None => TreeLabel {
                enter: 0,
                light: Vec::new(),
            },
        }
    };
    let gate_words: u64 = sampled.iter().map(|&y| gate_of(y).words() as u64).sum();
    ledger.charge_broadcast(gate_words, d);

    // ---- Assemble per-vertex tables and labels -----------------------------
    let mut scheme = BaselineScheme {
        tables: vec![None; host_n],
        labels: vec![None; host_n],
    };
    for &w in &sampled {
        let vt = virt_scheme.table(w).expect("virtual member").clone();
        let vl = virt_scheme.label(w).expect("virtual member").clone();
        let heavy_gate = vt.heavy.map(gate_of);
        let virt_entry = VirtualEntry {
            enter: vt.enter,
            exit: vt.exit,
            parent: virt_tree.parent(w),
            heavy: vt.heavy,
            heavy_gate,
        };
        let virt_light: Vec<VirtualLightEdge> = vl
            .light
            .iter()
            .map(|&(x, y)| VirtualLightEdge {
                parent: x,
                child: y,
                gate: gate_of(y),
            })
            .collect();
        // Distribute the entry and label material down T_w (pipelined wave).
        for &v in &by_depth {
            let i = v.index();
            if local_root[i] != Some(w) {
                continue;
            }
            let mut local = local_scheme.tables[i].clone().expect("local member");
            local.parent = tree.parent(v); // ascend across boundaries
            scheme.tables[i] = Some(BaselineTable {
                local,
                local_root: w,
                virt: virt_entry.clone(),
            });
            scheme.labels[i] = Some(BaselineLabel {
                local: local_scheme.labels[i].clone().expect("local member"),
                local_root: w,
                virt_enter: vt.enter,
                virt_light: virt_light.clone(),
            });
        }
    }
    ledger.charge_rounds(b + (iters * iters).max(1));
    for v in tree.vertices() {
        let i = v.index();
        let t = scheme.tables[i].as_ref().expect("member").words();
        let l = scheme.labels[i].as_ref().expect("member").words();
        memory.add(v, t + l);
    }

    BaselineOutput {
        scheme,
        ledger,
        memory,
        virtual_count: sampled.len(),
        max_local_depth: b as usize,
    }
}

/// Route `src → dst` with the baseline scheme; returns the visited path and
/// its weight. Exact (zero stretch) like every tree scheme.
///
/// # Errors
///
/// Mirrors [`crate::router::route`]'s failure modes.
pub fn route(
    tree: &RootedTree,
    scheme: &BaselineScheme,
    src: VertexId,
    dst: VertexId,
) -> Result<crate::router::RouteTrace, RouteError> {
    if scheme.tables[src.index()].is_none() {
        return Err(RouteError::SourceNotInTree(src));
    }
    let label = scheme.labels[dst.index()]
        .as_ref()
        .ok_or(RouteError::TargetNotInTree(dst))?;
    let mut path = vec![src];
    let mut weight: Weight = 0;
    let mut cur = src;
    let cap = 2 * tree.host_len() + 2;
    loop {
        if path.len() > cap {
            return Err(RouteError::Loop);
        }
        let table = scheme.tables[cur.index()].as_ref().expect("has table");
        let action = decide(cur, table, label).ok_or(RouteError::Stuck(cur))?;
        match action {
            RouteAction::Deliver => return Ok(crate::router::RouteTrace { path, weight }),
            RouteAction::Forward(next) => {
                let is_edge = tree.parent(cur) == Some(next) || tree.parent(next) == Some(cur);
                if !is_edge || scheme.tables[next.index()].is_none() {
                    return Err(RouteError::BadForward {
                        from: cur,
                        to: next,
                    });
                }
                weight += if tree.parent(cur) == Some(next) {
                    tree.parent_weight(cur)
                } else {
                    tree.parent_weight(next)
                };
                path.push(next);
                cur = next;
            }
        }
    }
}

/// The two-level forwarding rule at vertex `me`: local TZ when the local
/// roots agree, otherwise a virtual-level TZ step resolved to ascend or to a
/// descent gate. Exposed so higher-level schemes (the general-graph prior
/// baseline) can drive it hop by hop.
pub fn decide(me: VertexId, table: &BaselineTable, label: &BaselineLabel) -> Option<RouteAction> {
    if table.local_root == label.local_root {
        // Same local tree: plain TZ on the local scheme.
        return route_step(me, &table.local, &label.local);
    }
    // Virtual-level TZ step at w = our local root.
    let vt = TreeTable {
        enter: table.virt.enter,
        exit: table.virt.exit,
        parent: table.virt.parent,
        heavy: table.virt.heavy,
    };
    let vl = TreeLabel {
        enter: label.virt_enter,
        light: label
            .virt_light
            .iter()
            .map(|e| (e.parent, e.child))
            .collect(),
    };
    match route_step(table.local_root, &vt, &vl)? {
        RouteAction::Deliver => None, // impossible: roots differ
        RouteAction::Forward(c) => {
            if Some(c) == table.virt.parent {
                // Ascend: toward our tree parent (crosses the boundary at w).
                return table.local.parent.map(RouteAction::Forward);
            }
            // Descend toward virtual child c: local-route to its gate p(c),
            // then cross the tree edge (p(c), c).
            let gate = if Some(c) == table.virt.heavy {
                table.virt.heavy_gate.as_ref()?
            } else {
                &label.virt_light.iter().find(|e| e.child == c)?.gate
            };
            if gate.enter == table.local.enter {
                // We are the gate: cross to the virtual child itself.
                return Some(RouteAction::Forward(c));
            }
            route_step(me, &table.local, gate)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::{generators, tree::shortest_path_tree};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup(n: usize, seed: u64) -> (Network, RootedTree, ChaCha8Rng) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = generators::erdos_renyi_connected(n, 2.5 / n as f64, 1..=15, &mut rng);
        let t = shortest_path_tree(&g, VertexId(0));
        (Network::new(g), t, rng)
    }

    fn verify_exact(tree: &RootedTree, scheme: &BaselineScheme) {
        let verts: Vec<VertexId> = tree.vertices().collect();
        for &u in &verts {
            for &v in &verts {
                let trace =
                    route(tree, scheme, u, v).unwrap_or_else(|e| panic!("routing {u} -> {v}: {e}"));
                assert_eq!(
                    Some(trace.weight),
                    tree.tree_distance(u, v),
                    "stretch violation {u} -> {v}"
                );
            }
        }
    }

    #[test]
    fn baseline_routes_exactly() {
        for seed in 0..4 {
            let (net, t, mut rng) = setup(70, seed);
            let out = build(&net, &t, None, &mut rng);
            verify_exact(&t, &out.scheme);
        }
    }

    #[test]
    fn baseline_routes_exactly_with_aggressive_sampling() {
        let (net, t, mut rng) = setup(60, 91);
        let out = build(&net, &t, Some(0.5), &mut rng);
        verify_exact(&t, &out.scheme);
    }

    #[test]
    fn baseline_single_local_tree() {
        let (net, t, mut rng) = setup(40, 92);
        let out = build(&net, &t, Some(0.0), &mut rng);
        assert_eq!(out.virtual_count, 1);
        verify_exact(&t, &out.scheme);
    }

    #[test]
    fn baseline_all_virtual() {
        let (net, t, mut rng) = setup(40, 93);
        let out = build(&net, &t, Some(1.0), &mut rng);
        assert_eq!(out.virtual_count, 40);
        verify_exact(&t, &out.scheme);
    }

    #[test]
    fn baseline_memory_scales_with_virtual_count() {
        let (net, t, mut rng) = setup(500, 94);
        let out = build(&net, &t, None, &mut rng);
        // Virtual vertices hold a full copy of T': ≥ 3·|U| words.
        assert!(
            out.memory.max_peak() >= 3 * out.virtual_count,
            "baseline memory {} should be at least 3·|U| = {}",
            out.memory.max_peak(),
            3 * out.virtual_count
        );
    }

    #[test]
    fn baseline_sizes_are_larger_than_ours() {
        let (net, t, mut rng) = setup(300, 95);
        let base = build(&net, &t, None, &mut rng);
        let ours = crate::distributed::build_default(&net, &t, &mut rng);
        assert!(base.scheme.max_table_words() > ours.scheme.max_table_words());
        assert!(base.scheme.max_label_words() >= ours.scheme.max_label_words());
    }

    #[test]
    fn baseline_errors_on_foreign_endpoints() {
        let mut rng = ChaCha8Rng::seed_from_u64(96);
        let g = generators::path(5, 1..=1, &mut rng);
        // Tree spanning only part of the host: route from outside fails.
        let t = RootedTree::from_parents(
            VertexId(0),
            vec![None, Some(VertexId(0)), None, None, None],
            vec![0, 1, 0, 0, 0],
        );
        let net = Network::new(g);
        let out = build(&net, &t, None, &mut rng);
        assert_eq!(
            route(&t, &out.scheme, VertexId(3), VertexId(0)),
            Err(RouteError::SourceNotInTree(VertexId(3)))
        );
        assert_eq!(
            route(&t, &out.scheme, VertexId(0), VertexId(3)),
            Err(RouteError::TargetNotInTree(VertexId(3)))
        );
    }
}
