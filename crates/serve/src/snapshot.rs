//! The immutable serving snapshot: one graph, one scheme, shared by `Arc`.
//!
//! A serving process loads the persisted scheme once and never mutates it;
//! workers hold `Arc` clones, so there is no locking on the query path and
//! a snapshot swap (e.g. after a rebuild) is a single pointer exchange in
//! the owner.

use std::sync::Arc;

use graphs::Graph;
use routing::RoutingScheme;

/// An immutable pairing of a graph with a routing scheme built on it.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// The network the scheme routes on.
    pub graph: Graph,
    /// The scheme being served.
    pub scheme: RoutingScheme,
}

/// How every consumer holds a [`Snapshot`]: reference-counted, immutable.
pub type SharedSnapshot = Arc<Snapshot>;

impl Snapshot {
    /// Pair `graph` with `scheme` and freeze them behind an `Arc`.
    ///
    /// # Panics
    ///
    /// Panics if the scheme's table/label vectors do not cover the graph's
    /// vertex set — serving such a pair would index out of bounds on the
    /// first query.
    pub fn share(graph: Graph, scheme: RoutingScheme) -> SharedSnapshot {
        let n = graph.num_vertices();
        assert_eq!(
            scheme.tables.len(),
            n,
            "scheme tables cover {} vertices but the graph has {n}",
            scheme.tables.len()
        );
        assert_eq!(
            scheme.labels.len(),
            n,
            "scheme labels cover {} vertices but the graph has {n}",
            scheme.labels.len()
        );
        Arc::new(Snapshot { graph, scheme })
    }
}
