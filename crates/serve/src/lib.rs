//! The query-serving plane: a persisted scheme answered at memory speed.
//!
//! The paper's scheme is built once and then queried forever; every other
//! crate in this workspace prices the *build* (rounds, words, memory) or
//! simulates the forwarding fabric round by round. This crate measures the
//! *serving lifetime*: a [`Snapshot`] — graph plus routing scheme, loaded
//! from the checksummed [`routing::persist`] container — is shared immutably
//! (`Arc`) with a long-lived pool of worker threads ([`pool::ServePool`])
//! that answer **route**, **distance-estimate**, and **trace** queries
//! ([`query::Query`]) from preallocated per-worker response arenas: after
//! the first few batches warm the buffers, the steady state allocates
//! nothing, the same discipline as `congest::plane`.
//!
//! Determinism splits the way the bench suite splits it. The *simulated*
//! side — query stream, query-kind mix, answered/unreachable partition,
//! aggregate weight and hops, cross-check sampling, and an order-sensitive
//! FNV answer checksum — is a pure function of `(snapshot, seed, config)`
//! and is byte-identical at any thread count: batches are split into
//! contiguous per-worker chunks and merged back in worker order, so global
//! query order never depends on scheduling. The *wall* side — QPS,
//! nearest-rank p50/p95/p99 per-query latency via [`obs::metrics`] — is
//! machine truth, reported but never gated.
//!
//! Correctness is not assumed: a rate-configurable sample of served answers
//! is re-derived through the central [`routing::router`] /
//! [`routing::oracle::DistanceOracle`] and compared byte for byte
//! ([`query::check_answer`]); any disagreement is a counted `mismatch`
//! (expected 0, gated by tests and the CLI exit code).
//!
//! [`scenario`] supplies the seeded load generators: a *closed loop*
//! (back-to-back batches — the maximum-throughput measurement) and an *open
//! loop* (batches dispatched on a timed schedule at an offered QPS), plus a
//! saturation sweep that finds the QPS knee the same way the traffic plane
//! finds its rate knee. Results flow out as
//! [`obs::serve::ServeSummary`] records.

pub mod pool;
pub mod query;
pub mod scenario;
pub mod snapshot;

pub use pool::{BatchResult, ServePool};
pub use query::{check_answer, Answer, Query, QueryKind};
pub use scenario::{
    generate_stream, run_closed, run_open, sweep_open, KneePoint, ServeConfig, ServeSlo,
    ServeWorkload,
};
pub use snapshot::{SharedSnapshot, Snapshot};
