//! The long-lived worker pool and its zero-steady-state-allocation batches.
//!
//! One pool is started per serving process. Each worker owns a recycled
//! [`Task`] — input queries plus a response arena (answers, trace paths,
//! per-query latencies) — that shuttles between coordinator and worker over
//! ownership-passing channels, the same discipline as `congest::plane`:
//! after the first few batches size the buffers, a batch allocates nothing.
//!
//! Determinism: the coordinator splits every batch into *contiguous*
//! per-worker chunks and merges the returned arenas back *in worker order*,
//! so the merged answer sequence is exactly the query sequence regardless
//! of which worker finishes first or how many workers exist. Cross-check
//! sampling is keyed on the global query index (a seeded hash against the
//! configured rate), never on the wall clock, so `checks` and `mismatches`
//! are sim columns too.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

use graphs::VertexId;
use obs::metrics::Stopwatch;
use routing::oracle::DistanceOracle;

use crate::query::{answer_query, check_answer, Answer, Query};
use crate::snapshot::SharedSnapshot;

/// A worker's unit of work: owned input plus the response arena, recycled
/// batch after batch.
struct Task {
    /// Queries to answer, copied from the caller's batch slice.
    queries: Vec<Query>,
    /// Global index of `queries[0]` in the run's stream (drives check
    /// sampling).
    base_index: u64,
    /// Sampling threshold: check query `i` iff `splitmix64(salt ^ i) <
    /// threshold`.
    check_threshold: u64,
    /// Seed salt for the sampling hash.
    check_salt: u64,
    /// One answer per query, in query order.
    answers: Vec<Answer>,
    /// Trace-path arena; `Answer::Trace` offsets index into it.
    paths: Vec<VertexId>,
    /// Per-query latency in nanoseconds, in query order.
    latencies: Vec<u64>,
    /// Answers cross-checked in this chunk.
    checks: u64,
    /// Cross-checks that disagreed with the central answer.
    mismatches: u64,
}

impl Task {
    fn empty() -> Task {
        Task {
            queries: Vec::new(),
            base_index: 0,
            check_threshold: 0,
            check_salt: 0,
            answers: Vec::new(),
            paths: Vec::new(),
            latencies: Vec::new(),
            checks: 0,
            mismatches: 0,
        }
    }
}

/// SplitMix64 — the check-sampling hash (stateless, index-keyed).
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Convert a check rate in `[0, 1]` to a `u64` sampling threshold.
pub(crate) fn check_threshold(rate: f64) -> u64 {
    if rate >= 1.0 {
        u64::MAX
    } else if rate <= 0.0 {
        0
    } else {
        (rate * u64::MAX as f64) as u64
    }
}

/// The merged result of one batch, owned by the caller and reused across
/// batches (cleared, never shrunk).
#[derive(Default)]
pub struct BatchResult {
    /// One answer per query, in query order.
    pub answers: Vec<Answer>,
    /// Trace-path arena for this batch; `Answer::Trace` offsets are
    /// rebased into it during the merge.
    pub paths: Vec<VertexId>,
    /// Per-query latency in nanoseconds, in query order.
    pub latencies: Vec<u64>,
    /// Answers cross-checked.
    pub checks: u64,
    /// Cross-checks that disagreed.
    pub mismatches: u64,
}

impl BatchResult {
    fn clear(&mut self) {
        self.answers.clear();
        self.paths.clear();
        self.latencies.clear();
        self.checks = 0;
        self.mismatches = 0;
    }
}

/// A long-lived pool of serving workers over one shared snapshot.
pub struct ServePool {
    snapshot: SharedSnapshot,
    task_txs: Vec<Sender<Task>>,
    done_rx: Receiver<(usize, Task)>,
    handles: Vec<JoinHandle<()>>,
    /// Recycled task buffers, one slot per worker.
    parked: Vec<Option<Task>>,
}

impl ServePool {
    /// Spawn `threads` workers over `snapshot` (at least one).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` or a worker thread cannot be spawned.
    pub fn start(snapshot: SharedSnapshot, threads: usize) -> ServePool {
        assert!(threads > 0, "a serving pool needs at least one worker");
        let (done_tx, done_rx) = channel::<(usize, Task)>();
        let mut task_txs = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        for worker in 0..threads {
            let (task_tx, task_rx) = channel::<Task>();
            task_txs.push(task_tx);
            let done = done_tx.clone();
            let snap = snapshot.clone();
            let handle = std::thread::Builder::new()
                .name(format!("serve-worker-{worker}"))
                .spawn(move || worker_loop(worker, &snap, &task_rx, &done))
                .expect("spawn serving worker");
            handles.push(handle);
        }
        ServePool {
            snapshot,
            task_txs,
            done_rx,
            handles,
            parked: (0..threads).map(|_| Some(Task::empty())).collect(),
        }
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.task_txs.len()
    }

    /// The snapshot every worker serves from.
    pub fn snapshot(&self) -> &SharedSnapshot {
        &self.snapshot
    }

    /// Serve one batch: split `queries` into contiguous per-worker chunks,
    /// dispatch, and merge the arenas back into `out` in worker order (=
    /// query order). `base_index` is the global stream index of
    /// `queries[0]`; `check_rate` is the sampled cross-check fraction and
    /// `check_salt` its hash seed.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread has died (its channel disconnected).
    pub fn serve_batch(
        &mut self,
        queries: &[Query],
        base_index: u64,
        check_rate: f64,
        check_salt: u64,
        out: &mut BatchResult,
    ) {
        out.clear();
        if queries.is_empty() {
            return;
        }
        let threads = self.task_txs.len();
        let chunk = queries.len().div_ceil(threads);
        let threshold = check_threshold(check_rate);
        let mut sent = 0usize;
        for (worker, part) in queries.chunks(chunk).enumerate() {
            let mut task = self.parked[worker].take().expect("parked task present");
            task.queries.clear();
            task.queries.extend_from_slice(part);
            task.base_index = base_index + (worker * chunk) as u64;
            task.check_threshold = threshold;
            task.check_salt = check_salt;
            self.task_txs[worker].send(task).expect("worker alive");
            sent += 1;
        }
        for _ in 0..sent {
            let (worker, task) = self.done_rx.recv().expect("worker alive");
            self.parked[worker] = Some(task);
        }
        // Merge in worker order: chunks were contiguous, so this is query
        // order no matter the completion order above.
        for slot in self.parked.iter_mut().take(sent) {
            let task = slot.as_mut().expect("task returned");
            let path_base = out.paths.len() as u32;
            for &a in &task.answers {
                out.answers.push(match a {
                    Answer::Trace {
                        weight,
                        hops,
                        tree_root,
                        level,
                        path_start,
                        path_len,
                    } => Answer::Trace {
                        weight,
                        hops,
                        tree_root,
                        level,
                        path_start: path_base + path_start,
                        path_len,
                    },
                    other => other,
                });
            }
            out.paths.extend_from_slice(&task.paths);
            out.latencies.extend_from_slice(&task.latencies);
            out.checks += task.checks;
            out.mismatches += task.mismatches;
        }
    }
}

impl Drop for ServePool {
    fn drop(&mut self) {
        self.task_txs.clear(); // disconnect: workers exit their recv loop
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(
    worker: usize,
    snap: &SharedSnapshot,
    tasks: &Receiver<Task>,
    done: &Sender<(usize, Task)>,
) {
    let oracle = DistanceOracle::new(&snap.scheme);
    while let Ok(mut task) = tasks.recv() {
        task.answers.clear();
        task.paths.clear();
        task.latencies.clear();
        task.checks = 0;
        task.mismatches = 0;
        for i in 0..task.queries.len() {
            let q = task.queries[i];
            let sw = Stopwatch::start();
            let answer = answer_query(snap, &oracle, q, &mut task.paths);
            task.latencies.push(sw.elapsed_ns());
            task.answers.push(answer);
            let index = task.base_index + i as u64;
            // threshold == MAX means rate 1.0: check unconditionally so
            // "check everything" is exact, not probabilistic.
            if task.check_threshold == u64::MAX
                || (task.check_threshold > 0
                    && splitmix64(task.check_salt ^ index) < task.check_threshold)
            {
                task.checks += 1;
                if !check_answer(snap, &oracle, q, answer, &task.paths) {
                    task.mismatches += 1;
                }
            }
        }
        if done.send((worker, task)).is_err() {
            return; // pool dropped mid-flight
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryKind;
    use crate::snapshot::Snapshot;
    use graphs::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use routing::scheme::{build, BuildParams};

    fn snap(n: usize, seed: u64) -> SharedSnapshot {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = generators::erdos_renyi_connected(n, 3.0 / n as f64, 1..=9, &mut rng);
        let built = build(&g, &BuildParams::new(2), &mut rng);
        Snapshot::share(g, built.scheme)
    }

    fn stream(n: u32, count: usize) -> Vec<Query> {
        (0..count)
            .map(|i| {
                let kind = match i % 3 {
                    0 => QueryKind::Route,
                    1 => QueryKind::Distance,
                    _ => QueryKind::Trace,
                };
                Query {
                    kind,
                    src: VertexId(i as u32 * 7 % n),
                    dst: VertexId((i as u32 * 13 + 1) % n),
                }
            })
            .collect()
    }

    #[test]
    fn merge_preserves_query_order_at_any_thread_count() {
        let s = snap(50, 0x900);
        let queries = stream(50, 200);
        let mut reference: Option<Vec<Answer>> = None;
        for threads in [1usize, 2, 8] {
            let mut pool = ServePool::start(s.clone(), threads);
            let mut out = BatchResult::default();
            pool.serve_batch(&queries, 0, 1.0, 0xABC, &mut out);
            assert_eq!(out.answers.len(), queries.len());
            assert_eq!(out.checks, queries.len() as u64, "rate 1.0 checks all");
            assert_eq!(out.mismatches, 0);
            // Rebased trace paths must still verify against the central
            // router after the merge.
            let oracle = DistanceOracle::new(&s.scheme);
            for (q, &a) in queries.iter().zip(&out.answers) {
                assert!(check_answer(&s, &oracle, *q, a, &out.paths));
            }
            match &reference {
                None => reference = Some(out.answers.clone()),
                Some(r) => assert_eq!(
                    r, &out.answers,
                    "{threads} threads changed the merged answers"
                ),
            }
        }
    }

    #[test]
    fn buffers_are_recycled_across_batches() {
        let s = snap(40, 0x901);
        let queries = stream(40, 64);
        let mut pool = ServePool::start(s, 2);
        let mut out = BatchResult::default();
        pool.serve_batch(&queries, 0, 0.0, 0, &mut out);
        let first = out.answers.clone();
        for round in 1..5u64 {
            pool.serve_batch(&queries, round * 64, 0.0, 0, &mut out);
            assert_eq!(out.answers, first, "recycled buffers changed answers");
        }
    }

    #[test]
    fn check_threshold_covers_the_extremes() {
        assert_eq!(check_threshold(0.0), 0);
        assert_eq!(check_threshold(-1.0), 0);
        assert_eq!(check_threshold(1.0), u64::MAX);
        assert_eq!(check_threshold(2.0), u64::MAX);
        let half = check_threshold(0.5);
        assert!(half > u64::MAX / 3 && half < u64::MAX / 3 * 2);
    }
}
