//! Queries, answers, the lean serving path, and the central cross-check.
//!
//! The serving path re-implements the forwarding walk of
//! [`routing::router`] without its per-route `Vec` allocation: route
//! queries count hops and sum weight in registers, trace queries write the
//! path into a caller-owned arena. That independence is what makes the
//! sampled cross-check meaningful — the served answer and the central
//! answer come from two different code paths over the same tables, and
//! [`check_answer`] demands they agree byte for byte.

use graphs::{VertexId, Weight, INFINITY};
use routing::oracle::DistanceOracle;
use routing::router::{self, GraphRouteError, Selection};
use routing::scheme::{LabelEntry, TreeLabelKind, TreeTableKind};
use tree_routing::baseline;
use tree_routing::types::{route_step, RouteAction};

use crate::snapshot::Snapshot;

/// What a query asks for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryKind {
    /// Route summary: weight, hops, committed tree.
    Route,
    /// Distance estimate from the `2k − 1` oracle.
    Distance,
    /// Full hop-by-hop path.
    Trace,
}

/// One query: a kind and an endpoint pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Query {
    /// What the client asked for.
    pub kind: QueryKind,
    /// Source vertex.
    pub src: VertexId,
    /// Destination vertex.
    pub dst: VertexId,
}

/// One served answer. `Copy` and arena-indexed so batches of answers live
/// in flat reusable buffers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Answer {
    /// A completed route summary.
    Route {
        /// Total routed weight.
        weight: Weight,
        /// Edges traversed.
        hops: u32,
        /// Root of the committed tree.
        tree_root: VertexId,
        /// Hierarchy level of the chosen label entry.
        level: u32,
    },
    /// A distance estimate ([`INFINITY`] never appears here; that case is
    /// reported as [`Answer::Unreachable`]).
    Distance {
        /// The oracle's estimate.
        estimate: Weight,
    },
    /// A completed trace; the path lives in the batch arena at
    /// `paths[path_start .. path_start + path_len]`.
    Trace {
        /// Total routed weight.
        weight: Weight,
        /// Edges traversed.
        hops: u32,
        /// Root of the committed tree.
        tree_root: VertexId,
        /// Hierarchy level of the chosen label entry.
        level: u32,
        /// Offset of the path in the arena's path buffer.
        path_start: u32,
        /// Path length in vertices (hops + 1).
        path_len: u32,
    },
    /// The endpoints share no tree (disconnected pair).
    Unreachable,
    /// The forwarding walk failed (stuck rule, bad forward, loop) — a
    /// scheme-construction bug surfaced as a counted error, never a panic.
    Error,
}

/// Source-optimal label-entry selection — the same `d̂(u,w) + d̂(w,v)`
/// minimization as [`Selection::SourceOptimal`], re-derived locally.
fn select_entry(snap: &Snapshot, src: VertexId, dst: VertexId) -> Option<&LabelEntry> {
    let src_table = &snap.scheme.tables[src.index()];
    let mut chosen: Option<(&LabelEntry, Weight)> = None;
    for e in &snap.scheme.labels[dst.index()].entries {
        let Some(te) = src_table.entry(e.pivot) else {
            continue;
        };
        let cost = te.dist.saturating_add(e.dist);
        if chosen.is_none_or(|(_, c)| cost < c) {
            chosen = Some((e, cost));
        }
    }
    chosen.map(|(e, _)| e)
}

/// Hop-by-hop walk in the tree `entry` names, feeding every visited vertex
/// (source included) to `visit`. Returns `(weight, hops)`.
fn walk(
    snap: &Snapshot,
    entry: &LabelEntry,
    src: VertexId,
    mut visit: impl FnMut(VertexId),
) -> Result<(Weight, u32), ()> {
    let w = entry.pivot;
    let cap = 4 * snap.graph.num_vertices() + 4;
    let mut cur = src;
    let mut weight: Weight = 0;
    let mut hops: u32 = 0;
    visit(cur);
    loop {
        if hops as usize > cap {
            return Err(()); // forwarding loop
        }
        let te = snap.scheme.tables[cur.index()].entry(w).ok_or(())?;
        let action = match (&te.table, &entry.tree_label) {
            (TreeTableKind::Ours(t), TreeLabelKind::Ours(l)) => route_step(cur, t, l),
            (TreeTableKind::Prior(t), TreeLabelKind::Prior(l)) => baseline::decide(cur, t, l),
            _ => None,
        }
        .ok_or(())?;
        match action {
            RouteAction::Deliver => return Ok((weight, hops)),
            RouteAction::Forward(next) => {
                let ew = snap.graph.edge_weight(cur, next).ok_or(())?;
                weight += ew;
                hops += 1;
                cur = next;
                visit(cur);
            }
        }
    }
}

/// Answer one query against the snapshot. Trace paths are appended to
/// `paths` (the per-worker arena); all other answers touch no memory
/// beyond the tables themselves.
pub fn answer_query(
    snap: &Snapshot,
    oracle: &DistanceOracle<'_>,
    q: Query,
    paths: &mut Vec<VertexId>,
) -> Answer {
    match q.kind {
        QueryKind::Route => {
            if q.src == q.dst {
                return Answer::Route {
                    weight: 0,
                    hops: 0,
                    tree_root: q.src,
                    level: 0,
                };
            }
            let Some(entry) = select_entry(snap, q.src, q.dst) else {
                return Answer::Unreachable;
            };
            match walk(snap, entry, q.src, |_| {}) {
                Ok((weight, hops)) => Answer::Route {
                    weight,
                    hops,
                    tree_root: entry.pivot,
                    level: entry.level as u32,
                },
                Err(()) => Answer::Error,
            }
        }
        QueryKind::Distance => {
            let estimate = oracle.query(q.src, q.dst);
            if estimate == INFINITY {
                Answer::Unreachable
            } else {
                Answer::Distance { estimate }
            }
        }
        QueryKind::Trace => {
            let path_start = paths.len() as u32;
            if q.src == q.dst {
                paths.push(q.src);
                return Answer::Trace {
                    weight: 0,
                    hops: 0,
                    tree_root: q.src,
                    level: 0,
                    path_start,
                    path_len: 1,
                };
            }
            let Some(entry) = select_entry(snap, q.src, q.dst) else {
                return Answer::Unreachable;
            };
            match walk(snap, entry, q.src, |v| paths.push(v)) {
                Ok((weight, hops)) => Answer::Trace {
                    weight,
                    hops,
                    tree_root: entry.pivot,
                    level: entry.level as u32,
                    path_start,
                    path_len: hops + 1,
                },
                Err(()) => {
                    paths.truncate(path_start as usize); // discard the partial path
                    Answer::Error
                }
            }
        }
    }
}

/// Re-derive `answer` through the central [`routing::router`] /
/// [`DistanceOracle`] and compare byte for byte. Returns `true` when the
/// served answer is exactly what the central path produces.
pub fn check_answer(
    snap: &Snapshot,
    oracle: &DistanceOracle<'_>,
    q: Query,
    answer: Answer,
    paths: &[VertexId],
) -> bool {
    match q.kind {
        QueryKind::Route | QueryKind::Trace => {
            let central = router::route_with(
                &snap.graph,
                &snap.scheme,
                q.src,
                q.dst,
                Selection::SourceOptimal,
            );
            match (central, answer) {
                (
                    Ok(t),
                    Answer::Route {
                        weight,
                        hops,
                        tree_root,
                        level,
                    },
                ) => {
                    t.weight == weight
                        && t.hops() == hops as usize
                        && t.tree_root == tree_root
                        && t.level == level as usize
                }
                (
                    Ok(t),
                    Answer::Trace {
                        weight,
                        hops,
                        tree_root,
                        level,
                        path_start,
                        path_len,
                    },
                ) => {
                    let served = &paths[path_start as usize..(path_start + path_len) as usize];
                    t.weight == weight
                        && t.hops() == hops as usize
                        && t.tree_root == tree_root
                        && t.level == level as usize
                        && t.path == served
                }
                (Err(GraphRouteError::NoCommonTree), Answer::Unreachable) => true,
                (Err(_), Answer::Error) => true,
                _ => false,
            }
        }
        QueryKind::Distance => {
            let central = oracle.query(q.src, q.dst);
            match answer {
                Answer::Distance { estimate } => estimate == central,
                Answer::Unreachable => central == INFINITY,
                _ => false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::Snapshot;
    use graphs::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use routing::scheme::{build, BuildParams};

    fn snap(n: usize, seed: u64) -> crate::SharedSnapshot {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = generators::erdos_renyi_connected(n, 3.0 / n as f64, 1..=9, &mut rng);
        let built = build(&g, &BuildParams::new(2), &mut rng);
        Snapshot::share(g, built.scheme)
    }

    #[test]
    fn lean_route_matches_central_router_exactly() {
        let s = snap(60, 0x5E01);
        let oracle = DistanceOracle::new(&s.scheme);
        let mut paths = Vec::new();
        for a in 0..60u32 {
            let b = (a * 7 + 13) % 60;
            let q = Query {
                kind: QueryKind::Route,
                src: VertexId(a),
                dst: VertexId(b),
            };
            let ans = answer_query(&s, &oracle, q, &mut paths);
            assert!(check_answer(&s, &oracle, q, ans, &paths), "pair {a}->{b}");
        }
    }

    #[test]
    fn trace_paths_land_in_the_arena() {
        let s = snap(40, 0x5E02);
        let oracle = DistanceOracle::new(&s.scheme);
        let mut paths = Vec::new();
        let q = Query {
            kind: QueryKind::Trace,
            src: VertexId(0),
            dst: VertexId(39),
        };
        let ans = answer_query(&s, &oracle, q, &mut paths);
        let Answer::Trace {
            hops,
            path_start,
            path_len,
            ..
        } = ans
        else {
            panic!("expected a trace, got {ans:?}");
        };
        assert_eq!(path_len, hops + 1);
        let served = &paths[path_start as usize..(path_start + path_len) as usize];
        assert_eq!(served.first(), Some(&VertexId(0)));
        assert_eq!(served.last(), Some(&VertexId(39)));
        assert!(check_answer(&s, &oracle, q, ans, &paths));
    }

    #[test]
    fn distance_estimate_matches_the_oracle() {
        let s = snap(50, 0x5E03);
        let oracle = DistanceOracle::new(&s.scheme);
        let mut paths = Vec::new();
        let q = Query {
            kind: QueryKind::Distance,
            src: VertexId(3),
            dst: VertexId(47),
        };
        match answer_query(&s, &oracle, q, &mut paths) {
            Answer::Distance { estimate } => {
                assert_eq!(estimate, oracle.query(VertexId(3), VertexId(47)));
            }
            other => panic!("expected an estimate, got {other:?}"),
        }
    }

    #[test]
    fn self_queries_are_trivial() {
        let s = snap(30, 0x5E04);
        let oracle = DistanceOracle::new(&s.scheme);
        let mut paths = Vec::new();
        for kind in [QueryKind::Route, QueryKind::Distance, QueryKind::Trace] {
            let q = Query {
                kind,
                src: VertexId(7),
                dst: VertexId(7),
            };
            let ans = answer_query(&s, &oracle, q, &mut paths);
            assert!(check_answer(&s, &oracle, q, ans, &paths), "{kind:?}");
        }
    }
}
