//! Seeded load generation and the closed/open-loop serving scenarios.
//!
//! The query stream is a pure function of `(snapshot, seed, config)`: pairs
//! come from the traffic plane's seeded [`traffic::workload::Workload`]
//! models (uniform / hotspot / adversarial worst-pairs), the query-kind mix
//! from an independent seeded stream. Both loop disciplines serve the *same*
//! stream, so their simulated columns are identical — only the pacing (and
//! therefore the wall columns) differs:
//!
//! * **closed loop** ([`run_closed`]) dispatches batches back to back; its
//!   achieved QPS is the pool's saturation throughput;
//! * **open loop** ([`run_open`]) dispatches batches on a timed schedule at
//!   an offered QPS; [`sweep_open`] walks a rate ladder and reports the
//!   *knee* — the largest offered rate the pool still absorbs (achieved ≥
//!   95% of offered, p99 under the SLO), the serving-side analog of the
//!   traffic plane's saturation-rate search.

use graphs::INFINITY;
use obs::metrics::{quantile_ns, Stopwatch};
use obs::serve::ServeSummary;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use traffic::workload::{Workload, WorkloadKind};

use crate::pool::{BatchResult, ServePool};
use crate::query::{Answer, Query, QueryKind};
use crate::snapshot::Snapshot;

/// Salt separating the query-kind mix stream from the pair stream.
const KIND_SALT: u64 = 0x5E12_E5A1_7000;
/// Salt keying the cross-check sampling hash.
const CHECK_SALT: u64 = 0xC4EC_4C4E_C4EC;

/// Query-kind mix, in percent: route / distance / trace.
const MIX_ROUTE_PCT: u64 = 60;
const MIX_DISTANCE_PCT: u64 = 25;

/// The serving workload models (a subset of the traffic matrices, plus the
/// adversarial worst-pair miner).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeWorkload {
    /// Uniformly random distinct pairs.
    Uniform,
    /// All queries target the highest-degree vertex.
    Hotspot,
    /// Worst-estimated-stretch pairs mined from the oracle.
    Adversarial,
}

impl ServeWorkload {
    /// CLI / record name.
    pub fn name(self) -> &'static str {
        match self {
            ServeWorkload::Uniform => "uniform",
            ServeWorkload::Hotspot => "hotspot",
            ServeWorkload::Adversarial => "adversarial",
        }
    }

    /// Parse a CLI name.
    pub fn parse(name: &str) -> Option<ServeWorkload> {
        match name {
            "uniform" => Some(ServeWorkload::Uniform),
            "hotspot" => Some(ServeWorkload::Hotspot),
            "adversarial" => Some(ServeWorkload::Adversarial),
            _ => None,
        }
    }

    /// The traffic-plane workload backing this serving workload.
    fn traffic_kind(self) -> WorkloadKind {
        match self {
            ServeWorkload::Uniform => WorkloadKind::Uniform,
            ServeWorkload::Hotspot => WorkloadKind::Hotspot,
            ServeWorkload::Adversarial => WorkloadKind::WorstPairs,
        }
    }
}

/// One serving run's configuration.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Pair distribution.
    pub workload: ServeWorkload,
    /// Total queries in the stream.
    pub queries: usize,
    /// Queries per dispatched batch.
    pub batch: usize,
    /// Worker threads.
    pub threads: usize,
    /// Stream seed.
    pub seed: u64,
    /// Fraction of answers cross-checked centrally, in `[0, 1]`.
    pub check_rate: f64,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workload: ServeWorkload::Uniform,
            queries: 4096,
            batch: 64,
            threads: 1,
            seed: 0x5E12E,
            check_rate: 0.05,
        }
    }
}

/// The saturation criteria for the open-loop knee.
#[derive(Clone, Copy, Debug)]
pub struct ServeSlo {
    /// Minimum achieved/offered QPS ratio.
    pub min_delivered: f64,
    /// p99 per-query latency ceiling in nanoseconds.
    pub max_p99_ns: u64,
}

impl Default for ServeSlo {
    fn default() -> ServeSlo {
        ServeSlo {
            min_delivered: 0.95,
            max_p99_ns: 5_000_000,
        }
    }
}

/// One rung of an open-loop rate ladder.
#[derive(Clone, Debug)]
pub struct KneePoint {
    /// Offered rate in queries per second.
    pub offered: f64,
    /// The run at that rate.
    pub summary: ServeSummary,
}

/// Generate the seeded query stream for `config` over `snap`.
///
/// # Panics
///
/// Panics if the graph has fewer than two vertices (no pairs to draw).
pub fn generate_stream(snap: &Snapshot, config: &ServeConfig) -> Vec<Query> {
    let mut workload = Workload::prepare(
        config.workload.traffic_kind(),
        &snap.graph,
        &snap.scheme,
        config.seed,
    );
    let mut pair_rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut kind_rng = ChaCha8Rng::seed_from_u64(config.seed ^ KIND_SALT);
    (0..config.queries)
        .map(|_| {
            let (src, dst) = workload.draw(&mut pair_rng);
            let roll = kind_rng.gen_range(0..100u64);
            let kind = if roll < MIX_ROUTE_PCT {
                QueryKind::Route
            } else if roll < MIX_ROUTE_PCT + MIX_DISTANCE_PCT {
                QueryKind::Distance
            } else {
                QueryKind::Trace
            };
            Query { kind, src, dst }
        })
        .collect()
}

/// FNV-1a 64-bit fold of one `u64` into a running checksum.
fn fnv_fold(hash: u64, word: u64) -> u64 {
    let mut h = hash;
    for byte in word.to_le_bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Per-run aggregation state, folded batch by batch.
struct Tally {
    route_queries: u64,
    distance_queries: u64,
    trace_queries: u64,
    answered: u64,
    unreachable: u64,
    errors: u64,
    checks: u64,
    mismatches: u64,
    total_weight: u64,
    total_hops: u64,
    checksum: u64,
    latencies: Vec<u64>,
}

impl Tally {
    fn new(capacity: usize) -> Tally {
        Tally {
            route_queries: 0,
            distance_queries: 0,
            trace_queries: 0,
            answered: 0,
            unreachable: 0,
            errors: 0,
            checks: 0,
            mismatches: 0,
            total_weight: 0,
            total_hops: 0,
            checksum: 0xCBF2_9CE4_8422_2325, // FNV-1a offset basis
            latencies: Vec::with_capacity(capacity),
        }
    }

    fn absorb(&mut self, chunk: &[Query], out: &BatchResult) {
        for q in chunk {
            match q.kind {
                QueryKind::Route => self.route_queries += 1,
                QueryKind::Distance => self.distance_queries += 1,
                QueryKind::Trace => self.trace_queries += 1,
            }
        }
        for &a in &out.answers {
            match a {
                Answer::Route {
                    weight,
                    hops,
                    tree_root,
                    level,
                } => {
                    self.answered += 1;
                    self.total_weight += weight;
                    self.total_hops += u64::from(hops);
                    for w in [
                        1u64,
                        weight,
                        u64::from(hops),
                        u64::from(tree_root.0),
                        u64::from(level),
                    ] {
                        self.checksum = fnv_fold(self.checksum, w);
                    }
                }
                Answer::Distance { estimate } => {
                    debug_assert_ne!(estimate, INFINITY, "infinite estimates are Unreachable");
                    self.answered += 1;
                    self.total_weight += estimate;
                    for w in [2u64, estimate] {
                        self.checksum = fnv_fold(self.checksum, w);
                    }
                }
                Answer::Trace {
                    weight,
                    hops,
                    tree_root,
                    level,
                    path_start,
                    path_len,
                } => {
                    self.answered += 1;
                    self.total_weight += weight;
                    self.total_hops += u64::from(hops);
                    for w in [
                        3u64,
                        weight,
                        u64::from(hops),
                        u64::from(tree_root.0),
                        u64::from(level),
                    ] {
                        self.checksum = fnv_fold(self.checksum, w);
                    }
                    let path = &out.paths[path_start as usize..(path_start + path_len) as usize];
                    for v in path {
                        self.checksum = fnv_fold(self.checksum, u64::from(v.0));
                    }
                }
                Answer::Unreachable => {
                    self.unreachable += 1;
                    self.checksum = fnv_fold(self.checksum, 4);
                }
                Answer::Error => {
                    self.errors += 1;
                    self.checksum = fnv_fold(self.checksum, 5);
                }
            }
        }
        self.checks += out.checks;
        self.mismatches += out.mismatches;
        self.latencies.extend_from_slice(&out.latencies);
    }

    fn into_summary(
        self,
        config: &ServeConfig,
        mode: &str,
        offered_qps: f64,
        wall_ns: u64,
    ) -> ServeSummary {
        let queries = self.latencies.len() as u64;
        let qps = if wall_ns == 0 {
            0.0
        } else {
            queries as f64 * 1e9 / wall_ns as f64
        };
        ServeSummary {
            workload: config.workload.name().to_string(),
            mode: mode.to_string(),
            threads: config.threads as u64,
            batch: config.batch as u64,
            queries,
            seed: config.seed,
            check_rate: config.check_rate,
            route_queries: self.route_queries,
            distance_queries: self.distance_queries,
            trace_queries: self.trace_queries,
            answered: self.answered,
            unreachable: self.unreachable,
            errors: self.errors,
            checks: self.checks,
            mismatches: self.mismatches,
            total_weight: self.total_weight,
            total_hops: self.total_hops,
            // Xor-fold the 64-bit FNV state to 32 bits: the JSON channel
            // stores numbers as f64, which only round-trips integers up to
            // 2^53 exactly, and a lossy checksum would defeat the exact gate.
            answer_checksum: (self.checksum >> 32) ^ (self.checksum & 0xFFFF_FFFF),
            offered_qps,
            wall_ns,
            qps,
            p50_ns: quantile_ns(&self.latencies, 0.50),
            p95_ns: quantile_ns(&self.latencies, 0.95),
            p99_ns: quantile_ns(&self.latencies, 0.99),
        }
    }
}

/// The shared serving loop. `pace` is `None` for closed loop, `Some(qps)`
/// for an open loop dispatching batch `i` no earlier than `i·batch/qps`.
fn run(
    pool: &mut ServePool,
    stream: &[Query],
    config: &ServeConfig,
    pace: Option<f64>,
) -> ServeSummary {
    let mut tally = Tally::new(stream.len());
    let mut out = BatchResult::default();
    let salt = config.seed ^ CHECK_SALT;
    let batch = config.batch.max(1);
    let sw = Stopwatch::start();
    for (bi, chunk) in stream.chunks(batch).enumerate() {
        if let Some(qps) = pace {
            let target_ns = (bi * batch) as f64 * 1e9 / qps;
            let now = sw.elapsed_ns() as f64;
            if now < target_ns {
                std::thread::sleep(std::time::Duration::from_nanos((target_ns - now) as u64));
            }
        }
        pool.serve_batch(
            chunk,
            (bi * batch) as u64,
            config.check_rate,
            salt,
            &mut out,
        );
        tally.absorb(chunk, &out);
    }
    let wall_ns = sw.elapsed_ns();
    let (mode, offered) = match pace {
        None => ("closed", 0.0),
        Some(qps) => ("open", qps),
    };
    tally.into_summary(config, mode, offered, wall_ns)
}

/// Closed loop: batches back to back; achieved QPS is the saturation
/// throughput of the pool.
pub fn run_closed(pool: &mut ServePool, stream: &[Query], config: &ServeConfig) -> ServeSummary {
    run(pool, stream, config, None)
}

/// Open loop: batches on a timed schedule at `offered_qps` queries/s.
pub fn run_open(
    pool: &mut ServePool,
    stream: &[Query],
    config: &ServeConfig,
    offered_qps: f64,
) -> ServeSummary {
    run(pool, stream, config, Some(offered_qps.max(1.0)))
}

/// Walk an offered-rate ladder open-loop and find the knee: the index of
/// the largest rate still meeting `slo` (achieved ≥ `min_delivered` ×
/// offered and p99 ≤ `max_p99_ns`).
pub fn sweep_open(
    pool: &mut ServePool,
    stream: &[Query],
    config: &ServeConfig,
    rates: &[f64],
    slo: &ServeSlo,
) -> (Vec<KneePoint>, Option<usize>) {
    let mut points = Vec::with_capacity(rates.len());
    let mut knee = None;
    for (i, &rate) in rates.iter().enumerate() {
        let summary = run_open(pool, stream, config, rate);
        let delivered = if rate > 0.0 { summary.qps / rate } else { 1.0 };
        if delivered >= slo.min_delivered && summary.p99_ns <= slo.max_p99_ns {
            knee = Some(i);
        }
        points.push(KneePoint {
            offered: rate,
            summary,
        });
    }
    (points, knee)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{SharedSnapshot, Snapshot};
    use graphs::generators;
    use routing::scheme::{build, BuildParams};

    fn snap(n: usize, seed: u64) -> SharedSnapshot {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = generators::erdos_renyi_connected(n, 3.0 / n as f64, 1..=9, &mut rng);
        let built = build(&g, &BuildParams::new(2), &mut rng);
        Snapshot::share(g, built.scheme)
    }

    #[test]
    fn stream_is_seed_deterministic_and_mixed() {
        let s = snap(60, 0xA01);
        let cfg = ServeConfig {
            queries: 500,
            ..ServeConfig::default()
        };
        let a = generate_stream(&s, &cfg);
        let b = generate_stream(&s, &cfg);
        assert_eq!(a, b);
        assert!(a.iter().any(|q| q.kind == QueryKind::Route));
        assert!(a.iter().any(|q| q.kind == QueryKind::Distance));
        assert!(a.iter().any(|q| q.kind == QueryKind::Trace));
        let other = generate_stream(
            &s,
            &ServeConfig {
                seed: 0xBEEF,
                queries: 500,
                ..ServeConfig::default()
            },
        );
        assert_ne!(a, other, "different seeds must give different streams");
    }

    #[test]
    fn closed_loop_summary_is_consistent_and_clean() {
        let s = snap(60, 0xA02);
        let cfg = ServeConfig {
            queries: 512,
            batch: 32,
            threads: 2,
            check_rate: 1.0,
            ..ServeConfig::default()
        };
        let stream = generate_stream(&s, &cfg);
        let mut pool = ServePool::start(s, cfg.threads);
        let summary = run_closed(&mut pool, &stream, &cfg);
        assert!(summary.consistent());
        assert_eq!(summary.queries, 512);
        assert_eq!(summary.checks, 512);
        assert_eq!(summary.mismatches, 0);
        assert_eq!(summary.errors, 0);
        assert!(summary.qps > 0.0);
        assert!(summary.p50_ns <= summary.p95_ns && summary.p95_ns <= summary.p99_ns);
    }

    #[test]
    fn sim_columns_are_identical_across_modes_and_threads() {
        let s = snap(50, 0xA03);
        let base = ServeConfig {
            queries: 384,
            batch: 48,
            check_rate: 0.25,
            workload: ServeWorkload::Hotspot,
            ..ServeConfig::default()
        };
        let stream = generate_stream(&s, &base);
        let mut sims = Vec::new();
        for threads in [1usize, 2, 8] {
            let cfg = ServeConfig { threads, ..base };
            let mut pool = ServePool::start(s.clone(), threads);
            let closed = run_closed(&mut pool, &stream, &cfg);
            let open = run_open(&mut pool, &stream, &cfg, 1e9);
            let sim = |s: &ServeSummary| {
                (
                    s.route_queries,
                    s.distance_queries,
                    s.trace_queries,
                    s.answered,
                    s.unreachable,
                    s.errors,
                    s.checks,
                    s.mismatches,
                    s.total_weight,
                    s.total_hops,
                    s.answer_checksum,
                )
            };
            assert_eq!(sim(&closed), sim(&open), "mode changed sim columns");
            sims.push(sim(&closed));
        }
        assert_eq!(sims[0], sims[1], "2 threads diverged from 1");
        assert_eq!(sims[0], sims[2], "8 threads diverged from 1");
    }

    #[test]
    fn adversarial_workload_serves_cleanly() {
        let s = snap(64, 0xA04);
        let cfg = ServeConfig {
            workload: ServeWorkload::Adversarial,
            queries: 256,
            threads: 2,
            check_rate: 1.0,
            ..ServeConfig::default()
        };
        let stream = generate_stream(&s, &cfg);
        let mut pool = ServePool::start(s, cfg.threads);
        let summary = run_closed(&mut pool, &stream, &cfg);
        assert_eq!(summary.mismatches, 0);
        assert_eq!(summary.errors, 0);
        assert_eq!(summary.workload, "adversarial");
    }

    #[test]
    fn open_sweep_reports_a_knee_on_generous_rates() {
        let s = snap(40, 0xA05);
        let cfg = ServeConfig {
            queries: 128,
            batch: 32,
            ..ServeConfig::default()
        };
        let stream = generate_stream(&s, &cfg);
        let mut pool = ServePool::start(s, 1);
        // Rates far below saturation: every rung meets the SLO, so the knee
        // is the last rung.
        let slo = ServeSlo {
            min_delivered: 0.5,
            max_p99_ns: u64::MAX,
        };
        let (points, knee) = sweep_open(&mut pool, &stream, &cfg, &[1000.0, 2000.0], &slo);
        assert_eq!(points.len(), 2);
        assert_eq!(knee, Some(1));
        assert!(points.iter().all(|p| p.summary.mismatches == 0));
    }
}
