//! Per-round health telemetry over a churn schedule.
//!
//! [`ChurnScenario::run`] plans the event schedule, then walks it round by
//! round: after applying each round's events to the tombstone overlay it
//! samples (a) a *fixed* routing probe — the same seeded source/target pairs
//! every round, routed by the unmodified stale tables over the perturbed
//! graph — (b) a traffic burst through `traffic::sim::simulate` on the
//! perturbed network, and (c) the blast radius of the accumulated failures
//! via `routing::audit::blast_radius`.
//!
//! Because the pair sample, tables, and routes are all fixed, a pair that
//! fails once can never come back while failures only accumulate: the
//! delivered count — and therefore reachability over the fixed
//! baseline-connected denominator — is monotonically non-increasing for
//! revival-free processes. The `churn_timeline` parser re-checks exactly
//! this invariant.
//!
//! Everything random is drawn coordinator-side from seeds derived from the
//! master seed, and the engine's simulated results are thread-invariant, so
//! the full series is byte-identical at any `threads` setting.

use congest::Network;
use graphs::{shortest_paths, Graph, Overlay, VertexId, INFINITY};
use obs::churn::{ChurnTimeline, DegradationStat, HealthRow, SloStat};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use routing::audit::blast_radius;
use routing::router::{self, GraphRouteError, Selection};
use routing::{packet, RoutingScheme};
use traffic::sim::{self, DropPolicy, Injection, SimConfig};
use traffic::{Arrival, ArrivalKind, TrafficPacket, Workload, WorkloadKind};

use crate::process::{plan_schedule, ProcessKind, RoundEvents, ScheduleParams};

/// Salt for the probe pair sample stream.
const PAIR_SALT: u64 = 0x000C_4112_B417;
/// Salt for the traffic planning stream.
const TRAFFIC_SALT: u64 = 0x000C_4112_F10C;

/// Default master seed for churn runs.
pub const DEFAULT_SEED: u64 = 0x000C_42AB;

/// Everything a churn run needs besides the graph and scheme.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChurnConfig {
    /// The failure process.
    pub process: ProcessKind,
    /// Per-round failure rate (fraction of original vertices, or edges for
    /// `random-edges`; floored at one element per round).
    pub rate: f64,
    /// Churn rounds (round 0 is the intact baseline sample).
    pub rounds: u64,
    /// Per-round revival probability for dead vertices.
    pub revive: f64,
    /// Master seed; schedule, probe sample, and traffic all derive from it.
    pub seed: u64,
    /// Traffic workload for the per-round bursts.
    pub workload: WorkloadKind,
    /// Flows offered per engine round during each burst.
    pub traffic_rate: f64,
    /// Engine rounds of injection per burst.
    pub burst_rounds: u64,
    /// Per-port queue capacity during bursts.
    pub queue_cap: usize,
    /// Requested probe sample size (realized as sources × targets, like the
    /// audit probe).
    pub probe_pairs: usize,
    /// Engine worker threads for the bursts (never changes results).
    pub threads: usize,
}

impl Default for ChurnConfig {
    fn default() -> ChurnConfig {
        ChurnConfig {
            process: ProcessKind::Random,
            rate: 0.02,
            rounds: 10,
            revive: 0.0,
            seed: DEFAULT_SEED,
            workload: WorkloadKind::Uniform,
            traffic_rate: 2.0,
            burst_rounds: 16,
            queue_cap: 8,
            probe_pairs: 256,
            threads: 1,
        }
    }
}

/// An operator-declared SLO: reachability must stay at or above `floor`
/// through round `through_round`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChurnSlo {
    /// The reachability floor.
    pub floor: f64,
    /// The last round the floor must hold through.
    pub through_round: u64,
}

/// A churn scenario: graph + stale scheme + configuration.
#[derive(Clone, Copy)]
pub struct ChurnScenario<'a> {
    /// The base graph the scheme was built on.
    pub graph: &'a Graph,
    /// The (never-updated) routing scheme under test.
    pub scheme: &'a RoutingScheme,
    /// Process and sampling knobs.
    pub config: ChurnConfig,
}

/// Everything one churn run produced.
#[derive(Clone, Debug)]
pub struct ChurnRun {
    /// Per-round health samples, round 0 first.
    pub rows: Vec<HealthRow>,
    /// The event schedule that produced them.
    pub schedule: Vec<RoundEvents>,
    /// Realized probe sample size (sources × targets).
    pub probe_pairs: u64,
    /// Sample pairs connected on the intact graph — the fixed reachability
    /// denominator.
    pub baseline_connected: u64,
    /// Round-0 mean delivered stretch.
    pub baseline_mean_stretch: f64,
    /// Engine rounds summed over all bursts.
    pub engine_rounds: u64,
    /// Engine messages summed over all bursts.
    pub engine_messages: u64,
    /// Engine words summed over all bursts.
    pub engine_words: u64,
    /// Worst per-port queue depth (packets) seen in any burst.
    pub peak_queue_packets: u64,
    /// The config the run used.
    pub config: ChurnConfig,
}

impl ChurnRun {
    /// Reachability per round over the fixed baseline denominator.
    pub fn reachability_series(&self) -> Vec<f64> {
        self.rows
            .iter()
            .map(|r| r.reachability(self.baseline_connected))
            .collect()
    }

    /// Knee/half-life summary of the reachability series.
    pub fn degradation(&self) -> DegradationStat {
        let series = self.reachability_series();
        let initial = series.first().copied().unwrap_or(1.0);
        let fin = series.last().copied().unwrap_or(1.0);
        let mut knee_round = None;
        let mut knee_drop = 0.0f64;
        for (i, w) in series.windows(2).enumerate() {
            let drop = w[0] - w[1];
            if drop > knee_drop {
                knee_drop = drop;
                knee_round = Some((i + 1) as u64);
            }
        }
        let half_life_round = series
            .iter()
            .position(|&r| r <= initial / 2.0)
            .map(|i| i as u64);
        DegradationStat {
            initial_reachability: initial,
            final_reachability: fin,
            knee_round,
            knee_drop,
            half_life_round,
        }
    }

    /// Verdict for an operator-declared SLO.
    pub fn slo_verdict(&self, slo: &ChurnSlo) -> SloStat {
        let series = self.reachability_series();
        let breach_round = series
            .iter()
            .enumerate()
            .take(slo.through_round as usize + 1)
            .find(|&(_, &r)| r < slo.floor)
            .map(|(i, _)| i as u64);
        SloStat {
            floor: slo.floor,
            through_round: slo.through_round,
            breach_round,
        }
    }

    /// Serialize as a validated `churn_timeline` record.
    pub fn to_record(&self, g: &Graph, k: usize, slo: Option<&ChurnSlo>) -> ChurnTimeline {
        ChurnTimeline {
            n: g.num_vertices() as u64,
            m: g.num_edges() as u64,
            k: k as u64,
            process: self.config.process.name().to_string(),
            rate: self.config.rate,
            revive: self.config.revive,
            seed: self.config.seed,
            workload: self.config.workload.name().to_string(),
            traffic_rate: self.config.traffic_rate,
            probe_pairs: self.probe_pairs,
            baseline_connected: self.baseline_connected,
            baseline_mean_stretch: self.baseline_mean_stretch,
            rounds: self.rows.clone(),
            degradation: self.degradation(),
            slo: slo.map(|s| self.slo_verdict(s)),
        }
    }
}

/// The fixed probe sample: sources with their target lists.
struct PairSample {
    by_source: Vec<(VertexId, Vec<VertexId>)>,
}

impl PairSample {
    /// Sample ~`requested` pairs as sources × targets-per-source (the audit
    /// probe's shape, so one Dijkstra per source covers a whole target
    /// list). Drawn once, on the intact graph, before any failure.
    fn draw(g: &Graph, requested: usize, rng: &mut ChaCha8Rng) -> PairSample {
        let n = g.num_vertices();
        let sources = ((requested as f64).sqrt().ceil() as usize).clamp(1, n);
        let targets_per_source = requested.div_ceil(sources).min(n - 1);
        let mut by_source = Vec::with_capacity(sources);
        let mut used = vec![false; n];
        for _ in 0..sources {
            let mut s;
            loop {
                s = VertexId(rng.gen_range(0..n as u32));
                if !used[s.index()] {
                    break;
                }
            }
            used[s.index()] = true;
            let mut targets = Vec::with_capacity(targets_per_source);
            let mut in_targets = vec![false; n];
            for _ in 0..targets_per_source {
                let mut t;
                loop {
                    t = VertexId(rng.gen_range(0..n as u32));
                    if t != s && !in_targets[t.index()] {
                        break;
                    }
                }
                in_targets[t.index()] = true;
                targets.push(t);
            }
            by_source.push((s, targets));
        }
        by_source.sort_unstable_by_key(|&(s, _)| s);
        PairSample { by_source }
    }

    fn len(&self) -> usize {
        self.by_source.iter().map(|(_, ts)| ts.len()).sum()
    }
}

/// One round's probe tallies before they are merged with the traffic burst.
#[derive(Default)]
struct ProbeTally {
    delivered: u64,
    endpoint_dead: u64,
    no_common_tree: u64,
    stuck: u64,
    bad_forward: u64,
    looped: u64,
    stretch_sum: f64,
    stretch_count: u64,
}

impl ProbeTally {
    fn mean_stretch(&self) -> f64 {
        if self.stretch_count == 0 {
            0.0
        } else {
            self.stretch_sum / self.stretch_count as f64
        }
    }
}

impl ChurnScenario<'_> {
    /// Run the full timeline. Panics if the graph has fewer than two
    /// vertices (no pairs to probe).
    pub fn run(&self) -> ChurnRun {
        let g = self.graph;
        let cfg = &self.config;
        assert!(g.num_vertices() >= 2, "churn needs at least two vertices");
        assert!(cfg.rate.is_finite() && cfg.rate >= 0.0, "bad rate");

        let schedule = plan_schedule(
            g,
            &ScheduleParams {
                process: cfg.process,
                rate: cfg.rate,
                rounds: cfg.rounds,
                revive: cfg.revive,
                seed: cfg.seed,
            },
        );

        let mut pair_rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ PAIR_SALT);
        let sample = PairSample::draw(g, cfg.probe_pairs.max(1), &mut pair_rng);
        let baseline_connected: u64 = sample
            .by_source
            .iter()
            .map(|&(s, ref targets)| {
                let dist = shortest_paths::dijkstra(g, s);
                targets
                    .iter()
                    .filter(|t| dist[t.index()] < INFINITY)
                    .count() as u64
            })
            .sum();

        // Traffic planning state persists across rounds: the workload is
        // prepared on the intact graph and the arrival/draw stream never
        // consults liveness, so randomness consumption is failure-independent.
        let traffic_seed = cfg.seed ^ TRAFFIC_SALT;
        let mut workload = Workload::prepare(cfg.workload, g, self.scheme, traffic_seed);
        let mut traffic_rng = ChaCha8Rng::seed_from_u64(traffic_seed);
        let mut arrival = Arrival::new(ArrivalKind::Fixed, cfg.traffic_rate);

        let mut overlay = Overlay::new(g);
        let mut run = ChurnRun {
            rows: Vec::with_capacity(cfg.rounds as usize + 1),
            schedule: schedule.clone(),
            probe_pairs: sample.len() as u64,
            baseline_connected,
            baseline_mean_stretch: 0.0,
            engine_rounds: 0,
            engine_messages: 0,
            engine_words: 0,
            peak_queue_packets: 0,
            config: *cfg,
        };

        self.sample_round(
            g,
            &overlay,
            0,
            0,
            &sample,
            &mut workload,
            &mut traffic_rng,
            &mut arrival,
            &mut run,
        );
        run.baseline_mean_stretch = run.rows[0].mean_stretch;
        // Round 0's inflation is 1.0 by definition.
        run.rows[0].stretch_inflation = 1.0;

        for round_events in &schedule {
            crate::process::apply(&mut overlay, &round_events.events);
            self.sample_round(
                g,
                &overlay,
                round_events.round,
                round_events.events.len() as u64,
                &sample,
                &mut workload,
                &mut traffic_rng,
                &mut arrival,
                &mut run,
            );
        }
        run
    }

    #[allow(clippy::too_many_arguments)]
    fn sample_round(
        &self,
        g: &Graph,
        overlay: &Overlay,
        round: u64,
        events: u64,
        sample: &PairSample,
        workload: &mut Workload,
        traffic_rng: &mut ChaCha8Rng,
        arrival: &mut Arrival,
        run: &mut ChurnRun,
    ) {
        let cfg = &self.config;
        let perturbed = overlay.build_graph(g);
        let alive = overlay.alive_vertices();

        // Fixed-pair probe with stale tables over the perturbed graph.
        let mut tally = ProbeTally::default();
        for &(s, ref targets) in &sample.by_source {
            let src_dead = !alive[s.index()];
            let dist = if src_dead {
                Vec::new()
            } else {
                shortest_paths::dijkstra(&perturbed, s)
            };
            for &t in targets {
                if src_dead || !alive[t.index()] {
                    tally.endpoint_dead += 1;
                    continue;
                }
                match router::route_with(&perturbed, self.scheme, s, t, Selection::SourceOptimal) {
                    Ok(trace) => {
                        tally.delivered += 1;
                        let exact = dist[t.index()];
                        if exact > 0 && exact < INFINITY {
                            tally.stretch_sum += trace.weight as f64 / exact as f64;
                            tally.stretch_count += 1;
                        }
                    }
                    Err(GraphRouteError::NoCommonTree) => tally.no_common_tree += 1,
                    Err(GraphRouteError::Stuck(_)) => tally.stuck += 1,
                    Err(GraphRouteError::BadForward { .. }) => tally.bad_forward += 1,
                    Err(GraphRouteError::Loop) => tally.looped += 1,
                }
            }
        }
        let mean_stretch = tally.mean_stretch();
        let stretch_inflation = if tally.delivered > 0 && run.baseline_mean_stretch > 0.0 {
            mean_stretch / run.baseline_mean_stretch
        } else {
            1.0
        };

        // Traffic burst: plan injections against current liveness, then let
        // the engine forward them with the stale tables. Dead endpoints are
        // refused at injection; stale next-hops over dead edges surface as
        // `dropped_stuck` inside the engine.
        let mut injections: Vec<Injection> = Vec::new();
        let mut offered = 0u64;
        let mut undeliverable = 0u64;
        for burst_round in 0..cfg.burst_rounds {
            for _ in 0..arrival.count(traffic_rng) {
                offered += 1;
                let (src, dst) = workload.draw(traffic_rng);
                if !alive[src.index()] || !alive[dst.index()] {
                    undeliverable += 1;
                    continue;
                }
                match packet::plan(self.scheme, src, dst) {
                    Some(plan) => {
                        let id = injections.len() as u32;
                        injections.push((burst_round, src, TrafficPacket::from_plan(id, plan)));
                    }
                    None => undeliverable += 1,
                }
            }
        }
        let injected = injections.len() as u64;
        let net = Network::new(perturbed);
        let sim_cfg = SimConfig {
            queue_cap: cfg.queue_cap,
            policy: DropPolicy::TailDrop,
            max_rounds: cfg.burst_rounds + 4096,
            threads: cfg.threads.max(1),
            profile: false,
        };
        let result = sim::simulate(&net, self.scheme, &injections, &sim_cfg);
        let flow_delivered = result.deliveries.len() as u64;
        let dropped_capacity = result.dropped_capacity.len() as u64;
        let dropped_stuck = result.dropped_stuck.len() as u64;
        let in_flight = injected - flow_delivered - dropped_capacity - dropped_stuck;
        run.engine_rounds += result.stats.rounds;
        run.engine_messages += result.stats.messages;
        run.engine_words += result.stats.words;
        run.peak_queue_packets = run
            .peak_queue_packets
            .max(result.peak_queue_packets() as u64);

        run.rows.push(HealthRow {
            round,
            events,
            dead_vertices: overlay.killed_vertices() as u64,
            dead_edges: (g.num_edges() - overlay.surviving_edges(g)) as u64,
            blast_radius: blast_radius(g, self.scheme, overlay),
            delivered: tally.delivered,
            endpoint_dead: tally.endpoint_dead,
            no_common_tree: tally.no_common_tree,
            stuck: tally.stuck,
            bad_forward: tally.bad_forward,
            looped: tally.looped,
            mean_stretch,
            stretch_inflation,
            offered,
            injected,
            undeliverable,
            flow_delivered,
            dropped_capacity,
            dropped_stuck,
            in_flight,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::generators;
    use routing::BuildParams;

    fn scale_free(n: usize, seed: u64) -> Graph {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        generators::preferential_attachment(n, 3, 1..=100, &mut rng)
    }

    fn built(g: &Graph, seed: u64) -> RoutingScheme {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        routing::build(g, &BuildParams::new(2), &mut rng).scheme
    }

    fn scenario_config(process: ProcessKind, rounds: u64) -> ChurnConfig {
        ChurnConfig {
            process,
            rate: 0.03,
            rounds,
            probe_pairs: 64,
            burst_rounds: 8,
            ..ChurnConfig::default()
        }
    }

    #[test]
    fn timeline_record_round_trips_and_validates() {
        let g = scale_free(72, 21);
        let scheme = built(&g, 22);
        let run = ChurnScenario {
            graph: &g,
            scheme: &scheme,
            config: scenario_config(ProcessKind::Targeted, 8),
        }
        .run();
        let slo = ChurnSlo {
            floor: 0.99,
            through_round: 8,
        };
        let record = run.to_record(&g, 2, Some(&slo));
        // from_value re-checks partition, conservation, and monotonicity.
        let parsed = obs::churn::ChurnTimeline::from_value(
            &obs::json::parse(&record.to_value().to_string()).unwrap(),
        )
        .unwrap();
        assert_eq!(parsed, record);
        assert_eq!(parsed.rounds.len(), 9);
        // Targeted removal of ~24% of a scale-free graph must hurt: the SLO
        // with a 99% floor through the last round is breached.
        assert!(!parsed.ok(), "{:?}", parsed.slo);
    }

    #[test]
    fn thread_count_never_changes_the_series() {
        let g = scale_free(64, 31);
        let scheme = built(&g, 32);
        let mut config = scenario_config(ProcessKind::Random, 5);
        let runs: Vec<String> = [1usize, 2, 8]
            .iter()
            .map(|&threads| {
                config.threads = threads;
                let run = ChurnScenario {
                    graph: &g,
                    scheme: &scheme,
                    config,
                }
                .run();
                run.to_record(&g, 2, None).to_value().to_string()
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[0], runs[2]);
    }

    #[test]
    fn degradation_summary_matches_series() {
        let g = scale_free(72, 41);
        let scheme = built(&g, 42);
        let run = ChurnScenario {
            graph: &g,
            scheme: &scheme,
            config: ChurnConfig {
                rate: 0.08,
                ..scenario_config(ProcessKind::Targeted, 10)
            },
        }
        .run();
        let series = run.reachability_series();
        let d = run.degradation();
        assert_eq!(d.initial_reachability, series[0]);
        assert_eq!(d.final_reachability, *series.last().unwrap());
        if let Some(k) = d.knee_round {
            let k = k as usize;
            assert!((series[k - 1] - series[k] - d.knee_drop).abs() < 1e-12);
        }
        if let Some(h) = d.half_life_round {
            assert!(series[h as usize] <= d.initial_reachability / 2.0);
        }
        // 8% targeted kills for 10 rounds floors a 72-vertex scale-free
        // graph; the half-life must exist.
        assert!(d.half_life_round.is_some(), "series: {series:?}");
    }

    #[test]
    fn slo_verdict_finds_first_breach() {
        let g = scale_free(64, 51);
        let scheme = built(&g, 52);
        let run = ChurnScenario {
            graph: &g,
            scheme: &scheme,
            config: ChurnConfig {
                rate: 0.08,
                ..scenario_config(ProcessKind::Targeted, 8)
            },
        }
        .run();
        let series = run.reachability_series();
        let verdict = run.slo_verdict(&ChurnSlo {
            floor: 0.9,
            through_round: 8,
        });
        match verdict.breach_round {
            Some(r) => {
                assert!(series[r as usize] < 0.9);
                assert!(series[..r as usize].iter().all(|&x| x >= 0.9));
                assert!(!verdict.ok());
            }
            None => assert!(series.iter().all(|&x| x >= 0.9)),
        }
        // A floor of 0 through round 0 can never breach (reachability ≥ 0).
        assert!(run
            .slo_verdict(&ChurnSlo {
                floor: 0.0,
                through_round: 0,
            })
            .ok());
    }

    #[test]
    fn baseline_row_is_intact() {
        let g = scale_free(60, 61);
        let scheme = built(&g, 62);
        let run = ChurnScenario {
            graph: &g,
            scheme: &scheme,
            config: scenario_config(ProcessKind::Regional, 3),
        }
        .run();
        let r0 = &run.rows[0];
        assert_eq!(r0.dead_vertices, 0);
        assert_eq!(r0.dead_edges, 0);
        assert_eq!(r0.blast_radius, 0);
        assert_eq!(r0.endpoint_dead, 0);
        assert_eq!(r0.stretch_inflation, 1.0);
        assert!(run.engine_rounds > 0, "bursts must exercise the engine");
    }
}
