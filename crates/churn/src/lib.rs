//! Churn observatory: seeded failure timelines with per-round health
//! telemetry for a routing scheme that is never told the network changed.
//!
//! The paper's scheme is built once; real networks then drift. This crate
//! measures the drift cost: a [`process`] plans a deterministic per-round
//! failure (and optional revival) schedule over the base graph, and
//! [`health`] walks that schedule, sampling a fixed routing probe, a traffic
//! burst, and the blast radius of the accumulated failures after every
//! round. The result round-trips as the `churn_timeline` record
//! (`obs::churn`) and is surfaced by `drt churn` and the `churn_degrade`
//! bench group.
//!
//! The one-shot perturbation probe in `routing::audit` is the degenerate
//! single-event case of the same machinery: both run stale tables against a
//! `graphs::Overlay`-masked graph; churn just does it round after round
//! while the overlay evolves.
//!
//! # Examples
//!
//! ```
//! use churn::{ChurnConfig, ChurnScenario, ProcessKind};
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
//! let g = graphs::generators::erdos_renyi_connected(48, 0.1, 1..=9, &mut rng);
//! let built = routing::build(&g, &routing::BuildParams::new(2), &mut rng);
//! let scenario = ChurnScenario {
//!     graph: &g,
//!     scheme: &built.scheme,
//!     config: ChurnConfig {
//!         process: ProcessKind::Targeted,
//!         rounds: 4,
//!         ..ChurnConfig::default()
//!     },
//! };
//! let run = scenario.run();
//! assert_eq!(run.rows.len(), 5); // intact baseline + 4 churn rounds
//! let reach = run.reachability_series();
//! assert!(reach.windows(2).all(|w| w[1] <= w[0]), "monotone without revival");
//! ```

pub mod health;
pub mod process;

pub use health::{ChurnConfig, ChurnRun, ChurnScenario, ChurnSlo, DEFAULT_SEED};
pub use process::{apply, plan_schedule, ChurnEvent, ProcessKind, RoundEvents, ScheduleParams};
