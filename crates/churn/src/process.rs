//! Seeded churn processes: deterministic per-round failure (and optional
//! revival) schedules over a fixed base graph.
//!
//! A process never mutates the graph — it plans a list of [`ChurnEvent`]s
//! per round, computed against an evolving [`Overlay`] scratch copy so that
//! each round's choices (which vertex has the max alive degree, which
//! vertices a BFS ball reaches) see the failures of every earlier round.
//! Planning is entirely coordinator-side and consumes randomness in a fixed
//! order, so the schedule — and everything sampled from it — is a pure
//! function of the seed, independent of engine thread count.

use graphs::{EdgeId, Graph, Overlay, VertexId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The failure process driving the timeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProcessKind {
    /// Uniformly random alive vertices fail.
    Random,
    /// Uniformly random usable edges fail (vertices stay up).
    RandomEdges,
    /// The alive vertices with the highest surviving degree fail — the
    /// DRFE-R-style targeted attack that collapses scale-free graphs.
    Targeted,
    /// A regional outage: a BFS ball around a random alive center fails.
    Regional,
}

impl ProcessKind {
    /// The CLI/schema name.
    pub fn name(self) -> &'static str {
        match self {
            ProcessKind::Random => "random",
            ProcessKind::RandomEdges => "random-edges",
            ProcessKind::Targeted => "targeted",
            ProcessKind::Regional => "regional",
        }
    }

    /// Parse a CLI/schema name.
    pub fn parse(s: &str) -> Option<ProcessKind> {
        ProcessKind::all().iter().copied().find(|p| p.name() == s)
    }

    /// Every process, in display order.
    pub fn all() -> &'static [ProcessKind] {
        &[
            ProcessKind::Random,
            ProcessKind::RandomEdges,
            ProcessKind::Targeted,
            ProcessKind::Regional,
        ]
    }
}

/// One scheduled topology change.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChurnEvent {
    /// Vertex fails; its incident edges stop carrying traffic.
    KillVertex(VertexId),
    /// Edge fails on its own.
    KillEdge(EdgeId),
    /// A failed vertex comes back (its non-tombstoned edges return with it).
    ReviveVertex(VertexId),
}

/// The events of one churn round, in application order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoundEvents {
    /// The 1-based round these events fire in (round 0 is the intact
    /// baseline sample).
    pub round: u64,
    /// Events, applied in order.
    pub events: Vec<ChurnEvent>,
}

/// Schedule parameters: which process, how hard, for how long.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScheduleParams {
    /// The failure process.
    pub process: ProcessKind,
    /// Per-round failure budget as a fraction of the original element count
    /// (vertices for vertex processes, edges for `random-edges`), floored
    /// at one element per round.
    pub rate: f64,
    /// Number of churn rounds.
    pub rounds: u64,
    /// Per-round revival probability for each vertex that was dead when the
    /// round started (`0.0` disables revival and makes decay monotone).
    pub revive: f64,
    /// Seed for every random choice the schedule makes.
    pub seed: u64,
}

/// Apply one round's events to an overlay.
pub fn apply(overlay: &mut Overlay, events: &[ChurnEvent]) {
    for &e in events {
        match e {
            ChurnEvent::KillVertex(v) => {
                overlay.kill_vertex(v);
            }
            ChurnEvent::KillEdge(e) => {
                overlay.kill_edge(e);
            }
            ChurnEvent::ReviveVertex(v) => {
                overlay.revive_vertex(v);
            }
        }
    }
}

/// Plan the full deterministic event schedule for `params` over `g`.
///
/// Rounds run `1..=params.rounds`; a round's kill choices see the overlay
/// state produced by all earlier rounds. When a budget exceeds what is left
/// alive, the round kills whatever remains and later rounds emit no events.
pub fn plan_schedule(g: &Graph, params: &ScheduleParams) -> Vec<RoundEvents> {
    let mut rng = ChaCha8Rng::seed_from_u64(params.seed);
    let mut overlay = Overlay::new(g);
    let n = g.num_vertices();
    let m = g.num_edges();
    let vertex_budget = ((params.rate * n as f64).round() as usize).max(1);
    let edge_budget = ((params.rate * m as f64).round() as usize).max(1);
    let mut schedule = Vec::with_capacity(params.rounds as usize);
    for round in 1..=params.rounds {
        let mut events = Vec::new();
        // Revive first, drawing one uniform per vertex dead at round start
        // (in id order), so revival cannot resurrect this round's kills.
        if params.revive > 0.0 {
            let dead: Vec<VertexId> = g.vertices().filter(|&v| !overlay.vertex_alive(v)).collect();
            for v in dead {
                if rng.gen::<f64>() < params.revive {
                    events.push(ChurnEvent::ReviveVertex(v));
                    overlay.revive_vertex(v);
                }
            }
        }
        match params.process {
            ProcessKind::Random => {
                let mut alive: Vec<VertexId> =
                    g.vertices().filter(|&v| overlay.vertex_alive(v)).collect();
                for _ in 0..vertex_budget.min(alive.len()) {
                    let v = alive.swap_remove(rng.gen_range(0..alive.len()));
                    events.push(ChurnEvent::KillVertex(v));
                    overlay.kill_vertex(v);
                }
            }
            ProcessKind::RandomEdges => {
                let mut usable: Vec<EdgeId> = (0..m as u32)
                    .map(EdgeId)
                    .filter(|&e| overlay.edge_usable(g, e))
                    .collect();
                for _ in 0..edge_budget.min(usable.len()) {
                    let e = usable.swap_remove(rng.gen_range(0..usable.len()));
                    events.push(ChurnEvent::KillEdge(e));
                    overlay.kill_edge(e);
                }
            }
            ProcessKind::Targeted => {
                for _ in 0..vertex_budget {
                    // Re-rank after every kill: removing a hub shifts the
                    // surviving-degree order. Ties break toward smaller id.
                    let target = g
                        .vertices()
                        .filter(|&v| overlay.vertex_alive(v))
                        .max_by_key(|&v| (overlay.alive_degree(g, v), std::cmp::Reverse(v)));
                    match target {
                        Some(v) => {
                            events.push(ChurnEvent::KillVertex(v));
                            overlay.kill_vertex(v);
                        }
                        None => break,
                    }
                }
            }
            ProcessKind::Regional => {
                let alive: Vec<VertexId> =
                    g.vertices().filter(|&v| overlay.vertex_alive(v)).collect();
                if !alive.is_empty() {
                    let center = alive[rng.gen_range(0..alive.len())];
                    for v in bfs_ball(g, &overlay, center, vertex_budget) {
                        events.push(ChurnEvent::KillVertex(v));
                        overlay.kill_vertex(v);
                    }
                }
            }
        }
        schedule.push(RoundEvents { round, events });
    }
    schedule
}

/// Up to `budget` alive vertices reachable from `center` over usable edges,
/// in BFS order (adjacency order within a level).
fn bfs_ball(g: &Graph, overlay: &Overlay, center: VertexId, budget: usize) -> Vec<VertexId> {
    let mut ball = vec![center];
    let mut seen = vec![false; g.num_vertices()];
    seen[center.index()] = true;
    let mut head = 0;
    while head < ball.len() && ball.len() < budget {
        let u = ball[head];
        head += 1;
        for a in g.neighbors(u) {
            if ball.len() >= budget {
                break;
            }
            if !seen[a.to.index()] && overlay.edge_usable(g, a.edge) {
                seen[a.to.index()] = true;
                ball.push(a.to);
            }
        }
    }
    ball
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::generators;

    fn graph(n: usize, seed: u64) -> Graph {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        generators::erdos_renyi_connected(n, 3.0 / n as f64, 1..=9, &mut rng)
    }

    fn replay(g: &Graph, schedule: &[RoundEvents]) -> Overlay {
        let mut o = Overlay::new(g);
        for r in schedule {
            apply(&mut o, &r.events);
        }
        o
    }

    #[test]
    fn schedules_are_deterministic() {
        let g = graph(64, 11);
        for process in ProcessKind::all() {
            let params = ScheduleParams {
                process: *process,
                rate: 0.05,
                rounds: 6,
                revive: 0.0,
                seed: 42,
            };
            let a = plan_schedule(&g, &params);
            let b = plan_schedule(&g, &params);
            assert_eq!(a, b, "{}", process.name());
            assert_eq!(a.len(), 6);
        }
    }

    #[test]
    fn vertex_budget_is_rate_times_n() {
        let g = graph(60, 12);
        let params = ScheduleParams {
            process: ProcessKind::Random,
            rate: 0.05,
            rounds: 4,
            revive: 0.0,
            seed: 1,
        };
        let schedule = plan_schedule(&g, &params);
        for r in &schedule {
            assert_eq!(r.events.len(), 3, "round(0.05·60) = 3 kills per round");
        }
        let o = replay(&g, &schedule);
        assert_eq!(o.killed_vertices(), 12);
    }

    #[test]
    fn targeted_takes_the_max_degree_vertex_first() {
        let g = graph(50, 13);
        let hub = g
            .vertices()
            .max_by_key(|&v| (g.degree(v), std::cmp::Reverse(v)))
            .unwrap();
        let params = ScheduleParams {
            process: ProcessKind::Targeted,
            rate: 0.0, // floors at one kill per round
            rounds: 1,
            revive: 0.0,
            seed: 0,
        };
        let schedule = plan_schedule(&g, &params);
        assert_eq!(schedule[0].events, vec![ChurnEvent::KillVertex(hub)]);
    }

    #[test]
    fn regional_ball_is_connected_and_budgeted() {
        let g = graph(64, 14);
        let params = ScheduleParams {
            process: ProcessKind::Regional,
            rate: 0.1,
            rounds: 3,
            revive: 0.0,
            seed: 9,
        };
        for r in plan_schedule(&g, &params) {
            assert!(!r.events.is_empty());
            assert!(r.events.len() <= 6, "ball capped at round(0.1·64)");
        }
    }

    #[test]
    fn revival_brings_vertices_back() {
        let g = graph(48, 15);
        let no_revive = ScheduleParams {
            process: ProcessKind::Random,
            rate: 0.1,
            rounds: 8,
            revive: 0.0,
            seed: 3,
        };
        let with_revive = ScheduleParams {
            revive: 0.5,
            ..no_revive
        };
        let dead_monotone = replay(&g, &plan_schedule(&g, &no_revive)).killed_vertices();
        let dead_revived = replay(&g, &plan_schedule(&g, &with_revive)).killed_vertices();
        assert!(
            dead_revived < dead_monotone,
            "revival must leave fewer vertices dead ({dead_revived} vs {dead_monotone})"
        );
        let revivals = plan_schedule(&g, &with_revive)
            .iter()
            .flat_map(|r| &r.events)
            .filter(|e| matches!(e, ChurnEvent::ReviveVertex(_)))
            .count();
        assert!(revivals > 0);
    }

    #[test]
    fn kill_budget_exhausts_gracefully() {
        let g = graph(10, 16);
        let params = ScheduleParams {
            process: ProcessKind::Random,
            rate: 0.5,
            rounds: 5,
            revive: 0.0,
            seed: 2,
        };
        let schedule = plan_schedule(&g, &params);
        let o = replay(&g, &schedule);
        assert_eq!(o.killed_vertices(), 10, "everything eventually dies");
        assert!(schedule.last().unwrap().events.is_empty());
    }

    #[test]
    fn process_names_round_trip() {
        for p in ProcessKind::all() {
            assert_eq!(ProcessKind::parse(p.name()), Some(*p));
        }
        assert_eq!(ProcessKind::parse("nope"), None);
    }
}
