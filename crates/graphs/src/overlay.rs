//! Tombstone overlay: a mutable alive/dead view over an immutable [`Graph`].
//!
//! The CSR [`Graph`] is deliberately immutable — schemes, simulators, and
//! shortest-path oracles all assume stable vertex and edge ids. Failure
//! processes (one-shot perturbation in `routing::audit`, multi-round churn in
//! the `churn` crate) therefore never mutate the graph; they maintain an
//! [`Overlay`] of per-vertex and per-edge tombstones on top of it and
//! materialize the surviving subgraph with [`Overlay::build_graph`] when a
//! simulator needs a concrete `Graph` again.
//!
//! An edge is *usable* iff it is not tombstoned itself **and** both endpoints
//! are alive; killing a vertex implicitly disables its incident edges without
//! touching their own tombstones, so reviving the vertex restores them.

use crate::graph::{EdgeId, Graph, GraphBuilder, VertexId};
use rand::Rng;

/// Alive/dead masks over a fixed base graph. Vertex and edge ids of the base
/// graph remain valid throughout; the overlay only reinterprets them.
#[derive(Clone, Debug)]
pub struct Overlay {
    alive_vertex: Vec<bool>,
    alive_edge: Vec<bool>,
}

impl Overlay {
    /// A fresh overlay over `g` with every vertex and edge alive.
    pub fn new(g: &Graph) -> Self {
        Overlay {
            alive_vertex: vec![true; g.num_vertices()],
            alive_edge: vec![true; g.num_edges()],
        }
    }

    /// Whether vertex `v` is alive.
    #[inline]
    pub fn vertex_alive(&self, v: VertexId) -> bool {
        self.alive_vertex[v.index()]
    }

    /// Whether edge `e` carries its own tombstone (independent of endpoint
    /// liveness — see [`Overlay::edge_usable`] for the effective state).
    #[inline]
    pub fn edge_alive(&self, e: EdgeId) -> bool {
        self.alive_edge[e.index()]
    }

    /// Whether edge `e` of `g` can carry traffic: not tombstoned and both
    /// endpoints alive.
    #[inline]
    pub fn edge_usable(&self, g: &Graph, e: EdgeId) -> bool {
        let (u, v, _) = g.edge(e);
        self.alive_edge[e.index()] && self.alive_vertex[u.index()] && self.alive_vertex[v.index()]
    }

    /// Tombstone vertex `v`. Returns `true` if it was alive.
    pub fn kill_vertex(&mut self, v: VertexId) -> bool {
        std::mem::replace(&mut self.alive_vertex[v.index()], false)
    }

    /// Clear the tombstone on vertex `v`. Returns `true` if it was dead.
    pub fn revive_vertex(&mut self, v: VertexId) -> bool {
        !std::mem::replace(&mut self.alive_vertex[v.index()], true)
    }

    /// Tombstone edge `e`. Returns `true` if it was alive.
    pub fn kill_edge(&mut self, e: EdgeId) -> bool {
        std::mem::replace(&mut self.alive_edge[e.index()], false)
    }

    /// Clear the tombstone on edge `e`. Returns `true` if it was dead.
    pub fn revive_edge(&mut self, e: EdgeId) -> bool {
        !std::mem::replace(&mut self.alive_edge[e.index()], true)
    }

    /// The per-vertex alive mask, indexed by `VertexId`.
    pub fn alive_vertices(&self) -> &[bool] {
        &self.alive_vertex
    }

    /// Number of tombstoned vertices.
    pub fn killed_vertices(&self) -> usize {
        self.alive_vertex.iter().filter(|&&a| !a).count()
    }

    /// Number of usable edges of `g` under this overlay.
    pub fn surviving_edges(&self, g: &Graph) -> usize {
        (0..g.num_edges())
            .filter(|&i| self.edge_usable(g, EdgeId(i as u32)))
            .count()
    }

    /// Degree of `v` counting only usable edges (0 if `v` itself is dead).
    pub fn alive_degree(&self, g: &Graph, v: VertexId) -> usize {
        if !self.vertex_alive(v) {
            return 0;
        }
        g.neighbors(v)
            .iter()
            .filter(|a| self.edge_usable(g, a.edge))
            .count()
    }

    /// Independent seeded tombstoning: each vertex dies with probability
    /// `vertex_p`, then each edge whose endpoints both survived dies with
    /// probability `edge_p`.
    ///
    /// The draw order is part of the audit record format and must not change:
    /// one `f64` per vertex in id order, then one `f64` per edge in edge-id
    /// order **skipping** edges already disabled by a dead endpoint (the
    /// short-circuit means those edges consume no randomness).
    pub fn kill_random<R: Rng>(&mut self, g: &Graph, vertex_p: f64, edge_p: f64, rng: &mut R) {
        for v in 0..g.num_vertices() {
            if rng.gen::<f64>() < vertex_p {
                self.alive_vertex[v] = false;
            }
        }
        for (i, (u, v, _)) in g.edges().enumerate() {
            let vertex_killed = !self.alive_vertex[u.index()] || !self.alive_vertex[v.index()];
            if !vertex_killed && rng.gen::<f64>() < edge_p {
                self.alive_edge[i] = false;
            }
        }
    }

    /// Materialize the surviving subgraph as a fresh [`Graph`] on the same
    /// vertex set (dead vertices remain present but isolated, so every
    /// `VertexId` stays valid).
    pub fn build_graph(&self, g: &Graph) -> Graph {
        let mut b = GraphBuilder::new(g.num_vertices());
        for (i, (u, v, w)) in g.edges().enumerate() {
            if self.edge_usable(g, EdgeId(i as u32)) {
                b.add_edge(u, v, w);
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn path4() -> Graph {
        let mut b = GraphBuilder::new(4);
        b.add_edge(VertexId(0), VertexId(1), 1);
        b.add_edge(VertexId(1), VertexId(2), 2);
        b.add_edge(VertexId(2), VertexId(3), 3);
        b.build()
    }

    #[test]
    fn fresh_overlay_is_identity() {
        let g = path4();
        let o = Overlay::new(&g);
        assert_eq!(o.killed_vertices(), 0);
        assert_eq!(o.surviving_edges(&g), 3);
        assert_eq!(o.build_graph(&g), g);
    }

    #[test]
    fn killing_a_vertex_disables_incident_edges_without_tombstoning_them() {
        let g = path4();
        let mut o = Overlay::new(&g);
        assert!(o.kill_vertex(VertexId(1)));
        assert!(!o.kill_vertex(VertexId(1)), "second kill is a no-op");
        assert!(
            o.edge_alive(EdgeId(0)),
            "edge keeps its own tombstone clear"
        );
        assert!(!o.edge_usable(&g, EdgeId(0)));
        assert!(!o.edge_usable(&g, EdgeId(1)));
        assert!(o.edge_usable(&g, EdgeId(2)));
        assert_eq!(o.surviving_edges(&g), 1);
        assert_eq!(o.alive_degree(&g, VertexId(1)), 0);
        assert_eq!(o.alive_degree(&g, VertexId(2)), 1);

        let sub = o.build_graph(&g);
        assert_eq!(sub.num_vertices(), 4, "vertex ids stay stable");
        assert_eq!(sub.num_edges(), 1);
        assert_eq!(sub.edge_weight(VertexId(2), VertexId(3)), Some(3));

        assert!(o.revive_vertex(VertexId(1)));
        assert_eq!(o.build_graph(&g), g, "revival restores incident edges");
    }

    #[test]
    fn edge_tombstones_survive_vertex_revival() {
        let g = path4();
        let mut o = Overlay::new(&g);
        o.kill_edge(EdgeId(1));
        o.kill_vertex(VertexId(2));
        o.revive_vertex(VertexId(2));
        assert!(!o.edge_usable(&g, EdgeId(1)));
        assert_eq!(o.surviving_edges(&g), 2);
        assert!(o.revive_edge(EdgeId(1)));
        assert_eq!(o.surviving_edges(&g), 3);
    }

    #[test]
    fn kill_random_draw_order_is_stable() {
        // One draw per vertex, then one per edge with both endpoints alive:
        // the sequence of survivors is pinned for a fixed seed, and two
        // overlays built from the same seed agree exactly.
        let g = path4();
        let mut a = Overlay::new(&g);
        let mut b = Overlay::new(&g);
        let mut rng_a = ChaCha8Rng::seed_from_u64(99);
        let mut rng_b = ChaCha8Rng::seed_from_u64(99);
        a.kill_random(&g, 0.3, 0.4, &mut rng_a);
        b.kill_random(&g, 0.3, 0.4, &mut rng_b);
        assert_eq!(a.alive_vertices(), b.alive_vertices());
        assert_eq!(a.surviving_edges(&g), b.surviving_edges(&g));
        assert_eq!(a.build_graph(&g), b.build_graph(&g));
    }
}
