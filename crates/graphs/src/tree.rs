//! Rooted trees: the object the Section-3 tree-routing scheme operates on.
//!
//! A [`RootedTree`] lives *inside* a host network `G`: its vertex set is a
//! subset of `V(G)` and its edges are edges of `G`. The tree-routing problem
//! (paper §3) is: given `G` with hop-diameter `D` and a spanning (or partial)
//! tree `T`, compute exact routing tables for `T` fast in `G` — exploiting
//! that `D` is typically much smaller than the depth of `T`.

use crate::graph::{Graph, VertexId, Weight};
use crate::shortest_paths::dijkstra_with_parents;
use rand::Rng;

/// A rooted tree on a subset of a host graph's vertices.
///
/// Stored as a parent map over the host graph's vertex ids; vertices not in
/// the tree have no parent and are reported absent by [`RootedTree::contains`].
///
/// # Examples
///
/// ```
/// use graphs::{RootedTree, VertexId};
/// // A path 0 - 1 - 2 rooted at 0.
/// let t = RootedTree::from_parents(
///     VertexId(0),
///     vec![None, Some(VertexId(0)), Some(VertexId(1))],
///     vec![0, 1, 1],
/// );
/// assert_eq!(t.root(), VertexId(0));
/// assert_eq!(t.depth_of(VertexId(2)), Some(2));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RootedTree {
    root: VertexId,
    /// `parent[v]` is the tree parent of host vertex `v`; `None` for the root
    /// and for vertices outside the tree.
    parent: Vec<Option<VertexId>>,
    /// Weight of the edge to the parent (0 where parent is `None`).
    parent_weight: Vec<Weight>,
    /// Membership flags (the root is always a member).
    member: Vec<bool>,
    /// Children adjacency, derived from `parent`.
    children: Vec<Vec<VertexId>>,
}

impl RootedTree {
    /// Build a tree from a parent array over host-vertex ids.
    ///
    /// `parent_weight[v]` is the weight of `v`'s parent edge (ignored when
    /// `parent[v]` is `None`). A vertex is a member iff it is the root or has
    /// a parent.
    ///
    /// # Panics
    ///
    /// Panics if the arrays disagree in length, if the root has a parent, or
    /// if the parent pointers contain a cycle.
    pub fn from_parents(
        root: VertexId,
        parent: Vec<Option<VertexId>>,
        parent_weight: Vec<Weight>,
    ) -> Self {
        let n = parent.len();
        assert_eq!(n, parent_weight.len(), "parent/weight length mismatch");
        assert!(root.index() < n, "root out of range");
        assert!(parent[root.index()].is_none(), "root must have no parent");
        let mut member = vec![false; n];
        member[root.index()] = true;
        let mut children: Vec<Vec<VertexId>> = vec![Vec::new(); n];
        for v in 0..n {
            if let Some(p) = parent[v] {
                member[v] = true;
                children[p.index()].push(VertexId(v as u32));
            }
        }
        let tree = RootedTree {
            root,
            parent,
            parent_weight,
            member,
            children,
        };
        // Cycle check: walking up from any member must terminate at the root.
        for v in 0..n {
            if tree.member[v] {
                let mut cur = VertexId(v as u32);
                let mut steps = 0usize;
                while let Some(p) = tree.parent[cur.index()] {
                    cur = p;
                    steps += 1;
                    assert!(steps <= n, "cycle in parent pointers at {cur}");
                }
                assert_eq!(cur, root, "member {} does not reach the root", v);
            }
        }
        tree
    }

    /// The root vertex.
    #[inline]
    pub fn root(&self) -> VertexId {
        self.root
    }

    /// Size of the host vertex universe (not the tree).
    #[inline]
    pub fn host_len(&self) -> usize {
        self.parent.len()
    }

    /// Whether host vertex `v` belongs to the tree.
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        self.member[v.index()]
    }

    /// Number of tree vertices.
    pub fn num_vertices(&self) -> usize {
        self.member.iter().filter(|&&m| m).count()
    }

    /// The tree parent of `v` (`None` for the root or non-members).
    #[inline]
    pub fn parent(&self, v: VertexId) -> Option<VertexId> {
        self.parent[v.index()]
    }

    /// Weight of `v`'s parent edge (0 for the root / non-members).
    #[inline]
    pub fn parent_weight(&self, v: VertexId) -> Weight {
        self.parent_weight[v.index()]
    }

    /// Children of `v` in the tree.
    #[inline]
    pub fn children(&self, v: VertexId) -> &[VertexId] {
        &self.children[v.index()]
    }

    /// Iterator over the tree's member vertices.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.member
            .iter()
            .enumerate()
            .filter(|(_, &m)| m)
            .map(|(i, _)| VertexId(i as u32))
    }

    /// Hop depth of `v` below the root, `None` for non-members.
    pub fn depth_of(&self, v: VertexId) -> Option<usize> {
        if !self.contains(v) {
            return None;
        }
        let mut d = 0;
        let mut cur = v;
        while let Some(p) = self.parent[cur.index()] {
            cur = p;
            d += 1;
        }
        Some(d)
    }

    /// Maximum hop depth over all members.
    pub fn height(&self) -> usize {
        self.vertices()
            .map(|v| self.depth_of(v).expect("member"))
            .max()
            .unwrap_or(0)
    }

    /// Weighted distance from `v` up to the root along tree edges.
    pub fn root_distance(&self, v: VertexId) -> Option<Weight> {
        if !self.contains(v) {
            return None;
        }
        let mut d = 0;
        let mut cur = v;
        while let Some(p) = self.parent[cur.index()] {
            d += self.parent_weight[cur.index()];
            cur = p;
        }
        Some(d)
    }

    /// Weighted distance between two members *along tree edges* (via their LCA).
    pub fn tree_distance(&self, u: VertexId, v: VertexId) -> Option<Weight> {
        if !self.contains(u) || !self.contains(v) {
            return None;
        }
        // Walk both up to the root recording prefix distances, then match.
        let path = |mut x: VertexId| {
            let mut anc = vec![(x, 0u64)];
            let mut d = 0u64;
            while let Some(p) = self.parent[x.index()] {
                d += self.parent_weight[x.index()];
                x = p;
                anc.push((x, d));
            }
            anc
        };
        let pu = path(u);
        let pv = path(v);
        let mut best = None;
        for &(a, da) in &pu {
            if let Some(&(_, db)) = pv.iter().find(|&&(b, _)| b == a) {
                best = Some(da + db);
                break;
            }
        }
        best
    }

    /// Subtree sizes computed by direct recursion — the centralized reference
    /// against which the distributed pointer-jumping Stage 1 is tested.
    pub fn subtree_sizes(&self) -> Vec<usize> {
        let n = self.host_len();
        let mut size = vec![0usize; n];
        // Post-order via explicit stack.
        let mut stack = vec![(self.root, false)];
        while let Some((v, expanded)) = stack.pop() {
            if expanded {
                size[v.index()] = 1 + self
                    .children(v)
                    .iter()
                    .map(|c| size[c.index()])
                    .sum::<usize>();
            } else {
                stack.push((v, true));
                for &c in self.children(v) {
                    stack.push((c, false));
                }
            }
        }
        size
    }

    /// Members in preorder (root first, children in stored order).
    pub fn preorder(&self) -> Vec<VertexId> {
        let mut out = Vec::with_capacity(self.num_vertices());
        let mut stack = vec![self.root];
        while let Some(v) = stack.pop() {
            out.push(v);
            for &c in self.children(v).iter().rev() {
                stack.push(c);
            }
        }
        out
    }
}

/// The shortest-path tree of `G` rooted at `root` (a spanning tree of the
/// component of `root`). This is the canonical "tree inside a network" used
/// by Table-2 experiments.
pub fn shortest_path_tree(g: &Graph, root: VertexId) -> RootedTree {
    let (_, parent) = dijkstra_with_parents(g, root);
    let weights = parent
        .iter()
        .enumerate()
        .map(|(v, p)| match p {
            Some(p) => g
                .edge_weight(*p, VertexId(v as u32))
                .expect("SPT parent edge exists"),
            None => 0,
        })
        .collect();
    RootedTree::from_parents(root, parent, weights)
}

/// A uniformly random recursive tree on the member set `verts` (the first
/// element becomes the root): each subsequent vertex attaches to a uniformly
/// random earlier vertex. Edge weights are drawn from `1..=max_w`.
///
/// The returned tree's parent edges are *virtual* (not edges of any host
/// graph); it exercises tree-only code paths and property tests.
///
/// # Panics
///
/// Panics if `verts` is empty or `max_w == 0`.
pub fn random_recursive_tree<R: Rng>(
    host_len: usize,
    verts: &[VertexId],
    max_w: Weight,
    rng: &mut R,
) -> RootedTree {
    assert!(!verts.is_empty(), "need at least a root");
    assert!(max_w > 0, "max weight must be positive");
    let mut parent = vec![None; host_len];
    let mut weight = vec![0; host_len];
    for i in 1..verts.len() {
        let p = verts[rng.gen_range(0..i)];
        parent[verts[i].index()] = Some(p);
        weight[verts[i].index()] = rng.gen_range(1..=max_w);
    }
    RootedTree::from_parents(verts[0], parent, weight)
}

/// A path tree `v0 -> v1 -> ... -> v_{n-1}` (worst case for naive tree
/// algorithms: depth n−1).
pub fn path_tree(host_len: usize, verts: &[VertexId], w: Weight) -> RootedTree {
    assert!(!verts.is_empty());
    let mut parent = vec![None; host_len];
    let mut weight = vec![0; host_len];
    for i in 1..verts.len() {
        parent[verts[i].index()] = Some(verts[i - 1]);
        weight[verts[i].index()] = w;
    }
    RootedTree::from_parents(verts[0], parent, weight)
}

/// A star rooted at `verts[0]` with all other members as leaves.
pub fn star_tree(host_len: usize, verts: &[VertexId], w: Weight) -> RootedTree {
    assert!(!verts.is_empty());
    let mut parent = vec![None; host_len];
    let mut weight = vec![0; host_len];
    for &v in &verts[1..] {
        parent[v.index()] = Some(verts[0]);
        weight[v.index()] = w;
    }
    RootedTree::from_parents(verts[0], parent, weight)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn ids(n: u32) -> Vec<VertexId> {
        (0..n).map(VertexId).collect()
    }

    #[test]
    fn path_tree_depth_and_distance() {
        let t = path_tree(5, &ids(5), 2);
        assert_eq!(t.height(), 4);
        assert_eq!(t.root_distance(VertexId(4)), Some(8));
        assert_eq!(t.tree_distance(VertexId(1), VertexId(4)), Some(6));
        assert_eq!(t.depth_of(VertexId(3)), Some(3));
    }

    #[test]
    fn star_tree_children() {
        let t = star_tree(4, &ids(4), 1);
        assert_eq!(t.children(VertexId(0)).len(), 3);
        assert_eq!(t.height(), 1);
        assert_eq!(t.tree_distance(VertexId(1), VertexId(2)), Some(2));
    }

    #[test]
    fn subtree_sizes_on_path() {
        let t = path_tree(4, &ids(4), 1);
        let s = t.subtree_sizes();
        assert_eq!(s, vec![4, 3, 2, 1]);
    }

    #[test]
    fn partial_membership() {
        // Tree on {0, 2} inside a host of 4 vertices.
        let t = RootedTree::from_parents(
            VertexId(0),
            vec![None, None, Some(VertexId(0)), None],
            vec![0, 0, 5, 0],
        );
        assert!(t.contains(VertexId(0)));
        assert!(t.contains(VertexId(2)));
        assert!(!t.contains(VertexId(1)));
        assert_eq!(t.num_vertices(), 2);
        assert_eq!(t.tree_distance(VertexId(0), VertexId(1)), None);
    }

    #[test]
    fn random_recursive_tree_spans_members() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let t = random_recursive_tree(20, &ids(20), 10, &mut rng);
        assert_eq!(t.num_vertices(), 20);
        for v in t.vertices() {
            assert!(t.depth_of(v).is_some());
        }
        let sizes = t.subtree_sizes();
        assert_eq!(sizes[0], 20);
    }

    #[test]
    fn spt_distances_match_dijkstra() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = generators::erdos_renyi_connected(40, 0.15, 1..=9, &mut rng);
        let t = shortest_path_tree(&g, VertexId(0));
        let d = crate::shortest_paths::dijkstra(&g, VertexId(0));
        for v in g.vertices() {
            assert_eq!(t.root_distance(v), Some(d[v.index()]));
        }
    }

    #[test]
    fn preorder_starts_at_root_and_respects_parents() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let t = random_recursive_tree(15, &ids(15), 3, &mut rng);
        let order = t.preorder();
        assert_eq!(order[0], t.root());
        assert_eq!(order.len(), 15);
        let pos: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        for v in t.vertices() {
            if let Some(p) = t.parent(v) {
                assert!(pos[&p] < pos[&v], "parent must precede child in preorder");
            }
        }
    }

    #[test]
    #[should_panic(expected = "root must have no parent")]
    fn rejects_rooted_cycle() {
        RootedTree::from_parents(
            VertexId(0),
            vec![Some(VertexId(1)), Some(VertexId(0))],
            vec![1, 1],
        );
    }

    #[test]
    #[should_panic(expected = "cycle in parent pointers")]
    fn rejects_detached_cycle() {
        // 0 is the root; 1 and 2 form a 2-cycle not attached to the root.
        RootedTree::from_parents(
            VertexId(0),
            vec![None, Some(VertexId(2)), Some(VertexId(1))],
            vec![0, 1, 1],
        );
    }

    #[test]
    fn tree_distance_is_symmetric_and_triangleish() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let t = random_recursive_tree(25, &ids(25), 7, &mut rng);
        for u in 0..25u32 {
            for v in 0..25u32 {
                let duv = t.tree_distance(VertexId(u), VertexId(v)).unwrap();
                let dvu = t.tree_distance(VertexId(v), VertexId(u)).unwrap();
                assert_eq!(duv, dvu);
                if u == v {
                    assert_eq!(duv, 0);
                }
            }
        }
    }
}
