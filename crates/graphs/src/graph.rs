//! The weighted undirected graph representation used throughout the workspace.

use std::fmt;

/// Edge weights and distances. Weights are strictly positive integers; using
/// integers (rather than floats) keeps every algorithm deterministic and makes
/// equality assertions in tests exact.
pub type Weight = u64;

/// The distance sentinel for "unreachable". Use [`crate::dist_add`] to add
/// distances so that `INFINITY` is absorbing.
pub const INFINITY: Weight = u64::MAX;

/// Identifier of a vertex: a dense index in `0..n`.
///
/// # Examples
///
/// ```
/// use graphs::VertexId;
/// let v = VertexId(3);
/// assert_eq!(v.index(), 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VertexId(pub u32);

impl VertexId {
    /// The vertex id as a `usize` index into per-vertex arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u32> for VertexId {
    fn from(raw: u32) -> Self {
        VertexId(raw)
    }
}

/// Identifier of an undirected edge: a dense index in `0..m`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// The edge id as a `usize` index into per-edge arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One directed half of an undirected edge, as seen from its source vertex.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Arc {
    /// The other endpoint.
    pub to: VertexId,
    /// The weight of the underlying undirected edge.
    pub weight: Weight,
    /// The id of the underlying undirected edge (shared by both directions).
    pub edge: EdgeId,
}

/// A weighted undirected graph in compressed adjacency (CSR) form.
///
/// Vertices are `0..n`; parallel edges and self-loops are rejected at build
/// time. The representation is immutable once built — construct one through
/// [`GraphBuilder`].
///
/// # Examples
///
/// ```
/// use graphs::{Graph, GraphBuilder, VertexId};
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(VertexId(0), VertexId(1), 5);
/// b.add_edge(VertexId(1), VertexId(2), 7);
/// let g: Graph = b.build();
/// assert_eq!(g.num_vertices(), 3);
/// assert_eq!(g.num_edges(), 2);
/// assert_eq!(g.degree(VertexId(1)), 2);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    /// CSR offsets: arcs of vertex `v` are `arcs[offsets[v]..offsets[v + 1]]`.
    offsets: Vec<u32>,
    arcs: Vec<Arc>,
    /// Endpoints of each undirected edge, `u < v`.
    edges: Vec<(VertexId, VertexId, Weight)>,
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("n", &self.num_vertices())
            .field("m", &self.num_edges())
            .finish()
    }
}

impl Graph {
    /// Number of vertices `n`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `m`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Iterator over all vertex ids `0..n`.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.num_vertices() as u32).map(VertexId)
    }

    /// The arcs (directed halves of undirected edges) leaving `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[Arc] {
        let lo = self.offsets[v.index()] as usize;
        let hi = self.offsets[v.index() + 1] as usize;
        &self.arcs[lo..hi]
    }

    /// The degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.neighbors(v).len()
    }

    /// Endpoints and weight of undirected edge `e`, with the smaller endpoint
    /// first.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> (VertexId, VertexId, Weight) {
        self.edges[e.index()]
    }

    /// Iterator over all undirected edges as `(u, v, w)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId, Weight)> + '_ {
        self.edges.iter().copied()
    }

    /// The weight of the edge between `u` and `v`, if one exists.
    ///
    /// Linear in `deg(u)`; intended for tests and assertions, not hot loops.
    pub fn edge_weight(&self, u: VertexId, v: VertexId) -> Option<Weight> {
        self.neighbors(u)
            .iter()
            .find(|a| a.to == v)
            .map(|a| a.weight)
    }

    /// Sum of all edge weights.
    pub fn total_weight(&self) -> Weight {
        self.edges.iter().map(|&(_, _, w)| w).sum()
    }

    /// Maximum vertex degree, or 0 for the empty graph.
    pub fn max_degree(&self) -> usize {
        self.vertices().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// The ratio Λ between the largest and smallest edge weight, or `None`
    /// for edgeless graphs. The paper's prior work has `log Λ` factors in its
    /// round complexity; benches report this to contextualize round counts.
    pub fn aspect_ratio(&self) -> Option<f64> {
        let min = self.edges.iter().map(|&(_, _, w)| w).min()?;
        let max = self.edges.iter().map(|&(_, _, w)| w).max()?;
        Some(max as f64 / min as f64)
    }
}

/// Incremental builder for [`Graph`].
///
/// Deduplicates nothing: adding the same unordered pair twice is a logic error
/// and is rejected in [`GraphBuilder::build`] (debug) to keep simulations
/// well-defined.
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(VertexId, VertexId, Weight)>,
}

impl GraphBuilder {
    /// A builder for a graph on `n` vertices with no edges yet.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Number of vertices the built graph will have.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of edges added so far.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Add an undirected edge `{u, v}` with weight `w`.
    ///
    /// # Panics
    ///
    /// Panics if `u == v` (self-loop), if either endpoint is out of range, or
    /// if `w == 0` (the schemes require strictly positive weights).
    pub fn add_edge(&mut self, u: VertexId, v: VertexId, w: Weight) -> &mut Self {
        assert!(u != v, "self-loop {u} rejected");
        assert!(
            u.index() < self.n && v.index() < self.n,
            "edge {u}-{v} out of range for n={}",
            self.n
        );
        assert!(w > 0, "edge weights must be strictly positive");
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.edges.push((a, b, w));
        self
    }

    /// Whether the unordered pair `{u, v}` has already been added.
    ///
    /// Linear in the number of edges added so far; generators that need fast
    /// membership keep their own hash set.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.edges.iter().any(|&(x, y, _)| (x, y) == (a, b))
    }

    /// Finalize into an immutable [`Graph`].
    ///
    /// # Panics
    ///
    /// Panics if the same unordered pair was added twice.
    pub fn build(&self) -> Graph {
        let mut edges = self.edges.clone();
        edges.sort_unstable();
        for pair in edges.windows(2) {
            assert!(
                (pair[0].0, pair[0].1) != (pair[1].0, pair[1].1),
                "parallel edge {}-{}",
                pair[0].0,
                pair[0].1
            );
        }
        let mut deg = vec![0u32; self.n];
        for &(u, v, _) in &edges {
            deg[u.index()] += 1;
            deg[v.index()] += 1;
        }
        let mut offsets = Vec::with_capacity(self.n + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for d in &deg {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor: Vec<u32> = offsets[..self.n].to_vec();
        let mut arcs = vec![
            Arc {
                to: VertexId(0),
                weight: 0,
                edge: EdgeId(0)
            };
            2 * edges.len()
        ];
        for (i, &(u, v, w)) in edges.iter().enumerate() {
            let e = EdgeId(i as u32);
            arcs[cursor[u.index()] as usize] = Arc {
                to: v,
                weight: w,
                edge: e,
            };
            cursor[u.index()] += 1;
            arcs[cursor[v.index()] as usize] = Arc {
                to: u,
                weight: w,
                edge: e,
            };
            cursor[v.index()] += 1;
        }
        Graph {
            offsets,
            arcs,
            edges,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(VertexId(0), VertexId(1), 1);
        b.add_edge(VertexId(1), VertexId(2), 2);
        b.add_edge(VertexId(2), VertexId(0), 3);
        b.build()
    }

    #[test]
    fn builds_csr_adjacency() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        for v in g.vertices() {
            assert_eq!(g.degree(v), 2);
        }
        assert_eq!(g.edge_weight(VertexId(0), VertexId(1)), Some(1));
        assert_eq!(g.edge_weight(VertexId(1), VertexId(0)), Some(1));
        assert_eq!(g.edge_weight(VertexId(0), VertexId(2)), Some(3));
    }

    #[test]
    fn edge_ids_are_shared_between_directions() {
        let g = triangle();
        for (u, v, w) in g.edges() {
            let a = g.neighbors(u).iter().find(|a| a.to == v).unwrap();
            let b = g.neighbors(v).iter().find(|a| a.to == u).unwrap();
            assert_eq!(a.edge, b.edge);
            assert_eq!(a.weight, w);
            assert_eq!(b.weight, w);
        }
    }

    #[test]
    fn edge_lookup_by_id_matches_iteration() {
        let g = triangle();
        for (i, (u, v, w)) in g.edges().enumerate() {
            assert_eq!(g.edge(EdgeId(i as u32)), (u, v, w));
            assert!(u < v);
        }
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.aspect_ratio(), None);
    }

    #[test]
    fn isolated_vertices_have_degree_zero() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(VertexId(0), VertexId(4), 9);
        let g = b.build();
        assert_eq!(g.degree(VertexId(2)), 0);
        assert_eq!(g.degree(VertexId(0)), 1);
        assert_eq!(g.degree(VertexId(4)), 1);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loops() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(VertexId(1), VertexId(1), 1);
    }

    #[test]
    #[should_panic(expected = "parallel edge")]
    fn rejects_parallel_edges() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(VertexId(0), VertexId(1), 1);
        b.add_edge(VertexId(1), VertexId(0), 2);
        b.build();
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn rejects_zero_weight() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(VertexId(0), VertexId(1), 0);
    }

    #[test]
    fn has_edge_is_orientation_insensitive() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(VertexId(2), VertexId(0), 4);
        assert!(b.has_edge(VertexId(0), VertexId(2)));
        assert!(b.has_edge(VertexId(2), VertexId(0)));
        assert!(!b.has_edge(VertexId(0), VertexId(1)));
    }

    #[test]
    fn aspect_ratio_and_total_weight() {
        let g = triangle();
        assert_eq!(g.total_weight(), 6);
        assert_eq!(g.aspect_ratio(), Some(3.0));
    }
}
