//! Synthetic network generators spanning the diameter / degree regimes the
//! paper discusses (`D ≪ S ≪ n`).
//!
//! All generators take an explicit RNG so experiments are reproducible, and a
//! weight range so both unweighted (`1..=1`) and heavily weighted networks can
//! be produced.

use std::collections::HashSet;
use std::ops::RangeInclusive;

use rand::seq::SliceRandom;
use rand::Rng;

use crate::graph::{Graph, GraphBuilder, VertexId, Weight};

fn random_weight<R: Rng>(range: &RangeInclusive<Weight>, rng: &mut R) -> Weight {
    rng.gen_range(range.clone())
}

/// Erdős–Rényi G(n, p) with weights drawn uniformly from `weights`.
///
/// May be disconnected; see [`erdos_renyi_connected`] for the variant
/// experiments use.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]` or the weight range is empty/contains 0.
pub fn erdos_renyi<R: Rng>(
    n: usize,
    p: f64,
    weights: RangeInclusive<Weight>,
    rng: &mut R,
) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    assert!(*weights.start() > 0, "weights must be positive");
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p) {
                b.add_edge(
                    VertexId(u as u32),
                    VertexId(v as u32),
                    random_weight(&weights, rng),
                );
            }
        }
    }
    b.build()
}

/// G(n, p) made connected by first laying down a random recursive spanning
/// tree, then adding each remaining pair independently with probability `p`.
pub fn erdos_renyi_connected<R: Rng>(
    n: usize,
    p: f64,
    weights: RangeInclusive<Weight>,
    rng: &mut R,
) -> Graph {
    assert!(n > 0, "need at least one vertex");
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    assert!(*weights.start() > 0, "weights must be positive");
    let mut b = GraphBuilder::new(n);
    let mut present: HashSet<(u32, u32)> = HashSet::new();
    for v in 1..n {
        let u = rng.gen_range(0..v);
        b.add_edge(
            VertexId(u as u32),
            VertexId(v as u32),
            random_weight(&weights, rng),
        );
        present.insert((u as u32, v as u32));
    }
    for u in 0..n {
        for v in (u + 1)..n {
            if !present.contains(&(u as u32, v as u32)) && rng.gen_bool(p) {
                b.add_edge(
                    VertexId(u as u32),
                    VertexId(v as u32),
                    random_weight(&weights, rng),
                );
            }
        }
    }
    b.build()
}

/// Random geometric graph: `n` points in the unit square, edges between pairs
/// within Euclidean distance `radius`, weighted by `weights`. Connected by a
/// fallback spanning tree over the point sequence (each point links to its
/// nearest earlier point) so experiments never see disconnected inputs.
///
/// Geometric graphs have large hop diameter (≈ 1/radius) — the regime where
/// the `+D` term matters.
pub fn random_geometric_connected<R: Rng>(
    n: usize,
    radius: f64,
    weights: RangeInclusive<Weight>,
    rng: &mut R,
) -> Graph {
    assert!(n > 0);
    assert!(radius > 0.0);
    assert!(*weights.start() > 0, "weights must be positive");
    let pts: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();
    let mut b = GraphBuilder::new(n);
    let mut present: HashSet<(u32, u32)> = HashSet::new();
    let r2 = radius * radius;
    for u in 0..n {
        for v in (u + 1)..n {
            let dx = pts[u].0 - pts[v].0;
            let dy = pts[u].1 - pts[v].1;
            if dx * dx + dy * dy <= r2 {
                b.add_edge(
                    VertexId(u as u32),
                    VertexId(v as u32),
                    random_weight(&weights, rng),
                );
                present.insert((u as u32, v as u32));
            }
        }
    }
    // Connectivity fallback: nearest earlier point.
    for v in 1..n {
        let nearest = (0..v)
            .min_by(|&a, &c| {
                let da = (pts[a].0 - pts[v].0).powi(2) + (pts[a].1 - pts[v].1).powi(2);
                let dc = (pts[c].0 - pts[v].0).powi(2) + (pts[c].1 - pts[v].1).powi(2);
                da.partial_cmp(&dc).unwrap()
            })
            .expect("v >= 1");
        let key = (nearest as u32, v as u32);
        if !present.contains(&key) {
            b.add_edge(
                VertexId(nearest as u32),
                VertexId(v as u32),
                random_weight(&weights, rng),
            );
            present.insert(key);
        }
    }
    b.build()
}

/// `rows × cols` grid with 4-neighborhoods; weights from `weights`.
pub fn grid<R: Rng>(
    rows: usize,
    cols: usize,
    weights: RangeInclusive<Weight>,
    rng: &mut R,
) -> Graph {
    assert!(rows > 0 && cols > 0);
    assert!(*weights.start() > 0, "weights must be positive");
    let id = |r: usize, c: usize| VertexId((r * cols + c) as u32);
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(id(r, c), id(r, c + 1), random_weight(&weights, rng));
            }
            if r + 1 < rows {
                b.add_edge(id(r, c), id(r + 1, c), random_weight(&weights, rng));
            }
        }
    }
    b.build()
}

/// `rows × cols` torus (grid with wraparound); regular degree 4 when both
/// dimensions exceed 2.
pub fn torus<R: Rng>(
    rows: usize,
    cols: usize,
    weights: RangeInclusive<Weight>,
    rng: &mut R,
) -> Graph {
    assert!(rows > 2 && cols > 2, "torus needs both dimensions > 2");
    assert!(*weights.start() > 0, "weights must be positive");
    let id = |r: usize, c: usize| VertexId(((r % rows) * cols + (c % cols)) as u32);
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            b.add_edge(id(r, c), id(r, c + 1), random_weight(&weights, rng));
            b.add_edge(id(r, c), id(r + 1, c), random_weight(&weights, rng));
        }
    }
    b.build()
}

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `attach` distinct existing vertices chosen proportionally to degree.
/// Produces small-diameter, heavy-tailed-degree networks (ISP-like).
///
/// # Panics
///
/// Panics if `attach == 0` or `n <= attach`.
pub fn preferential_attachment<R: Rng>(
    n: usize,
    attach: usize,
    weights: RangeInclusive<Weight>,
    rng: &mut R,
) -> Graph {
    assert!(attach > 0, "attach must be positive");
    assert!(n > attach, "need more vertices than attachment count");
    assert!(*weights.start() > 0, "weights must be positive");
    let mut b = GraphBuilder::new(n);
    // Degree-proportional sampling via the repeated-endpoints urn.
    let mut urn: Vec<u32> = Vec::new();
    // Seed clique on the first `attach + 1` vertices.
    for u in 0..=attach {
        for v in (u + 1)..=attach {
            b.add_edge(
                VertexId(u as u32),
                VertexId(v as u32),
                random_weight(&weights, rng),
            );
            urn.push(u as u32);
            urn.push(v as u32);
        }
    }
    for v in (attach + 1)..n {
        let mut targets: HashSet<u32> = HashSet::new();
        while targets.len() < attach {
            let t = *urn.choose(rng).expect("urn non-empty");
            targets.insert(t);
        }
        // Iterate in sorted order, not HashSet order: the set's randomized
        // iteration would desynchronize the weight draws and urn growth from
        // the seed, making "seeded" scale-free graphs irreproducible.
        let mut targets: Vec<u32> = targets.into_iter().collect();
        targets.sort_unstable();
        for &t in &targets {
            b.add_edge(
                VertexId(v as u32),
                VertexId(t),
                random_weight(&weights, rng),
            );
            urn.push(v as u32);
            urn.push(t);
        }
    }
    b.build()
}

/// A simple path `0 - 1 - ... - n-1` (hop diameter n−1; the worst case for
/// `D`-dependent terms).
pub fn path<R: Rng>(n: usize, weights: RangeInclusive<Weight>, rng: &mut R) -> Graph {
    assert!(n > 0);
    assert!(*weights.start() > 0, "weights must be positive");
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_edge(
            VertexId((v - 1) as u32),
            VertexId(v as u32),
            random_weight(&weights, rng),
        );
    }
    b.build()
}

/// A star with center 0 (hop diameter 2, maximum degree n−1).
pub fn star<R: Rng>(n: usize, weights: RangeInclusive<Weight>, rng: &mut R) -> Graph {
    assert!(n > 0);
    assert!(*weights.start() > 0, "weights must be positive");
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_edge(
            VertexId(0),
            VertexId(v as u32),
            random_weight(&weights, rng),
        );
    }
    b.build()
}

/// The "lollipop": a clique on `clique` vertices with a path of `tail`
/// vertices hanging off vertex 0. Small `D` inside the clique, large `S`
/// along the tail — separates hop-diameter from shortest-path-diameter.
pub fn lollipop<R: Rng>(
    clique: usize,
    tail: usize,
    weights: RangeInclusive<Weight>,
    rng: &mut R,
) -> Graph {
    assert!(clique >= 2);
    assert!(*weights.start() > 0, "weights must be positive");
    let n = clique + tail;
    let mut b = GraphBuilder::new(n);
    for u in 0..clique {
        for v in (u + 1)..clique {
            b.add_edge(
                VertexId(u as u32),
                VertexId(v as u32),
                random_weight(&weights, rng),
            );
        }
    }
    for i in 0..tail {
        let u = if i == 0 { 0 } else { clique + i - 1 };
        b.add_edge(
            VertexId(u as u32),
            VertexId((clique + i) as u32),
            random_weight(&weights, rng),
        );
    }
    b.build()
}

/// The `d`-dimensional hypercube (`n = 2^d` vertices, degree `d`, hop
/// diameter `d`): a classic low-diameter regular interconnect.
///
/// # Panics
///
/// Panics if `dims == 0` or `dims > 20`.
pub fn hypercube<R: Rng>(dims: usize, weights: RangeInclusive<Weight>, rng: &mut R) -> Graph {
    assert!(dims > 0 && dims <= 20, "dims must be in 1..=20");
    assert!(*weights.start() > 0, "weights must be positive");
    let n = 1usize << dims;
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for bit in 0..dims {
            let v = u ^ (1 << bit);
            if u < v {
                b.add_edge(
                    VertexId(u as u32),
                    VertexId(v as u32),
                    random_weight(&weights, rng),
                );
            }
        }
    }
    b.build()
}

/// A random near-`d`-regular expander: the union of `d` random perfect
/// matchings (each pass pairs a shuffled vertex sequence; duplicate pairs
/// are skipped), plus a fallback recursive tree for connectivity — mean
/// degree ≈ `d`, with a light tail from the fallback. Expanders have
/// `O(log n)` diameter and no small separators — the opposite regime from
/// meshes.
///
/// # Panics
///
/// Panics if `d < 2` or `n < 4`.
pub fn random_regular_expander<R: Rng>(
    n: usize,
    d: usize,
    weights: RangeInclusive<Weight>,
    rng: &mut R,
) -> Graph {
    assert!(d >= 2, "need degree at least 2");
    assert!(n >= 4, "need at least 4 vertices");
    assert!(*weights.start() > 0, "weights must be positive");
    let mut b = GraphBuilder::new(n);
    let mut present: HashSet<(u32, u32)> = HashSet::new();
    let mut order: Vec<u32> = (0..n as u32).collect();
    for _ in 0..d {
        order.shuffle(rng);
        for pair in order.chunks_exact(2) {
            let key = if pair[0] < pair[1] {
                (pair[0], pair[1])
            } else {
                (pair[1], pair[0])
            };
            if present.insert(key) {
                b.add_edge(
                    VertexId(key.0),
                    VertexId(key.1),
                    random_weight(&weights, rng),
                );
            }
        }
    }
    for v in 1..n {
        let u = rng.gen_range(0..v) as u32;
        let key = (u.min(v as u32), u.max(v as u32));
        if present.insert(key) {
            b.add_edge(
                VertexId(key.0),
                VertexId(key.1),
                random_weight(&weights, rng),
            );
        }
    }
    b.build()
}

/// A barbell: two cliques of `side` vertices joined by a path of `bridge`
/// vertices. Dense ends, thin middle — hard for schemes that assume
/// homogeneous degree.
///
/// # Panics
///
/// Panics if `side < 2`.
pub fn barbell<R: Rng>(
    side: usize,
    bridge: usize,
    weights: RangeInclusive<Weight>,
    rng: &mut R,
) -> Graph {
    assert!(side >= 2, "cliques need at least 2 vertices");
    assert!(*weights.start() > 0, "weights must be positive");
    let n = 2 * side + bridge;
    let mut b = GraphBuilder::new(n);
    let clique = |b: &mut GraphBuilder, base: usize, rng: &mut R| {
        for u in 0..side {
            for v in (u + 1)..side {
                b.add_edge(
                    VertexId((base + u) as u32),
                    VertexId((base + v) as u32),
                    random_weight(&weights, rng),
                );
            }
        }
    };
    clique(&mut b, 0, rng);
    clique(&mut b, side + bridge, rng);
    // Bridge path from clique-1 vertex 0 to clique-2 vertex side+bridge.
    let mut prev = 0usize;
    for i in 0..bridge {
        b.add_edge(
            VertexId(prev as u32),
            VertexId((side + i) as u32),
            random_weight(&weights, rng),
        );
        prev = side + i;
    }
    b.add_edge(
        VertexId(prev as u32),
        VertexId((side + bridge) as u32),
        random_weight(&weights, rng),
    );
    b.build()
}

/// A caterpillar: a spine path of `spine` vertices, each carrying `legs`
/// pendant leaves. Trees with many leaves stress the heavy-path machinery.
///
/// # Panics
///
/// Panics if `spine == 0`.
pub fn caterpillar<R: Rng>(
    spine: usize,
    legs: usize,
    weights: RangeInclusive<Weight>,
    rng: &mut R,
) -> Graph {
    assert!(spine > 0, "need a spine");
    assert!(*weights.start() > 0, "weights must be positive");
    let n = spine * (1 + legs);
    let mut b = GraphBuilder::new(n);
    for s in 1..spine {
        b.add_edge(
            VertexId((s - 1) as u32),
            VertexId(s as u32),
            random_weight(&weights, rng),
        );
    }
    for s in 0..spine {
        for l in 0..legs {
            b.add_edge(
                VertexId(s as u32),
                VertexId((spine + s * legs + l) as u32),
                random_weight(&weights, rng),
            );
        }
    }
    b.build()
}

/// A weighted graph whose *hop* diameter is tiny but whose *shortest-path*
/// diameter is large: a cycle of `n` unit edges plus random long-range
/// "highways" of very large weight. Shortest paths avoid highways, so they
/// use many hops (large `S`), while the highways keep `D` small.
pub fn small_hop_diameter_large_spd<R: Rng>(n: usize, chords: usize, rng: &mut R) -> Graph {
    assert!(n >= 4);
    let mut b = GraphBuilder::new(n);
    let mut present: HashSet<(u32, u32)> = HashSet::new();
    for v in 0..n {
        let u = v as u32;
        let w = ((v + 1) % n) as u32;
        let (a, c) = if u < w { (u, w) } else { (w, u) };
        b.add_edge(VertexId(a), VertexId(c), 1);
        present.insert((a, c));
    }
    let heavy: Weight = (n as Weight) * 10;
    let mut added = 0;
    while added < chords {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if present.insert(key) {
            b.add_edge(VertexId(key.0), VertexId(key.1), heavy);
            added += 1;
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn er_connected_is_connected() {
        for seed in 0..5 {
            let g = erdos_renyi_connected(50, 0.02, 1..=10, &mut rng(seed));
            assert!(properties::is_connected(&g), "seed {seed}");
        }
    }

    #[test]
    fn er_density_tracks_p() {
        let g = erdos_renyi(200, 0.5, 1..=1, &mut rng(0));
        let max_edges = 200 * 199 / 2;
        let density = g.num_edges() as f64 / max_edges as f64;
        assert!((density - 0.5).abs() < 0.05, "density {density}");
    }

    #[test]
    fn er_p_zero_and_one() {
        let g0 = erdos_renyi(10, 0.0, 1..=1, &mut rng(0));
        assert_eq!(g0.num_edges(), 0);
        let g1 = erdos_renyi(10, 1.0, 1..=1, &mut rng(0));
        assert_eq!(g1.num_edges(), 45);
    }

    #[test]
    fn geometric_is_connected() {
        let g = random_geometric_connected(80, 0.12, 1..=5, &mut rng(1));
        assert!(properties::is_connected(&g));
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4, 1..=1, &mut rng(0));
        assert_eq!(g.num_vertices(), 12);
        // 3 rows × 3 horizontal + 2 × 4 vertical = 9 + 8.
        assert_eq!(g.num_edges(), 17);
        assert!(properties::is_connected(&g));
    }

    #[test]
    fn torus_is_regular() {
        let g = torus(4, 5, 1..=1, &mut rng(0));
        assert_eq!(g.num_vertices(), 20);
        for v in g.vertices() {
            assert_eq!(g.degree(v), 4);
        }
    }

    #[test]
    fn preferential_attachment_shape() {
        let g = preferential_attachment(100, 3, 1..=4, &mut rng(2));
        assert_eq!(g.num_vertices(), 100);
        assert!(properties::is_connected(&g));
        // Seed clique K4 (6 edges) + 96 vertices × 3 edges.
        assert_eq!(g.num_edges(), 6 + 96 * 3);
        // Preferential attachment should produce at least one hub.
        assert!(g.max_degree() >= 10);
    }

    #[test]
    fn path_and_star_diameters() {
        let p = path(10, 1..=1, &mut rng(0));
        assert_eq!(properties::hop_diameter(&p), Some(9));
        let s = star(10, 1..=1, &mut rng(0));
        assert_eq!(properties::hop_diameter(&s), Some(2));
    }

    #[test]
    fn lollipop_connected() {
        let g = lollipop(5, 10, 1..=3, &mut rng(3));
        assert_eq!(g.num_vertices(), 15);
        assert!(properties::is_connected(&g));
        assert_eq!(g.degree(VertexId(14)), 1);
    }

    #[test]
    fn spd_gap_graph_has_gap() {
        let g = small_hop_diameter_large_spd(60, 30, &mut rng(4));
        assert!(properties::is_connected(&g));
        let d = properties::hop_diameter(&g).unwrap();
        let s = properties::shortest_path_diameter(&g).unwrap();
        assert!(s > d, "expected S={s} > D={d}");
    }

    #[test]
    fn hypercube_shape() {
        let g = hypercube(5, 1..=1, &mut rng(10));
        assert_eq!(g.num_vertices(), 32);
        assert_eq!(g.num_edges(), 32 * 5 / 2);
        for v in g.vertices() {
            assert_eq!(g.degree(v), 5);
        }
        assert_eq!(properties::hop_diameter(&g), Some(5));
    }

    #[test]
    fn expander_is_connected_with_small_diameter() {
        let g = random_regular_expander(200, 6, 1..=9, &mut rng(11));
        assert!(properties::is_connected(&g));
        let d = properties::hop_diameter(&g).unwrap();
        assert!(d <= 8, "expander diameter {d} too large");
        let (_, _, mean) = properties::degree_stats(&g).unwrap();
        assert!((5.0..=9.0).contains(&mean), "mean degree {mean}");
    }

    #[test]
    fn barbell_shape() {
        let g = barbell(6, 4, 1..=3, &mut rng(12));
        assert_eq!(g.num_vertices(), 16);
        assert!(properties::is_connected(&g));
        // Clique interiors have degree side-1 (+1 for the bridge endpoints).
        assert_eq!(g.degree(VertexId(1)), 5);
        // Bridge interior vertices have degree 2.
        assert_eq!(g.degree(VertexId(7)), 2);
    }

    #[test]
    fn caterpillar_shape() {
        let g = caterpillar(5, 3, 1..=2, &mut rng(13));
        assert_eq!(g.num_vertices(), 20);
        assert_eq!(g.num_edges(), 4 + 15);
        assert!(properties::is_connected(&g));
        // Legs are leaves.
        assert_eq!(g.degree(VertexId(19)), 1);
    }

    #[test]
    fn generators_are_deterministic_given_seed() {
        let a = erdos_renyi_connected(30, 0.1, 1..=9, &mut rng(7));
        let b = erdos_renyi_connected(30, 0.1, 1..=9, &mut rng(7));
        assert_eq!(a, b);
    }

    #[test]
    fn weights_respect_range() {
        let g = erdos_renyi_connected(40, 0.2, 5..=8, &mut rng(8));
        for (_, _, w) in g.edges() {
            assert!((5..=8).contains(&w));
        }
    }
}
