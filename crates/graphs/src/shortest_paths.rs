//! Exact shortest-path computations used as ground truth by tests and benches.
//!
//! Everything here is *centralized* — these routines are the oracle against
//! which the distributed schemes' stretch and exactness claims are checked.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::dist_add;
use crate::graph::{Graph, VertexId, Weight, INFINITY};

/// Single-source shortest path distances from `src` (Dijkstra).
///
/// Returns a vector indexed by vertex; unreachable vertices get
/// [`INFINITY`].
///
/// # Examples
///
/// ```
/// use graphs::{GraphBuilder, VertexId, shortest_paths::dijkstra};
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(VertexId(0), VertexId(1), 2);
/// b.add_edge(VertexId(1), VertexId(2), 2);
/// b.add_edge(VertexId(0), VertexId(2), 5);
/// let d = dijkstra(&b.build(), VertexId(0));
/// assert_eq!(d, vec![0, 2, 4]);
/// ```
pub fn dijkstra(g: &Graph, src: VertexId) -> Vec<Weight> {
    dijkstra_with_parents(g, src).0
}

/// Dijkstra that also returns the shortest-path-tree parent of each vertex
/// (`None` for the source and unreachable vertices).
pub fn dijkstra_with_parents(g: &Graph, src: VertexId) -> (Vec<Weight>, Vec<Option<VertexId>>) {
    let n = g.num_vertices();
    let mut dist = vec![INFINITY; n];
    let mut parent = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[src.index()] = 0;
    heap.push(Reverse((0, src)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u.index()] {
            continue;
        }
        for arc in g.neighbors(u) {
            let nd = dist_add(d, arc.weight);
            if nd < dist[arc.to.index()] {
                dist[arc.to.index()] = nd;
                parent[arc.to.index()] = Some(u);
                heap.push(Reverse((nd, arc.to)));
            }
        }
    }
    (dist, parent)
}

/// Shortest distance from every vertex to the *nearest member of a set*
/// (multi-source Dijkstra). Used for the Thorup–Zwick pivot distances
/// `d(v, A_i)`.
///
/// Also returns, per vertex, which source realizes that distance (the pivot),
/// `None` if the set is empty or the vertex is unreachable from it.
pub fn multi_source_dijkstra(
    g: &Graph,
    sources: &[VertexId],
) -> (Vec<Weight>, Vec<Option<VertexId>>) {
    let n = g.num_vertices();
    let mut dist = vec![INFINITY; n];
    let mut owner: Vec<Option<VertexId>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    for &s in sources {
        if dist[s.index()] != 0 {
            dist[s.index()] = 0;
            owner[s.index()] = Some(s);
            heap.push(Reverse((0, s)));
        }
    }
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u.index()] {
            continue;
        }
        for arc in g.neighbors(u) {
            let nd = dist_add(d, arc.weight);
            if nd < dist[arc.to.index()] {
                dist[arc.to.index()] = nd;
                owner[arc.to.index()] = owner[u.index()];
                heap.push(Reverse((nd, arc.to)));
            }
        }
    }
    (dist, owner)
}

/// `t`-bounded distances from `src`: length of the shortest path using at
/// most `t` edges (hops). This is `t` rounds of Bellman–Ford; note the
/// result is not a metric.
///
/// # Examples
///
/// ```
/// use graphs::{GraphBuilder, VertexId, INFINITY, shortest_paths::hop_bounded_distances};
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(VertexId(0), VertexId(1), 1);
/// b.add_edge(VertexId(1), VertexId(2), 1);
/// let g = b.build();
/// assert_eq!(hop_bounded_distances(&g, VertexId(0), 1)[2], INFINITY);
/// assert_eq!(hop_bounded_distances(&g, VertexId(0), 2)[2], 2);
/// ```
pub fn hop_bounded_distances(g: &Graph, src: VertexId, t: usize) -> Vec<Weight> {
    let n = g.num_vertices();
    let mut dist = vec![INFINITY; n];
    dist[src.index()] = 0;
    let mut frontier: Vec<VertexId> = vec![src];
    for _ in 0..t {
        let mut next = Vec::new();
        let mut updated = vec![false; n];
        let snapshot = dist.clone();
        for &u in &frontier {
            let du = snapshot[u.index()];
            for arc in g.neighbors(u) {
                let nd = dist_add(du, arc.weight);
                if nd < dist[arc.to.index()] {
                    dist[arc.to.index()] = nd;
                    if !updated[arc.to.index()] {
                        updated[arc.to.index()] = true;
                        next.push(arc.to);
                    }
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    dist
}

/// Unweighted BFS hop counts from `src` ([`INFINITY`] if unreachable).
pub fn bfs_hops(g: &Graph, src: VertexId) -> Vec<Weight> {
    let n = g.num_vertices();
    let mut hops = vec![INFINITY; n];
    hops[src.index()] = 0;
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        for arc in g.neighbors(u) {
            if hops[arc.to.index()] == INFINITY {
                hops[arc.to.index()] = hops[u.index()] + 1;
                queue.push_back(arc.to);
            }
        }
    }
    hops
}

/// Number of edges on *the* shortest path found by Dijkstra from `u` to `v`
/// (ties broken by the heap order), or `None` if unreachable. This is the
/// paper's `h(u, v)` up to tie-breaking.
pub fn shortest_path_hops(g: &Graph, u: VertexId, v: VertexId) -> Option<usize> {
    let (dist, parent) = dijkstra_with_parents(g, u);
    if dist[v.index()] == INFINITY {
        return None;
    }
    let mut hops = 0;
    let mut cur = v;
    while cur != u {
        cur = parent[cur.index()].expect("reachable vertex must have a parent");
        hops += 1;
    }
    Some(hops)
}

/// All-pairs shortest path distances; `result[u][v]` is `d(u, v)`.
///
/// Quadratic memory — intended for the modest `n` used in tests and benches.
pub fn all_pairs(g: &Graph) -> Vec<Vec<Weight>> {
    g.vertices().map(|v| dijkstra(g, v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    /// A 4-cycle with one heavy chord.
    fn diamond() -> Graph {
        let mut b = GraphBuilder::new(4);
        b.add_edge(VertexId(0), VertexId(1), 1);
        b.add_edge(VertexId(1), VertexId(2), 1);
        b.add_edge(VertexId(2), VertexId(3), 1);
        b.add_edge(VertexId(3), VertexId(0), 1);
        b.add_edge(VertexId(0), VertexId(2), 10);
        b.build()
    }

    #[test]
    fn dijkstra_prefers_light_path_over_heavy_chord() {
        let d = dijkstra(&diamond(), VertexId(0));
        assert_eq!(d, vec![0, 1, 2, 1]);
    }

    #[test]
    fn dijkstra_parents_form_shortest_path_tree() {
        let (dist, parent) = dijkstra_with_parents(&diamond(), VertexId(0));
        for v in 1..4u32 {
            let p = parent[v as usize].unwrap();
            let g = diamond();
            let w = g.edge_weight(p, VertexId(v)).unwrap();
            assert_eq!(dist[p.index()] + w, dist[v as usize]);
        }
        assert_eq!(parent[0], None);
    }

    #[test]
    fn unreachable_vertices_are_infinite() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(VertexId(0), VertexId(1), 1);
        let d = dijkstra(&b.build(), VertexId(0));
        assert_eq!(d[2], INFINITY);
    }

    #[test]
    fn hop_bounded_matches_unbounded_for_large_t() {
        let g = diamond();
        let exact = dijkstra(&g, VertexId(0));
        let bounded = hop_bounded_distances(&g, VertexId(0), g.num_vertices());
        assert_eq!(exact, bounded);
    }

    #[test]
    fn hop_bounded_is_monotone_in_t() {
        let g = diamond();
        let mut prev = hop_bounded_distances(&g, VertexId(0), 0);
        for t in 1..=4 {
            let cur = hop_bounded_distances(&g, VertexId(0), t);
            for (p, c) in prev.iter().zip(cur.iter()) {
                assert!(c <= p, "t-bounded distance must be non-increasing in t");
            }
            prev = cur;
        }
    }

    #[test]
    fn one_hop_bound_sees_only_direct_edges() {
        let g = diamond();
        let d = hop_bounded_distances(&g, VertexId(0), 1);
        assert_eq!(d, vec![0, 1, 10, 1]);
    }

    #[test]
    fn multi_source_takes_nearest_source() {
        let g = diamond();
        let (d, owner) = multi_source_dijkstra(&g, &[VertexId(1), VertexId(3)]);
        assert_eq!(d, vec![1, 0, 1, 0]);
        assert_eq!(owner[1], Some(VertexId(1)));
        assert_eq!(owner[3], Some(VertexId(3)));
        assert!(owner[0] == Some(VertexId(1)) || owner[0] == Some(VertexId(3)));
    }

    #[test]
    fn multi_source_with_empty_set() {
        let g = diamond();
        let (d, owner) = multi_source_dijkstra(&g, &[]);
        assert!(d.iter().all(|&x| x == INFINITY));
        assert!(owner.iter().all(|o| o.is_none()));
    }

    #[test]
    fn bfs_hops_ignores_weights() {
        let g = diamond();
        let h = bfs_hops(&g, VertexId(0));
        assert_eq!(h, vec![0, 1, 1, 1]);
    }

    #[test]
    fn shortest_path_hops_counts_edges() {
        let g = diamond();
        assert_eq!(shortest_path_hops(&g, VertexId(0), VertexId(2)), Some(2));
        assert_eq!(shortest_path_hops(&g, VertexId(0), VertexId(0)), Some(0));
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn all_pairs_is_symmetric() {
        let g = diamond();
        let apsp = all_pairs(&g);
        for u in 0..4 {
            for v in 0..4 {
                assert_eq!(apsp[u][v], apsp[v][u]);
            }
        }
    }
}
