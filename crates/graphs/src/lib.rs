//! Weighted undirected graphs, generators, and exact shortest-path ground truth.
//!
//! This crate is the substrate beneath the CONGEST simulator and the routing
//! schemes: it provides the [`Graph`] representation (compressed adjacency),
//! synthetic network [`generators`], exact [`shortest_paths`] (Dijkstra,
//! hop-bounded Bellman–Ford, BFS), rooted [`tree`] utilities, and structural
//! [`properties`] (hop diameter, shortest-path diameter, connectivity).
//!
//! # Examples
//!
//! ```
//! use graphs::{generators, shortest_paths, VertexId};
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
//! let g = generators::erdos_renyi_connected(64, 0.1, 1..=20, &mut rng);
//! let dist = shortest_paths::dijkstra(&g, VertexId(0));
//! assert_eq!(dist[0], 0);
//! ```

pub mod generators;
pub mod graph;
pub mod io;
pub mod overlay;
pub mod properties;
pub mod rounding;
pub mod shortest_paths;
pub mod tree;

pub use graph::{EdgeId, Graph, GraphBuilder, VertexId, Weight, INFINITY};
pub use overlay::Overlay;
pub use tree::RootedTree;

/// Saturating addition for distances: anything plus [`INFINITY`] stays infinite.
///
/// # Examples
///
/// ```
/// use graphs::{dist_add, INFINITY};
/// assert_eq!(dist_add(3, 4), 7);
/// assert_eq!(dist_add(INFINITY, 4), INFINITY);
/// ```
#[inline]
pub fn dist_add(a: Weight, b: Weight) -> Weight {
    a.saturating_add(b)
}
