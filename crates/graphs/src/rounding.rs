//! Weight rounding for the standard CONGEST model (paper §2, last
//! paragraph).
//!
//! The CONGEST RAM model lets one message carry a whole edge weight. To run
//! in standard CONGEST (messages of `O(log n)` **bits**), the paper rounds
//! every weight up to the next power of `1 + ε`: a rounded weight is then
//! described by its exponent, `O(log log Λ + log 1/ε)` bits, so the
//! simulation overhead is `O((log log Λ + log 1/ε) / log n)` — *doubly*
//! logarithmic in the aspect ratio Λ, versus the `Ω(log Λ)` factors in prior
//! work. Rounding rescales ε by a constant: distances inflate by at most
//! `1 + ε` per edge, uniformly.

use crate::graph::{Graph, GraphBuilder, Weight};

/// Result of rounding a graph's weights to powers of `1 + ε`.
#[derive(Clone, Debug)]
pub struct RoundedGraph {
    /// The graph with rounded weights.
    pub graph: Graph,
    /// Number of distinct rounded weights (= alphabet of exponents).
    pub distinct_weights: usize,
    /// Bits needed to transmit one rounded weight (exponent encoding).
    pub bits_per_weight: u32,
    /// The worst multiplicative inflation over all edges (≤ 1 + ε).
    pub max_inflation: f64,
}

/// Round every weight of `g` up to the next integer power of `1 + eps`.
///
/// Weight 1 stays 1 (exponent 0); every rounded weight is at least the
/// original, at most `(1 + eps)` times it.
///
/// # Panics
///
/// Panics if `eps <= 0`.
///
/// # Examples
///
/// ```
/// use graphs::{GraphBuilder, VertexId, rounding::round_weights};
/// let mut b = GraphBuilder::new(2);
/// b.add_edge(VertexId(0), VertexId(1), 100);
/// let r = round_weights(&b.build(), 0.25);
/// let w = r.graph.edge_weight(VertexId(0), VertexId(1)).unwrap();
/// assert!(w >= 100 && (w as f64) <= 100.0 * 1.25);
/// ```
pub fn round_weights(g: &Graph, eps: f64) -> RoundedGraph {
    assert!(eps > 0.0, "eps must be positive");
    let base = 1.0 + eps;
    let mut b = GraphBuilder::new(g.num_vertices());
    let mut exponents = std::collections::BTreeSet::new();
    let mut max_inflation = 1.0f64;
    for (u, v, w) in g.edges() {
        let exp = (w as f64).ln() / base.ln();
        let e = exp.ceil().max(0.0) as u32;
        let mut rounded = base.powi(e as i32).round() as Weight;
        if rounded < w {
            // Guard against floating-point undershoot.
            rounded = base.powi(e as i32 + 1).round() as Weight;
        }
        let rounded = rounded.max(w).max(1);
        exponents.insert(e);
        max_inflation = max_inflation.max(rounded as f64 / w as f64);
        b.add_edge(u, v, rounded);
    }
    let max_exp = exponents.iter().next_back().copied().unwrap_or(0);
    let bits_per_weight = (u32::BITS - max_exp.leading_zeros()).max(1);
    RoundedGraph {
        graph: b.build(),
        distinct_weights: exponents.len(),
        bits_per_weight,
        max_inflation,
    }
}

/// The paper's standard-CONGEST overhead factor for a rounded instance:
/// `max(1, bits_per_weight / log2(n))` — the number of `O(log n)`-bit
/// messages needed to ship one rounded weight.
pub fn congest_overhead(n: usize, rounded: &RoundedGraph) -> f64 {
    let log_n = (n.max(2) as f64).log2();
    (rounded.bits_per_weight as f64 / log_n).max(1.0)
}

/// The naive overhead prior solutions pay: `log2(Λ)` messages-worth of work
/// per distance (their running times are at least linear in `log Λ`).
pub fn prior_overhead(g: &Graph) -> f64 {
    g.aspect_ratio().map_or(1.0, |l| l.log2().max(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::graph::VertexId;
    use crate::shortest_paths::dijkstra;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn rounded_weights_dominate_and_bound_inflation() {
        let mut rng = ChaCha8Rng::seed_from_u64(401);
        let g = generators::erdos_renyi_connected(60, 0.1, 1..=10_000, &mut rng);
        let eps = 0.1;
        let r = round_weights(&g, eps);
        for ((u, v, w), (ru, rv, rw)) in g.edges().zip(r.graph.edges()) {
            assert_eq!((u, v), (ru, rv));
            assert!(rw >= w, "rounded weight must dominate");
            assert!(
                (rw as f64) <= (w as f64) * (1.0 + eps) * (1.0 + eps),
                "inflation of {w} -> {rw} too large"
            );
        }
        assert!(r.max_inflation <= (1.0 + eps) * (1.0 + eps));
    }

    #[test]
    fn distances_inflate_by_at_most_one_plus_eps_squared() {
        let mut rng = ChaCha8Rng::seed_from_u64(402);
        let g = generators::erdos_renyi_connected(50, 0.1, 1..=500, &mut rng);
        let eps = 0.2;
        let r = round_weights(&g, eps);
        let d0 = dijkstra(&g, VertexId(0));
        let d1 = dijkstra(&r.graph, VertexId(0));
        for v in g.vertices() {
            assert!(d1[v.index()] >= d0[v.index()]);
            assert!(
                (d1[v.index()] as f64) <= (d0[v.index()] as f64) * (1.0 + eps) * (1.0 + eps) + 1.0,
                "distance to {v} inflated beyond (1+eps)^2"
            );
        }
    }

    #[test]
    fn alphabet_is_logarithmic_in_aspect_ratio() {
        let mut rng = ChaCha8Rng::seed_from_u64(403);
        let g = generators::erdos_renyi_connected(60, 0.1, 1..=1_000_000, &mut rng);
        let r = round_weights(&g, 0.1);
        // log_{1.1}(10^6) ≈ 145 exponents at most.
        assert!(r.distinct_weights <= 150);
        // Exponents of ~145 fit in 8 bits.
        assert!(r.bits_per_weight <= 8);
    }

    #[test]
    fn unit_weights_are_untouched() {
        let mut rng = ChaCha8Rng::seed_from_u64(404);
        let g = generators::path(10, 1..=1, &mut rng);
        let r = round_weights(&g, 0.5);
        for (_, _, w) in r.graph.edges() {
            assert_eq!(w, 1);
        }
        assert_eq!(r.distinct_weights, 1);
        assert!((r.max_inflation - 1.0).abs() < 1e-12);
    }

    #[test]
    fn overhead_is_doubly_logarithmic_not_logarithmic() {
        let mut rng = ChaCha8Rng::seed_from_u64(405);
        let g = generators::erdos_renyi_connected(1000, 0.01, 1..=1_000_000, &mut rng);
        let r = round_weights(&g, 0.05);
        let ours = congest_overhead(1000, &r);
        let prior = prior_overhead(&g);
        assert!(
            ours < prior / 2.0,
            "ours {ours} should be far below prior {prior}"
        );
    }

    #[test]
    #[should_panic(expected = "eps must be positive")]
    fn rejects_nonpositive_eps() {
        let mut rng = ChaCha8Rng::seed_from_u64(406);
        let g = generators::path(3, 1..=1, &mut rng);
        round_weights(&g, 0.0);
    }
}
