//! Structural graph properties: connectivity, hop diameter `D`, and
//! shortest-path diameter `S`.
//!
//! The paper's round bounds are stated in terms of `n` and the *hop diameter*
//! `D` (diameter of the unweighted skeleton), with prior work often depending
//! on the larger *shortest-path diameter* `S` (maximum number of hops on a
//! weighted shortest path). `D ≤ S ≤ n` always holds.

use crate::graph::{Graph, VertexId, INFINITY};
use crate::shortest_paths::{bfs_hops, dijkstra_with_parents};

/// Whether the graph is connected (true for the empty graph).
pub fn is_connected(g: &Graph) -> bool {
    let n = g.num_vertices();
    if n == 0 {
        return true;
    }
    bfs_hops(g, VertexId(0)).iter().all(|&h| h != INFINITY)
}

/// The hop diameter `D`: the diameter of the graph viewed as unweighted.
/// `None` if the graph is disconnected or empty.
///
/// Runs a BFS from every vertex (O(nm)); fine at experiment scale.
pub fn hop_diameter(g: &Graph) -> Option<usize> {
    if g.num_vertices() == 0 {
        return None;
    }
    let mut best = 0;
    for v in g.vertices() {
        let hops = bfs_hops(g, v);
        let ecc = *hops.iter().max().expect("non-empty");
        if ecc == INFINITY {
            return None;
        }
        best = best.max(ecc as usize);
    }
    Some(best)
}

/// The shortest-path diameter `S`: the maximum, over all pairs, of the hop
/// length of the shortest weighted path Dijkstra finds between them.
/// `None` if disconnected or empty.
///
/// Note: when shortest paths are not unique this measures one particular
/// shortest-path tree per source, which is the operationally relevant
/// quantity for Bellman–Ford-style explorations.
pub fn shortest_path_diameter(g: &Graph) -> Option<usize> {
    if g.num_vertices() == 0 {
        return None;
    }
    let n = g.num_vertices();
    let mut best = 0usize;
    for s in g.vertices() {
        let (dist, parent) = dijkstra_with_parents(g, s);
        if dist.contains(&INFINITY) {
            return None;
        }
        // Hop depth of each vertex in the SPT of s.
        let mut depth = vec![usize::MAX; n];
        depth[s.index()] = 0;
        // Parents point toward the source; resolve depths memoized.
        for v in g.vertices() {
            let mut chain = Vec::new();
            let mut cur = v;
            while depth[cur.index()] == usize::MAX {
                chain.push(cur);
                cur = parent[cur.index()].expect("connected");
            }
            let mut d = depth[cur.index()];
            for &x in chain.iter().rev() {
                d += 1;
                depth[x.index()] = d;
            }
            best = best.max(depth[v.index()]);
        }
    }
    Some(best)
}

/// Degree statistics `(min, max, mean)` of a non-empty graph.
pub fn degree_stats(g: &Graph) -> Option<(usize, usize, f64)> {
    if g.num_vertices() == 0 {
        return None;
    }
    let degs: Vec<usize> = g.vertices().map(|v| g.degree(v)).collect();
    let min = *degs.iter().min().expect("non-empty");
    let max = *degs.iter().max().expect("non-empty");
    let mean = degs.iter().sum::<usize>() as f64 / degs.len() as f64;
    Some((min, max, mean))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::graph::GraphBuilder;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn empty_graph_is_connected_without_diameter() {
        let g = GraphBuilder::new(0).build();
        assert!(is_connected(&g));
        assert_eq!(hop_diameter(&g), None);
        assert_eq!(shortest_path_diameter(&g), None);
        assert_eq!(degree_stats(&g), None);
    }

    #[test]
    fn singleton_has_zero_diameter() {
        let g = GraphBuilder::new(1).build();
        assert!(is_connected(&g));
        assert_eq!(hop_diameter(&g), Some(0));
        assert_eq!(shortest_path_diameter(&g), Some(0));
    }

    #[test]
    fn disconnected_graph_detected() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(VertexId(0), VertexId(1), 1);
        b.add_edge(VertexId(2), VertexId(3), 1);
        let g = b.build();
        assert!(!is_connected(&g));
        assert_eq!(hop_diameter(&g), None);
        assert_eq!(shortest_path_diameter(&g), None);
    }

    #[test]
    fn path_diameters() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let g = generators::path(7, 1..=1, &mut rng);
        assert_eq!(hop_diameter(&g), Some(6));
        assert_eq!(shortest_path_diameter(&g), Some(6));
    }

    #[test]
    fn d_le_s_le_n_on_random_graphs() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..3 {
            let g = generators::erdos_renyi_connected(40, 0.1, 1..=50, &mut rng);
            let d = hop_diameter(&g).unwrap();
            let s = shortest_path_diameter(&g).unwrap();
            assert!(d <= s);
            assert!(s <= g.num_vertices());
        }
    }

    #[test]
    fn unweighted_d_equals_s() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let g = generators::erdos_renyi_connected(30, 0.15, 1..=1, &mut rng);
        assert_eq!(
            hop_diameter(&g).unwrap(),
            shortest_path_diameter(&g).unwrap()
        );
    }

    #[test]
    fn degree_stats_on_star() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let g = generators::star(5, 1..=1, &mut rng);
        let (min, max, mean) = degree_stats(&g).unwrap();
        assert_eq!(min, 1);
        assert_eq!(max, 4);
        assert!((mean - 8.0 / 5.0).abs() < 1e-9);
    }
}
