//! Plain-text graph I/O, so users can run the schemes on their own networks.
//!
//! The format is a whitespace-separated edge list with an optional header:
//!
//! ```text
//! # comments start with '#'
//! p <num_vertices>        (optional; inferred from edges when absent)
//! <u> <v> <weight>        (one undirected edge per line; weight optional, default 1)
//! ```
//!
//! Compatible with the common DIMACS-ish exports after stripping their
//! prefixes.

use std::fmt::Write as _;
use std::str::FromStr;

use crate::graph::{Graph, GraphBuilder, VertexId, Weight};

/// A parse failure, with the offending 1-based line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseGraphError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseGraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseGraphError {}

/// Parse an edge list.
///
/// # Errors
///
/// Returns [`ParseGraphError`] on malformed lines, out-of-range endpoints,
/// self-loops, zero weights, or duplicate edges.
///
/// # Examples
///
/// ```
/// let g = graphs::io::parse_edge_list("p 3\n0 1 5\n1 2\n").unwrap();
/// assert_eq!(g.num_vertices(), 3);
/// assert_eq!(g.num_edges(), 2);
/// ```
pub fn parse_edge_list(text: &str) -> Result<Graph, ParseGraphError> {
    let err = |line: usize, message: String| ParseGraphError { line, message };
    let mut declared_n: Option<usize> = None;
    let mut edges: Vec<(u32, u32, Weight, usize)> = Vec::new();
    let mut max_id = 0u32;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let first = parts.next().expect("non-empty line");
        if first == "p" {
            let n = parts
                .next()
                .ok_or_else(|| err(line_no, "header missing vertex count".into()))?;
            declared_n = Some(
                usize::from_str(n).map_err(|_| err(line_no, format!("bad vertex count '{n}'")))?,
            );
            if parts.next().is_some() {
                return Err(err(line_no, "trailing tokens after header".into()));
            }
            continue;
        }
        let u = u32::from_str(first).map_err(|_| err(line_no, format!("bad vertex '{first}'")))?;
        let v_tok = parts
            .next()
            .ok_or_else(|| err(line_no, "edge missing second endpoint".into()))?;
        let v = u32::from_str(v_tok).map_err(|_| err(line_no, format!("bad vertex '{v_tok}'")))?;
        let w = match parts.next() {
            Some(tok) => {
                Weight::from_str(tok).map_err(|_| err(line_no, format!("bad weight '{tok}'")))?
            }
            None => 1,
        };
        if parts.next().is_some() {
            return Err(err(line_no, "trailing tokens after edge".into()));
        }
        if u == v {
            return Err(err(line_no, format!("self-loop at {u}")));
        }
        if w == 0 {
            return Err(err(line_no, "zero weight".into()));
        }
        max_id = max_id.max(u).max(v);
        edges.push((u, v, w, line_no));
    }
    let n = declared_n.unwrap_or((max_id as usize) + usize::from(!edges.is_empty()));
    let mut b = GraphBuilder::new(n);
    let mut seen = std::collections::HashSet::new();
    for (u, v, w, line_no) in edges {
        if u as usize >= n || v as usize >= n {
            return Err(err(line_no, format!("edge {u}-{v} out of range for n={n}")));
        }
        let key = (u.min(v), u.max(v));
        if !seen.insert(key) {
            return Err(err(line_no, format!("duplicate edge {u}-{v}")));
        }
        b.add_edge(VertexId(u), VertexId(v), w);
    }
    Ok(b.build())
}

/// Serialize a graph back to the edge-list format (round-trips through
/// [`parse_edge_list`]).
pub fn to_edge_list(g: &Graph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "p {}", g.num_vertices());
    for (u, v, w) in g.edges() {
        let _ = writeln!(out, "{} {} {}", u.0, v.0, w);
    }
    out
}

/// Export to Graphviz DOT (undirected), with edge weights as labels.
/// Optional `highlight` vertices are drawn filled — handy for visualizing
/// sampled sets, cluster centers, or a routed path.
pub fn to_dot(g: &Graph, highlight: &[VertexId]) -> String {
    let mut out = String::from("graph G {\n  node [shape=circle];\n");
    let marked: std::collections::HashSet<VertexId> = highlight.iter().copied().collect();
    for v in g.vertices() {
        if marked.contains(&v) {
            let _ = writeln!(out, "  {} [style=filled, fillcolor=lightblue];", v.0);
        }
    }
    for (u, v, w) in g.edges() {
        let _ = writeln!(out, "  {} -- {} [label=\"{}\"];", u.0, v.0, w);
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn parses_basic_file() {
        let g = parse_edge_list("# demo\np 4\n0 1 3\n1 2\n2 3 9\n").unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.edge_weight(VertexId(1), VertexId(2)), Some(1));
        assert_eq!(g.edge_weight(VertexId(2), VertexId(3)), Some(9));
    }

    #[test]
    fn infers_vertex_count_without_header() {
        let g = parse_edge_list("0 5 2\n").unwrap();
        assert_eq!(g.num_vertices(), 6);
    }

    #[test]
    fn empty_input_is_empty_graph() {
        let g = parse_edge_list("# nothing\n\n").unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn round_trips_generated_graphs() {
        let mut rng = ChaCha8Rng::seed_from_u64(1001);
        let g = generators::erdos_renyi_connected(60, 0.08, 1..=50, &mut rng);
        let text = to_edge_list(&g);
        let back = parse_edge_list(&text).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn dot_export_mentions_all_edges_and_highlights() {
        let g = parse_edge_list("p 3\n0 1 5\n1 2 7\n").unwrap();
        let dot = to_dot(&g, &[VertexId(1)]);
        assert!(dot.starts_with("graph G {"));
        assert!(dot.contains("0 -- 1 [label=\"5\"]"));
        assert!(dot.contains("1 -- 2 [label=\"7\"]"));
        assert!(dot.contains("1 [style=filled"));
        assert!(!dot.contains("0 [style=filled"));
    }

    #[test]
    fn reports_line_numbers_on_errors() {
        let e = parse_edge_list("p 3\n0 1 2\nbogus 2 1\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("bogus"));
    }

    #[test]
    fn rejects_structural_problems() {
        assert!(parse_edge_list("1 1 4\n")
            .unwrap_err()
            .message
            .contains("self-loop"));
        assert!(parse_edge_list("0 1 0\n")
            .unwrap_err()
            .message
            .contains("zero weight"));
        assert!(parse_edge_list("0 1\n1 0 5\n")
            .unwrap_err()
            .message
            .contains("duplicate"));
        assert!(parse_edge_list("p 2\n0 5 1\n")
            .unwrap_err()
            .message
            .contains("out of range"));
        assert!(parse_edge_list("0 1 2 junk\n")
            .unwrap_err()
            .message
            .contains("trailing"));
    }
}
