//! Per-level pivot distances `d̂(·, A_i)` and pivot identities.
//!
//! For low levels (`i ≤ ⌈k/2⌉`) the distances are exact: a hop-bounded
//! multi-source exploration from `A_i` suffices whp (the number of vertices
//! closer to `u` than its pivot is `Õ(n^{i/k})`, so the exploration depth
//! `R_i = 4·n^{i/k}·ln n` covers the path — the same argument as Claim 8).
//!
//! For high levels the sets live inside the virtual set `V' = A_{⌈k/2⌉}`,
//! and the scheme runs `β` iterations of hopset-accelerated Bellman–Ford
//! rooted at `A_i` (Lemma 2) followed by a final `B`-bounded exploration, so
//! every `u ∈ V` obtains `d̂(u, A_i) ≤ (1+ε)·d(u, A_i)` — Eq. (5) — plus an
//! approximate pivot identity.

use congest::{CostLedger, MemoryMeter};
use graphs::{Graph, VertexId, Weight, INFINITY};
use hopset::bellman_ford::LimitedBf;
use hopset::{Hopset, VirtualGraph};

/// Distances and identities toward one hierarchy set.
#[derive(Clone, Debug)]
pub struct LevelPivots {
    /// `d̂(u, A_i)` per host vertex ([`INFINITY`] when `A_i` is empty or out
    /// of reach).
    pub dist: Vec<Weight>,
    /// The (approximate) pivot realizing `dist` (`None` when infinite).
    pub pivot: Vec<Option<VertexId>>,
    /// Whether these values are exact or `(1+ε)`-approximate.
    pub exact: bool,
    /// Iterations the hopset Bellman–Ford used (0 for exact levels).
    pub beta_used: usize,
}

impl LevelPivots {
    /// Pivots toward the empty set: everything infinite. Used for `A_k`.
    pub fn unreachable(n: usize) -> Self {
        LevelPivots {
            dist: vec![INFINITY; n],
            pivot: vec![None; n],
            exact: true,
            beta_used: 0,
        }
    }
}

/// The paper's exploration depth for level `i`: `min(n, ⌈4·n^{i/k}·ln n⌉)`.
pub fn exploration_depth(n: usize, i: usize, k: usize) -> usize {
    if n <= 1 {
        return 1;
    }
    let r = 4.0 * (n as f64).powf(i as f64 / k as f64) * (n as f64).ln();
    (r.ceil() as usize).clamp(1, n)
}

/// Exact pivots toward `set` via a hop-bounded multi-source exploration of
/// depth `depth`. Charges `depth` rounds.
pub fn exact_pivots(
    g: &Graph,
    set: &[VertexId],
    depth: usize,
    ledger: &mut CostLedger,
    memory: &mut MemoryMeter,
) -> LevelPivots {
    let n = g.num_vertices();
    if set.is_empty() {
        return LevelPivots::unreachable(n);
    }
    let probe = VirtualGraph::from_set(g, set.to_vec(), depth);
    let seeds: Vec<(VertexId, Weight)> = set.iter().map(|&v| (v, 0)).collect();
    let explo = probe.bounded_exploration(g, &seeds, &|_, _| true, ledger, memory);
    for v in g.vertices() {
        memory.touch(v, 2);
    }
    LevelPivots {
        dist: explo.dist,
        pivot: explo.origin,
        exact: true,
        beta_used: 0,
    }
}

/// Approximate pivots toward `set ⊆ V'` via hopset Bellman–Ford (β capped at
/// `beta_budget`) plus the built-in final `B`-bounded extension.
#[allow(clippy::too_many_arguments)]
pub fn approx_pivots(
    g: &Graph,
    virt: &VirtualGraph,
    hopset: &Hopset,
    set: &[VertexId],
    beta_budget: usize,
    d: u64,
    ledger: &mut CostLedger,
    memory: &mut MemoryMeter,
) -> LevelPivots {
    let n = g.num_vertices();
    if set.is_empty() {
        return LevelPivots::unreachable(n);
    }
    let bf = LimitedBf { g, virt, hopset };
    let roots: Vec<(VertexId, Weight)> = set.iter().map(|&v| (v, 0)).collect();
    let out = bf.run(&roots, &|_, _| true, beta_budget, d, ledger, memory);
    // Host-level values come from the final exploration; roots keep 0.
    let mut dist = out.last_exploration.dist.clone();
    let mut pivot: Vec<Option<VertexId>> = (0..n as u32)
        .map(|v| out.host_origin(VertexId(v)))
        .collect();
    for &r in set {
        dist[r.index()] = 0;
        pivot[r.index()] = Some(r);
    }
    // Virtual vertices may hold better estimates than the final wave gave
    // non-virtual hosts around them.
    for &x in virt.virtual_vertices() {
        if out.est[x.index()] < dist[x.index()] {
            dist[x.index()] = out.est[x.index()];
            pivot[x.index()] = out.origin[x.index()];
        }
    }
    for v in g.vertices() {
        memory.touch(v, 2);
    }
    LevelPivots {
        dist,
        pivot,
        exact: false,
        beta_used: out.beta_used,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::{generators, shortest_paths};
    use hopset::construction::{build as build_hopset, HopsetParams};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn exploration_depth_grows_with_level() {
        let n = 1 << 12;
        let k = 4;
        let mut prev = 0;
        for i in 1..=k {
            let r = exploration_depth(n, i, k);
            assert!(r >= prev);
            prev = r;
        }
        assert_eq!(exploration_depth(n, k, k), n);
        assert_eq!(exploration_depth(1, 1, 2), 1);
    }

    #[test]
    fn exact_pivots_match_dijkstra() {
        let mut rng = ChaCha8Rng::seed_from_u64(211);
        let g = generators::erdos_renyi_connected(80, 0.08, 1..=9, &mut rng);
        let set: Vec<VertexId> = (0..80u32)
            .filter(|_| rng.gen_bool(0.1))
            .map(VertexId)
            .collect();
        let set = if set.is_empty() {
            vec![VertexId(0)]
        } else {
            set
        };
        let mut led = CostLedger::new();
        let mut mem = MemoryMeter::new(80);
        let got = exact_pivots(&g, &set, 80, &mut led, &mut mem);
        let (want, _) = shortest_paths::multi_source_dijkstra(&g, &set);
        assert_eq!(got.dist, want);
        assert!(got.exact);
        // Pivots genuinely realize the distances.
        for v in g.vertices() {
            let p = got.pivot[v.index()].unwrap();
            let dv = shortest_paths::dijkstra(&g, p)[v.index()];
            assert_eq!(dv, got.dist[v.index()]);
        }
    }

    #[test]
    fn empty_set_is_unreachable() {
        let mut rng = ChaCha8Rng::seed_from_u64(212);
        let g = generators::path(5, 1..=1, &mut rng);
        let mut led = CostLedger::new();
        let mut mem = MemoryMeter::new(5);
        let got = exact_pivots(&g, &[], 5, &mut led, &mut mem);
        assert!(got.dist.iter().all(|&d| d == INFINITY));
        assert!(got.pivot.iter().all(Option::is_none));
    }

    #[test]
    fn approx_pivots_sandwich_exact_distances() {
        let mut rng = ChaCha8Rng::seed_from_u64(213);
        let g = generators::erdos_renyi_connected(150, 0.05, 1..=9, &mut rng);
        let virt = VirtualGraph::sample(&g, 0.25, &mut rng);
        let mut led = CostLedger::new();
        let mut mem = MemoryMeter::new(150);
        let hs = build_hopset(
            &g,
            &virt,
            HopsetParams::default(),
            8,
            &mut led,
            &mut mem,
            &mut rng,
        );
        // Target set: a subset of the virtual vertices.
        let set: Vec<VertexId> = virt
            .virtual_vertices()
            .iter()
            .copied()
            .filter(|_| rng.gen_bool(0.3))
            .collect();
        let set = if set.is_empty() {
            vec![virt.virtual_vertices()[0]]
        } else {
            set
        };
        let got = approx_pivots(&g, &virt, &hs.hopset, &set, 200, 8, &mut led, &mut mem);
        let (want, _) = shortest_paths::multi_source_dijkstra(&g, &set);
        for v in g.vertices() {
            assert!(
                got.dist[v.index()] >= want[v.index()],
                "approximate pivots must never undershoot at {v}"
            );
            if want[v.index()] != INFINITY && got.dist[v.index()] != INFINITY {
                // With full convergence (budget >> needed) the slack is tiny:
                // allow a generous 2x envelope, typically it is exact.
                assert!(
                    got.dist[v.index()] <= want[v.index()].saturating_mul(2),
                    "pivot distance {} far above exact {} at {v}",
                    got.dist[v.index()],
                    want[v.index()]
                );
            }
        }
        // Roots are their own pivots.
        for &r in &set {
            assert_eq!(got.dist[r.index()], 0);
            assert_eq!(got.pivot[r.index()], Some(r));
        }
        assert!(!got.exact);
        assert!(got.beta_used >= 1);
    }

    #[test]
    fn approx_pivot_identities_are_set_members() {
        let mut rng = ChaCha8Rng::seed_from_u64(214);
        let g = generators::erdos_renyi_connected(100, 0.06, 1..=5, &mut rng);
        let virt = VirtualGraph::sample(&g, 0.3, &mut rng);
        let mut led = CostLedger::new();
        let mut mem = MemoryMeter::new(100);
        let hs = build_hopset(
            &g,
            &virt,
            HopsetParams::default(),
            6,
            &mut led,
            &mut mem,
            &mut rng,
        );
        let set = vec![virt.virtual_vertices()[0], virt.virtual_vertices()[1]];
        let got = approx_pivots(&g, &virt, &hs.hopset, &set, 200, 6, &mut led, &mut mem);
        for v in g.vertices() {
            if let Some(p) = got.pivot[v.index()] {
                assert!(set.contains(&p), "pivot {p} of {v} not in the target set");
            }
        }
    }
}
