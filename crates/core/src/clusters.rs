//! Cluster trees: exact for low levels, approximate for high levels.
//!
//! Every vertex `v` roots exactly one cluster, at its hierarchy level
//! `ℓ(v)`: `C(v) = {u : d(u, v) < d(u, A_{ℓ(v)+1})}` (Eq. 1). The scheme's
//! tables are the per-cluster tree-routing tables of the (at most
//! `4·n^{1/k}·ln n`, Claim 6) clusters containing each vertex.
//!
//! * **Exact clusters** (levels `i < ⌈k/2⌉`): a limited exploration from
//!   each root — only vertices strictly inside the cluster keep forwarding
//!   (the TZ pruned-Dijkstra), to hop depth `R_i = 4·n^{(i+1)/k}·ln n`
//!   (Claim 8 guarantees that depth suffices whp).
//! * **Approximate clusters** (levels `i ≥ ⌈k/2⌉`, Claims 9–10): a limited
//!   Bellman–Ford over `G' ∪ H` rooted at `v` (virtual vertices clipped at
//!   `d̂(u, A_{i+1})/(1+ε)²`, hosts at `/(1+ε)`), hopset edges resolved into
//!   `G`-paths by the path-recovery mechanism, and a final `B`-bounded
//!   exploration that lets every limit-passing host join. The result is a
//!   genuine tree of `G` satisfying `C_{6ε}(v) ⊆ C̃(v) ⊆ C(v)`.

use std::collections::HashMap;

use congest::{CostLedger, MemoryMeter};
use graphs::{dist_add, Graph, VertexId, Weight, INFINITY};
use hopset::bellman_ford::{LimitedBf, Via};
use hopset::path_recovery::{recover_edge, Recovered};
use hopset::{Hopset, VirtualGraph};

use crate::sparse::{MemberInfo, SparseTree};

/// Measurements from building one level's clusters.
#[derive(Clone, Debug, Default)]
pub struct LevelStats {
    /// Number of cluster trees built.
    pub clusters: usize,
    /// Total membership over all clusters at this level.
    pub total_membership: usize,
    /// Max number of this level's clusters any single vertex belongs to —
    /// the congestion factor `C_i` that multiplies the exploration depth.
    pub max_overlap: usize,
    /// Largest hop depth of any cluster tree.
    pub max_tree_depth: usize,
    /// Largest `β` used by any approximate cluster (0 for exact levels).
    pub beta_used: usize,
}

/// Build the exact clusters of every root whose hierarchy level is exactly
/// `level`. `next_dist[u]` must be the exact `d(u, A_{level+1})`
/// ([`INFINITY`] when that set is empty).
///
/// Rounds: `R · max(1, C)` where `R` is `depth` and `C` the measured
/// congestion, matching the paper's `Õ(n^{1/2+1/k})` accounting.
pub fn exact_clusters(
    g: &Graph,
    roots: &[VertexId],
    level: usize,
    next_dist: &[Weight],
    depth: usize,
    ledger: &mut CostLedger,
    memory: &mut MemoryMeter,
) -> (Vec<SparseTree>, LevelStats) {
    let n = g.num_vertices();
    let mut trees = Vec::with_capacity(roots.len());
    let mut overlap = vec![0usize; n];
    let mut stats = LevelStats::default();
    for &v in roots {
        let tree = pruned_exploration(g, v, level, next_dist, memory);
        for &u in tree.members.keys() {
            overlap[u.index()] += 1;
        }
        stats.total_membership += tree.len();
        stats.max_tree_depth = stats.max_tree_depth.max(tree_depth(&tree));
        trees.push(tree);
    }
    stats.clusters = trees.len();
    stats.max_overlap = overlap.iter().copied().max().unwrap_or(0);
    ledger.charge_rounds(depth as u64 * stats.max_overlap.max(1) as u64);
    (trees, stats)
}

/// TZ pruned exploration: grow shortest paths from `v`, but only expand
/// through vertices strictly inside the cluster (`d < next_dist`). Exact
/// because shortest paths to cluster members stay inside the cluster.
fn pruned_exploration(
    g: &Graph,
    v: VertexId,
    level: usize,
    next_dist: &[Weight],
    memory: &mut MemoryMeter,
) -> SparseTree {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut dist: HashMap<VertexId, Weight> = HashMap::new();
    let mut parent: HashMap<VertexId, (VertexId, Weight)> = HashMap::new();
    let mut heap = BinaryHeap::new();
    dist.insert(v, 0);
    heap.push(Reverse((0u64, v)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if dist.get(&u).copied() != Some(d) {
            continue;
        }
        // Only cluster members keep expanding (the root always does).
        if u != v && d >= next_dist[u.index()] {
            continue;
        }
        for arc in g.neighbors(u) {
            let nd = dist_add(d, arc.weight);
            // Prune waves that already left the cluster.
            if nd >= next_dist[arc.to.index()] {
                continue;
            }
            let better = match dist.get(&arc.to) {
                Some(&old) => nd < old,
                None => true,
            };
            if better {
                memory.touch(arc.to, 2);
                dist.insert(arc.to, nd);
                parent.insert(arc.to, (u, arc.weight));
                heap.push(Reverse((nd, arc.to)));
            }
        }
    }
    let mut members = HashMap::with_capacity(dist.len());
    for (&u, &d) in &dist {
        // Membership is the strict cluster condition (the root is always in).
        if u != v && d >= next_dist[u.index()] {
            continue;
        }
        let (p, w) = if u == v { (v, 0) } else { parent[&u] };
        members.insert(
            u,
            MemberInfo {
                parent: p,
                parent_weight: w,
                dist: d,
            },
        );
        memory.add(u, 3);
    }
    SparseTree {
        root: v,
        level,
        members,
    }
}

/// Build the approximate clusters of every root at `level` (all roots are in
/// `V'`). `next_hat[u]` is `d̂(u, A_{level+1})`; `eps` the paper's `ε`.
///
/// Rounds: `β_max · (B · C + D)` plus the measured broadcast load (per the
/// Appendix-B accounting).
#[allow(clippy::too_many_arguments)]
pub fn approx_clusters(
    g: &Graph,
    virt: &VirtualGraph,
    hopset: &Hopset,
    roots: &[VertexId],
    level: usize,
    next_hat: &[Weight],
    eps: f64,
    beta_budget: usize,
    d: u64,
    ledger: &mut CostLedger,
    memory: &mut MemoryMeter,
) -> (Vec<SparseTree>, LevelStats) {
    let n = g.num_vertices();
    let mut trees = Vec::with_capacity(roots.len());
    let mut overlap = vec![0usize; n];
    let mut stats = LevelStats::default();
    let mut broadcast_msgs = 0u64;
    for &v in roots {
        let mut scratch = CostLedger::new();
        let (tree, beta) = one_approx_cluster(
            g,
            virt,
            hopset,
            v,
            level,
            next_hat,
            eps,
            beta_budget,
            d,
            &mut scratch,
            memory,
        );
        broadcast_msgs += scratch.messages();
        stats.beta_used = stats.beta_used.max(beta);
        for &u in tree.members.keys() {
            overlap[u.index()] += 1;
        }
        stats.total_membership += tree.len();
        stats.max_tree_depth = stats.max_tree_depth.max(tree_depth(&tree));
        trees.push(tree);
    }
    stats.clusters = trees.len();
    stats.max_overlap = overlap.iter().copied().max().unwrap_or(0);
    // All clusters run in parallel: the E'-steps pay the congestion factor,
    // hopset broadcasts share the backbone (Lemma 1 on the summed load).
    let beta = stats.beta_used.max(1) as u64;
    ledger.charge_rounds(beta * (virt.b_hops() as u64 * stats.max_overlap.max(1) as u64 + d));
    ledger.charge_broadcast(broadcast_msgs, d);
    (trees, stats)
}

#[allow(clippy::too_many_arguments)]
fn one_approx_cluster(
    g: &Graph,
    virt: &VirtualGraph,
    hopset: &Hopset,
    v: VertexId,
    level: usize,
    next_hat: &[Weight],
    eps: f64,
    beta_budget: usize,
    d: u64,
    ledger: &mut CostLedger,
    memory: &mut MemoryMeter,
) -> (SparseTree, usize) {
    let n = g.num_vertices();
    // The Appendix-B limits: virtual vertices clip at d̂/(1+ε)², hosts at
    // d̂/(1+ε); an infinite threshold (top level) never clips.
    let passes = move |u: VertexId, est: Weight, factor: f64| {
        let thr = next_hat[u.index()];
        thr == INFINITY || (est as f64) * factor < thr as f64
    };
    let limit = {
        let virt_flag: Vec<bool> = (0..n as u32)
            .map(|u| virt.is_virtual(VertexId(u)))
            .collect();
        move |u: VertexId, est: Weight| {
            let factor = if virt_flag[u.index()] {
                (1.0 + eps) * (1.0 + eps)
            } else {
                1.0 + eps
            };
            passes(u, est, factor)
        }
    };

    let bf = LimitedBf { g, virt, hopset };
    let out = bf.run(&[(v, 0)], &limit, beta_budget, d, ledger, memory);

    // Accumulate the tree: the final exploration covers all E'-paths...
    let mut rec = Recovered::new(n);
    rec.seed(v, 0);
    for u in g.vertices() {
        let du = out.last_exploration.dist[u.index()];
        if du != INFINITY && u != v {
            rec.offer(u, du, out.last_exploration.parent[u.index()]);
        }
    }
    // ...and the path-recovery mechanism resolves used hopset edges. An
    // edge joins the tree only when its receiving endpoint satisfies the
    // strict virtual condition (Claim 9's second case needs `b_v(y) <
    // d̂(y, A)/(1+ε)²` to certify the path vertices).
    let mut forced = vec![false; n];
    forced[v.index()] = true;
    for &x in virt.virtual_vertices() {
        if let Via::Hopset {
            owner,
            index,
            reversed,
        } = out.via[x.index()]
        {
            if !passes(x, out.est[x.index()], (1.0 + eps) * (1.0 + eps)) {
                continue;
            }
            let tail = if reversed {
                hopset.out_edges(owner)[index].to
            } else {
                owner
            };
            if out.est[tail.index()] == INFINITY {
                continue;
            }
            recover_edge(
                hopset,
                owner,
                index,
                reversed,
                out.est[tail.index()],
                g,
                &mut rec,
                ledger,
                memory,
            );
            let path = hopset.path(owner, index);
            for &w in path {
                forced[w.index()] = true;
            }
        }
    }
    // Virtual estimates may beat anything the waves delivered locally.
    for &x in virt.virtual_vertices() {
        if out.est[x.index()] < rec.dist[x.index()] {
            // Parent comes from recovery/exploration; keep the better dist.
            rec.dist[x.index()] = out.est[x.index()];
        }
    }
    // Acknowledgement pass: a virtual vertex whose estimate arrived through
    // an E'-exploration was a *seed* of the final exploration and thus never
    // received a G-parent there; it adopts the neighbor that delivers a
    // consistent (no-worse) value — the paper's y→x acknowledgement.
    for &x in virt.virtual_vertices() {
        if x == v || rec.dist[x.index()] == INFINITY || rec.parent[x.index()].is_some() {
            continue;
        }
        let best = g
            .neighbors(x)
            .iter()
            .filter(|a| rec.dist[a.to.index()] != INFINITY)
            .map(|a| (dist_add(rec.dist[a.to.index()], a.weight), a.to))
            .min();
        if let Some((through, p)) = best {
            if through <= rec.dist[x.index()] {
                rec.parent[x.index()] = Some(p);
            }
        }
    }

    // Membership: the root, forced path vertices, and every vertex passing
    // the (1+ε) joining condition of the final exploration.
    let mut member = vec![false; n];
    for u in g.vertices() {
        let du = rec.dist[u.index()];
        if du == INFINITY {
            continue;
        }
        member[u.index()] = u == v || forced[u.index()] || passes(u, du, 1.0 + eps);
    }
    // Repair: a member whose parent chain leaves the membership is dropped
    // (rare — only when a clipped vertex relayed the winning offer).
    loop {
        let mut dropped = false;
        for u in g.vertices() {
            if !member[u.index()] || u == v {
                continue;
            }
            match rec.parent[u.index()] {
                Some(p) if member[p.index()] => {}
                _ => {
                    member[u.index()] = false;
                    dropped = true;
                }
            }
        }
        if !dropped {
            break;
        }
    }

    let mut members = HashMap::new();
    for u in g.vertices() {
        if !member[u.index()] {
            continue;
        }
        let (p, w) = if u == v {
            (v, 0)
        } else {
            let p = rec.parent[u.index()].expect("repaired member has a parent");
            let w = g.edge_weight(p, u).expect("tree edge is a graph edge");
            (p, w)
        };
        members.insert(
            u,
            MemberInfo {
                parent: p,
                parent_weight: w,
                dist: rec.dist[u.index()],
            },
        );
        memory.add(u, 3);
    }
    (
        SparseTree {
            root: v,
            level,
            members,
        },
        out.beta_used,
    )
}

/// Hop depth of a sparse tree (0 for a singleton).
pub fn tree_depth(tree: &SparseTree) -> usize {
    let mut best = 0;
    for &u in tree.members.keys() {
        let mut cur = u;
        let mut hops = 0;
        while cur != tree.root {
            cur = tree.members[&cur].parent;
            hops += 1;
            if hops > tree.members.len() {
                break; // cycle guard; from_parents re-checks
            }
        }
        best = best.max(hops);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::{generators, shortest_paths};
    use hopset::construction::{build as build_hopset, HopsetParams};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Reference exact cluster membership by definition (Eq. 1).
    fn cluster_by_definition(
        g: &Graph,
        v: VertexId,
        next_dist: &[Weight],
    ) -> std::collections::HashSet<VertexId> {
        let dv = shortest_paths::dijkstra(g, v);
        g.vertices()
            .filter(|&u| u == v || dv[u.index()] < next_dist[u.index()])
            .collect()
    }

    #[test]
    fn exact_clusters_match_definition() {
        let mut rng = ChaCha8Rng::seed_from_u64(221);
        let g = generators::erdos_renyi_connected(90, 0.07, 1..=9, &mut rng);
        // A_1: a random subset; next_dist = d(·, A_1).
        let a1: Vec<VertexId> = (0..90u32).step_by(7).map(VertexId).collect();
        let (next_dist, _) = shortest_paths::multi_source_dijkstra(&g, &a1);
        let roots: Vec<VertexId> = (0..90u32)
            .map(VertexId)
            .filter(|v| !a1.contains(v))
            .take(20)
            .collect();
        let mut led = CostLedger::new();
        let mut mem = MemoryMeter::new(90);
        let (trees, stats) = exact_clusters(&g, &roots, 0, &next_dist, 90, &mut led, &mut mem);
        assert_eq!(stats.clusters, 20);
        for tree in &trees {
            let want = cluster_by_definition(&g, tree.root, &next_dist);
            let got: std::collections::HashSet<VertexId> = tree.members.keys().copied().collect();
            assert_eq!(got, want, "cluster of {}", tree.root);
            // Distances are exact.
            let dv = shortest_paths::dijkstra(&g, tree.root);
            for (&u, info) in &tree.members {
                assert_eq!(info.dist, dv[u.index()]);
            }
        }
    }

    #[test]
    fn exact_cluster_trees_are_valid_rooted_trees() {
        let mut rng = ChaCha8Rng::seed_from_u64(222);
        let g = generators::random_geometric_connected(80, 0.15, 1..=9, &mut rng);
        let a1: Vec<VertexId> = (0..80u32).step_by(9).map(VertexId).collect();
        let (next_dist, _) = shortest_paths::multi_source_dijkstra(&g, &a1);
        let roots: Vec<VertexId> = vec![VertexId(1), VertexId(2), VertexId(3)];
        let mut led = CostLedger::new();
        let mut mem = MemoryMeter::new(80);
        let (trees, _) = exact_clusters(&g, &roots, 0, &next_dist, 80, &mut led, &mut mem);
        for tree in &trees {
            // to_rooted panics on inconsistent parents; also check weights.
            let rt = tree.to_rooted(80);
            for (&u, info) in &tree.members {
                if u != tree.root {
                    assert_eq!(
                        g.edge_weight(info.parent, u),
                        Some(info.parent_weight),
                        "tree edge must be a graph edge"
                    );
                }
            }
            assert_eq!(rt.num_vertices(), tree.len());
        }
    }

    struct ApproxFixture {
        g: Graph,
        virt: VirtualGraph,
        hopset: Hopset,
        next_hat: Vec<Weight>,
        roots: Vec<VertexId>,
    }

    fn approx_fixture(seed: u64) -> ApproxFixture {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = generators::erdos_renyi_connected(120, 0.06, 1..=9, &mut rng);
        let virt = VirtualGraph::sample(&g, 0.3, &mut rng);
        let mut led = CostLedger::new();
        let mut mem = MemoryMeter::new(120);
        let hs = build_hopset(
            &g,
            &virt,
            HopsetParams::default(),
            8,
            &mut led,
            &mut mem,
            &mut rng,
        );
        // Next-level set: a sub-sample of the virtual vertices.
        let a_next: Vec<VertexId> = virt.virtual_vertices().iter().copied().step_by(4).collect();
        let (next_hat, _) = shortest_paths::multi_source_dijkstra(&g, &a_next);
        let roots: Vec<VertexId> = virt
            .virtual_vertices()
            .iter()
            .copied()
            .filter(|v| !a_next.contains(v))
            .take(8)
            .collect();
        ApproxFixture {
            g,
            virt,
            hopset: hs.hopset,
            next_hat,
            roots,
        }
    }

    #[test]
    fn approx_clusters_contained_in_exact_clusters() {
        // Claim 9: C̃(v) ⊆ C(v) when thresholds are the exact distances.
        let f = approx_fixture(223);
        let mut led = CostLedger::new();
        let mut mem = MemoryMeter::new(f.g.num_vertices());
        let eps = 0.01;
        let (trees, _) = approx_clusters(
            &f.g,
            &f.virt,
            &f.hopset,
            &f.roots,
            1,
            &f.next_hat,
            eps,
            300,
            8,
            &mut led,
            &mut mem,
        );
        for tree in &trees {
            let exact = cluster_by_definition(&f.g, tree.root, &f.next_hat);
            for &u in tree.members.keys() {
                assert!(
                    exact.contains(&u),
                    "C̃({}) member {u} outside C({})",
                    tree.root,
                    tree.root
                );
            }
        }
    }

    #[test]
    fn approx_clusters_contain_inner_clusters() {
        // Claim 10: C_{6ε}(v) ⊆ C̃(v).
        let f = approx_fixture(224);
        let mut led = CostLedger::new();
        let mut mem = MemoryMeter::new(f.g.num_vertices());
        let eps = 0.02;
        let (trees, _) = approx_clusters(
            &f.g,
            &f.virt,
            &f.hopset,
            &f.roots,
            1,
            &f.next_hat,
            eps,
            300,
            8,
            &mut led,
            &mut mem,
        );
        for tree in &trees {
            let dv = shortest_paths::dijkstra(&f.g, tree.root);
            for u in f.g.vertices() {
                let inner =
                    (dv[u.index()] as f64) * (1.0 + 6.0 * eps) < f.next_hat[u.index()] as f64;
                if u == tree.root || (inner && f.next_hat[u.index()] != INFINITY) {
                    assert!(
                        tree.contains(u),
                        "C_6ε({}) member {u} missing from C̃",
                        tree.root
                    );
                }
            }
        }
    }

    #[test]
    fn approx_cluster_estimates_dominate_distance() {
        let f = approx_fixture(225);
        let mut led = CostLedger::new();
        let mut mem = MemoryMeter::new(f.g.num_vertices());
        let (trees, _) = approx_clusters(
            &f.g,
            &f.virt,
            &f.hopset,
            &f.roots,
            1,
            &f.next_hat,
            0.05,
            300,
            8,
            &mut led,
            &mut mem,
        );
        for tree in &trees {
            let dv = shortest_paths::dijkstra(&f.g, tree.root);
            let rt = tree.to_rooted(f.g.num_vertices());
            for (&u, info) in &tree.members {
                assert!(info.dist >= dv[u.index()], "estimate undershot");
                // Tree path realizes a distance no worse than the estimate.
                let tree_dist = rt.root_distance(u).unwrap();
                assert!(tree_dist <= info.dist.max(tree_dist));
                assert!(tree_dist >= dv[u.index()]);
            }
        }
    }

    #[test]
    fn top_level_cluster_spans_everything() {
        // With infinite thresholds (A_{i+1} = ∅) the cluster is the whole
        // connected component.
        let f = approx_fixture(226);
        let inf = vec![INFINITY; f.g.num_vertices()];
        let mut led = CostLedger::new();
        let mut mem = MemoryMeter::new(f.g.num_vertices());
        let (trees, _) = approx_clusters(
            &f.g,
            &f.virt,
            &f.hopset,
            &f.roots[..1],
            1,
            &inf,
            0.05,
            300,
            8,
            &mut led,
            &mut mem,
        );
        assert_eq!(trees[0].len(), f.g.num_vertices());
    }

    #[test]
    fn stats_report_overlap_and_depth() {
        let f = approx_fixture(227);
        let mut led = CostLedger::new();
        let mut mem = MemoryMeter::new(f.g.num_vertices());
        let (trees, stats) = approx_clusters(
            &f.g,
            &f.virt,
            &f.hopset,
            &f.roots,
            1,
            &f.next_hat,
            0.05,
            300,
            8,
            &mut led,
            &mut mem,
        );
        assert_eq!(stats.clusters, trees.len());
        assert_eq!(
            stats.total_membership,
            trees.iter().map(SparseTree::len).sum::<usize>()
        );
        assert!(stats.max_overlap >= 1);
        assert!(led.rounds() > 0);
    }
}
