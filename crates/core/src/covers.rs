//! Sparse-cover routing — the \[ABNLP90\]-style comparison row of Table 1.
//!
//! Awerbuch, Bar-Noy, Linial and Peleg routed over *sparse covers* rather
//! than the Thorup–Zwick hierarchy. For every distance scale `2^s`, a cover
//! is a family of clusters such that every vertex's `2^s`-ball is contained
//! in some cluster (its *home* cluster), cluster radii are `O(k·2^s)`, and
//! overlap is small. This module implements the classical Awerbuch–Peleg
//! ball-growing construction: grow a ball from an uncovered vertex in
//! `2^s`-steps while it keeps inflating by a factor `n^{1/k}`; the final
//! ball is a cluster whose inner core becomes *covered*. Growth can repeat
//! at most `k` times, so radii are at most `(k+1)·2^s`.
//!
//! Each cluster carries an exact tree-routing scheme (the paper's Theorem 2
//! trees); labels store, per scale, the home-cluster root and the vertex's
//! tree label; routing walks the smallest scale whose home tree contains the
//! source. Stretch is `O(k)` per the radius bound — with far larger tables
//! and labels than the Thorup–Zwick-based scheme, and a `log Λ` scale
//! factor on both: exactly the tradeoff Table 1's first row records.

use std::collections::HashMap;

use congest::WordSized;
use graphs::{dist_add, Graph, VertexId, Weight, INFINITY};
use tree_routing::types::{route_step, RouteAction, TreeLabel, TreeTable};
use tree_routing::tz;

use crate::sparse::{MemberInfo, SparseTree};

/// One scale's cover.
#[derive(Clone, Debug)]
pub struct ScaleCover {
    /// The scale `2^s` this cover serves.
    pub scale: Weight,
    /// Cluster trees (rooted at their ball centers).
    pub clusters: Vec<SparseTree>,
    /// Per vertex: index into `clusters` of its home cluster.
    pub home: Vec<usize>,
    /// Max clusters any vertex belongs to at this scale.
    pub max_overlap: usize,
}

/// One table row of the cover scheme.
#[derive(Clone, Debug)]
pub struct CoverTableEntry {
    /// Scale index (the `s` of `2^s`).
    pub scale_idx: usize,
    /// The cluster's root/center.
    pub root: VertexId,
    /// Tree routing table within the cluster tree.
    pub table: TreeTable,
}

impl WordSized for CoverTableEntry {
    fn words(&self) -> usize {
        2 + self.table.words()
    }
}

/// One label row of the cover scheme.
#[derive(Clone, Debug)]
pub struct CoverLabelEntry {
    /// Scale index.
    pub scale_idx: usize,
    /// Home-cluster root at this scale.
    pub root: VertexId,
    /// The vertex's tree label in its home cluster's tree.
    pub label: TreeLabel,
}

impl WordSized for CoverLabelEntry {
    fn words(&self) -> usize {
        2 + self.label.words()
    }
}

/// The assembled sparse-cover scheme.
#[derive(Clone, Debug)]
pub struct CoverScheme {
    /// The per-scale covers (ascending scales).
    pub scales: Vec<ScaleCover>,
    /// Per vertex: rows for every (scale, cluster) containing it.
    pub tables: Vec<Vec<CoverTableEntry>>,
    /// Per vertex: one home row per scale.
    pub labels: Vec<Vec<CoverLabelEntry>>,
}

impl CoverScheme {
    /// Largest table, in words.
    pub fn max_table_words(&self) -> usize {
        self.tables
            .iter()
            .map(|t| t.iter().map(WordSized::words).sum())
            .max()
            .unwrap_or(0)
    }

    /// Largest label, in words.
    pub fn max_label_words(&self) -> usize {
        self.labels
            .iter()
            .map(|l| l.iter().map(WordSized::words).sum())
            .max()
            .unwrap_or(0)
    }

    /// Max overlap over all scales (the cover "degree").
    pub fn max_overlap(&self) -> usize {
        self.scales.iter().map(|s| s.max_overlap).max().unwrap_or(0)
    }
}

/// Truncated Dijkstra from `c`: all vertices within `reach`, with parents.
fn ball(g: &Graph, c: VertexId, reach: Weight) -> HashMap<VertexId, (Weight, Option<VertexId>)> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut out: HashMap<VertexId, (Weight, Option<VertexId>)> = HashMap::new();
    let mut heap = BinaryHeap::new();
    out.insert(c, (0, None));
    heap.push(Reverse((0u64, c)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if out.get(&u).map(|&(dd, _)| dd) != Some(d) {
            continue;
        }
        for arc in g.neighbors(u) {
            let nd = dist_add(d, arc.weight);
            if nd <= reach && out.get(&arc.to).is_none_or(|&(old, _)| nd < old) {
                out.insert(arc.to, (nd, Some(u)));
                heap.push(Reverse((nd, arc.to)));
            }
        }
    }
    out
}

/// Build the sparse-cover scheme for `g` with overlap exponent `k`.
///
/// # Panics
///
/// Panics if `k < 1` or the graph is empty.
pub fn build_cover_scheme(g: &Graph, k: usize) -> CoverScheme {
    assert!(k >= 1, "k must be positive");
    let n = g.num_vertices();
    assert!(n > 0, "graph must be non-empty");
    let growth = (n as f64).powf(1.0 / k as f64);

    // Scales: powers of two up to the weighted diameter, bounded by twice
    // the eccentricity of vertex 0 (diam ≤ 2·ecc by the triangle inequality).
    let probe = graphs::shortest_paths::dijkstra(g, VertexId(0));
    let ecc = probe
        .iter()
        .copied()
        .filter(|&d| d != INFINITY)
        .max()
        .unwrap_or(1);
    let diam = 2 * ecc.max(1);
    let mut scales = Vec::new();
    let mut scale: Weight = 1;
    loop {
        scales.push(build_scale(g, scale, growth));
        if scale > diam {
            break;
        }
        scale = scale.saturating_mul(2);
    }

    // Assemble per-vertex rows.
    let mut tables: Vec<Vec<CoverTableEntry>> = vec![Vec::new(); n];
    let mut labels: Vec<Vec<CoverLabelEntry>> = vec![Vec::new(); n];
    for (si, sc) in scales.iter().enumerate() {
        for (ci, cluster) in sc.clusters.iter().enumerate() {
            let dense = cluster.to_rooted(n);
            let scheme = tz::build(&dense);
            for &u in cluster.members.keys() {
                tables[u.index()].push(CoverTableEntry {
                    scale_idx: si,
                    root: cluster.root,
                    table: scheme.table(u).expect("member").clone(),
                });
                // Home label for the vertices homed here.
                if sc.home[u.index()] == ci {
                    labels[u.index()].push(CoverLabelEntry {
                        scale_idx: si,
                        root: cluster.root,
                        label: scheme.label(u).expect("home is a member").clone(),
                    });
                }
            }
        }
    }
    CoverScheme {
        scales,
        tables,
        labels,
    }
}

/// One scale's Awerbuch–Peleg ball-growing cover.
fn build_scale(g: &Graph, scale: Weight, growth: f64) -> ScaleCover {
    let n = g.num_vertices();
    let mut covered = vec![false; n];
    let mut clusters: Vec<SparseTree> = Vec::new();
    let mut home = vec![usize::MAX; n];
    let mut overlap = vec![0usize; n];
    for start in g.vertices() {
        if covered[start.index()] {
            continue;
        }
        // Grow: core radius r, cluster radius r + scale; keep growing while
        // the cluster inflates by more than the growth factor.
        let mut r: Weight = 0;
        loop {
            let core = ball(g, start, r);
            let cluster = ball(g, start, dist_add(r, scale));
            if (cluster.len() as f64) > growth * (core.len() as f64) {
                r = dist_add(r, scale);
                continue;
            }
            // Finalize this cluster.
            let mut members = HashMap::with_capacity(cluster.len());
            for (&u, &(d, p)) in &cluster {
                let (parent, pw) = match p {
                    Some(p) => (p, g.edge_weight(p, u).expect("ball parent edge")),
                    None => (u, 0),
                };
                members.insert(
                    u,
                    MemberInfo {
                        parent,
                        parent_weight: pw,
                        dist: d,
                    },
                );
                overlap[u.index()] += 1;
            }
            let idx = clusters.len();
            for &u in core.keys() {
                if !covered[u.index()] {
                    covered[u.index()] = true;
                    home[u.index()] = idx;
                }
            }
            clusters.push(SparseTree {
                root: start,
                level: 0,
                members,
            });
            break;
        }
    }
    ScaleCover {
        scale,
        clusters,
        home,
        max_overlap: overlap.iter().copied().max().unwrap_or(0),
    }
}

/// A routed path under the cover scheme.
#[derive(Clone, Debug)]
pub struct CoverTrace {
    /// Visited vertices, source first.
    pub path: Vec<VertexId>,
    /// Total weight.
    pub weight: Weight,
    /// The scale that served the route.
    pub scale: Weight,
}

/// Route `src → dst`: ascend scales until the target's home tree contains
/// the source, then forward in that tree. Returns `None` for disconnected
/// pairs.
pub fn route_cover(
    g: &Graph,
    scheme: &CoverScheme,
    src: VertexId,
    dst: VertexId,
) -> Option<CoverTrace> {
    if src == dst {
        return Some(CoverTrace {
            path: vec![src],
            weight: 0,
            scale: 0,
        });
    }
    for entry in &scheme.labels[dst.index()] {
        // The source must be inside the target's home cluster at this scale.
        if !scheme.tables[src.index()]
            .iter()
            .any(|t| t.scale_idx == entry.scale_idx && t.root == entry.root)
        {
            continue;
        }
        // Forward hop by hop inside the tree.
        let mut path = vec![src];
        let mut weight = 0;
        let mut cur = src;
        let cap = 4 * g.num_vertices() + 4;
        let ok = loop {
            if path.len() > cap {
                break false;
            }
            let Some(row) = scheme.tables[cur.index()]
                .iter()
                .find(|t| t.scale_idx == entry.scale_idx && t.root == entry.root)
            else {
                break false;
            };
            match route_step(cur, &row.table, &entry.label) {
                Some(RouteAction::Deliver) => break true,
                Some(RouteAction::Forward(next)) => {
                    let Some(w) = g.edge_weight(cur, next) else {
                        break false;
                    };
                    weight += w;
                    path.push(next);
                    cur = next;
                }
                None => break false,
            }
        };
        if ok {
            return Some(CoverTrace {
                path,
                weight,
                scale: scheme.scales[entry.scale_idx].scale,
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::{generators, shortest_paths};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn er(n: usize, seed: u64) -> Graph {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        generators::erdos_renyi_connected(n, 3.0 / n as f64, 1..=9, &mut rng)
    }

    #[test]
    fn every_vertex_has_a_home_at_every_scale() {
        let g = er(80, 1301);
        let scheme = build_cover_scheme(&g, 2);
        for sc in &scheme.scales {
            for v in g.vertices() {
                let h = sc.home[v.index()];
                assert!(h < sc.clusters.len(), "no home at scale {}", sc.scale);
                assert!(sc.clusters[h].contains(v));
            }
        }
    }

    #[test]
    fn home_cluster_contains_the_scale_ball() {
        let g = er(70, 1302);
        let scheme = build_cover_scheme(&g, 2);
        for sc in &scheme.scales {
            for v in g.vertices() {
                let dv = shortest_paths::dijkstra(&g, v);
                let cluster = &sc.clusters[sc.home[v.index()]];
                for u in g.vertices() {
                    if dv[u.index()] <= sc.scale {
                        assert!(
                            cluster.contains(u),
                            "ball({v}, {}) member {u} outside home cluster",
                            sc.scale
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn cluster_radii_respect_the_k_bound() {
        let g = er(90, 1303);
        let k = 2;
        let scheme = build_cover_scheme(&g, k);
        for sc in &scheme.scales {
            for cluster in &sc.clusters {
                for info in cluster.members.values() {
                    assert!(
                        info.dist <= (k as u64 + 1) * sc.scale,
                        "radius {} above (k+1)·{} at scale {}",
                        info.dist,
                        sc.scale,
                        sc.scale
                    );
                }
            }
        }
    }

    #[test]
    fn cover_routing_is_complete_with_o_k_stretch() {
        let g = er(60, 1304);
        let k = 2;
        let scheme = build_cover_scheme(&g, k);
        let bound = (8 * (k as u64 + 1)) as f64;
        for u in g.vertices() {
            let du = shortest_paths::dijkstra(&g, u);
            for v in g.vertices() {
                let trace = route_cover(&g, &scheme, u, v).expect("connected");
                if u == v {
                    assert_eq!(trace.weight, 0);
                    continue;
                }
                assert!(trace.weight >= du[v.index()]);
                let stretch = trace.weight as f64 / du[v.index()] as f64;
                assert!(
                    stretch <= bound,
                    "cover stretch {stretch} above O(k) bound {bound} for {u}->{v}"
                );
            }
        }
    }

    #[test]
    fn scales_cover_the_diameter() {
        let g = er(50, 1305);
        let scheme = build_cover_scheme(&g, 3);
        let apsp = shortest_paths::all_pairs(&g);
        let diam = apsp
            .iter()
            .flatten()
            .copied()
            .filter(|&d| d != INFINITY)
            .max()
            .unwrap();
        let top = scheme.scales.last().unwrap().scale;
        assert!(top >= diam, "top scale {top} below diameter {diam}");
        // Top scale: single cluster spanning everything.
        assert_eq!(scheme.scales.last().unwrap().clusters.len(), 1);
    }

    #[test]
    fn tables_are_larger_than_tz_schemes() {
        // The tradeoff Table 1 records: covers pay a log Λ scale factor.
        let g = er(100, 1306);
        let cover = build_cover_scheme(&g, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let tz = crate::scheme::build(
            &g,
            &crate::scheme::BuildParams::new(2).with_mode(crate::scheme::Mode::Centralized),
            &mut rng,
        );
        assert!(cover.max_label_words() > tz.report.max_label_words);
    }

    #[test]
    fn disconnected_pairs_return_none() {
        let mut b = graphs::GraphBuilder::new(6);
        b.add_edge(VertexId(0), VertexId(1), 1);
        b.add_edge(VertexId(1), VertexId(2), 1);
        b.add_edge(VertexId(3), VertexId(4), 1);
        b.add_edge(VertexId(4), VertexId(5), 1);
        let g = b.build();
        let scheme = build_cover_scheme(&g, 2);
        assert!(route_cover(&g, &scheme, VertexId(0), VertexId(5)).is_none());
        assert!(route_cover(&g, &scheme, VertexId(0), VertexId(2)).is_some());
    }

    #[test]
    fn report_display_is_informative() {
        let g = er(40, 1308);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let built = crate::scheme::build(&g, &crate::scheme::BuildParams::new(2), &mut rng);
        let text = built.report.to_string();
        assert!(text.contains("rounds"));
        assert!(text.contains("peak memory"));
        assert!(text.contains("clusters"));
    }

    #[test]
    fn overlap_is_reported() {
        let g = er(120, 1307);
        let scheme = build_cover_scheme(&g, 2);
        assert!(scheme.max_overlap() >= 1);
        // Not a proof, but the greedy cover should stay well below n.
        assert!(scheme.max_overlap() < 120 / 2);
    }
}
