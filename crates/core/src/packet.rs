//! The routing phase as a *real* CONGEST protocol.
//!
//! [`crate::router`] walks the forwarding rule centrally (fast, used for
//! stretch measurement). This module runs the same rule as a genuine
//! message-passing protocol on the [`congest::Engine`]: each vertex's state
//! is exactly its routing table, and the packet on the wire carries exactly
//! `Header(M) = (tree root, accumulated weight)` plus the target's tree
//! label — `O(log n)` words, checked against the engine's congestion meter.
//! Delivery takes one round per hop, by construction.
//!
//! Every simulation has a *traced* twin ([`send_traced`],
//! [`send_many_traced`]) that additionally records one
//! [`obs::flight::HopRecord`] per edge traversal — round, chosen port,
//! forwarding-decision kind (ascent toward the committed pivot vs. descent
//! in its tree), queueing delay, accumulated weight — and aggregates
//! [`obs::flight::EdgeLoadMap`]/[`obs::flight::VertexLoadMap`] heatmaps.
//! Trace state rides *out of band*: it is never counted by [`WordSized`],
//! so congestion accounting, round counts, and memory meters are identical
//! between a traced run and its untraced twin.
//!
//! Only the paper's tree-scheme family is supported (the prior baseline's
//! packets would carry its `O(log² n)` labels).

use congest::engine::{Ctx, Engine, EngineConfig, Inbox, VertexProtocol};
use congest::{Network, RunStats, WordSized};
use graphs::{VertexId, Weight};
use obs::flight::{EdgeLoadMap, HopKind, HopRecord, PacketTrace, VertexLoadMap};
use tree_routing::types::{route_decision, ForwardingDecision, TreeLabel};

use crate::scheme::{LabelEntry, RoutingScheme, RoutingTable, TreeLabelKind, TreeTableKind};

/// The flight-recorder view of a [`ForwardingDecision`]'s kind.
fn hop_kind(decision: &ForwardingDecision) -> Option<HopKind> {
    match decision {
        ForwardingDecision::Deliver => None,
        ForwardingDecision::Ascend(_) => Some(HopKind::Ascent),
        ForwardingDecision::DescendLight(_) => Some(HopKind::DescentLight),
        ForwardingDecision::DescendHeavy(_) => Some(HopKind::DescentHeavy),
    }
}

/// The source decision, shared by every send variant: the valid label entry
/// of `dst` minimizing the estimated round trip from `src`.
fn choose_entry(scheme: &RoutingScheme, src: VertexId, dst: VertexId) -> Option<&LabelEntry> {
    let label = &scheme.labels[dst.index()];
    let src_table = &scheme.tables[src.index()];
    let mut chosen: Option<(&LabelEntry, Weight)> = None;
    for e in &label.entries {
        if let Some(te) = src_table.entry(e.pivot) {
            let cost = te.dist.saturating_add(e.dist);
            if chosen.is_none_or(|(_, c)| cost < c) {
                chosen = Some((e, cost));
            }
        }
    }
    chosen.map(|(e, _)| e)
}

/// The paper's tree label out of a [`LabelEntry`].
///
/// # Panics
///
/// Panics if the scheme was built in prior-baseline mode.
fn ours_label(entry: &LabelEntry) -> &TreeLabel {
    let TreeLabelKind::Ours(tree_label) = &entry.tree_label else {
        panic!("packet simulation supports the paper's tree scheme only");
    };
    tree_label
}

/// The source-side routing decision for one packet, fixed at injection
/// time: the tree the source commits to and the destination's label in it.
///
/// This is the incremental injection API used by open-loop traffic
/// generators (the `traffic` crate): plan once per flow, then stamp any
/// number of packets from the plan round by round, without re-deriving the
/// send variants' private decision rule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PacketPlan {
    /// The pivot whose tree the source commits to.
    pub tree_root: VertexId,
    /// The destination's label in that tree (what the packet carries).
    pub label: TreeLabel,
    /// The source's estimate for the committed route,
    /// `d(src, pivot) + d(pivot, dst)` as priced by table and label — an
    /// upper bound on the routed weight.
    pub est_cost: Weight,
}

impl PacketPlan {
    /// Words a packet built from this plan occupies on the wire under the
    /// batched header layout (`id`, `tree_root`, `weight` + label).
    pub fn loaded_words(&self) -> usize {
        3 + self.label.words()
    }
}

/// Plan a packet from `src` to `dst`: the source-optimal tree choice shared
/// by every send variant, exposed for incremental per-round injection.
/// Returns `None` when no label entry of `dst` names a tree containing
/// `src` (the pair is undeliverable).
///
/// # Panics
///
/// Panics if the scheme was built in prior-baseline mode.
pub fn plan(scheme: &RoutingScheme, src: VertexId, dst: VertexId) -> Option<PacketPlan> {
    let entry = choose_entry(scheme, src, dst)?;
    let src_table = &scheme.tables[src.index()];
    let est_cost = src_table
        .entry(entry.pivot)
        .map(|te| te.dist.saturating_add(entry.dist))
        .expect("chosen entry's pivot is in the source table");
    Some(PacketPlan {
        tree_root: entry.pivot,
        label: ours_label(entry).clone(),
        est_cost,
    })
}

/// The packet on the wire: header + target tree label.
///
/// The optional trace is out-of-band flight-recorder state and does not
/// count toward the packet's wire size.
#[derive(Clone, Debug)]
pub struct Packet {
    /// Header: the tree the sender committed to.
    pub tree_root: VertexId,
    /// Header: weight accumulated so far (diagnostic, one word).
    pub weight: Weight,
    /// The target's label in that tree.
    pub label: TreeLabel,
    /// Flight-recorder journey, present only in traced sends.
    trace: Option<Box<PacketTrace>>,
}

impl WordSized for Packet {
    fn words(&self) -> usize {
        2 + self.label.words()
    }
}

/// The explicit outcome of a single-packet simulation.
///
/// Previously an undeliverable packet and a zero-hop self-delivery were both
/// reported as `delivered: false/true` with `rounds: 0, weight: 0`; the enum
/// keeps the cases apart for downstream statistics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PacketOutcome {
    /// The packet arrived: delivery round (= hop count) and routed weight.
    /// A self-addressed packet legitimately reports `rounds: 0, weight: 0`.
    Delivered {
        /// Round of delivery = number of hops.
        rounds: u64,
        /// Weight the header accumulated (equals the routed path weight).
        weight: Weight,
    },
    /// No label entry of the target names a tree containing the source
    /// (disconnected pair); nothing was injected.
    NoCommonTree,
    /// The forwarding rule got stuck mid-route at this vertex (missing
    /// table row or port — a construction bug, not a traffic condition).
    Stuck(VertexId),
}

impl PacketOutcome {
    /// Whether the packet arrived.
    pub fn is_delivered(&self) -> bool {
        matches!(self, PacketOutcome::Delivered { .. })
    }

    /// Delivery round and weight, if the packet arrived.
    pub fn delivery(&self) -> Option<(u64, Weight)> {
        match self {
            PacketOutcome::Delivered { rounds, weight } => Some((*rounds, *weight)),
            _ => None,
        }
    }
}

/// Result of a packet simulation.
#[derive(Clone, Debug)]
pub struct PacketReport {
    /// What happened to the packet.
    pub outcome: PacketOutcome,
    /// Size of the packet in words (header + label; 0 when never injected).
    pub packet_words: usize,
    /// Engine statistics (congestion, messages, memory).
    pub stats: RunStats,
}

impl PacketReport {
    /// Whether the packet arrived.
    pub fn delivered(&self) -> bool {
        self.outcome.is_delivered()
    }
}

/// A single-packet simulation plus its flight recording.
#[derive(Clone, Debug)]
pub struct PacketFlight {
    /// The simulation result, identical to the untraced [`send`]'s.
    pub report: PacketReport,
    /// The hop-by-hop journey. Present whenever the packet was injected
    /// (delivered *or* stuck); `None` only for [`PacketOutcome::NoCommonTree`].
    pub trace: Option<PacketTrace>,
}

/// Per-vertex protocol state: the vertex's own routing table, nothing else.
#[derive(Clone, Debug)]
struct PacketVertex {
    table: RoutingTable,
    /// Set when this vertex delivered the packet (round number).
    delivered: Option<(u64, Weight)>,
    /// The packet to inject at init (source only).
    inject: Option<Packet>,
    failed: Option<VertexId>,
    /// The journey extracted at delivery or failure (traced runs only).
    trace_out: Option<PacketTrace>,
}

impl PacketVertex {
    fn fail(&mut self, me: VertexId, packet: &mut Packet) {
        self.failed = Some(me);
        self.trace_out = packet.trace.take().map(|t| *t);
    }

    fn handle(&mut self, ctx: &mut Ctx<'_, Packet>, mut packet: Packet) {
        let me = ctx.me();
        let Some(entry) = self.table.entry(packet.tree_root) else {
            self.fail(me, &mut packet);
            return;
        };
        let TreeTableKind::Ours(table) = &entry.table else {
            self.fail(me, &mut packet);
            return;
        };
        match route_decision(me, table, &packet.label) {
            Some(ForwardingDecision::Deliver) => {
                self.delivered = Some((ctx.round(), packet.weight));
                if let Some(mut trace) = packet.trace.take() {
                    trace.delivered_round = Some(ctx.round());
                    self.trace_out = Some(*trace);
                }
            }
            Some(decision) => {
                let next = decision.next_hop().expect("forwarding decision");
                let Some(port) = ctx.neighbors().iter().position(|a| a.to == next) else {
                    self.fail(me, &mut packet);
                    return;
                };
                let header_words = packet.words();
                packet.weight += ctx.neighbors()[port].weight;
                if let Some(trace) = packet.trace.as_mut() {
                    trace.hops.push(HopRecord {
                        round: ctx.round(),
                        vertex: me.0,
                        port,
                        next: next.0,
                        kind: hop_kind(&decision).expect("forwarding hop"),
                        queue_delay: 0,
                        weight: packet.weight,
                        header_words,
                    });
                }
                ctx.send(next, packet);
            }
            None => self.fail(me, &mut packet),
        }
    }
}

impl VertexProtocol for PacketVertex {
    type Msg = Packet;

    fn init(&mut self, ctx: &mut Ctx<'_, Packet>) {
        if let Some(p) = self.inject.take() {
            self.handle(ctx, p);
        }
    }

    fn round(&mut self, ctx: &mut Ctx<'_, Packet>, inbox: &mut Inbox<'_, Packet>) {
        // Drain moves each packet (heap label + trace included) out of the
        // engine's arena — forwarding never clones.
        for (_, p) in inbox.drain() {
            self.handle(ctx, p);
        }
    }

    fn is_done(&self) -> bool {
        true // stateless forwarding; the engine drains in-flight packets
    }

    fn memory_words(&self) -> usize {
        self.table.words()
    }
}

/// Send one packet from `src` to `dst` through the engine, using the
/// source-optimal tree choice.
///
/// # Panics
///
/// Panics if the scheme was built in prior-baseline mode.
pub fn send(
    network: &Network,
    scheme: &RoutingScheme,
    src: VertexId,
    dst: VertexId,
) -> PacketReport {
    send_inner(network, scheme, src, dst, false, 1).report
}

/// [`send`] on an engine with `threads` workers (`0` = available
/// parallelism). The report is identical for every thread count.
///
/// # Panics
///
/// Panics if the scheme was built in prior-baseline mode.
pub fn send_with(
    network: &Network,
    scheme: &RoutingScheme,
    src: VertexId,
    dst: VertexId,
    threads: usize,
) -> PacketReport {
    send_inner(network, scheme, src, dst, false, threads).report
}

/// Like [`send`], but flight-recorded: the returned trace holds one hop
/// record per edge traversal. The report is identical to the untraced
/// [`send`]'s — tracing never perturbs rounds, words, or memory.
///
/// # Panics
///
/// Panics if the scheme was built in prior-baseline mode.
pub fn send_traced(
    network: &Network,
    scheme: &RoutingScheme,
    src: VertexId,
    dst: VertexId,
) -> PacketFlight {
    send_inner(network, scheme, src, dst, true, 1)
}

/// [`send_traced`] on an engine with `threads` workers (`0` = available
/// parallelism). Report and trace are identical for every thread count.
///
/// # Panics
///
/// Panics if the scheme was built in prior-baseline mode.
pub fn send_traced_with(
    network: &Network,
    scheme: &RoutingScheme,
    src: VertexId,
    dst: VertexId,
    threads: usize,
) -> PacketFlight {
    send_inner(network, scheme, src, dst, true, threads)
}

fn send_inner(
    network: &Network,
    scheme: &RoutingScheme,
    src: VertexId,
    dst: VertexId,
    traced: bool,
    threads: usize,
) -> PacketFlight {
    let Some(entry) = choose_entry(scheme, src, dst) else {
        return PacketFlight {
            report: PacketReport {
                outcome: PacketOutcome::NoCommonTree,
                packet_words: 0,
                stats: RunStats::default(),
            },
            trace: None,
        };
    };
    let packet = Packet {
        tree_root: entry.pivot,
        weight: 0,
        label: ours_label(entry).clone(),
        trace: traced.then(|| {
            Box::new(PacketTrace {
                src: src.0,
                dst: dst.0,
                tree_root: entry.pivot.0,
                delivered_round: None,
                hops: Vec::new(),
            })
        }),
    };
    let packet_words = packet.words();

    let protos: Vec<PacketVertex> = network
        .graph()
        .vertices()
        .map(|v| PacketVertex {
            table: scheme.tables[v.index()].clone(),
            delivered: None,
            inject: (v == src).then(|| packet.clone()),
            failed: None,
            trace_out: None,
        })
        .collect();
    let engine = Engine::with_config(EngineConfig {
        // The packet is the message; its size is the legal per-edge budget.
        edge_words_per_round: packet_words,
        threads,
        ..EngineConfig::default()
    });
    let (mut protos, stats) = engine.run(network, protos);
    let delivered = protos.iter().find_map(|p| p.delivered);
    let outcome = match delivered {
        Some((rounds, weight)) => PacketOutcome::Delivered { rounds, weight },
        None => {
            let stuck_at = protos.iter().find_map(|p| p.failed).unwrap_or(src);
            PacketOutcome::Stuck(stuck_at)
        }
    };
    let trace = protos.iter_mut().find_map(|p| p.trace_out.take());
    PacketFlight {
        report: PacketReport {
            outcome,
            packet_words,
            stats,
        },
        trace,
    }
}

/// A packet under load, with an id so deliveries can be matched up.
///
/// The optional trace is out-of-band flight-recorder state and does not
/// count toward the packet's wire size.
#[derive(Clone, Debug)]
pub struct LoadedPacket {
    /// Index into the submitted batch.
    pub id: u32,
    /// The committed tree.
    pub tree_root: VertexId,
    /// Accumulated weight.
    pub weight: Weight,
    /// Target tree label.
    pub label: TreeLabel,
    /// Flight-recorder journey, present only in traced sends.
    trace: Option<Box<PacketTrace>>,
}

impl WordSized for LoadedPacket {
    fn words(&self) -> usize {
        3 + self.label.words()
    }
}

/// Per-vertex protocol for batched traffic: FIFO queues per outgoing edge,
/// one packet per edge per round — real store-and-forward congestion.
/// Queue entries remember their enqueue round, so a traced run prices each
/// hop's queueing delay exactly.
#[derive(Clone, Debug)]
struct LoadedVertex {
    table: RoutingTable,
    queues: std::collections::HashMap<VertexId, std::collections::VecDeque<(LoadedPacket, u64)>>,
    delivered: Vec<(u32, u64, Weight)>,
    inject: Vec<LoadedPacket>,
    /// Ids of packets dropped here by a stuck rule or missing entry.
    dropped: Vec<u32>,
    /// Completed journeys (delivered or dropped here; traced runs only).
    traces_out: Vec<PacketTrace>,
}

impl LoadedVertex {
    fn drop_packet(&mut self, packet: &mut LoadedPacket) {
        self.dropped.push(packet.id);
        if let Some(trace) = packet.trace.take() {
            self.traces_out.push(*trace);
        }
    }

    fn classify(&mut self, ctx: &Ctx<'_, LoadedPacket>, mut packet: LoadedPacket, round: u64) {
        let me = ctx.me();
        let decision = self
            .table
            .entry(packet.tree_root)
            .and_then(|entry| match &entry.table {
                TreeTableKind::Ours(t) => route_decision(me, t, &packet.label),
                TreeTableKind::Prior(_) => None,
            });
        match decision {
            Some(ForwardingDecision::Deliver) => {
                self.delivered.push((packet.id, round, packet.weight));
                if let Some(mut trace) = packet.trace.take() {
                    trace.delivered_round = Some(round);
                    self.traces_out.push(*trace);
                }
            }
            Some(decision) => {
                let next = decision.next_hop().expect("forwarding decision");
                match ctx.neighbors().iter().position(|a| a.to == next) {
                    Some(port) => {
                        let header_words = packet.words();
                        packet.weight += ctx.neighbors()[port].weight;
                        if let Some(trace) = packet.trace.as_mut() {
                            // Round and queue delay are finalized at flush,
                            // once the send round is known.
                            trace.hops.push(HopRecord {
                                round,
                                vertex: me.0,
                                port,
                                next: next.0,
                                kind: hop_kind(&decision).expect("forwarding hop"),
                                queue_delay: 0,
                                weight: packet.weight,
                                header_words,
                            });
                        }
                        self.queues
                            .entry(next)
                            .or_default()
                            .push_back((packet, round));
                    }
                    None => self.drop_packet(&mut packet),
                }
            }
            None => self.drop_packet(&mut packet),
        }
    }

    fn flush(&mut self, ctx: &mut Ctx<'_, LoadedPacket>) {
        let now = ctx.round();
        let nexts: Vec<VertexId> = self.queues.keys().copied().collect();
        for next in nexts {
            if let Some(q) = self.queues.get_mut(&next) {
                if let Some((mut p, enqueued)) = q.pop_front() {
                    if let Some(trace) = p.trace.as_mut() {
                        let hop = trace.hops.last_mut().expect("hop queued with a record");
                        hop.round = now;
                        hop.queue_delay = now - enqueued;
                    }
                    ctx.send(next, p);
                }
                if q.is_empty() {
                    self.queues.remove(&next);
                }
            }
        }
    }

    fn queue_words(&self) -> usize {
        self.queues
            .values()
            .flat_map(|q| q.iter().map(|(p, _)| p.words()))
            .sum()
    }
}

impl VertexProtocol for LoadedVertex {
    type Msg = LoadedPacket;

    fn init(&mut self, ctx: &mut Ctx<'_, LoadedPacket>) {
        let injected = std::mem::take(&mut self.inject);
        for p in injected {
            self.classify(ctx, p, 0);
        }
        self.flush(ctx);
    }

    fn round(&mut self, ctx: &mut Ctx<'_, LoadedPacket>, inbox: &mut Inbox<'_, LoadedPacket>) {
        let round = ctx.round();
        // Drain moves each packet out of the engine's arena — no clones on
        // the store-and-forward hot path.
        for (_, p) in inbox.drain() {
            self.classify(ctx, p, round);
        }
        self.flush(ctx);
    }

    fn is_done(&self) -> bool {
        self.queues.is_empty()
    }

    fn memory_words(&self) -> usize {
        self.table.words() + self.queue_words()
    }

    fn queued_words(&self) -> usize {
        self.queue_words()
    }
}

/// Per-packet outcome in a batched simulation.
///
/// Splits the old `None` delivery into its two distinct causes: a source
/// that never committed to a tree versus a packet lost mid-route.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeliveryStatus {
    /// Arrived: delivery round (hops + queueing) and routed weight.
    Delivered {
        /// Round of delivery.
        round: u64,
        /// Routed path weight.
        weight: Weight,
    },
    /// The source had no common tree with the target; never injected.
    Undeliverable,
    /// Dropped mid-route by a stuck rule or missing port.
    Dropped,
}

impl DeliveryStatus {
    /// Delivery round and weight, if the packet arrived.
    pub fn delivery(&self) -> Option<(u64, Weight)> {
        match self {
            DeliveryStatus::Delivered { round, weight } => Some((*round, *weight)),
            _ => None,
        }
    }
}

/// Result of a batched simulation.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Per packet (by submission index): what happened to it.
    pub outcomes: Vec<DeliveryStatus>,
    /// Packets whose source had no common tree (never injected).
    pub undeliverable: u32,
    /// Packets dropped mid-route by a stuck rule or missing entry —
    /// distinct from `undeliverable`: these consumed network resources.
    pub dropped: u32,
    /// Engine statistics (the memory meter includes queue occupancy).
    pub stats: RunStats,
}

impl LoadReport {
    /// Delivery round and weight of packet `id`, if it arrived.
    pub fn delivery(&self, id: usize) -> Option<(u64, Weight)> {
        self.outcomes[id].delivery()
    }

    /// Deliveries in submission order (`None` for undeliverable/dropped).
    pub fn deliveries(&self) -> impl Iterator<Item = Option<(u64, Weight)>> + '_ {
        self.outcomes.iter().map(DeliveryStatus::delivery)
    }

    /// Number of packets that arrived.
    pub fn delivered_count(&self) -> usize {
        self.deliveries().flatten().count()
    }
}

/// A batched simulation plus its flight recording.
#[derive(Clone, Debug)]
pub struct LoadFlight {
    /// The simulation result, identical to the untraced [`send_many`]'s.
    pub report: LoadReport,
    /// Per packet (by submission index): its journey. `None` only for
    /// [`DeliveryStatus::Undeliverable`] packets; dropped packets keep
    /// their partial journey.
    pub traces: Vec<Option<PacketTrace>>,
    /// Words and packets per edge, aggregated over every hop of every
    /// trace. Word totals equal the engine's delivered-words total.
    pub edge_load: EdgeLoadMap,
    /// Words and packets forwarded per vertex.
    pub vertex_load: VertexLoadMap,
}

/// Inject one packet per `(src, dst)` pair simultaneously and run the
/// network until all traffic drains. Store-and-forward with one packet per
/// edge per round, so the delivery time of a packet is its hop count plus
/// the queueing delay its path suffered — the congestion behavior of
/// compact routing under load.
///
/// # Panics
///
/// Panics if the scheme was built in prior-baseline mode.
pub fn send_many(
    network: &Network,
    scheme: &RoutingScheme,
    pairs: &[(VertexId, VertexId)],
) -> LoadReport {
    send_many_inner(network, scheme, pairs, false, 1, false).report
}

/// [`send_many`] on an engine with `threads` workers (`0` = available
/// parallelism). Outcomes and stats are identical for every thread count;
/// only wall time changes.
///
/// # Panics
///
/// Panics if the scheme was built in prior-baseline mode.
pub fn send_many_with(
    network: &Network,
    scheme: &RoutingScheme,
    pairs: &[(VertexId, VertexId)],
    threads: usize,
) -> LoadReport {
    send_many_inner(network, scheme, pairs, false, threads, false).report
}

/// [`send_many_with`], with the engine profiler on: the returned report's
/// `stats.profile` carries the per-worker phase attribution. Outcomes and
/// simulated stats are identical to the unprofiled run.
///
/// # Panics
///
/// Panics if the scheme was built in prior-baseline mode.
pub fn send_many_profiled(
    network: &Network,
    scheme: &RoutingScheme,
    pairs: &[(VertexId, VertexId)],
    threads: usize,
) -> LoadReport {
    send_many_inner(network, scheme, pairs, false, threads, true).report
}

/// Like [`send_many`], but flight-recorded: per-packet hop traces plus
/// edge/vertex load heatmaps. The report is identical to the untraced
/// [`send_many`]'s — tracing never perturbs rounds, words, or memory.
///
/// # Panics
///
/// Panics if the scheme was built in prior-baseline mode.
pub fn send_many_traced(
    network: &Network,
    scheme: &RoutingScheme,
    pairs: &[(VertexId, VertexId)],
) -> LoadFlight {
    send_many_inner(network, scheme, pairs, true, 1, false)
}

/// [`send_many_traced`] on an engine with `threads` workers (`0` = available
/// parallelism). Report, traces, and heatmaps are identical for every
/// thread count.
///
/// # Panics
///
/// Panics if the scheme was built in prior-baseline mode.
pub fn send_many_traced_with(
    network: &Network,
    scheme: &RoutingScheme,
    pairs: &[(VertexId, VertexId)],
    threads: usize,
) -> LoadFlight {
    send_many_inner(network, scheme, pairs, true, threads, false)
}

fn send_many_inner(
    network: &Network,
    scheme: &RoutingScheme,
    pairs: &[(VertexId, VertexId)],
    traced: bool,
    threads: usize,
    profile: bool,
) -> LoadFlight {
    // Source decisions, as in `send`.
    let mut inject: Vec<Vec<LoadedPacket>> = vec![Vec::new(); network.len()];
    let mut outcomes = vec![DeliveryStatus::Undeliverable; pairs.len()];
    let mut max_words: Option<usize> = None;
    for (id, &(src, dst)) in pairs.iter().enumerate() {
        let Some(entry) = choose_entry(scheme, src, dst) else {
            continue; // stays Undeliverable
        };
        // Injected packets default to Dropped until a delivery proves
        // otherwise, keeping the two loss causes apart.
        outcomes[id] = DeliveryStatus::Dropped;
        let packet = LoadedPacket {
            id: id as u32,
            tree_root: entry.pivot,
            weight: 0,
            label: ours_label(entry).clone(),
            trace: traced.then(|| {
                Box::new(PacketTrace {
                    src: src.0,
                    dst: dst.0,
                    tree_root: entry.pivot.0,
                    delivered_round: None,
                    hops: Vec::new(),
                })
            }),
        };
        max_words = Some(max_words.unwrap_or(0).max(packet.words()));
        inject[src.index()].push(packet);
    }
    let undeliverable = outcomes
        .iter()
        .filter(|o| **o == DeliveryStatus::Undeliverable)
        .count() as u32;

    // With nothing injected there is no traffic to simulate and no honest
    // per-edge budget to configure — skip the engine instead of inventing
    // one (the old code silently fell back to 4 words).
    let Some(edge_words_per_round) = max_words else {
        return LoadFlight {
            report: LoadReport {
                outcomes,
                undeliverable,
                dropped: 0,
                stats: RunStats {
                    completed: true,
                    memory: congest::MemoryMeter::new(network.len()),
                    ..RunStats::default()
                },
            },
            traces: vec![None; pairs.len()],
            edge_load: EdgeLoadMap::new(),
            vertex_load: VertexLoadMap::new(),
        };
    };

    let protos: Vec<LoadedVertex> = network
        .graph()
        .vertices()
        .map(|v| LoadedVertex {
            table: scheme.tables[v.index()].clone(),
            queues: std::collections::HashMap::new(),
            delivered: Vec::new(),
            inject: std::mem::take(&mut inject[v.index()]),
            dropped: Vec::new(),
            traces_out: Vec::new(),
        })
        .collect();
    let engine = Engine::with_config(EngineConfig {
        edge_words_per_round,
        threads,
        profile,
        ..EngineConfig::default()
    });
    let (protos, stats) = engine.run(network, protos);

    let mut dropped = 0;
    let mut traces: Vec<Option<PacketTrace>> = vec![None; pairs.len()];
    let mut edge_load = EdgeLoadMap::new();
    let mut vertex_load = VertexLoadMap::new();
    for p in protos {
        dropped += p.dropped.len() as u32;
        for &(id, round, weight) in &p.delivered {
            outcomes[id as usize] = DeliveryStatus::Delivered { round, weight };
        }
        for trace in p.traces_out {
            edge_load.record_trace(&trace);
            vertex_load.record_trace(&trace);
            let id = find_trace_id(&trace, pairs, &traces);
            traces[id] = Some(trace);
        }
    }
    LoadFlight {
        report: LoadReport {
            outcomes,
            undeliverable,
            dropped,
            stats,
        },
        traces,
        edge_load,
        vertex_load,
    }
}

/// Match a completed trace back to its submission index. Traces do not
/// carry the batch id (it lives in the packet header, which is consumed at
/// delivery), so match on `(src, dst)` among still-unassigned slots —
/// duplicates of the same pair take identical journeys, making any
/// assignment among them equivalent.
fn find_trace_id(
    trace: &PacketTrace,
    pairs: &[(VertexId, VertexId)],
    assigned: &[Option<PacketTrace>],
) -> usize {
    pairs
        .iter()
        .enumerate()
        .position(|(i, &(s, d))| s.0 == trace.src && d.0 == trace.dst && assigned[i].is_none())
        .expect("every trace stems from a submitted pair")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router;
    use crate::scheme::{build, BuildParams};
    use graphs::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup(n: usize, seed: u64) -> (Network, RoutingScheme) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = generators::erdos_renyi_connected(n, 3.0 / n as f64, 1..=9, &mut rng);
        let built = build(&g, &BuildParams::new(2), &mut rng);
        (Network::new(g), built.scheme)
    }

    #[test]
    fn packet_matches_central_router() {
        let (net, scheme) = setup(60, 601);
        for (s, t) in [(0u32, 59u32), (5, 30), (42, 7)] {
            let report = send(&net, &scheme, VertexId(s), VertexId(t));
            let (rounds, weight) = report.outcome.delivery().expect("delivered");
            let central = router::route(net.graph(), &scheme, VertexId(s), VertexId(t)).unwrap();
            assert_eq!(weight, central.weight);
            assert_eq!(rounds as usize, central.hops());
        }
    }

    #[test]
    fn plan_matches_the_send_commitment() {
        let (net, scheme) = setup(60, 615);
        for (s, t) in [(0u32, 59u32), (5, 30), (42, 7)] {
            let p = plan(&scheme, VertexId(s), VertexId(t)).expect("connected pair");
            let flight = send_traced(&net, &scheme, VertexId(s), VertexId(t));
            let trace = flight.trace.expect("delivered");
            // The plan commits to exactly the tree the send variants choose.
            assert_eq!(p.tree_root.0, trace.tree_root);
            let (_, weight) = flight.report.outcome.delivery().expect("delivered");
            // The estimate prices the committed route: an upper bound on the
            // routed weight.
            assert!(p.est_cost >= weight, "est {} < routed {weight}", p.est_cost);
            assert_eq!(p.loaded_words(), 3 + p.label.words());
        }
    }

    #[test]
    fn plan_is_none_for_disconnected_pairs() {
        let mut b = graphs::GraphBuilder::new(4);
        b.add_edge(VertexId(0), VertexId(1), 1);
        b.add_edge(VertexId(2), VertexId(3), 1);
        let g = b.build();
        let mut rng = ChaCha8Rng::seed_from_u64(616);
        let built = build(&g, &BuildParams::new(2), &mut rng);
        assert!(plan(&built.scheme, VertexId(0), VertexId(3)).is_none());
    }

    #[test]
    fn packet_to_self_delivers_in_zero_rounds() {
        let (net, scheme) = setup(30, 602);
        let report = send(&net, &scheme, VertexId(3), VertexId(3));
        // A legitimate zero-hop self-delivery is Delivered{0, 0} — now
        // distinguishable from an undeliverable packet's NoCommonTree.
        assert_eq!(
            report.outcome,
            PacketOutcome::Delivered {
                rounds: 0,
                weight: 0
            }
        );
    }

    #[test]
    fn packet_size_is_logarithmic() {
        let (net, scheme) = setup(100, 603);
        let report = send(&net, &scheme, VertexId(0), VertexId(99));
        assert!(report.delivered());
        // Header (2) + label (1 + 2·light); light ≤ log2(n).
        assert!(
            report.packet_words <= 2 + 1 + 2 * 7,
            "{}",
            report.packet_words
        );
        assert_eq!(report.stats.congestion_violations, 0);
    }

    #[test]
    fn undeliverable_packet_reports_no_common_tree() {
        let mut b = graphs::GraphBuilder::new(4);
        b.add_edge(VertexId(0), VertexId(1), 1);
        b.add_edge(VertexId(2), VertexId(3), 1);
        let g = b.build();
        let mut rng = ChaCha8Rng::seed_from_u64(604);
        let built = build(&g, &BuildParams::new(2), &mut rng);
        let net = Network::new(g);
        let report = send(&net, &built.scheme, VertexId(0), VertexId(3));
        assert_eq!(report.outcome, PacketOutcome::NoCommonTree);
        assert_eq!(report.packet_words, 0);
        let flight = send_traced(&net, &built.scheme, VertexId(0), VertexId(3));
        assert!(flight.trace.is_none(), "nothing was injected");
    }

    #[test]
    fn traced_send_matches_untraced_send() {
        let (net, scheme) = setup(60, 609);
        for (s, t) in [(0u32, 59u32), (7, 23), (14, 14)] {
            let plain = send(&net, &scheme, VertexId(s), VertexId(t));
            let flight = send_traced(&net, &scheme, VertexId(s), VertexId(t));
            assert_eq!(plain.outcome, flight.report.outcome);
            assert_eq!(plain.packet_words, flight.report.packet_words);
            assert_eq!(plain.stats.rounds, flight.report.stats.rounds);
            assert_eq!(plain.stats.messages, flight.report.stats.messages);
            assert_eq!(plain.stats.words, flight.report.stats.words);
            assert_eq!(
                plain.stats.memory.max_peak(),
                flight.report.stats.memory.max_peak()
            );
        }
    }

    #[test]
    fn trace_reconstructs_the_journey() {
        let (net, scheme) = setup(60, 610);
        let flight = send_traced(&net, &scheme, VertexId(2), VertexId(55));
        let (rounds, weight) = flight.report.outcome.delivery().expect("delivered");
        let trace = flight.trace.expect("traced");
        assert_eq!(trace.src, 2);
        assert_eq!(trace.dst, 55);
        assert_eq!(trace.hop_count() as u64, rounds);
        assert_eq!(trace.total_weight(), weight);
        assert_eq!(trace.delivered_round, Some(rounds));
        // Stateless single-packet forwarding never queues.
        assert_eq!(trace.queueing_delay(), 0);
        // The decomposition partitions the routed weight.
        let d = trace.decomposition();
        assert_eq!(d.ascent_weight + d.descent_weight, weight);
        assert_eq!(d.ascent_hops + d.descent_hops, trace.hop_count());
        // Ascent happens before descent: once a packet turns downward in
        // the committed tree it never climbs again.
        let first_descent = trace
            .hops
            .iter()
            .position(|h| !h.kind.is_ascent())
            .unwrap_or(trace.hops.len());
        assert!(
            trace.hops[first_descent..]
                .iter()
                .all(|h| !h.kind.is_ascent()),
            "ascent after descent in {:?}",
            trace.hops
        );
    }

    #[test]
    fn batch_delivers_everything_with_queueing_delay() {
        let (net, scheme) = setup(80, 606);
        let g = net.graph();
        let pairs: Vec<(VertexId, VertexId)> = (0..40u32)
            .map(|i| (VertexId(i % 80), VertexId((i * 37 + 11) % 80)))
            .filter(|(a, b)| a != b)
            .collect();
        let report = send_many(&net, &scheme, &pairs);
        assert_eq!(report.dropped, 0);
        assert_eq!(report.undeliverable, 0);
        for (id, &(s, t)) in pairs.iter().enumerate() {
            let (round, weight) = report.delivery(id).expect("delivered");
            let central = router::route(g, &scheme, s, t).unwrap();
            // Same path weight as the uncongested router; delivery no
            // earlier than the hop count (queueing only adds delay).
            assert_eq!(weight, central.weight, "packet {id}");
            assert!(round as usize >= central.hops(), "packet {id}");
        }
        assert_eq!(report.stats.congestion_violations, 0);
    }

    #[test]
    fn traced_batch_matches_untraced_and_decomposes_delay() {
        let (net, scheme) = setup(80, 611);
        let pairs: Vec<(VertexId, VertexId)> = (0..60u32)
            .map(|i| (VertexId(i % 80), VertexId((i * 13 + 7) % 80)))
            .filter(|(a, b)| a != b)
            .collect();
        let plain = send_many(&net, &scheme, &pairs);
        let flight = send_many_traced(&net, &scheme, &pairs);
        assert_eq!(plain.outcomes, flight.report.outcomes);
        assert_eq!(plain.stats.rounds, flight.report.stats.rounds);
        assert_eq!(plain.stats.messages, flight.report.stats.messages);
        assert_eq!(plain.stats.words, flight.report.stats.words);
        assert_eq!(
            plain.stats.memory.max_peak(),
            flight.report.stats.memory.max_peak()
        );
        // Delivery time decomposes into hops + queueing, per packet.
        for (id, trace) in flight.traces.iter().enumerate() {
            let trace = trace.as_ref().expect("all injected");
            let (round, weight) = flight.report.delivery(id).expect("delivered");
            assert_eq!(
                round,
                trace.hop_count() as u64 + trace.queueing_delay(),
                "packet {id}: delivery round must be hops + queueing"
            );
            assert_eq!(trace.total_weight(), weight, "packet {id}");
        }
        // The edge heatmap's words are exactly the engine's delivered words.
        assert_eq!(flight.edge_load.total_words(), flight.report.stats.words);
        assert_eq!(flight.vertex_load.total_words(), flight.report.stats.words);
        let hops: u64 = flight
            .traces
            .iter()
            .flatten()
            .map(|t| t.hop_count() as u64)
            .sum();
        assert_eq!(flight.edge_load.total_packets(), hops);
        assert_eq!(flight.report.stats.messages, hops);
    }

    #[test]
    fn hotspot_traffic_queues_but_drains() {
        // Everyone sends to one sink: heavy congestion near the sink, yet
        // every packet arrives.
        let (net, scheme) = setup(50, 607);
        let sink = VertexId(0);
        let pairs: Vec<(VertexId, VertexId)> = (1..50u32).map(|i| (VertexId(i), sink)).collect();
        let report = send_many(&net, &scheme, &pairs);
        assert_eq!(report.dropped, 0);
        assert_eq!(report.delivered_count(), 49);
        // The last arrival is later than the distance-only bound would be —
        // serialization at the sink's incident edges forces it.
        let last = report.deliveries().flatten().map(|(r, _)| r).max().unwrap();
        let sink_degree = net.graph().degree(sink) as u64;
        assert!(
            last >= 49 / sink_degree.max(1),
            "last arrival {last} beats the sink-capacity bound"
        );
    }

    #[test]
    fn hotspot_heatmap_concentrates_at_the_sink() {
        let (net, scheme) = setup(50, 612);
        let sink = VertexId(0);
        let pairs: Vec<(VertexId, VertexId)> = (1..50u32).map(|i| (VertexId(i), sink)).collect();
        let flight = send_many_traced(&net, &scheme, &pairs);
        // Queueing must have happened somewhere.
        let queued: u64 = flight
            .traces
            .iter()
            .flatten()
            .map(PacketTrace::queueing_delay)
            .sum();
        assert!(queued > 0, "49-to-1 traffic cannot avoid queueing");
        // The sink's incident edges carry every packet's last hop: the
        // hottest edge should touch the sink's neighborhood, and p99 ≥ p50.
        let stats = flight.edge_load.stats();
        assert!(stats.max >= stats.p99);
        assert!(stats.p99 >= stats.p50);
        assert_eq!(flight.edge_load.total_words(), flight.report.stats.words);
    }

    #[test]
    fn empty_batch_skips_the_engine() {
        let (net, scheme) = setup(20, 608);
        let report = send_many(&net, &scheme, &[]);
        assert!(report.outcomes.is_empty());
        assert_eq!(report.undeliverable, 0);
        assert_eq!(report.dropped, 0);
        assert_eq!(report.stats.rounds, 0);
        assert_eq!(report.stats.messages, 0);
        assert!(report.stats.completed);
    }

    #[test]
    fn all_undeliverable_batch_reports_distinctly() {
        // Two components: cross-component pairs are undeliverable at the
        // source — reported as such, not as engine drops.
        let mut b = graphs::GraphBuilder::new(6);
        b.add_edge(VertexId(0), VertexId(1), 1);
        b.add_edge(VertexId(1), VertexId(2), 1);
        b.add_edge(VertexId(3), VertexId(4), 1);
        b.add_edge(VertexId(4), VertexId(5), 1);
        let g = b.build();
        let mut rng = ChaCha8Rng::seed_from_u64(613);
        let built = build(&g, &BuildParams::new(2), &mut rng);
        let net = Network::new(g);
        let pairs = [(VertexId(0), VertexId(4)), (VertexId(3), VertexId(2))];
        let report = send_many(&net, &built.scheme, &pairs);
        assert_eq!(report.undeliverable, 2);
        assert_eq!(report.dropped, 0);
        assert!(report
            .outcomes
            .iter()
            .all(|o| *o == DeliveryStatus::Undeliverable));
        // No packets → no engine run → no invented congestion budget.
        assert_eq!(report.stats.rounds, 0);
        assert_eq!(report.stats.messages, 0);
        let flight = send_many_traced(&net, &built.scheme, &pairs);
        assert!(flight.traces.iter().all(Option::is_none));
        assert!(flight.edge_load.is_empty());
    }

    #[test]
    fn mixed_batch_keeps_undeliverable_and_delivered_apart() {
        let mut b = graphs::GraphBuilder::new(5);
        b.add_edge(VertexId(0), VertexId(1), 2);
        b.add_edge(VertexId(1), VertexId(2), 3);
        // Vertices 3, 4 form a separate component.
        b.add_edge(VertexId(3), VertexId(4), 1);
        let g = b.build();
        let mut rng = ChaCha8Rng::seed_from_u64(614);
        let built = build(&g, &BuildParams::new(2), &mut rng);
        let net = Network::new(g);
        let pairs = [
            (VertexId(0), VertexId(2)), // routable
            (VertexId(0), VertexId(4)), // cross-component
            (VertexId(2), VertexId(2)), // self: zero-hop delivery
        ];
        let report = send_many(&net, &built.scheme, &pairs);
        assert!(report.delivery(0).is_some());
        assert_eq!(report.outcomes[1], DeliveryStatus::Undeliverable);
        assert_eq!(
            report.outcomes[2],
            DeliveryStatus::Delivered {
                round: 0,
                weight: 0
            }
        );
        assert_eq!(report.undeliverable, 1);
        assert_eq!(report.dropped, 0);
    }

    #[test]
    fn vertex_memory_equals_its_table() {
        let (net, scheme) = setup(50, 605);
        let report = send(&net, &scheme, VertexId(1), VertexId(40));
        let max_table = scheme
            .tables
            .iter()
            .map(congest::WordSized::words)
            .max()
            .unwrap();
        assert_eq!(report.stats.memory.max_peak(), max_table);
    }
}
