//! The routing phase as a *real* CONGEST protocol.
//!
//! [`crate::router`] walks the forwarding rule centrally (fast, used for
//! stretch measurement). This module runs the same rule as a genuine
//! message-passing protocol on the [`congest::Engine`]: each vertex's state
//! is exactly its routing table, and the packet on the wire carries exactly
//! `Header(M) = (tree root, accumulated weight)` plus the target's tree
//! label — `O(log n)` words, checked against the engine's congestion meter.
//! Delivery takes one round per hop, by construction.
//!
//! Only the paper's tree-scheme family is supported (the prior baseline's
//! packets would carry its `O(log² n)` labels).

use congest::engine::{Ctx, Engine, EngineConfig, VertexProtocol};
use congest::{Network, RunStats, WordSized};
use graphs::{VertexId, Weight};
use tree_routing::types::{route_step, RouteAction, TreeLabel};

use crate::scheme::{RoutingScheme, RoutingTable, TreeLabelKind, TreeTableKind};

/// The packet on the wire: header + target tree label.
#[derive(Clone, Debug)]
pub struct Packet {
    /// Header: the tree the sender committed to.
    pub tree_root: VertexId,
    /// Header: weight accumulated so far (diagnostic, one word).
    pub weight: Weight,
    /// The target's label in that tree.
    pub label: TreeLabel,
}

impl WordSized for Packet {
    fn words(&self) -> usize {
        2 + self.label.words()
    }
}

/// Per-vertex protocol state: the vertex's own routing table, nothing else.
#[derive(Clone, Debug)]
struct PacketVertex {
    table: RoutingTable,
    /// Set when this vertex delivered the packet (round number).
    delivered: Option<(u64, Weight)>,
    /// The packet to inject at init (source only).
    inject: Option<Packet>,
    failed: bool,
}

impl PacketVertex {
    fn handle(&mut self, ctx: &mut Ctx<'_, Packet>, mut packet: Packet) {
        let me = ctx.me();
        let Some(entry) = self.table.entry(packet.tree_root) else {
            self.failed = true;
            return;
        };
        let TreeTableKind::Ours(table) = &entry.table else {
            self.failed = true;
            return;
        };
        match route_step(me, table, &packet.label) {
            Some(RouteAction::Deliver) => {
                self.delivered = Some((ctx.round(), packet.weight));
            }
            Some(RouteAction::Forward(next)) => {
                let Some(arc) = ctx.neighbors().iter().find(|a| a.to == next) else {
                    self.failed = true;
                    return;
                };
                packet.weight += arc.weight;
                ctx.send(next, packet);
            }
            None => self.failed = true,
        }
    }
}

impl VertexProtocol for PacketVertex {
    type Msg = Packet;

    fn init(&mut self, ctx: &mut Ctx<'_, Packet>) {
        if let Some(p) = self.inject.take() {
            self.handle(ctx, p);
        }
    }

    fn round(&mut self, ctx: &mut Ctx<'_, Packet>, inbox: &[(VertexId, Packet)]) {
        for (_, p) in inbox.iter().cloned() {
            self.handle(ctx, p);
        }
    }

    fn is_done(&self) -> bool {
        true // stateless forwarding; the engine drains in-flight packets
    }

    fn memory_words(&self) -> usize {
        self.table.words()
    }
}

/// Result of a packet simulation.
#[derive(Clone, Debug)]
pub struct PacketReport {
    /// Whether the packet arrived.
    pub delivered: bool,
    /// Round of delivery = number of hops.
    pub rounds: u64,
    /// Weight the header accumulated (equals the routed path weight).
    pub weight: Weight,
    /// Size of the packet in words (header + label).
    pub packet_words: usize,
    /// Engine statistics (congestion, messages, memory).
    pub stats: RunStats,
}

/// Send one packet from `src` to `dst` through the engine, using the
/// source-optimal tree choice.
///
/// # Panics
///
/// Panics if the scheme was built in prior-baseline mode.
pub fn send(
    network: &Network,
    scheme: &RoutingScheme,
    src: VertexId,
    dst: VertexId,
) -> PacketReport {
    // Source decision, as in the central router.
    let label = &scheme.labels[dst.index()];
    let src_table = &scheme.tables[src.index()];
    let mut chosen: Option<(&crate::scheme::LabelEntry, Weight)> = None;
    for e in &label.entries {
        if let Some(te) = src_table.entry(e.pivot) {
            let cost = te.dist.saturating_add(e.dist);
            if chosen.is_none_or(|(_, c)| cost < c) {
                chosen = Some((e, cost));
            }
        }
    }
    let Some((entry, _)) = chosen else {
        return PacketReport {
            delivered: false,
            rounds: 0,
            weight: 0,
            packet_words: 0,
            stats: RunStats::default(),
        };
    };
    let TreeLabelKind::Ours(tree_label) = &entry.tree_label else {
        panic!("packet simulation supports the paper's tree scheme only");
    };
    let packet = Packet {
        tree_root: entry.pivot,
        weight: 0,
        label: tree_label.clone(),
    };
    let packet_words = packet.words();

    let protos: Vec<PacketVertex> = network
        .graph()
        .vertices()
        .map(|v| PacketVertex {
            table: scheme.tables[v.index()].clone(),
            delivered: None,
            inject: (v == src).then(|| packet.clone()),
            failed: false,
        })
        .collect();
    let engine = Engine::with_config(EngineConfig {
        // The packet is the message; its size is the legal per-edge budget.
        edge_words_per_round: packet_words,
        ..EngineConfig::default()
    });
    let (protos, stats) = engine.run(network, protos);
    let delivered = protos.iter().find_map(|p| p.delivered);
    PacketReport {
        delivered: delivered.is_some(),
        rounds: delivered.map_or(0, |(r, _)| r),
        weight: delivered.map_or(0, |(_, w)| w),
        packet_words,
        stats,
    }
}

/// A packet under load, with an id so deliveries can be matched up.
#[derive(Clone, Debug)]
pub struct LoadedPacket {
    /// Index into the submitted batch.
    pub id: u32,
    /// The committed tree.
    pub tree_root: VertexId,
    /// Accumulated weight.
    pub weight: Weight,
    /// Target tree label.
    pub label: TreeLabel,
}

impl WordSized for LoadedPacket {
    fn words(&self) -> usize {
        3 + self.label.words()
    }
}

/// Per-vertex protocol for batched traffic: FIFO queues per outgoing edge,
/// one packet per edge per round — real store-and-forward congestion.
#[derive(Clone, Debug)]
struct LoadedVertex {
    table: RoutingTable,
    queues: std::collections::HashMap<VertexId, std::collections::VecDeque<LoadedPacket>>,
    delivered: Vec<(u32, u64, Weight)>,
    inject: Vec<LoadedPacket>,
    dropped: u32,
}

impl LoadedVertex {
    fn classify(&mut self, ctx: &Ctx<'_, LoadedPacket>, mut packet: LoadedPacket, round: u64) {
        let me = ctx.me();
        let step = self
            .table
            .entry(packet.tree_root)
            .and_then(|entry| match &entry.table {
                TreeTableKind::Ours(t) => route_step(me, t, &packet.label),
                TreeTableKind::Prior(_) => None,
            });
        match step {
            Some(RouteAction::Deliver) => self.delivered.push((packet.id, round, packet.weight)),
            Some(RouteAction::Forward(next)) => {
                match ctx.neighbors().iter().find(|a| a.to == next) {
                    Some(arc) => {
                        packet.weight += arc.weight;
                        self.queues.entry(next).or_default().push_back(packet);
                    }
                    None => self.dropped += 1,
                }
            }
            None => self.dropped += 1,
        }
    }

    fn flush(&mut self, ctx: &mut Ctx<'_, LoadedPacket>) {
        let nexts: Vec<VertexId> = self.queues.keys().copied().collect();
        for next in nexts {
            if let Some(q) = self.queues.get_mut(&next) {
                if let Some(p) = q.pop_front() {
                    ctx.send(next, p);
                }
                if q.is_empty() {
                    self.queues.remove(&next);
                }
            }
        }
    }
}

impl VertexProtocol for LoadedVertex {
    type Msg = LoadedPacket;

    fn init(&mut self, ctx: &mut Ctx<'_, LoadedPacket>) {
        let injected = std::mem::take(&mut self.inject);
        for p in injected {
            self.classify(ctx, p, 0);
        }
        self.flush(ctx);
    }

    fn round(&mut self, ctx: &mut Ctx<'_, LoadedPacket>, inbox: &[(VertexId, LoadedPacket)]) {
        for (_, p) in inbox.iter().cloned() {
            self.classify(ctx, p, ctx.round());
        }
        self.flush(ctx);
    }

    fn is_done(&self) -> bool {
        self.queues.is_empty()
    }

    fn memory_words(&self) -> usize {
        self.table.words()
            + self
                .queues
                .values()
                .flat_map(|q| q.iter().map(WordSized::words))
                .sum::<usize>()
    }
}

/// Result of a batched simulation.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Per packet (by submission index): delivery round and routed weight,
    /// `None` if dropped or undeliverable.
    pub deliveries: Vec<Option<(u64, Weight)>>,
    /// Packets dropped by a stuck rule or missing entry.
    pub dropped: u32,
    /// Engine statistics (the memory meter now includes queue occupancy).
    pub stats: RunStats,
}

/// Inject one packet per `(src, dst)` pair simultaneously and run the
/// network until all traffic drains. Store-and-forward with one packet per
/// edge per round, so the delivery time of a packet is its hop count plus
/// the queueing delay its path suffered — the congestion behavior of
/// compact routing under load.
pub fn send_many(
    network: &Network,
    scheme: &RoutingScheme,
    pairs: &[(VertexId, VertexId)],
) -> LoadReport {
    // Source decisions, as in `send`.
    let mut inject: Vec<Vec<LoadedPacket>> = vec![Vec::new(); network.len()];
    let mut undeliverable = vec![false; pairs.len()];
    for (id, &(src, dst)) in pairs.iter().enumerate() {
        let label = &scheme.labels[dst.index()];
        let src_table = &scheme.tables[src.index()];
        let mut chosen: Option<(&crate::scheme::LabelEntry, Weight)> = None;
        for e in &label.entries {
            if let Some(te) = src_table.entry(e.pivot) {
                let cost = te.dist.saturating_add(e.dist);
                if chosen.is_none_or(|(_, c)| cost < c) {
                    chosen = Some((e, cost));
                }
            }
        }
        match chosen {
            Some((entry, _)) => {
                let TreeLabelKind::Ours(tree_label) = &entry.tree_label else {
                    panic!("packet simulation supports the paper's tree scheme only");
                };
                inject[src.index()].push(LoadedPacket {
                    id: id as u32,
                    tree_root: entry.pivot,
                    weight: 0,
                    label: tree_label.clone(),
                });
            }
            None => undeliverable[id] = true,
        }
    }
    let max_words = inject
        .iter()
        .flatten()
        .map(WordSized::words)
        .max()
        .unwrap_or(4);
    let protos: Vec<LoadedVertex> = network
        .graph()
        .vertices()
        .map(|v| LoadedVertex {
            table: scheme.tables[v.index()].clone(),
            queues: std::collections::HashMap::new(),
            delivered: Vec::new(),
            inject: std::mem::take(&mut inject[v.index()]),
            dropped: 0,
        })
        .collect();
    let engine = Engine::with_config(EngineConfig {
        edge_words_per_round: max_words,
        ..EngineConfig::default()
    });
    let (protos, stats) = engine.run(network, protos);
    let mut deliveries: Vec<Option<(u64, Weight)>> = vec![None; pairs.len()];
    let mut dropped = 0;
    for p in &protos {
        dropped += p.dropped;
        for &(id, round, weight) in &p.delivered {
            deliveries[id as usize] = Some((round, weight));
        }
    }
    LoadReport {
        deliveries,
        dropped,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router;
    use crate::scheme::{build, BuildParams};
    use graphs::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup(n: usize, seed: u64) -> (Network, RoutingScheme) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = generators::erdos_renyi_connected(n, 3.0 / n as f64, 1..=9, &mut rng);
        let built = build(&g, &BuildParams::new(2), &mut rng);
        (Network::new(g), built.scheme)
    }

    #[test]
    fn packet_matches_central_router() {
        let (net, scheme) = setup(60, 601);
        for (s, t) in [(0u32, 59u32), (5, 30), (42, 7)] {
            let report = send(&net, &scheme, VertexId(s), VertexId(t));
            assert!(report.delivered);
            let central = router::route(net.graph(), &scheme, VertexId(s), VertexId(t)).unwrap();
            assert_eq!(report.weight, central.weight);
            assert_eq!(report.rounds as usize, central.hops());
        }
    }

    #[test]
    fn packet_to_self_delivers_in_zero_rounds() {
        let (net, scheme) = setup(30, 602);
        let report = send(&net, &scheme, VertexId(3), VertexId(3));
        assert!(report.delivered);
        assert_eq!(report.rounds, 0);
        assert_eq!(report.weight, 0);
    }

    #[test]
    fn packet_size_is_logarithmic() {
        let (net, scheme) = setup(100, 603);
        let report = send(&net, &scheme, VertexId(0), VertexId(99));
        assert!(report.delivered);
        // Header (2) + label (1 + 2·light); light ≤ log2(n).
        assert!(
            report.packet_words <= 2 + 1 + 2 * 7,
            "{}",
            report.packet_words
        );
        assert_eq!(report.stats.congestion_violations, 0);
    }

    #[test]
    fn undeliverable_packet_reports_cleanly() {
        let mut b = graphs::GraphBuilder::new(4);
        b.add_edge(VertexId(0), VertexId(1), 1);
        b.add_edge(VertexId(2), VertexId(3), 1);
        let g = b.build();
        let mut rng = ChaCha8Rng::seed_from_u64(604);
        let built = build(&g, &BuildParams::new(2), &mut rng);
        let net = Network::new(g);
        let report = send(&net, &built.scheme, VertexId(0), VertexId(3));
        assert!(!report.delivered);
    }

    #[test]
    fn batch_delivers_everything_with_queueing_delay() {
        let (net, scheme) = setup(80, 606);
        let g = net.graph();
        let pairs: Vec<(VertexId, VertexId)> = (0..40u32)
            .map(|i| (VertexId(i % 80), VertexId((i * 37 + 11) % 80)))
            .filter(|(a, b)| a != b)
            .collect();
        let report = send_many(&net, &scheme, &pairs);
        assert_eq!(report.dropped, 0);
        for (id, &(s, t)) in pairs.iter().enumerate() {
            let (round, weight) = report.deliveries[id].expect("delivered");
            let central = router::route(g, &scheme, s, t).unwrap();
            // Same path weight as the uncongested router; delivery no
            // earlier than the hop count (queueing only adds delay).
            assert_eq!(weight, central.weight, "packet {id}");
            assert!(round as usize >= central.hops(), "packet {id}");
        }
        assert_eq!(report.stats.congestion_violations, 0);
    }

    #[test]
    fn hotspot_traffic_queues_but_drains() {
        // Everyone sends to one sink: heavy congestion near the sink, yet
        // every packet arrives.
        let (net, scheme) = setup(50, 607);
        let sink = VertexId(0);
        let pairs: Vec<(VertexId, VertexId)> = (1..50u32).map(|i| (VertexId(i), sink)).collect();
        let report = send_many(&net, &scheme, &pairs);
        assert_eq!(report.dropped, 0);
        let delivered = report.deliveries.iter().flatten().count();
        assert_eq!(delivered, 49);
        // The last arrival is later than the distance-only bound would be —
        // serialization at the sink's incident edges forces it.
        let last = report
            .deliveries
            .iter()
            .flatten()
            .map(|&(r, _)| r)
            .max()
            .unwrap();
        let sink_degree = net.graph().degree(sink) as u64;
        assert!(
            last >= 49 / sink_degree.max(1),
            "last arrival {last} beats the sink-capacity bound"
        );
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let (net, scheme) = setup(20, 608);
        let report = send_many(&net, &scheme, &[]);
        assert!(report.deliveries.is_empty());
        assert_eq!(report.stats.rounds, 0);
    }

    #[test]
    fn vertex_memory_equals_its_table() {
        let (net, scheme) = setup(50, 605);
        let report = send(&net, &scheme, VertexId(1), VertexId(40));
        let max_table = scheme
            .tables
            .iter()
            .map(congest::WordSized::words)
            .max()
            .unwrap();
        assert_eq!(report.stats.memory.max_peak(), max_table);
    }
}
