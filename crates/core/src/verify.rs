//! Self-checking a routing scheme against its graph.
//!
//! Adopters loading a persisted scheme (or receiving one from an untrusted
//! preprocessing service) can validate its structural invariants before
//! trusting it to route. The checks are those the test suite relies on,
//! packaged behind one call.

use std::collections::HashMap;

use graphs::{Graph, VertexId};

use crate::scheme::{RoutingScheme, TreeTableKind};

/// A violated invariant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// The scheme's vertex count differs from the graph's.
    SizeMismatch {
        /// Vertices in the scheme.
        scheme: usize,
        /// Vertices in the graph.
        graph: usize,
    },
    /// A table's entries are not sorted by root (breaks lookup).
    UnsortedTable(VertexId),
    /// A table entry's parent pointer is not a graph neighbor.
    BadParent {
        /// The vertex holding the entry.
        vertex: VertexId,
        /// The offending tree root.
        root: VertexId,
    },
    /// A label entry references a tree the target has no table row for.
    DanglingLabel {
        /// The labeled vertex.
        vertex: VertexId,
        /// The referenced pivot/root.
        pivot: VertexId,
    },
    /// Two vertices in one tree share a DFS entry time.
    DuplicateEnter {
        /// The tree root.
        root: VertexId,
        /// The clashing entry time.
        enter: u64,
    },
    /// A vertex is missing its own (level-`ℓ(v)`) cluster entry.
    MissingOwnCluster(VertexId),
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::SizeMismatch { scheme, graph } => {
                write!(f, "scheme covers {scheme} vertices, graph has {graph}")
            }
            Violation::UnsortedTable(v) => write!(f, "table of {v} is not sorted by root"),
            Violation::BadParent { vertex, root } => {
                write!(f, "{vertex}'s parent in tree {root} is not a neighbor")
            }
            Violation::DanglingLabel { vertex, pivot } => {
                write!(f, "label of {vertex} references tree {pivot} it is not in")
            }
            Violation::DuplicateEnter { root, enter } => {
                write!(f, "tree {root} has two vertices with enter time {enter}")
            }
            Violation::MissingOwnCluster(v) => write!(f, "{v} lacks its own cluster entry"),
        }
    }
}

/// Check every structural invariant; returns all violations found (empty =
/// the scheme is well formed).
pub fn verify(g: &Graph, scheme: &RoutingScheme) -> Vec<Violation> {
    let mut out = Vec::new();
    let n = g.num_vertices();
    if scheme.tables.len() != n || scheme.labels.len() != n {
        out.push(Violation::SizeMismatch {
            scheme: scheme.tables.len(),
            graph: n,
        });
        return out;
    }
    // Per-tree DFS enter times for duplicate detection.
    let mut enters: HashMap<VertexId, HashMap<u64, VertexId>> = HashMap::new();
    for v in g.vertices() {
        let table = &scheme.tables[v.index()];
        for w in table.entries.windows(2) {
            if w[0].root >= w[1].root {
                out.push(Violation::UnsortedTable(v));
                break;
            }
        }
        let mut has_self = false;
        for e in &table.entries {
            if e.root == v {
                has_self = true;
            }
            let (parent, enter) = match &e.table {
                TreeTableKind::Ours(t) => (t.parent, t.enter),
                TreeTableKind::Prior(t) => (t.local.parent, t.local.enter),
            };
            if let Some(p) = parent {
                if g.edge_weight(v, p).is_none() {
                    out.push(Violation::BadParent {
                        vertex: v,
                        root: e.root,
                    });
                }
            }
            if let Some(prev) = enters.entry(e.root).or_default().insert(enter, v) {
                if prev != v {
                    out.push(Violation::DuplicateEnter {
                        root: e.root,
                        enter,
                    });
                }
            }
        }
        if !has_self {
            out.push(Violation::MissingOwnCluster(v));
        }
        for e in &scheme.labels[v.index()].entries {
            if scheme.tables[v.index()].entry(e.pivot).is_none() {
                out.push(Violation::DanglingLabel {
                    vertex: v,
                    pivot: e.pivot,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{build, BuildParams, Mode};
    use graphs::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn built(n: usize, seed: u64) -> (Graph, RoutingScheme) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = generators::erdos_renyi_connected(n, 3.0 / n as f64, 1..=9, &mut rng);
        let b = build(&g, &BuildParams::new(2), &mut rng);
        (g, b.scheme)
    }

    #[test]
    fn freshly_built_schemes_are_clean() {
        let (g, s) = built(100, 1201);
        assert!(verify(&g, &s).is_empty());
    }

    #[test]
    fn prior_mode_schemes_are_clean_too() {
        let mut rng = ChaCha8Rng::seed_from_u64(1202);
        let g = generators::erdos_renyi_connected(60, 0.08, 1..=9, &mut rng);
        let b = build(
            &g,
            &BuildParams::new(2).with_mode(Mode::DistributedPrior),
            &mut rng,
        );
        // Prior-mode local DFS times are per-local-tree, so the duplicate
        // check applies per tree only for our kind; verify still runs.
        let violations = verify(&g, &b.scheme);
        // The two-level baseline legitimately reuses local enter times, so
        // filter that class out and require the rest to be clean.
        let rest: Vec<_> = violations
            .iter()
            .filter(|v| !matches!(v, Violation::DuplicateEnter { .. }))
            .collect();
        assert!(rest.is_empty(), "{rest:?}");
    }

    #[test]
    fn detects_unsorted_tables() {
        let (g, mut s) = built(60, 1203);
        let v = VertexId(5);
        s.tables[v.index()].entries.reverse();
        if s.tables[v.index()].entries.len() >= 2 {
            assert!(verify(&g, &s)
                .iter()
                .any(|x| matches!(x, Violation::UnsortedTable(u) if *u == v)));
        }
    }

    #[test]
    fn detects_missing_own_cluster() {
        let (g, mut s) = built(60, 1204);
        let v = VertexId(9);
        s.tables[v.index()].entries.retain(|e| e.root != v);
        assert!(verify(&g, &s)
            .iter()
            .any(|x| matches!(x, Violation::MissingOwnCluster(u) if *u == v)));
    }

    #[test]
    fn detects_dangling_labels() {
        let (g, mut s) = built(60, 1205);
        let v = VertexId(11);
        // Point a label entry at a tree v is not in.
        if let Some(e) = s.labels[v.index()].entries.first_mut() {
            let foreign = (0..60u32)
                .map(VertexId)
                .find(|&w| s.tables[v.index()].entry(w).is_none())
                .unwrap();
            e.pivot = foreign;
        }
        assert!(verify(&g, &s)
            .iter()
            .any(|x| matches!(x, Violation::DanglingLabel { vertex, .. } if *vertex == v)));
    }

    #[test]
    fn detects_size_mismatch() {
        let (g, mut s) = built(60, 1206);
        s.tables.pop();
        assert!(matches!(
            verify(&g, &s).first(),
            Some(Violation::SizeMismatch { .. })
        ));
    }

    #[test]
    fn detects_non_neighbor_parents() {
        let (g, mut s) = built(60, 1207);
        // Corrupt a parent pointer to a (very likely) non-neighbor.
        'outer: for v in g.vertices() {
            let candidates: Vec<VertexId> = g
                .vertices()
                .filter(|&u| u != v && g.edge_weight(u, v).is_none())
                .collect();
            let Some(&far) = candidates.first() else {
                continue;
            };
            for e in &mut s.tables[v.index()].entries {
                if let TreeTableKind::Ours(t) = &mut e.table {
                    if t.parent.is_some() {
                        t.parent = Some(far);
                        assert!(verify(&g, &s).iter().any(
                            |x| matches!(x, Violation::BadParent { vertex, .. } if *vertex == v)
                        ));
                        break 'outer;
                    }
                }
            }
        }
    }
}
