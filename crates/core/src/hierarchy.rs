//! The Thorup–Zwick sampling hierarchy `V = A_0 ⊇ A_1 ⊇ … ⊇ A_k = ∅`.
//!
//! Each vertex of `A_{i-1}` survives into `A_i` independently with
//! probability `n^{-1/k}`; every vertex flips its own coins, so sampling
//! costs zero rounds and `O(k)` memory. The *level* of a vertex is the
//! largest `i` with `v ∈ A_i` — every vertex roots exactly one cluster, at
//! its level.

use graphs::VertexId;
use rand::Rng;

/// The sampled hierarchy.
#[derive(Clone, Debug)]
pub struct Hierarchy {
    /// `sets[i]` = `A_i`, for `i = 0..k` (`A_k` is conceptually empty and
    /// not stored).
    sets: Vec<Vec<VertexId>>,
    /// `level_of[v]` = largest `i` with `v ∈ A_i`.
    level_of: Vec<usize>,
    k: usize,
}

impl Hierarchy {
    /// Sample a `k`-level hierarchy over `n` vertices.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2` or `n == 0`.
    pub fn sample<R: Rng>(n: usize, k: usize, rng: &mut R) -> Self {
        assert!(k >= 2, "the scheme needs k >= 2");
        assert!(n > 0, "need at least one vertex");
        let p = (n as f64).powf(-1.0 / k as f64);
        let mut level_of = vec![0usize; n];
        let mut sets: Vec<Vec<VertexId>> = vec![(0..n as u32).map(VertexId).collect()];
        for i in 1..k {
            let prev = &sets[i - 1];
            let next: Vec<VertexId> = prev.iter().copied().filter(|_| rng.gen_bool(p)).collect();
            for &v in &next {
                level_of[v.index()] = i;
            }
            if next.is_empty() {
                break;
            }
            sets.push(next);
        }
        Hierarchy { sets, level_of, k }
    }

    /// The requested number of levels `k` (`A_k = ∅`).
    pub fn k(&self) -> usize {
        self.k
    }

    /// `A_i`, empty for `i` at or beyond the deepest sampled set.
    pub fn set(&self, i: usize) -> &[VertexId] {
        if i < self.sets.len() {
            &self.sets[i]
        } else {
            &[]
        }
    }

    /// Number of non-empty levels actually realized (≤ k).
    pub fn realized_levels(&self) -> usize {
        self.sets.len()
    }

    /// The largest `i` with `v ∈ A_i`.
    pub fn level_of(&self, v: VertexId) -> usize {
        self.level_of[v.index()]
    }

    /// Whether `v ∈ A_i`.
    pub fn in_level(&self, v: VertexId, i: usize) -> bool {
        self.level_of[v.index()] >= i
    }

    /// Vertices whose level is exactly `i` (they root level-`i` clusters).
    pub fn exactly(&self, i: usize) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.level_of.len() as u32)
            .map(VertexId)
            .filter(move |&v| self.level_of[v.index()] == i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn sets_are_nested_and_start_full() {
        let mut rng = ChaCha8Rng::seed_from_u64(201);
        let h = Hierarchy::sample(500, 3, &mut rng);
        assert_eq!(h.set(0).len(), 500);
        for i in 1..h.realized_levels() {
            let upper: std::collections::HashSet<_> = h.set(i).iter().collect();
            assert!(upper.len() <= h.set(i - 1).len());
            for v in h.set(i) {
                assert!(h.set(i - 1).contains(v));
            }
        }
        // A_k is empty.
        assert!(h.set(h.k()).is_empty());
    }

    #[test]
    fn level_sizes_track_sampling_rate() {
        let mut rng = ChaCha8Rng::seed_from_u64(202);
        let n = 4000;
        let h = Hierarchy::sample(n, 2, &mut rng);
        let expect = (n as f64).sqrt();
        let got = h.set(1).len() as f64;
        assert!(got > expect / 2.0 && got < expect * 2.0, "|A_1| = {got}");
    }

    #[test]
    fn level_of_matches_sets() {
        let mut rng = ChaCha8Rng::seed_from_u64(203);
        let h = Hierarchy::sample(300, 4, &mut rng);
        for i in 0..h.realized_levels() {
            for &v in h.set(i) {
                assert!(h.level_of(v) >= i);
                assert!(h.in_level(v, i));
            }
        }
        for v in 0..300u32 {
            let l = h.level_of(VertexId(v));
            assert!(h.set(l).contains(&VertexId(v)));
            assert!(!h.set(l + 1).contains(&VertexId(v)));
        }
    }

    #[test]
    fn exactly_partitions_vertices() {
        let mut rng = ChaCha8Rng::seed_from_u64(204);
        let h = Hierarchy::sample(200, 3, &mut rng);
        let total: usize = (0..h.k()).map(|i| h.exactly(i).count()).sum();
        assert_eq!(total, 200);
    }

    #[test]
    #[should_panic(expected = "k >= 2")]
    fn rejects_tiny_k() {
        let mut rng = ChaCha8Rng::seed_from_u64(205);
        Hierarchy::sample(10, 1, &mut rng);
    }
}
