//! Sparse per-tree storage.
//!
//! The scheme builds one cluster tree per vertex — thousands of trees whose
//! total membership is `Õ(n^{1+1/k})`. Dense per-tree arrays would need
//! `Θ(n · #trees)` space in the *simulator*, so trees and their routing
//! schemes are stored sparsely, keyed by member vertex; they convert to the
//! dense [`RootedTree`]/[`TreeScheme`] forms one at a time when a tree is
//! processed.

use std::collections::HashMap;

use graphs::{RootedTree, VertexId, Weight};
use tree_routing::types::{TreeLabel, TreeScheme, TreeTable};

/// A cluster tree of `G`: root, members, and per-member parent pointers.
#[derive(Clone, Debug)]
pub struct SparseTree {
    /// The cluster center (tree root).
    pub root: VertexId,
    /// The hierarchy level of the root (`root ∈ A_level \ A_{level+1}`).
    pub level: usize,
    /// Per member: `(parent, parent edge weight, distance estimate to root)`;
    /// the root maps to `(root, 0, 0)`.
    pub members: HashMap<VertexId, MemberInfo>,
}

/// Per-member tree data.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemberInfo {
    /// Tree parent (self for the root).
    pub parent: VertexId,
    /// Weight of the parent edge (0 for the root).
    pub parent_weight: Weight,
    /// The estimate `b_root(v)` the construction derived (≥ true distance).
    pub dist: Weight,
}

impl SparseTree {
    /// Number of members (including the root).
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the tree has no members (never true for built trees).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Whether `v` belongs to this tree.
    pub fn contains(&self, v: VertexId) -> bool {
        self.members.contains_key(&v)
    }

    /// Convert to a dense [`RootedTree`] over a host universe of `host_n`.
    ///
    /// # Panics
    ///
    /// Panics if a member's parent chain is inconsistent (caught by
    /// [`RootedTree::from_parents`]'s cycle check).
    pub fn to_rooted(&self, host_n: usize) -> RootedTree {
        let mut parent = vec![None; host_n];
        let mut weight = vec![0; host_n];
        for (&v, info) in &self.members {
            if v != self.root {
                parent[v.index()] = Some(info.parent);
                weight[v.index()] = info.parent_weight;
            }
        }
        RootedTree::from_parents(self.root, parent, weight)
    }
}

/// The tree-routing scheme of one cluster tree, stored sparsely.
#[derive(Clone, Debug, Default)]
pub struct SparseTreeScheme {
    /// Per-member routing table.
    pub tables: HashMap<VertexId, TreeTable>,
    /// Per-member label.
    pub labels: HashMap<VertexId, TreeLabel>,
}

impl SparseTreeScheme {
    /// Extract the member entries of a dense scheme.
    pub fn from_dense(scheme: &TreeScheme) -> Self {
        let mut out = SparseTreeScheme::default();
        for (i, t) in scheme.tables.iter().enumerate() {
            if let Some(t) = t {
                out.tables.insert(VertexId(i as u32), t.clone());
            }
        }
        for (i, l) in scheme.labels.iter().enumerate() {
            if let Some(l) = l {
                out.labels.insert(VertexId(i as u32), l.clone());
            }
        }
        out
    }
}

/// The prior (baseline) tree scheme of one cluster tree, stored sparsely.
#[derive(Clone, Debug, Default)]
pub struct SparseBaselineScheme {
    /// Per-member two-level table.
    pub tables: HashMap<VertexId, tree_routing::baseline::BaselineTable>,
    /// Per-member two-level label.
    pub labels: HashMap<VertexId, tree_routing::baseline::BaselineLabel>,
}

impl SparseBaselineScheme {
    /// Extract the member entries of a dense baseline scheme.
    pub fn from_dense(scheme: &tree_routing::baseline::BaselineScheme) -> Self {
        let mut out = SparseBaselineScheme::default();
        for (i, t) in scheme.tables.iter().enumerate() {
            if let Some(t) = t {
                out.tables.insert(VertexId(i as u32), t.clone());
            }
        }
        for (i, l) in scheme.labels.iter().enumerate() {
            if let Some(l) = l {
                out.labels.insert(VertexId(i as u32), l.clone());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_sparse() -> SparseTree {
        let mut members = HashMap::new();
        members.insert(
            VertexId(0),
            MemberInfo {
                parent: VertexId(0),
                parent_weight: 0,
                dist: 0,
            },
        );
        members.insert(
            VertexId(2),
            MemberInfo {
                parent: VertexId(0),
                parent_weight: 5,
                dist: 5,
            },
        );
        members.insert(
            VertexId(3),
            MemberInfo {
                parent: VertexId(2),
                parent_weight: 1,
                dist: 6,
            },
        );
        SparseTree {
            root: VertexId(0),
            level: 1,
            members,
        }
    }

    #[test]
    fn to_rooted_reconstructs_structure() {
        let st = path_sparse();
        let t = st.to_rooted(5);
        assert_eq!(t.root(), VertexId(0));
        assert_eq!(t.num_vertices(), 3);
        assert!(!t.contains(VertexId(1)));
        assert_eq!(t.parent(VertexId(3)), Some(VertexId(2)));
        assert_eq!(t.root_distance(VertexId(3)), Some(6));
    }

    #[test]
    fn membership_queries() {
        let st = path_sparse();
        assert_eq!(st.len(), 3);
        assert!(st.contains(VertexId(2)));
        assert!(!st.contains(VertexId(4)));
        assert!(!st.is_empty());
    }

    #[test]
    fn sparse_scheme_round_trips_members() {
        let st = path_sparse();
        let dense_tree = st.to_rooted(5);
        let dense = tree_routing::tz::build(&dense_tree);
        let sparse = SparseTreeScheme::from_dense(&dense);
        assert_eq!(sparse.tables.len(), 3);
        assert_eq!(sparse.labels.len(), 3);
        assert_eq!(sparse.tables.get(&VertexId(0)), dense.table(VertexId(0)));
    }
}
